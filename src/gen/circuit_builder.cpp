#include "gen/circuit_builder.hpp"

#include "util/check.hpp"

namespace tg {

CircuitBuilder::CircuitBuilder(Design* design, Rng* rng)
    : design_(design), rng_(rng) {
  TG_CHECK(design != nullptr && rng != nullptr);
}

SigId CircuitBuilder::add_input(const std::string& name) {
  const PinId pin = design_->add_primary_input(name);
  const NetId net = design_->add_net("n_" + name);
  design_->connect(net, pin);
  signals_.push_back(Signal{net, 0, 0});
  return num_signals() - 1;
}

int CircuitBuilder::sample_drive() {
  const double weights[] = {0.62, 0.28, 0.10};
  const std::size_t i = rng_->weighted_index(weights);
  return i == 0 ? 1 : (i == 1 ? 2 : 4);
}

int CircuitBuilder::cell_id(const std::string& function, int drive) const {
  const int id =
      design_->library().find_cell(function + "_X" + std::to_string(drive));
  TG_CHECK_MSG(id >= 0, "no cell " << function << "_X" << drive);
  return id;
}

void CircuitBuilder::connect_input(InstId inst, int cell_pin_idx, SigId s) {
  const Signal& sg = sig(s);
  design_->connect(sg.net, design_->instance(inst).pins[static_cast<std::size_t>(cell_pin_idx)]);
  ++signals_[static_cast<std::size_t>(s)].fanout;
}

SigId CircuitBuilder::gate(const std::string& function,
                           const std::vector<SigId>& inputs) {
  const int cid = cell_id(function, sample_drive());
  const CellType& cell = design_->library().cell(cid);
  TG_CHECK_MSG(static_cast<int>(inputs.size()) == cell.num_inputs(),
               function << " expects " << cell.num_inputs() << " inputs, got "
                        << inputs.size());
  const std::string iname = "g" + std::to_string(gate_counter_++);
  const InstId inst = design_->add_instance(iname, cid);

  int level = 0;
  int in_idx = 0;
  for (std::size_t p = 0; p < cell.pins.size(); ++p) {
    if (cell.pins[p].dir != PinDir::kInput) continue;
    const SigId s = inputs[static_cast<std::size_t>(in_idx++)];
    connect_input(inst, static_cast<int>(p), s);
    level = std::max(level, sig(s).level);
  }

  const NetId out_net = design_->add_net(iname + "_y");
  design_->connect(out_net,
                   design_->instance(inst).pins[static_cast<std::size_t>(cell.single_output())]);
  signals_.push_back(Signal{out_net, level + 1, 0});
  return num_signals() - 1;
}

void CircuitBuilder::ensure_clock() {
  if (clock_net_ != kInvalidId) return;
  const PinId clk_port = design_->add_primary_input("clk");
  clock_net_ = design_->add_net("clk_net", /*is_clock=*/true);
  design_->connect(clock_net_, clk_port);
  design_->set_clock(clock_net_, /*period_ns=*/1.0);  // calibrated later
}

SigId CircuitBuilder::register_signal(SigId d) {
  ensure_clock();
  const int cid = cell_id("DFF", sample_drive());
  const CellType& cell = design_->library().cell(cid);
  const std::string iname = "ff" + std::to_string(gate_counter_++);
  const InstId inst = design_->add_instance(iname, cid);
  connect_input(inst, cell.data_pin, d);
  design_->connect(clock_net_,
                   design_->instance(inst).pins[static_cast<std::size_t>(cell.clock_pin)]);
  const NetId q_net = design_->add_net(iname + "_q");
  design_->connect(q_net,
                   design_->instance(inst).pins[static_cast<std::size_t>(cell.output_pin)]);
  ++num_ffs_;
  signals_.push_back(Signal{q_net, 0, 0});
  return num_signals() - 1;
}

void CircuitBuilder::add_output(SigId s, const std::string& name) {
  const PinId pin = design_->add_primary_output(name);
  design_->connect(sig(s).net, pin);
  ++signals_[static_cast<std::size_t>(s)].fanout;
}

const Signal& CircuitBuilder::sig(SigId id) const {
  TG_CHECK(id >= 0 && id < num_signals());
  return signals_[static_cast<std::size_t>(id)];
}

}  // namespace tg
