#pragma once
/// \file admission.hpp
/// Bounded admission queue of the serving plane (DESIGN.md §12). Requests
/// that don't fit are *shed at the door* — the submitter gets an immediate
/// kShed response with a retry-after hint instead of unbounded queueing —
/// which is what keeps p99 bounded under an overload spike. Workers pop
/// tickets FIFO; the micro-batcher additionally drains queued tickets that
/// are *compatible* with the one just popped (same template, pristine
/// session, pure full-graph prediction), so one GNN forward answers all of
/// them.

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/types.hpp"

namespace tg::serve {

/// One queued request plus its fulfillment slot and admission metadata.
struct Ticket {
  Request req;
  std::promise<Response> promise;
  std::chrono::steady_clock::time_point enqueued{};
  /// Absolute deadline (from the submit-time budget), or time_point::max().
  std::chrono::steady_clock::time_point deadline{
      std::chrono::steady_clock::time_point::max()};
  /// Template key of the target session (micro-batch compatibility).
  std::uint64_t tpl_key = 0;
  /// Node count of the target session's template graph — the unit of the
  /// cross-template packed-batch node budget.
  long long num_nodes = 0;
  /// True when this is a pure full-graph prediction on a pristine session.
  bool batchable = false;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(int capacity);

  /// Enqueues; returns false (without touching the promise) when the queue
  /// is full or stopped — the caller sheds.
  bool push(Ticket&& ticket);

  /// Blocks until a ticket or stop. nullopt = stopped and drained.
  std::optional<Ticket> pop();

  /// Removes up to `max_extra` queued tickets batch-compatible with a
  /// batch led by a `tpl_key` ticket of `lead_nodes` packed nodes. Always
  /// takes batchable same-template tickets; with `cross_template` set it
  /// also takes batchable tickets of other templates, as long as the sum
  /// of the *distinct* member templates' node counts stays within
  /// `max_total_nodes` (< 0 = unlimited; extra tickets of an already-
  /// admitted template are free — they share the packed rows). FIFO order
  /// preserved.
  std::vector<Ticket> drain_compatible(std::uint64_t tpl_key, int max_extra,
                                       bool cross_template = false,
                                       long long max_total_nodes = -1,
                                       long long lead_nodes = 0);

  /// Stops the queue and returns every still-queued ticket so the caller
  /// can shed them (no ticket is ever silently dropped).
  std::vector<Ticket> stop();

  [[nodiscard]] int size() const;
  [[nodiscard]] int capacity() const { return capacity_; }
  /// size() / capacity() at this instant — the degradation ladder's load
  /// signal.
  [[nodiscard]] double fill() const;

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> queue_;
  bool stopped_ = false;
};

}  // namespace tg::serve
