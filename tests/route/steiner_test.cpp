#include "route/steiner.hpp"

#include <gtest/gtest.h>

#include "liberty/library_builder.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

RouteTopology make_tree(const std::vector<Point>& sink_pts) {
  std::vector<SteinerSink> sinks;
  for (std::size_t i = 0; i < sink_pts.size(); ++i) {
    sinks.push_back(SteinerSink{sink_pts[i], static_cast<PinId>(100 + i)});
  }
  return build_steiner({0, 0}, 99, sinks);
}

TEST(Steiner, TwoPinNetIsManhattan) {
  const RouteTopology t = make_tree({{10, 7}});
  EXPECT_NEAR(t.total_wirelength(), 17.0, 1e-9);
  EXPECT_GE(t.node_of_pin(100), 0);
}

TEST(Steiner, AlignedSinkSingleSegment) {
  const RouteTopology t = make_tree({{10, 0}});
  EXPECT_NEAR(t.total_wirelength(), 10.0, 1e-9);
  // driver + sink only (no corner needed)
  EXPECT_EQ(t.size(), 2);
}

TEST(Steiner, CoincidentSinkZeroWire) {
  const RouteTopology t = make_tree({{0, 0}});
  EXPECT_NEAR(t.total_wirelength(), 0.0, 1e-9);
}

TEST(Steiner, SharesTrunkForColinearSinks) {
  // Two sinks straight to the right: the farther one must reuse the
  // nearer one's wire, so total = 20, not 30.
  const RouteTopology t = make_tree({{10, 0}, {20, 0}});
  EXPECT_NEAR(t.total_wirelength(), 20.0, 1e-9);
}

TEST(Steiner, SteinerPointBeatsStar) {
  // Sinks at (10,5) and (10,-5): a trunk to x=10 then two branches
  // (total 20) beats direct connections (15+15=30).
  const RouteTopology t = make_tree({{10, 5}, {10, -5}});
  EXPECT_LE(t.total_wirelength(), 20.0 + 1e-9);
}

TEST(Steiner, EveryPinPresent) {
  const RouteTopology t =
      make_tree({{5, 5}, {-3, 2}, {7, -4}, {0, 9}, {2, 2}});
  for (int pin = 100; pin < 105; ++pin) {
    EXPECT_GE(t.node_of_pin(pin), 0) << "pin " << pin;
  }
  EXPECT_NO_THROW(t.validate());
}

TEST(Steiner, WirelengthAtLeastBBoxHalfPerimeter) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> pts;
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
    }
    const RouteTopology t = make_tree(pts);
    std::vector<Point> all = pts;
    all.push_back({0, 0});
    // RSMT lower bound: half-perimeter of the bounding box.
    EXPECT_GE(t.total_wirelength() + 1e-6, hpwl(all));
    // Sanity upper bound: star routing from the driver.
    double star = 0.0;
    for (const Point& p : pts) star += manhattan({0, 0}, p);
    EXPECT_LE(t.total_wirelength(), star + 1e-6);
  }
}

TEST(Steiner, SegmentsAreAxisAligned) {
  const RouteTopology t =
      make_tree({{5, 5}, {-3, 2}, {7, -4}, {0, 9}});
  for (int i = 1; i < t.size(); ++i) {
    const TopoNode& n = t.node(i);
    const Point& a = n.pos;
    const Point& b = t.node(n.parent).pos;
    EXPECT_TRUE(std::abs(a.x - b.x) < 1e-9 || std::abs(a.y - b.y) < 1e-9)
        << "edge " << i << " is diagonal";
  }
}

TEST(Steiner, NetHelperCoversAllSinks) {
  Library lib = build_library();
  Design d("t", &lib);
  const auto c = testing::build_comb_chain(d, lib);
  const RouteTopology t = build_net_steiner(d, c.n_mid);
  EXPECT_EQ(t.node(0).pin, d.net(c.n_mid).driver);
  for (PinId s : d.net(c.n_mid).sinks) EXPECT_GE(t.node_of_pin(s), 0);
}

class SteinerFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(SteinerFanoutSweep, ValidTreeAtAnyFanout) {
  Rng rng(GetParam());
  std::vector<Point> pts;
  for (int i = 0; i < GetParam(); ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  const RouteTopology t = make_tree(pts);
  EXPECT_NO_THROW(t.validate());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_GE(t.node_of_pin(static_cast<PinId>(100 + i)), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SteinerFanoutSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace tg
