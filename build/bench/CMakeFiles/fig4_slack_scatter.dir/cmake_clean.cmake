file(REMOVE_RECURSE
  "CMakeFiles/fig4_slack_scatter.dir/fig4_slack_scatter.cpp.o"
  "CMakeFiles/fig4_slack_scatter.dir/fig4_slack_scatter.cpp.o.d"
  "fig4_slack_scatter"
  "fig4_slack_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_slack_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
