#include "route/router.hpp"

#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"
#include "util/timer.hpp"

namespace tg {

DesignRouting route_design(const Design& design, const RoutingOptions& options) {
  TG_TRACE_SCOPE("route/design", obs::kSpanCoarse);
  WallTimer timer;
  DesignRouting out;
  out.nets.resize(static_cast<std::size_t>(design.num_nets()));

  if (options.mode == RouteMode::kMaze) {
    const MazeResult routed = maze_route(design, options.maze);
    out.overflow_edges = routed.overflow_edges;
    TG_TRACE_SCOPE("route/rc_extract", obs::kSpanCoarse);
    for (NetId n = 0; n < design.num_nets(); ++n) {
      if (design.net(n).is_clock) continue;
      out.nets[static_cast<std::size_t>(n)] = extract_parasitics(
          design, n, routed.topologies[static_cast<std::size_t>(n)], options.wire);
      out.total_wirelength +=
          routed.topologies[static_cast<std::size_t>(n)].total_wirelength();
      TG_METRIC_COUNT("route/nets_routed", 1);
    }
  } else {
    TG_TRACE_SCOPE("route/steiner", obs::kSpanCoarse);
    for (NetId n = 0; n < design.num_nets(); ++n) {
      if (design.net(n).is_clock) continue;
      const RouteTopology topo = build_net_steiner(design, n);
      out.nets[static_cast<std::size_t>(n)] =
          extract_parasitics(design, n, topo, options.wire);
      out.total_wirelength += topo.total_wirelength();
      TG_METRIC_COUNT("route/nets_routed", 1);
    }
  }
  out.route_seconds = timer.seconds();
  return out;
}

}  // namespace tg
