#include "metrics/metrics.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace tg {

namespace {
template <typename T>
double r2_impl(std::span<const T> y_true, std::span<const T> y_pred) {
  TG_CHECK(y_true.size() == y_pred.size());
  TG_CHECK(!y_true.empty());
  double mean = 0.0;
  for (T v : y_true) mean += static_cast<double>(v);
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double r = static_cast<double>(y_true[i]) - static_cast<double>(y_pred[i]);
    const double t = static_cast<double>(y_true[i]) - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot < 1e-30) return ss_res < 1e-30 ? 1.0 : -1e9;
  return 1.0 - ss_res / ss_tot;
}
}  // namespace

double r2_score(std::span<const double> y_true, std::span<const double> y_pred) {
  return r2_impl(y_true, y_pred);
}
double r2_score(std::span<const float> y_true, std::span<const float> y_pred) {
  return r2_impl(y_true, y_pred);
}

double mae(std::span<const double> y_true, std::span<const double> y_pred) {
  TG_CHECK(y_true.size() == y_pred.size() && !y_true.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    acc += std::abs(y_true[i] - y_pred[i]);
  }
  return acc / static_cast<double>(y_true.size());
}

double rmse(std::span<const double> y_true, std::span<const double> y_pred) {
  TG_CHECK(y_true.size() == y_pred.size() && !y_true.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

double pearson_r(std::span<const double> y_true, std::span<const double> y_pred) {
  TG_CHECK(y_true.size() == y_pred.size() && !y_true.empty());
  const double n = static_cast<double>(y_true.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ma += y_true[i];
    mb += y_pred[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double da = y_true[i] - ma;
    const double db = y_pred[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  return denom < 1e-30 ? 0.0 : cov / denom;
}

}  // namespace tg
