#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/log.hpp"

namespace tg {

namespace {

/// Live-signal pool with locality-biased sampling and fanout capping.
class LivePool {
 public:
  LivePool(CircuitBuilder* cb, int max_fanout)
      : cb_(cb), max_fanout_(max_fanout) {}

  void add(SigId s) { live_.push_back(s); }

  [[nodiscard]] std::size_t size() const { return live_.size(); }
  [[nodiscard]] const std::vector<SigId>& all() const { return live_; }

  /// Samples one usable signal: recent signals strongly preferred (wire
  /// locality), occasional uniform pick (long global wires). Saturated
  /// signals are evicted lazily.
  SigId pick() {
    Rng& rng = cb_->rng();
    for (int attempt = 0; attempt < 64; ++attempt) {
      TG_CHECK_MSG(!live_.empty(), "generator ran out of live signals");
      std::size_t idx;
      if (rng.chance(0.06)) {
        idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live_.size()) - 1));
      } else {
        const double back =
            std::abs(rng.normal()) * static_cast<double>(live_.size()) * 0.08;
        const std::size_t off =
            std::min(live_.size() - 1, static_cast<std::size_t>(back));
        idx = live_.size() - 1 - off;
      }
      const SigId s = live_[idx];
      if (cb_->sig(s).fanout >= max_fanout_) {
        live_[idx] = live_.back();
        live_.pop_back();
        continue;
      }
      return s;
    }
    // Extremely unlikely; fall back to a linear scan.
    for (SigId s : live_) {
      if (cb_->sig(s).fanout < max_fanout_) return s;
    }
    TG_CHECK_MSG(false, "all live signals saturated");
    return kInvalidId;
  }

  /// Picks `k` signals (repetition possible for small pools).
  std::vector<SigId> pick_many(int k) {
    std::vector<SigId> out;
    out.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) out.push_back(pick());
    return out;
  }

  /// Samples a handful of live signals and returns the deepest.
  SigId deepest_sample(int tries) {
    Rng& rng = cb_->rng();
    SigId best = live_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live_.size()) - 1))];
    for (int i = 1; i < tries; ++i) {
      const SigId s = live_[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_.size()) - 1))];
      if (cb_->sig(s).level > cb_->sig(best).level) best = s;
    }
    return best;
  }

 private:
  CircuitBuilder* cb_;
  int max_fanout_;
  std::vector<SigId> live_;
};

}  // namespace

Design generate_design(const DesignSpec& spec, const Library& library) {
  TG_CHECK(spec.target_nodes >= 200);
  TG_CHECK(spec.target_endpoints >= 8);
  TG_CHECK(spec.num_inputs >= 4);
  Rng rng(spec.seed);
  Design design(spec.name, &library);
  CircuitBuilder cb(&design, &rng);
  LivePool pool(&cb, spec.max_fanout);

  const int num_po =
      std::clamp(spec.target_endpoints / 12, 4, spec.target_endpoints - 4);
  const int ff_target = spec.target_endpoints - num_po;

  for (int i = 0; i < spec.num_inputs; ++i) {
    pool.add(cb.add_input("in" + std::to_string(i)));
  }

  // Block mix distribution.
  const double weights[] = {spec.w_random, spec.w_adder, spec.w_xor,
                            spec.w_mux,    spec.w_sbox,  spec.w_decoder};

  // Main emission loop: stop early enough that the PO/collector epilogue
  // stays inside the node budget.
  const int budget = static_cast<int>(0.95 * spec.target_nodes) - 2 * num_po;
  static const char* kOneIn[] = {"INV", "BUF"};
  static const char* kTwoIn[] = {"NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2"};
  static const char* kThreeIn[] = {"NAND3", "NOR3", "AOI21", "OAI21", "MUX2"};

  // Adds a block output to the pool, registering it first when it exceeds
  // the depth target (keeps register-to-register depth near spec.depth).
  auto emit = [&](SigId s) {
    if (cb.sig(s).level >= spec.depth && cb.num_ffs() < ff_target) {
      pool.add(cb.register_signal(s));
    } else {
      pool.add(s);
    }
  };

  while (design.num_pins() < budget) {
    switch (rng.weighted_index(weights)) {
      case 0: {  // random gate
        const double r = rng.uniform();
        if (r < 0.18) {
          emit(cb.gate(kOneIn[rng.uniform_int(0, 1)], pool.pick_many(1)));
        } else if (r < 0.80) {
          emit(cb.gate(kTwoIn[rng.uniform_int(0, 5)], pool.pick_many(2)));
        } else {
          emit(cb.gate(kThreeIn[rng.uniform_int(0, 4)], pool.pick_many(3)));
        }
        break;
      }
      case 1: {  // ripple adder
        const int width = static_cast<int>(rng.uniform_int(4, 12));
        const auto a = pool.pick_many(width);
        const auto b = pool.pick_many(width);
        for (SigId s : block_ripple_adder(cb, a, b)) emit(s);
        break;
      }
      case 2: {  // xor tree
        const int width = static_cast<int>(rng.uniform_int(6, 24));
        emit(block_xor_tree(cb, pool.pick_many(width)));
        break;
      }
      case 3: {  // mux tree
        const int bits = static_cast<int>(rng.uniform_int(2, 3));
        const int width = 1 << bits;
        emit(block_mux_tree(cb, pool.pick_many(width), pool.pick_many(bits)));
        break;
      }
      case 4: {  // sbox cone
        const int ins = static_cast<int>(rng.uniform_int(8, 16));
        const int depth = static_cast<int>(rng.uniform_int(3, 5));
        for (SigId s : block_sbox_cone(cb, pool.pick_many(ins), depth, 8)) {
          pool.add(s);
        }
        break;
      }
      case 5: {  // decoder
        const int bits = static_cast<int>(rng.uniform_int(3, 4));
        for (SigId s : block_decoder(cb, pool.pick_many(bits))) pool.add(s);
        break;
      }
      default: break;
    }

    // Register insertion: keep the FF count proportional to progress, and
    // register deep signals to respect the depth target.
    const double progress = static_cast<double>(design.num_pins()) /
                            static_cast<double>(spec.target_nodes);
    while (cb.num_ffs() < static_cast<int>(progress * ff_target) &&
           pool.size() > 8) {
      SigId victim = pool.deepest_sample(8);
      if (cb.sig(victim).level < spec.depth / 2 && rng.chance(0.5)) {
        victim = pool.deepest_sample(16);
      }
      pool.add(cb.register_signal(victim));
    }
  }

  // Top up the FF count.
  while (cb.num_ffs() < ff_target) {
    pool.add(cb.register_signal(pool.deepest_sample(8)));
  }

  // Collect dangling signals: XOR-reduce them into at most num_po parity
  // outputs. (Intermediate XOR gates consume everything but the roots.)
  std::vector<SigId> unused;
  for (SigId s = 0; s < cb.num_signals(); ++s) {
    if (cb.sig(s).fanout == 0) unused.push_back(s);
  }
  std::vector<SigId> po_signals;
  if (!unused.empty()) {
    const std::size_t groups =
        std::min<std::size_t>(static_cast<std::size_t>(num_po), unused.size());
    std::vector<std::vector<SigId>> buckets(groups);
    for (std::size_t i = 0; i < unused.size(); ++i) {
      buckets[i % groups].push_back(unused[i]);
    }
    for (auto& bucket : buckets) {
      po_signals.push_back(block_xor_tree(cb, std::move(bucket)));
    }
  }
  // Remaining POs tap deep live signals.
  while (static_cast<int>(po_signals.size()) < num_po) {
    po_signals.push_back(pool.deepest_sample(8));
  }
  for (std::size_t i = 0; i < po_signals.size(); ++i) {
    cb.add_output(po_signals[i], "out" + std::to_string(i));
  }

  design.validate();
  TG_DEBUG("generated " << spec.name << ": pins=" << design.num_pins()
                        << " ffs=" << cb.num_ffs());
  return design;
}

double calibrated_period(const Design& design,
                         const std::vector<PerCorner>& arrival,
                         double factor) {
  TG_CHECK(static_cast<int>(arrival.size()) == design.num_pins());
  double worst = 0.0;
  for (PinId p = 0; p < design.num_pins(); ++p) {
    if (!design.is_endpoint(p)) continue;
    PerCorner setup = per_corner_fill(0.0);
    if (!design.pin(p).is_port) setup = design.cell_of(p).setup;
    for (int t = 0; t < kNumTrans; ++t) {
      const int c = corner_index(Mode::kLate, static_cast<Trans>(t));
      worst = std::max(worst, arrival[static_cast<std::size_t>(p)][c] + setup[c]);
    }
  }
  TG_CHECK(worst > 0.0);
  return factor * worst;
}

}  // namespace tg
