/// \file table1_benchmarks.cpp
/// Reproduces **Table 1** of the paper: benchmark statistics (#nodes,
/// #net edges, #cell edges, #endpoints) for the 21 generated designs, with
/// the upper 14 used for training and the lower 7 for testing. The paper's
/// reference counts are printed alongside for comparison (our designs are
/// proportional at the configured scale; see DESIGN.md §1).
///
///   ./table1_benchmarks [--scale=0.05]

#include <cstdio>

#include "common.hpp"
#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "netlist/stats.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const bench::BenchConfig config = bench::parse_bench_config(argc, argv);

  std::printf("== Table 1: benchmark statistics (scale %.4f of the paper's "
              "sizes) ==\n",
              config.scale);

  const Library library = build_library();
  Table table({"Benchmark", "#Nodes", "Net Edges", "Cell Edges", "#Endpoints",
               "(paper #Nodes)", "(paper #Endp.)"});

  std::vector<DesignStats> train_stats, test_stats;
  bool separator_done = false;
  for (const SuiteEntry& entry : table1_suite(config.scale)) {
    if (entry.is_test && !separator_done) {
      table.add_separator();
      separator_done = true;
    }
    const Design design = generate_design(entry.spec, library);
    const DesignStats stats = design.stats();
    auto row = stats_row(entry.spec.name, stats);
    row.push_back(with_commas(entry.paper_nodes));
    row.push_back(with_commas(entry.paper_endpoints));
    table.add_row(row);
    (entry.is_test ? test_stats : train_stats).push_back(stats);
  }
  table.add_separator();
  {
    auto row = stats_row("Total Train", sum_stats(train_stats));
    row.push_back("920,301");
    row.push_back("34,067");
    table.add_row(row);
    row = stats_row("Total Test", sum_stats(test_stats));
    row.push_back("624,232");
    row.push_back("21,977");
    table.add_row(row);
  }
  table.print();
  std::printf("\nTrain/test split: 14/7 designs, matching the paper.\n");
  return 0;
}
