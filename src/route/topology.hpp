#pragma once
/// \file topology.hpp
/// The routed shape of one net: a tree of axis-aligned segments rooted at
/// the driver pin. Produced by either the Steiner constructor (pre-routing
/// estimate) or the maze router (ground-truth routing), and consumed by the
/// RC-tree extractor.

#include <vector>

#include "geom/point.hpp"
#include "netlist/design.hpp"

namespace tg {

struct TopoNode {
  Point pos;
  int parent = -1;          ///< index of the parent node; -1 for the root
  double wire_to_parent = 0.0;  ///< rectilinear wirelength of the segment (µm)
  PinId pin = kInvalidId;   ///< attached design pin, or kInvalidId (Steiner)
};

class RouteTopology {
 public:
  /// Creates the root (driver) node.
  explicit RouteTopology(Point root_pos, PinId root_pin);

  /// Adds a node under `parent`; wire length defaults to the Manhattan
  /// distance to the parent (pass explicitly for detoured maze routes).
  int add_node(Point pos, int parent, PinId pin = kInvalidId,
               double wire_len = -1.0);

  /// Re-attaches the subtree rooted at `node` under a new parent (used by
  /// the Steiner builder when splitting segments).
  void set_parent(int node, int parent, double wire_len);

  /// Attach an existing pin id to node `node` (maze router: pin lands on a
  /// grid vertex that already exists).
  void attach_pin(int node, PinId pin);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const TopoNode& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const std::vector<TopoNode>& nodes() const { return nodes_; }

  /// Total rectilinear wirelength (µm).
  [[nodiscard]] double total_wirelength() const;

  /// Index of the node carrying `pin`, or -1.
  [[nodiscard]] int node_of_pin(PinId pin) const;

  /// Structural sanity: parents precede children, root is node 0, wire
  /// lengths are >= Manhattan distance... (maze detours) and finite.
  void validate() const;

 private:
  std::vector<TopoNode> nodes_;
};

}  // namespace tg
