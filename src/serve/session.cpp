#include "serve/session.hpp"

#include <algorithm>
#include <cstring>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "route/rc_tree.hpp"
#include "route/steiner.hpp"
#include "util/check.hpp"
#include "util/obs/trace.hpp"

namespace tg::serve {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// The synthetic library is process-wide and immutable; templates and
/// sessions reference it, so it must outlive both — a function-local
/// static does.
const Library& serve_library() {
  static const Library lib = build_library();
  return lib;
}

}  // namespace

std::uint64_t design_hash(const std::string& design, double scale,
                          double clock_factor) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(design.data(), design.size(), h);
  h = fnv1a(&scale, sizeof(scale), h);
  h = fnv1a(&clock_factor, sizeof(clock_factor), h);
  return h;
}

std::shared_ptr<const SessionTemplate> TemplateCache::get_or_build(
    const std::string& design, double scale, double clock_factor) {
  const std::uint64_t key = design_hash(design, scale, clock_factor);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  TG_TRACE_SCOPE("serve/template_build", obs::kSpanCoarse);
  auto tpl = std::make_shared<SessionTemplate>(serve_library());
  tpl->key = key;
  tpl->design_name = design;
  tpl->scale = scale;
  tpl->clock_factor = clock_factor;

  const SuiteEntry entry = suite_entry(design, scale);
  tpl->design = generate_design(entry.spec, serve_library());
  place_design(tpl->design);

  RoutingOptions route_opts;
  route_opts.mode = RouteMode::kSteiner;
  tpl->routing = route_design(tpl->design, route_opts);

  tpl->graph = std::make_unique<TimingGraph>(tpl->design);
  {
    const StaResult warmup = run_sta(*tpl->graph, tpl->routing);
    const double factor = clock_factor > 0.0 ? clock_factor : entry.clock_factor;
    tpl->design.set_period(
        calibrated_period(tpl->design, warmup.arrival, factor));
  }
  tpl->sta = run_sta(*tpl->graph, tpl->routing);
  tpl->g =
      data::extract_graph(tpl->design, *tpl->graph, tpl->routing, tpl->sta);
  tpl->plan = core::build_prop_plan(tpl->g);

  cache_.emplace(key, tpl);
  return tpl;
}

PackCache::PackCache(int capacity) : capacity_(capacity) {
  TG_CHECK(capacity >= 1);
}

int PackCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(lru_.size());
}

std::shared_ptr<const PackEntry> PackCache::get_or_pack(
    const std::vector<std::shared_ptr<const SessionTemplate>>& tpls,
    const core::TimingGnn& model, bool* hit) {
  // Canonical key: sorted distinct template keys (batch order and
  // duplicate sessions on one template must not fragment the cache).
  std::vector<std::shared_ptr<const SessionTemplate>> distinct(tpls);
  std::sort(distinct.begin(), distinct.end(),
            [](const auto& a, const auto& b) { return a->key < b->key; });
  distinct.erase(std::unique(distinct.begin(), distinct.end(),
                             [](const auto& a, const auto& b) {
                               return a->key == b->key;
                             }),
                 distinct.end());
  std::vector<std::uint64_t> keys;
  keys.reserve(distinct.size());
  for (const auto& t : distinct) keys.push_back(t->key);

  const std::lock_guard<std::mutex> lock(mu_);
  // Exact match wins; failing that, the smallest cached *superset* pack is
  // reused (keys are sorted, so subset-inclusion is one linear merge).
  // Supersets appear when the tenant mix shrinks — e.g. some clients of a
  // steady mix drain first — and reusing them trades a few extra forward
  // rows for skipping a pack + plan + embedding rebuild, which would
  // otherwise serialize every packed batch behind this lock.
  auto best = lru_.end();
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if ((*it)->keys == keys) {
      best = it;
      break;
    }
    if (std::includes((*it)->keys.begin(), (*it)->keys.end(), keys.begin(),
                      keys.end()) &&
        (best == lru_.end() ||
         (*it)->pack.g.num_nodes < (*best)->pack.g.num_nodes)) {
      best = it;
    }
  }
  if (best != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, best);
    if (hit != nullptr) *hit = true;
    return lru_.front();
  }

  // Miss: pack + plan under the cache lock, like TemplateCache — racing
  // workers on the same mix would otherwise duplicate the build.
  TG_TRACE_SCOPE("serve/pack_build", obs::kSpanCoarse);
  auto entry = std::make_shared<PackEntry>();
  entry->keys = std::move(keys);
  entry->templates = std::move(distinct);
  std::vector<const data::DatasetGraph*> parts;
  parts.reserve(entry->templates.size());
  for (const auto& t : entry->templates) parts.push_back(&t->g);
  entry->pack = data::pack_graphs(parts);
  entry->plan = core::build_prop_plan(entry->pack.g);
  entry->embedding = model.embed(entry->pack.g);
  lru_.push_front(std::move(entry));
  while (static_cast<int>(lru_.size()) > capacity_) lru_.pop_back();
  if (hit != nullptr) *hit = false;
  return lru_.front();
}

std::uint64_t StaleEntry::compute_checksum() const {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(&wns_setup, sizeof(wns_setup), h);
  h = fnv1a(&tns_setup, sizeof(tns_setup), h);
  h = fnv1a(&wns_hold, sizeof(wns_hold), h);
  if (!endpoint_setup.empty()) {
    h = fnv1a(endpoint_setup.data(),
              endpoint_setup.size() * sizeof(double), h);
  }
  return h;
}

void Session::materialize() {
  if (materialized) return;
  TG_TRACE_SCOPE("serve/materialize", obs::kSpanDetail);
  design = std::make_unique<Design>(tpl->design);
  routing = std::make_unique<DesignRouting>(tpl->routing);
  graph = std::make_unique<TimingGraph>(*design);
  // The IncrementalTimer constructor runs the baseline full STA — that
  // *is* this session's reference state, identical to tpl->sta until the
  // first move lands.
  timer = std::make_unique<IncrementalTimer>(*graph, routing.get());
  materialized = true;
}

void Session::apply_moves(const std::vector<ResizeMove>& moves) {
  materialize();
  for (const ResizeMove& move : moves) {
    TG_CHECK_MSG(move.inst >= 0 && move.inst < design->num_instances(),
                 "resize move targets unknown instance " << move.inst);
    TG_CHECK_MSG(move.new_cell >= 0, "resize move has no target cell");
    design->instance(move.inst).cell_id = move.new_cell;
    for (PinId pid : design->instance(move.inst).pins) {
      const Pin& pin = design->pin(pid);
      if (pin.net == kInvalidId || design->net(pin.net).is_clock) continue;
      if (!pin.drives_net) {
        // Input caps changed: re-extract the feeding net's parasitics.
        routing->nets[static_cast<std::size_t>(pin.net)] = extract_parasitics(
            *design, pin.net, build_net_steiner(*design, pin.net));
      }
      // Both feeding nets (new load) and the driven net (new drive
      // resistance) re-time through the invalidation seeds.
      timer->invalidate_net(pin.net);
    }
  }
  // Features of the swapped cells changed — any cached extraction is stale.
  gnn_graph.reset();
  gnn_plan.reset();
}

const StaResult& Session::engine_result() const {
  return materialized ? timer->result() : tpl->sta;
}

const Design& Session::current_design() const {
  return materialized ? *design : tpl->design;
}

const TimingGraph& Session::current_graph() const {
  return materialized ? *graph : *tpl->graph;
}

const DesignRouting& Session::current_routing() const {
  return materialized ? *routing : tpl->routing;
}

}  // namespace tg::serve
