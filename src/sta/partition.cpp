#include "sta/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tg {

Partition partition_timing_graph(const TimingGraph& graph, int num_shards) {
  const int n = graph.num_nodes();
  const int k = std::max(1, num_shards);

  Partition part;
  part.num_shards = k;
  part.shard_of.assign(static_cast<std::size_t>(n), 0);
  part.owned.resize(static_cast<std::size_t>(k));
  part.level_lo.assign(static_cast<std::size_t>(k), 0);
  part.level_hi.assign(static_cast<std::size_t>(k), -1);
  part.ghosts.resize(static_cast<std::size_t>(k));
  if (n == 0) return part;

  // Balanced contiguous chunks of the flat level-packed order: the first
  // n % k shards take one extra pin. Walking levels in ascending order
  // keeps the assignment monotone along arcs (arcs strictly increase the
  // level), which is what makes the shard DAG acyclic.
  const int base = n / k;
  const int extra = n % k;
  int shard = 0;
  int left = base + (0 < extra ? 1 : 0);
  // An all-in-one-shard corner (k > n leaves budget 0 for trailing
  // shards): skip zero-budget shards up front so shard 0 is never empty
  // while later shards own pins.
  while (left == 0 && shard + 1 < k) {
    ++shard;
    left = base + (shard < extra ? 1 : 0);
  }
  for (int l = 0; l < graph.num_levels(); ++l) {
    for (PinId p : graph.level_pins(l)) {
      while (left == 0 && shard + 1 < k) {
        ++shard;
        left = base + (shard < extra ? 1 : 0);
      }
      part.shard_of[static_cast<std::size_t>(p)] = shard;
      auto& own = part.owned[static_cast<std::size_t>(shard)];
      if (own.empty()) part.level_lo[static_cast<std::size_t>(shard)] = l;
      part.level_hi[static_cast<std::size_t>(shard)] = l;
      own.push_back(p);
      --left;
    }
  }
  std::size_t assigned = 0;
  for (const auto& own : part.owned) assigned += own.size();
  TG_CHECK_MSG(assigned == static_cast<std::size_t>(n),
               "partition covers " << assigned << " of " << n << " pins");

  // Ghosts: cross-shard fanin of each shard's owned pins, deduplicated.
  // A pin's fanin is its incoming net arc's driver plus the input pins of
  // its incoming cell arcs.
  std::vector<PinId> fanin;
  for (int s = 0; s < k; ++s) {
    auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    for (PinId p : part.owned[static_cast<std::size_t>(s)]) {
      fanin.clear();
      if (const int a = graph.in_net_arc(p); a >= 0) {
        fanin.push_back(graph.net_arcs()[static_cast<std::size_t>(a)].from);
      }
      for (int a : graph.in_cell_arcs(p)) {
        fanin.push_back(graph.cell_arcs()[static_cast<std::size_t>(a)].from);
      }
      for (PinId f : fanin) {
        if (part.shard_of[static_cast<std::size_t>(f)] != s) ghosts.push_back(f);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  }
  return part;
}

}  // namespace tg
