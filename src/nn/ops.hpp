#pragma once
/// \file ops.hpp
/// Differentiable operations over Tensor. Every op records a backward
/// closure when any input requires grad. Index arguments (gather/scatter
/// targets, segment ids) are plain integer vectors — they are not
/// differentiated through.
///
/// Conventions: rank-2 tensors are row-major [rows, cols]; "segment" ops
/// reduce edge-parallel tensors ([E, D]) into node-parallel tensors
/// ([N, D]) — the message-passing primitives of the paper's models.

#include <memory>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace tg::nn {

/// Shared-ownership index array. The gather/scatter/segment ops keep their
/// indices alive inside backward closures; callers that reuse the same
/// indices every step (PropPlan, GCNII adjacency, graph edge lists) pass a
/// shared handle once instead of copying the vector per call.
using IndexVec = std::shared_ptr<const std::vector<int>>;

/// Parameter wrapper for the shared-index overloads. Constructible only
/// from an IndexVec (implicitly), never from a braced initializer list —
/// so `gather_rows(a, {0, 1})` still resolves to the std::vector overload
/// unambiguously.
class SharedIndex {
 public:
  SharedIndex(IndexVec v) : v_(std::move(v)) {}  // NOLINT: implicit by design
  [[nodiscard]] const IndexVec& get() const { return v_; }

 private:
  IndexVec v_;
};

// ---- pointwise --------------------------------------------------------
/// a + b. Shapes must match, or b may be a [1, D] row vector broadcast
/// over a's rows (bias add).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
/// Elementwise product (same shape).
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor scale(const Tensor& a, float s);
[[nodiscard]] Tensor relu(const Tensor& a);
/// Fused relu(a + b) — one pass, one output tensor instead of two. Same
/// broadcast rule as add; the tape records a single node whose backward
/// masks by the (shared) output.
[[nodiscard]] Tensor add_relu(const Tensor& a, const Tensor& b);
/// Fused a · sigmoid(b) (same shape) — the gating chain emitted as one
/// node; σ(b) is cached for backward.
[[nodiscard]] Tensor mul_sigmoid(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor leaky_relu(const Tensor& a, float slope = 0.01f);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor tanh_op(const Tensor& a);
/// Numerically stable softplus — used where outputs must stay positive
/// (delays, slews).
[[nodiscard]] Tensor softplus(const Tensor& a);

// ---- linear algebra ----------------------------------------------------
/// [N, K] × [K, M] → [N, M].
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

// ---- shape ---------------------------------------------------------------
/// Concatenate along columns; all inputs share the row count.
[[nodiscard]] Tensor concat_cols(std::span<const Tensor> parts);
/// Columns [begin, end) of a.
[[nodiscard]] Tensor slice_cols(const Tensor& a, std::int64_t begin,
                                std::int64_t end);
/// Concatenate along rows; all inputs share the column count.
[[nodiscard]] Tensor concat_rows(std::span<const Tensor> parts);

// ---- gather / scatter ---------------------------------------------------
/// out[i] = a[idx[i]] (rows). The IndexVec overloads share the caller's
/// index arrays with the backward closure (zero copies); the vector
/// overloads wrap once and forward.
[[nodiscard]] Tensor gather_rows(const Tensor& a, SharedIndex idx);
[[nodiscard]] Tensor gather_rows(const Tensor& a, std::vector<int> idx);
/// out[i] = sources[src_tensor[i]].row(src_row[i]); all sources share the
/// column count. Gathering across per-level tensors in the levelized
/// propagation stage.
[[nodiscard]] Tensor multi_gather(std::span<const Tensor> sources,
                                  SharedIndex src_tensor, SharedIndex src_row);
[[nodiscard]] Tensor multi_gather(std::span<const Tensor> sources,
                                  std::vector<int> src_tensor,
                                  std::vector<int> src_row);
/// out[s] = Σ_{i: seg[i]==s} a[i]; out has `num_segments` rows. Empty
/// segments yield zero rows.
[[nodiscard]] Tensor segment_sum(const Tensor& a, SharedIndex seg,
                                 std::int64_t num_segments);
[[nodiscard]] Tensor segment_sum(const Tensor& a, std::vector<int> seg,
                                 std::int64_t num_segments);
/// out[s] = max over the segment (elementwise); empty segments yield 0.
[[nodiscard]] Tensor segment_max(const Tensor& a, SharedIndex seg,
                                 std::int64_t num_segments);
[[nodiscard]] Tensor segment_max(const Tensor& a, std::vector<int> seg,
                                 std::int64_t num_segments);

// ---- sparse -------------------------------------------------------------
/// COO sparse-dense matmul: out[dst[k]] += w[k] * x[src[k]] with
/// `out_rows` output rows. The normalized-adjacency product of GCNII.
[[nodiscard]] Tensor spmm(std::vector<int> src, std::vector<int> dst,
                          std::vector<float> w, const Tensor& x,
                          std::int64_t out_rows);

/// Destination-sorted CSR form of a fixed sparse matrix, built once and
/// reused across spmm_csr calls (GCNII runs one per layer per step).
/// Holds both the forward CSR (bucketed by output row) and its transpose
/// (bucketed by input row) so forward *and* backward are row-parallel
/// gathers with sequential memory traffic — no column-sliced scatter.
struct SpmmCsr {
  std::int64_t out_rows = 0;
  std::int64_t in_rows = 0;
  IndexVec row_off;  ///< [out_rows+1] edge offsets per output row
  IndexVec col;      ///< source row per edge (CSR order)
  std::shared_ptr<const std::vector<float>> w;  ///< weight per edge
  IndexVec t_row_off;  ///< transpose offsets [in_rows+1]
  IndexVec t_col;      ///< destination row per transposed edge
  std::shared_ptr<const std::vector<float>> t_w;
};
/// Buckets a COO triple list by destination (stable within a row), plus
/// the transpose. Edge accumulation order becomes CSR order — fixed per
/// plan, independent of the COO arrival order and of thread count.
[[nodiscard]] SpmmCsr build_spmm_csr(const std::vector<int>& src,
                                     const std::vector<int>& dst,
                                     const std::vector<float>& w,
                                     std::int64_t out_rows,
                                     std::int64_t in_rows);
/// out = A · x with A in the plan's CSR form.
[[nodiscard]] Tensor spmm_csr(const SpmmCsr& plan, const Tensor& x);

// ---- reductions / losses --------------------------------------------------
[[nodiscard]] Tensor sum_all(const Tensor& a);
[[nodiscard]] Tensor mean_all(const Tensor& a);
/// Mean squared error over all elements.
[[nodiscard]] Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// MSE over a row subset: pred rows `rows` vs target (target has
/// rows.size() rows). The masked endpoint/fan-in losses of Eq. 4–6.
[[nodiscard]] Tensor mse_loss_rows(const Tensor& pred, SharedIndex rows,
                                   const Tensor& target);
[[nodiscard]] Tensor mse_loss_rows(const Tensor& pred, std::vector<int> rows,
                                   const Tensor& target);

/// Row-wise layer normalization with learnable gain/bias:
/// y = (x − mean_row)/√(var_row + eps) · gamma + beta; gamma/beta are
/// [1, D]. One of the "bag of tricks" for deeper GNNs the paper cites
/// (Chen et al. 2021); exposed for the GCNII baseline's normalized
/// variant.
[[nodiscard]] Tensor layer_norm(const Tensor& x, const Tensor& gamma,
                                const Tensor& beta, float eps = 1e-5f);

// ---- model-specific fused ops ---------------------------------------------
/// Softmax within consecutive groups of `group` columns (normalizes the
/// per-axis LUT interpolation coefficients).
[[nodiscard]] Tensor softmax_groups(const Tensor& a, std::int64_t group);
/// Kronecker-interpolated LUT read (paper §3.3.2): for G LUTs of size
/// 7×7 per row, with per-axis coefficient vectors a,b of size G·7:
///   out[e, g] = Σ_{i,j} a[e, g·7+i] · b[e, g·7+j] · lut[e, g·49+i·7+j].
[[nodiscard]] Tensor lut_kron_dot(const Tensor& a, const Tensor& b,
                                  const Tensor& lut, std::int64_t lut_dim);

}  // namespace tg::nn
