#pragma once
/// \file random_forest.hpp
/// Bagged random-forest regressor (Barboza et al. baseline of Table 4).

#include "ml/decision_tree.hpp"

namespace tg::ml {

struct ForestConfig {
  int num_trees = 60;
  TreeConfig tree;
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
  std::uint64_t seed = 7;
};

class RandomForest {
 public:
  void fit(const Matrix& x, std::span<const float> y,
           const ForestConfig& config = {});

  [[nodiscard]] float predict(std::span<const float> features) const;
  void predict_batch(const Matrix& x, std::span<float> out) const;
  [[nodiscard]] int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace tg::ml
