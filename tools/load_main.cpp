/// \file load_main.cpp
/// tg_serve_load: fault-tolerance load driver for the slack-prediction
/// serving plane (DESIGN.md §12). Replays many concurrent ECO sessions
/// against one SlackServer — each client opens a session and streams a mix
/// of resize-move requests and slack predictions with per-request deadline
/// budgets — then layers on the failure weather the server must survive:
///
///   * an overload spike (a burst of several queue-capacities of requests
///     fired at once, which must shed with retry-after hints, not queue),
///   * mid-flight client cancellations (`--cancel-frac`),
///   * injected worker faults (`--fault=<op>:<nth>[:<count>]`, same spec
///     as TG_FAULT_SERVE).
///
/// The driver then *verifies the robustness contract*: every submitted
/// future resolves (zero hangs), every response carries a valid
/// ok|degraded|shed tag, batch-answered responses carry a concrete tier
/// tag, and the server's own counters agree with the client-side tally.
/// Exit 0 = contract held; the digest prints throughput, p50/p99 latency
/// per status and a per-template latency breakdown (`--design` accepts a
/// comma-separated list; tenants round-robin across it).
///
///   ./tg_serve_load [--design=spm] [--scale=0.03125] [--sessions=32]
///                   [--requests=8] [--workers=4] [--queue=32]
///                   [--deadline-ms=200] [--cancel-frac=0.1]
///                   [--move-frac=0.5] [--spike=1] [--fault=worker:3:2]
///                   [--seed=1]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "liberty/library_builder.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace tg {
namespace {

using serve::Request;
using serve::RequestMode;
using serve::Response;
using serve::ResponseStatus;
using serve::ServeTier;

struct Outcome {
  ResponseStatus status;
  ServeTier tier;
  std::int64_t latency_ns;
  bool was_cancelled_by_client;
  int design_idx;   ///< index into the --design list (template identity)
  int batch_size;   ///< requests answered by the same forward pass
};

struct Tally {
  std::mutex mu;
  std::vector<Outcome> outcomes;
  long long hangs = 0;

  void add(const Response& r, bool client_cancelled, int design_idx) {
    const std::lock_guard<std::mutex> lock(mu);
    outcomes.push_back({r.status, r.tier, r.latency.count(),
                        client_cancelled, design_idx, r.batch_size});
  }
};

/// Waits generously; a future that never resolves is the one bug this
/// driver exists to catch.
bool harvest(std::future<Response>& fut, Tally& tally,
             bool client_cancelled, int design_idx) {
  if (fut.wait_for(std::chrono::seconds(120)) !=
      std::future_status::ready) {
    const std::lock_guard<std::mutex> lock(tally.mu);
    ++tally.hangs;
    return false;
  }
  tally.add(fut.get(), client_cancelled, design_idx);
  return true;
}

/// A random same-function cell swap for `inst` — the load driver's ECO
/// move. Returns false when the instance's function has no alternative.
bool random_resize(const Library& lib, const Design& design, int inst,
                   std::mt19937& rng, serve::ResizeMove* out) {
  const CellType& cell = lib.cell(design.instance(inst).cell_id);
  const std::vector<int>& family = lib.cells_of_function(cell.function);
  if (family.size() < 2) return false;
  int pick = family[rng() % family.size()];
  if (pick == design.instance(inst).cell_id) {
    pick = family[(static_cast<std::size_t>(
                       std::find(family.begin(), family.end(), pick) -
                       family.begin()) +
                   1) %
                  family.size()];
  }
  out->inst = inst;
  out->new_cell = pick;
  return true;
}

double percentile_ms(std::vector<std::int64_t>& ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(ns.size() - 1) + 0.5);
  return static_cast<double>(ns[std::min(idx, ns.size() - 1)]) / 1e6;
}

/// One client: a session replaying an ECO stream. Moves and predictions
/// interleave; a fraction of requests carry tight budgets or get cancelled
/// mid-flight.
void run_client(serve::SlackServer& server, const Library& lib,
                serve::SessionId session, int design_idx, int requests,
                std::chrono::nanoseconds deadline, double cancel_frac,
                double move_frac, std::uint64_t seed, Tally& tally) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  int num_instances = 0;
  server.inspect(session, [&](const serve::SessionView& v) {
    num_instances = v.design.num_instances();
  });

  for (int i = 0; i < requests; ++i) {
    Request req;
    req.session = session;
    if (num_instances > 0 && coin(rng) < move_frac) {
      serve::ResizeMove move;
      const int inst = static_cast<int>(rng() % static_cast<std::uint32_t>(
                                                    num_instances));
      int current_cell = -1;
      server.inspect(session, [&](const serve::SessionView& v) {
        current_cell = v.design.instance(inst).cell_id;
        serve::ResizeMove m;
        if (random_resize(lib, v.design, inst, rng, &m)) move = m;
      });
      if (move.inst >= 0) req.moves.push_back(move);
    }
    // Deadline jitter: most requests get the configured budget, a few get
    // one so tight only stale (or a shed) can meet it.
    if (deadline.count() > 0) {
      req.budget = coin(rng) < 0.15 ? std::chrono::nanoseconds(50000)
                                    : deadline;
    }

    const bool cancel_this = coin(rng) < cancel_frac;
    CancelSource source;
    if (cancel_this) req.cancel = source.token();

    std::future<Response> fut = server.submit(std::move(req));
    if (cancel_this) {
      // Cancel quickly — often while the request is queued or mid-tier.
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng() % 2000));
      source.cancel();
    }
    harvest(fut, tally, cancel_this, design_idx);
  }
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  opts.require_known({"design", "scale", "sessions", "requests", "workers",
                      "queue", "deadline-ms", "cancel-frac", "move-frac",
                      "spike", "fault", "seed"});

  // --design accepts a comma-separated list: tenants round-robin across
  // the templates, exercising the cross-template packed batcher.
  std::vector<std::string> designs;
  for (const std::string& d : split(opts.get("design", "spm"), ',')) {
    if (!d.empty()) designs.push_back(d);
  }
  TG_CHECK_MSG(!designs.empty(), "--design lists no designs");
  const double scale = opts.get_double("scale", 0.03125);
  const int sessions = static_cast<int>(opts.get_int("sessions", 32));
  const int requests = static_cast<int>(opts.get_int("requests", 8));
  const double cancel_frac = opts.get_double("cancel-frac", 0.1);
  const double move_frac = opts.get_double("move-frac", 0.5);
  const bool spike = opts.get_bool("spike", true);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(
          opts.get_double("deadline-ms", 200.0)));

  // Fault spec rides the same parser as TG_FAULT_SERVE.
  const std::string fault = opts.get("fault", "");
  if (!fault.empty()) {
    const std::size_t c1 = fault.find(':');
    TG_CHECK_MSG(c1 != std::string::npos && c1 > 0,
                 "--fault wants <op>:<nth>[:<count>], got " << fault);
    const std::string op = fault.substr(0, c1);
    char* end = nullptr;
    const long long nth = std::strtoll(fault.c_str() + c1 + 1, &end, 10);
    long long count = 1;
    if (end != nullptr && *end == ':') count = std::strtoll(end + 1, nullptr, 10);
    TG_CHECK_MSG(nth > 0 && count > 0, "bad --fault spec " << fault);
    fault::arm_serve_fault(op, nth, count);
  }

  serve::ServeOptions so;
  so.workers = static_cast<int>(opts.get_int("workers", 4));
  so.queue_capacity = static_cast<int>(opts.get_int("queue", 32));
  serve::SlackServer server(so);

  const Library lib = build_library();
  std::string design_list = designs[0];
  for (std::size_t d = 1; d < designs.size(); ++d) {
    design_list += "," + designs[d];
  }
  std::printf("tg_serve_load: %d sessions x %d requests on %s/%.5f "
              "(%d workers, queue %d, deadline %.1f ms, cancel %.0f%%, "
              "moves %.0f%%%s%s)\n",
              sessions, requests, design_list.c_str(), scale, so.workers,
              so.queue_capacity,
              static_cast<double>(deadline.count()) / 1e6,
              100.0 * cancel_frac, 100.0 * move_frac,
              fault.empty() ? "" : ", fault ", fault.c_str());

  // Open every session first (each template built once, shared by its
  // tenants); sessions round-robin across the design list.
  std::vector<serve::SessionId> ids;
  ids.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    ids.push_back(server.open_session(
        designs[static_cast<std::size_t>(s) % designs.size()], scale));
  }

  Tally tally;
  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      run_client(server, lib, ids[static_cast<std::size_t>(s)],
                 static_cast<int>(static_cast<std::size_t>(s) %
                                  designs.size()),
                 requests, deadline, cancel_frac, move_frac,
                 seed + static_cast<std::uint64_t>(s) * 7919, tally);
    });
  }

  // Overload spike: several queue-capacities of pure predictions at once,
  // while the clients are mid-stream. Must shed, never hang.
  long long spike_count = 0;
  if (spike) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<std::future<Response>> burst;
    const int n = 3 * so.queue_capacity;
    burst.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Request req;
      req.session = ids[static_cast<std::size_t>(i % sessions)];
      req.budget = deadline;
      burst.push_back(server.submit(std::move(req)));
    }
    for (int i = 0; i < n; ++i) {
      harvest(burst[static_cast<std::size_t>(i)], tally, false,
              static_cast<int>(static_cast<std::size_t>(i % sessions) %
                               designs.size()));
    }
    spike_count = n;
  }

  for (std::thread& c : clients) c.join();
  const double elapsed = wall.seconds();
  server.shutdown();

  // ---- digest + contract checks ----------------------------------------
  const serve::ServerStats stats = server.stats();
  long long by_status[3] = {0, 0, 0};
  long long by_tier[4] = {0, 0, 0, 0};
  long long untagged_batched = 0;
  std::vector<std::int64_t> lat_answered, lat_shed;
  std::vector<std::vector<std::int64_t>> lat_by_design(designs.size());
  std::vector<long long> batched_by_design(designs.size(), 0);
  {
    const std::lock_guard<std::mutex> lock(tally.mu);
    for (const Outcome& o : tally.outcomes) {
      ++by_status[static_cast<int>(o.status)];
      ++by_tier[static_cast<int>(o.tier)];
      // A batch-answered response must carry a concrete tier tag: the
      // batcher only serves the full tier, so batch_size > 1 with
      // tier == kNone means a member slipped through untagged.
      if (o.batch_size > 1 && (o.tier == ServeTier::kNone ||
                               o.status == ResponseStatus::kShed)) {
        ++untagged_batched;
      }
      if (o.status == ResponseStatus::kShed) {
        lat_shed.push_back(o.latency_ns);
      } else {
        lat_answered.push_back(o.latency_ns);
        lat_by_design[static_cast<std::size_t>(o.design_idx)].push_back(
            o.latency_ns);
        if (o.batch_size > 1) {
          ++batched_by_design[static_cast<std::size_t>(o.design_idx)];
        }
      }
    }
  }
  const long long total =
      static_cast<long long>(sessions) * requests + spike_count;
  const long long seen = by_status[0] + by_status[1] + by_status[2];

  std::printf("\n%lld requests in %.3f s (%.1f req/s)\n", total, elapsed,
              static_cast<double>(total) / elapsed);
  std::printf("  status: %lld ok, %lld degraded, %lld shed\n", by_status[0],
              by_status[1], by_status[2]);
  std::printf("  tier:   %lld full, %lld cone, %lld stale, %lld none\n",
              by_tier[1], by_tier[2], by_tier[3], by_tier[0]);
  std::printf("  server: %llu batched, %llu retries, %llu faults, "
              "%llu quarantines, %llu cancelled, %llu deadline-expired\n",
              static_cast<unsigned long long>(stats.batched),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.faults),
              static_cast<unsigned long long>(stats.quarantines),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.deadline_expired));
  std::printf("  latency (answered): p50 %.3f ms, p99 %.3f ms over %zu\n",
              percentile_ms(lat_answered, 0.50),
              percentile_ms(lat_answered, 0.99), lat_answered.size());
  std::printf("  latency (shed):     p50 %.3f ms, p99 %.3f ms over %zu\n",
              percentile_ms(lat_shed, 0.50), percentile_ms(lat_shed, 0.99),
              lat_shed.size());
  // Per-template skew: a fair cross-template batcher should keep these
  // rows comparable; one design dominating p99 is a packing-policy smell.
  for (std::size_t d = 0; d < designs.size(); ++d) {
    std::vector<std::int64_t>& lat = lat_by_design[d];
    std::printf("  template %-16s p50 %8.3f ms, p99 %8.3f ms over %4zu "
                "answered (%lld batched)\n",
                designs[d].c_str(), percentile_ms(lat, 0.50),
                percentile_ms(lat, 0.99), lat.size(), batched_by_design[d]);
  }

  int rc = 0;
  if (untagged_batched > 0) {
    std::printf("FAIL: %lld batched responses untagged (batch_size > 1 "
                "with no tier or a shed status)\n",
                untagged_batched);
    rc = 1;
  }
  if (tally.hangs > 0) {
    std::printf("FAIL: %lld futures never resolved (hang)\n", tally.hangs);
    rc = 1;
  }
  if (seen != total) {
    std::printf("FAIL: %lld of %lld responses harvested\n", seen, total);
    rc = 1;
  }
  if (stats.completed != stats.submitted) {
    std::printf("FAIL: server fulfilled %llu of %llu submitted\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.submitted));
    rc = 1;
  }
  std::printf(rc == 0 ? "contract held: zero hangs, every response tagged\n"
                      : "contract VIOLATED\n");
  return rc;
}
