/// Crash-safe checkpoint/resume: bit-identical resume after a fault-killed
/// run, a sweep over every injected failure point during a save, the
/// non-finite-loss guard, and corruption fuzzing of the checkpoint format.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/test_fixture.hpp"
#include "core/trainer.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace tg::core {
namespace {

TimingGnnConfig tiny_config() {
  TimingGnnConfig cfg;
  cfg.net.hidden = 8;
  cfg.net.mlp_hidden = 8;
  cfg.net.mlp_layers = 1;
  cfg.net.num_layers = 2;
  cfg.prop.hidden = 8;
  cfg.prop.mlp_hidden = 8;
  cfg.prop.mlp_layers = 1;
  cfg.prop.lut.mlp_hidden = 8;
  cfg.prop.lut.mlp_layers = 1;
  return cfg;
}

TrainOptions quick_options(int epochs) {
  TrainOptions opt;
  opt.epochs = epochs;
  opt.lr = 3e-3f;
  opt.verbose = false;
  return opt;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::clear_io_fault();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    std::remove(path2_.c_str());
    std::remove((path2_ + ".tmp").c_str());
  }
  std::string path_ = ::testing::TempDir() + "/tg_ckpt_a.bin";
  std::string path2_ = ::testing::TempDir() + "/tg_ckpt_b.bin";
};

TEST_F(CheckpointTest, ResumeBitIdenticalAfterFaultKilledRun) {
  const auto& ds = testing::tiny_dataset();
  const int epochs = 6;

  // Reference: uninterrupted run.
  TrainOptions opt = quick_options(epochs);
  opt.checkpoint_path = path_;
  TimingGnnTrainer uninterrupted(tiny_config(), opt);
  const double reference_loss = uninterrupted.fit(ds);
  EXPECT_EQ(uninterrupted.completed_epochs(), epochs);

  // "Killed" run: the 4th checkpoint save (after epoch 4) dies at its
  // open_write, which unwinds fit() mid-run — the durable checkpoint on disk
  // is the one from epoch 3.
  opt.checkpoint_path = path2_;
  TimingGnnTrainer killed(tiny_config(), opt);
  fault::arm_io_fault("open_write", 4);
  EXPECT_THROW(killed.fit(ds), CheckError);
  fault::clear_io_fault();

  // Resume from the surviving checkpoint and finish the run.
  TimingGnnTrainer resumed(tiny_config(), opt);
  resumed.load_checkpoint(path2_);
  EXPECT_EQ(resumed.completed_epochs(), 3);
  const double resumed_loss = resumed.fit(ds);
  EXPECT_EQ(resumed.completed_epochs(), epochs);

  // Full-batch training is deterministic, the checkpoint holds the complete
  // optimizer state, and the lr schedule is a pure function of the epoch
  // index — so the final loss must match to the last bit.
  EXPECT_EQ(resumed_loss, reference_loss);
}

TEST_F(CheckpointTest, EveryFaultPointLeavesPreviousCheckpointLoadable) {
  const auto& ds = testing::tiny_dataset();
  TrainOptions opt = quick_options(2);
  TimingGnnTrainer trainer(tiny_config(), opt);
  trainer.fit(ds);
  trainer.save_checkpoint(path_);
  const std::vector<unsigned char> good = slurp(path_);

  // Kill the save at each distinct failure point; sweep "write" through
  // every buffered write op until one full save succeeds.
  for (const char* op : {"open_write", "fsync", "rename"}) {
    fault::arm_io_fault(op, 1);
    EXPECT_THROW(trainer.save_checkpoint(path_), CheckError) << "op " << op;
  }
  fault::clear_io_fault();
  EXPECT_EQ(slurp(path_), good);

  bool saved = false;
  for (long long nth = 1; !saved && nth < 100000; ++nth) {
    fault::arm_io_fault("write", nth);
    try {
      trainer.save_checkpoint(path_);
      saved = true;
    } catch (const CheckError&) {
      EXPECT_EQ(slurp(path_), good) << "after failed write op " << nth;
    }
  }
  fault::clear_io_fault();
  EXPECT_TRUE(saved);

  // Whatever happened above, the file on disk still round-trips.
  TimingGnnTrainer fresh(tiny_config(), opt);
  fresh.load_checkpoint(path_);
  EXPECT_EQ(fresh.completed_epochs(), trainer.completed_epochs());
}

TEST_F(CheckpointTest, NonFiniteLossGuardSkipsAndRecovers) {
  const auto& ds = testing::tiny_dataset();
  TrainOptions opt = quick_options(4);
  opt.lr = 1e30f;  // guarantees numeric blow-up after the first step
  opt.lr_final = 0.0f;
  TimingGnnTrainer trainer(tiny_config(), opt);
  const double loss = trainer.fit(ds);
  EXPECT_GT(trainer.non_finite_steps(), 0);
  EXPECT_TRUE(std::isfinite(loss));
  for (const auto& p : trainer.model().parameters()) {
    for (float v : p.data()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST_F(CheckpointTest, CorruptedCheckpointAlwaysRejected) {
  const auto& ds = testing::tiny_dataset();
  TrainOptions opt = quick_options(1);
  TimingGnnTrainer trainer(tiny_config(), opt);
  trainer.fit(ds);
  trainer.save_checkpoint(path_);
  const std::vector<unsigned char> full = slurp(path_);
  ASSERT_GT(full.size(), 16u);

  TimingGnnTrainer victim(tiny_config(), opt);
  for (int i = 0; i < 8; ++i) {
    const std::size_t n = full.size() * static_cast<std::size_t>(i) / 8;
    spit(path_, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(victim.load_checkpoint(path_), CheckError)
        << "truncated to " << n;
  }
  for (std::size_t i = 0; i < full.size(); i += 64) {
    std::vector<unsigned char> bad = full;
    bad[i] ^= 0x5A;
    spit(path_, bad);
    EXPECT_THROW(victim.load_checkpoint(path_), CheckError)
        << "flip at byte " << i;
  }
}

TEST_F(CheckpointTest, WrongTrainerTagRejected) {
  const auto& ds = testing::tiny_dataset();
  TimingGnnTrainer trainer(tiny_config(), quick_options(1));
  trainer.fit(ds);
  trainer.save_checkpoint(path_);

  GcniiConfig gcfg;
  gcfg.num_layers = 2;
  gcfg.hidden = 8;
  GcniiTrainer other(gcfg, quick_options(1));
  EXPECT_THROW(other.load_checkpoint(path_), CheckError);
}

TEST_F(CheckpointTest, NetEmbedResumeRestoresRngStream) {
  const auto& ds = testing::tiny_dataset();
  NetEmbedConfig cfg;
  cfg.hidden = 8;
  cfg.mlp_hidden = 8;
  cfg.mlp_layers = 1;
  cfg.num_layers = 2;

  TrainOptions opt = quick_options(4);
  opt.checkpoint_path = path_;
  opt.checkpoint_every = 2;
  NetEmbedTrainer reference(cfg, opt);
  const double reference_loss = reference.fit(ds);

  // A second trainer resumed from the epoch-2 checkpoint must land on the
  // same final loss bit-for-bit (RNG stream state rides in the checkpoint).
  opt.checkpoint_path = path2_;
  NetEmbedTrainer half(cfg, opt);
  fault::arm_io_fault("rename", 2);  // kill the epoch-4 checkpoint publish
  EXPECT_THROW(half.fit(ds), CheckError);
  fault::clear_io_fault();

  NetEmbedTrainer resumed(cfg, opt);
  resumed.load_checkpoint(path2_);
  EXPECT_EQ(resumed.completed_epochs(), 2);
  const double resumed_loss = resumed.fit(ds);
  EXPECT_EQ(resumed_loss, reference_loss);
}

}  // namespace
}  // namespace tg::core
