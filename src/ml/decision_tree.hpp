#pragma once
/// \file decision_tree.hpp
/// CART regression tree — the building block of the random-forest baseline
/// of Barboza et al. (DAC'19) that the paper's Table 4 compares against.

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace tg::ml {

/// Row-major dense feature matrix view.
struct Matrix {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
};

struct TreeConfig {
  int max_depth = 14;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Features tried per split; 0 = all (forest sets sqrt/3-style values).
  int max_features = 0;
};

class DecisionTree {
 public:
  /// Fits on the row subset `sample_idx` of X/y.
  void fit(const Matrix& x, std::span<const float> y,
           std::span<const int> sample_idx, const TreeConfig& config, Rng& rng);

  [[nodiscard]] float predict(std::span<const float> features) const;
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int depth() const;

 private:
  struct Node {
    int feature = -1;  ///< -1 = leaf
    float threshold = 0.0f;
    float value = 0.0f;  ///< leaf prediction
    int left = -1;
    int right = -1;
  };
  int build(const Matrix& x, std::span<const float> y, std::vector<int>& idx,
            int begin, int end, int depth_left, const TreeConfig& config,
            Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace tg::ml
