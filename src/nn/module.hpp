#pragma once
/// \file module.hpp
/// Parameterized layers. All MLPs in the paper are "3 hidden layers, 64
/// neurons each" (§4); Mlp defaults follow that, with a width knob for the
/// single-core sandbox.

#include <string>
#include <vector>

#include "nn/ops.hpp"

namespace tg::nn {

/// Base for anything holding trainable tensors. Parameters are registered
/// with stable names so serialization is order-independent.
class Module {
 public:
  virtual ~Module() = default;

  [[nodiscard]] const std::vector<Tensor>& parameters() const { return params_; }
  [[nodiscard]] const std::vector<std::string>& parameter_names() const {
    return names_;
  }
  /// Total trainable scalar count.
  [[nodiscard]] std::int64_t num_parameters() const;

  void zero_grad();

 protected:
  /// Registers and returns a trainable tensor.
  Tensor register_parameter(const std::string& name, Tensor t);
  /// Adopts all parameters of a child module under `prefix/`.
  void register_module(const std::string& prefix, const Module& child);

 private:
  std::vector<Tensor> params_;
  std::vector<std::string> names_;
};

/// Fully connected layer: y = xW + b, W:[in,out].
class Linear : public Module {
 public:
  Linear() = default;
  Linear(std::int64_t in, std::int64_t out, Rng& rng,
         const std::string& name = "linear");

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  /// Fused relu(xW + b): bias add and activation in one tape node.
  [[nodiscard]] Tensor forward_relu(const Tensor& x) const;
  [[nodiscard]] std::int64_t in_features() const { return w_.rows(); }
  [[nodiscard]] std::int64_t out_features() const { return w_.cols(); }

 private:
  Tensor w_, b_;
};

/// Multi-layer perceptron with ReLU hidden activations and a linear output
/// layer. `hidden_layers` hidden layers of `hidden` units each.
class Mlp : public Module {
 public:
  Mlp() = default;
  Mlp(std::int64_t in, std::int64_t out, std::int64_t hidden = 64,
      int hidden_layers = 3, Rng* rng = nullptr,
      const std::string& name = "mlp");

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  /// relu(forward(x)) with the output activation fused into the final
  /// layer's bias add (hidden layers are always fused).
  [[nodiscard]] Tensor forward_relu(const Tensor& x) const;
  [[nodiscard]] std::int64_t in_features() const;
  [[nodiscard]] std::int64_t out_features() const;

 private:
  std::vector<Linear> layers_;
};

}  // namespace tg::nn
