/// Structured fuzz driver for the Liberty reader: mutate a valid two-cell
/// library 10,000 seeded ways and push every variant through parse →
/// validate. Cell-level recovery means a clean sink can still come with a
/// partial library; the library validator must handle whatever survives.

#include <gtest/gtest.h>

#include <sstream>

#include "liberty/liberty_io.hpp"
#include "liberty/validate.hpp"
#include "testing/fixtures.hpp"
#include "testing/fuzz.hpp"

namespace tg {
namespace {

TEST(FuzzLiberty, MutatedLibrariesNeverCrashParserOrValidator) {
  const Library lib = tg::testing::small_library();
  std::ostringstream os;
  write_liberty(lib, os);
  const std::string text = os.str();

  const int iters = tg::testing::fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Rng rng(0x11BULL * 1000003ULL + static_cast<std::uint64_t>(i));
    const std::string mutated = tg::testing::mutate_text(text, rng);
    std::istringstream in(mutated);
    DiagSink sink;
    const Library parsed = read_liberty(in, sink, "fuzz.lib");
    if (sink.ok()) {
      DiagSink vsink;
      validate_library(parsed, vsink, ValidateLevel::kFull);
    }
  }
}

}  // namespace
}  // namespace tg
