#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/check.hpp"

namespace tg {

namespace {

struct Grid {
  int num_rows = 0;
  int sites_per_row = 0;
  double x0 = 0.0, y0 = 0.0;

  [[nodiscard]] double row_y(int row, double row_h) const {
    return y0 + (row + 0.5) * row_h;
  }
  [[nodiscard]] double site_x(int site, double site_w, int span) const {
    return x0 + (site + 0.5 * span) * site_w;
  }
};

Grid make_grid(const Design& design, const LegalizerConfig& cfg) {
  const BBox& die = design.die();
  TG_CHECK_MSG(die.valid(), "legalizer needs a placed design with a die");
  Grid g;
  g.x0 = die.xmin;
  g.y0 = die.ymin;
  g.num_rows = std::max(1, static_cast<int>(die.height() / cfg.row_height_um));
  g.sites_per_row = std::max(1, static_cast<int>(die.width() / cfg.site_width_um));
  return g;
}

}  // namespace

LegalizeReport legalize_placement(Design& design,
                                  const LegalizerConfig& config) {
  const Grid grid = make_grid(design, config);
  const int span = config.sites_per_instance;
  const long long capacity =
      static_cast<long long>(grid.num_rows) * (grid.sites_per_row / span);
  TG_CHECK_MSG(capacity >= design.num_instances(),
               "die cannot fit " << design.num_instances()
                                 << " instances legally");

  // Process instances bottom-left to top-right for deterministic packing.
  std::vector<InstId> order(static_cast<std::size_t>(design.num_instances()));
  for (InstId i = 0; i < design.num_instances(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](InstId a, InstId b) {
    const Point& pa = design.instance(a).pos;
    const Point& pb = design.instance(b).pos;
    return pa.x != pb.x ? pa.x < pb.x : (pa.y != pb.y ? pa.y < pb.y : a < b);
  });

  // Occupied slots per row (slot = site index / span).
  const int slots_per_row = grid.sites_per_row / span;
  std::vector<std::set<int>> occupied(static_cast<std::size_t>(grid.num_rows));

  LegalizeReport report;
  report.num_rows = grid.num_rows;

  for (InstId id : order) {
    Instance& inst = design.instance(id);
    const int want_row = std::clamp(
        static_cast<int>((inst.pos.y - grid.y0) / config.row_height_um), 0,
        grid.num_rows - 1);
    const int want_slot = std::clamp(
        static_cast<int>((inst.pos.x - grid.x0) / (config.site_width_um * span)),
        0, slots_per_row - 1);

    // Spiral search over (row offset, slot offset) for the nearest free
    // slot.
    int best_row = -1, best_slot = -1;
    double best_cost = 1e30;
    for (int dr = 0; dr < grid.num_rows; ++dr) {
      for (int sign = -1; sign <= 1; sign += 2) {
        const int row = want_row + sign * dr;
        if (row < 0 || row >= grid.num_rows) continue;
        const double row_cost =
            std::abs(static_cast<double>(dr)) * config.row_height_um;
        if (row_cost >= best_cost) continue;
        // Nearest free slot in this row around want_slot.
        const auto& occ = occupied[static_cast<std::size_t>(row)];
        for (int ds = 0; ds < slots_per_row; ++ds) {
          bool found = false;
          for (int s2 = -1; s2 <= 1; s2 += 2) {
            const int slot = want_slot + s2 * ds;
            if (slot < 0 || slot >= slots_per_row) continue;
            if (occ.count(slot)) continue;
            const double cost = row_cost + ds * config.site_width_um * span;
            if (cost < best_cost) {
              best_cost = cost;
              best_row = row;
              best_slot = slot;
            }
            found = true;
            break;
          }
          if (found) break;
        }
        if (sign == 1 && dr == 0) break;  // row 0 visited once
      }
      if (best_row >= 0 &&
          std::abs(static_cast<double>(dr + 1)) * config.row_height_um >
              best_cost) {
        break;  // farther rows cannot improve
      }
    }
    TG_CHECK_MSG(best_row >= 0, "no free slot found (capacity bug)");
    occupied[static_cast<std::size_t>(best_row)].insert(best_slot);

    const Point target{grid.site_x(best_slot * span, config.site_width_um, span),
                       grid.row_y(best_row, config.row_height_um)};
    const double dx = target.x - inst.pos.x;
    const double dy = target.y - inst.pos.y;
    const double disp = std::abs(dx) + std::abs(dy);
    report.total_displacement_um += disp;
    report.max_displacement_um = std::max(report.max_displacement_um, disp);
    inst.pos = target;
    for (PinId p : inst.pins) {
      design.pin(p).pos.x += dx;
      design.pin(p).pos.y += dy;
    }
  }
  return report;
}

bool placement_is_legal(const Design& design, const LegalizerConfig& config) {
  const Grid grid = make_grid(design, config);
  const int span = config.sites_per_instance;
  const int slots_per_row = grid.sites_per_row / span;
  std::set<std::pair<int, int>> seen;
  for (const Instance& inst : design.instances()) {
    const int row =
        static_cast<int>(std::lround((inst.pos.y - grid.y0) / config.row_height_um - 0.5));
    const int slot = static_cast<int>(
        std::lround((inst.pos.x - grid.x0) / (config.site_width_um * span) - 0.5));
    if (row < 0 || row >= grid.num_rows || slot < 0 || slot >= slots_per_row) {
      return false;
    }
    // On-grid check: position must match the slot center exactly-ish.
    const double ex = grid.site_x(slot * span, config.site_width_um, span);
    const double ey = grid.row_y(row, config.row_height_um);
    if (std::abs(inst.pos.x - ex) > 1e-6 || std::abs(inst.pos.y - ey) > 1e-6) {
      return false;
    }
    if (!seen.emplace(row, slot).second) return false;  // overlap
  }
  return true;
}

}  // namespace tg
