file(REMOVE_RECURSE
  "CMakeFiles/data_test.dir/data/dataset_test.cpp.o"
  "CMakeFiles/data_test.dir/data/dataset_test.cpp.o.d"
  "CMakeFiles/data_test.dir/data/extract_test.cpp.o"
  "CMakeFiles/data_test.dir/data/extract_test.cpp.o.d"
  "CMakeFiles/data_test.dir/data/graph_io_test.cpp.o"
  "CMakeFiles/data_test.dir/data/graph_io_test.cpp.o.d"
  "data_test"
  "data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
