#include "sta/incremental.hpp"

#include <queue>

#include "util/check.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"

namespace tg {

namespace {
constexpr double kEps = 1e-12;

/// Min-heap entry ordered by topological level so updates run in
/// dependency order.
struct LevelEntry {
  int level;
  PinId pin;
  friend bool operator>(const LevelEntry& a, const LevelEntry& b) {
    return a.level > b.level;
  }
};
}  // namespace

IncrementalTimer::IncrementalTimer(const TimingGraph& graph,
                                   DesignRouting* routing,
                                   const StaOptions& options)
    : graph_(&graph), routing_(routing), options_(options) {
  TG_CHECK(routing != nullptr);
  run_full();
}

void IncrementalTimer::run_full() {
  result_ = run_sta(*graph_, *routing_, options_);
  dirty_nets_.clear();
  visited_ = graph_->num_nodes();
}

void IncrementalTimer::invalidate_net(NetId net) {
  TG_CHECK(net >= 0 && net < graph_->design().num_nets());
  TG_CHECK_MSG(!graph_->design().net(net).is_clock,
               "clock nets are ideal and carry no parasitics");
  dirty_nets_.insert(net);
}

bool IncrementalTimer::recompute_pin(PinId pin) {
  const double change = sta_detail::propagate_pin(*graph_, *routing_, options_,
                                                  result_, pin);
  return change > kEps;
}

int IncrementalTimer::update() {
  if (dirty_nets_.empty()) {
    visited_ = 0;
    return 0;
  }
  TG_TRACE_SCOPE("sta/incremental", obs::kSpanCoarse);
  TG_METRIC_COUNT("sta/incremental_updates", 1);

  std::priority_queue<LevelEntry, std::vector<LevelEntry>,
                      std::greater<LevelEntry>>
      queue;
  std::vector<char> queued(static_cast<std::size_t>(graph_->num_nodes()), 0);
  auto enqueue = [&](PinId p) {
    if (!queued[static_cast<std::size_t>(p)]) {
      queued[static_cast<std::size_t>(p)] = 1;
      queue.push(LevelEntry{graph_->level(p), p});
    }
  };

  // Seeds: a net's parasitics affect its sinks (wire delay/slew) AND its
  // driver (the load seen by the driving cell arcs).
  for (NetId net : dirty_nets_) {
    const Net& n = graph_->design().net(net);
    enqueue(n.driver);
    for (PinId s : n.sinks) enqueue(s);
  }
  dirty_nets_.clear();

  int changed_pins = 0;
  visited_ = 0;
  while (!queue.empty()) {
    const PinId p = queue.top().pin;
    queue.pop();
    ++visited_;
    const bool changed = recompute_pin(p);
    if (!changed) continue;
    ++changed_pins;
    for (int a : graph_->out_net_arcs(p)) {
      enqueue(graph_->net_arcs()[static_cast<std::size_t>(a)].to);
    }
    for (int a : graph_->out_cell_arcs(p)) {
      enqueue(graph_->cell_arcs()[static_cast<std::size_t>(a)].to);
    }
  }

  TG_METRIC_COUNT("sta/incremental_pins_visited", visited_);
  TG_METRIC_COUNT("sta/incremental_pins_changed", changed_pins);
  if (changed_pins > 0) {
    sta_detail::compute_required(*graph_, options_, result_);
  }
  return changed_pins;
}

}  // namespace tg
