file(REMOVE_RECURSE
  "CMakeFiles/train_timing_gnn.dir/train_timing_gnn.cpp.o"
  "CMakeFiles/train_timing_gnn.dir/train_timing_gnn.cpp.o.d"
  "train_timing_gnn"
  "train_timing_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_timing_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
