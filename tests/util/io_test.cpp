#include "util/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"
#include "util/fault.hpp"

namespace tg::io {
namespace {

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::clear_io_fault();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Writes a small mixed-type payload and commits it.
  void write_sample() {
    BinaryWriter out(path_);
    out.write_u32(0xC0FFEEu);
    out.write_u8(7);
    out.write_u64(1ULL << 40);
    out.write_f32(1.5f);
    out.write_f64(-2.25);
    out.write_string("hello");
    out.write_f32_span(std::vector<float>{1.0f, 2.0f, 3.0f});
    out.write_i32_vec({4, -5, 6});
    out.write_f64_vec({7.5, 8.5});
    out.commit();
  }

  /// Reads the sample payload back, asserting every field.
  static void read_sample(const std::string& path) {
    BinaryReader in(path);
    in.verify_crc();
    EXPECT_EQ(in.read_u32("a"), 0xC0FFEEu);
    EXPECT_EQ(in.read_u8("b"), 7);
    EXPECT_EQ(in.read_u64("c"), 1ULL << 40);
    EXPECT_EQ(in.read_f32("d"), 1.5f);
    EXPECT_EQ(in.read_f64("e"), -2.25);
    EXPECT_EQ(in.read_string("f"), "hello");
    const auto fs = in.read_f32_vec(3, "g");
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_EQ(fs[1], 2.0f);
    const auto is = in.read_i32_vec("h");
    ASSERT_EQ(is.size(), 3u);
    EXPECT_EQ(is[1], -5);
    const auto ds = in.read_f64_vec("i");
    ASSERT_EQ(ds.size(), 2u);
    EXPECT_EQ(ds[1], 8.5);
    in.expect_eof();
  }

  std::string path_ = ::testing::TempDir() + "/tg_io_test.bin";
};

TEST_F(IoTest, RoundTrip) {
  write_sample();
  read_sample(path_);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(IoTest, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 — the standard check value.
  const std::string s = "123456789";
  const std::uint32_t crc = crc32(std::span<const unsigned char>(
      reinterpret_cast<const unsigned char*>(s.data()), s.size()));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST_F(IoTest, TruncationAtEveryByteRaisesCheckError) {
  write_sample();
  const std::vector<unsigned char> full = slurp(path_);
  ASSERT_GT(full.size(), 4u);
  for (std::size_t n = 0; n < full.size(); ++n) {
    spit(path_, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(read_sample(path_), CheckError) << "truncated to " << n;
  }
}

TEST_F(IoTest, BitFlipAnywhereRaisesCheckError) {
  write_sample();
  const std::vector<unsigned char> full = slurp(path_);
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::vector<unsigned char> bad = full;
    bad[i] ^= 0x10;
    spit(path_, bad);
    EXPECT_THROW(read_sample(path_), CheckError) << "flip at byte " << i;
  }
}

TEST_F(IoTest, ErrorNamesFileAndOffset) {
  write_sample();
  std::vector<unsigned char> full = slurp(path_);
  full.resize(2);  // cut mid-magic
  spit(path_, full);
  try {
    BinaryReader in(path_);
    (void)in.read_u32("magic");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_), std::string::npos) << msg;
    EXPECT_NE(msg.find("magic"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
  }
}

TEST_F(IoTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  {
    BinaryWriter out(path_);
    out.write_u64(~0ULL);  // absurd count with almost no payload behind it
    out.write_u32(1);
    out.commit();
  }
  BinaryReader in(path_);
  in.verify_crc();
  EXPECT_THROW((void)in.read_i32_vec("huge vector"), CheckError);
}

TEST_F(IoTest, ExpectEofCatchesTrailingGarbage) {
  write_sample();
  BinaryReader in(path_);
  in.verify_crc();
  (void)in.read_u32("a");
  EXPECT_THROW(in.expect_eof(), CheckError);
}

TEST_F(IoTest, MissingFileRaisesCheckError) {
  EXPECT_THROW(BinaryReader("/nonexistent/dir/f.bin"), CheckError);
}

TEST_F(IoTest, FailedCommitLeavesPreviousFileIntact) {
  write_sample();
  const std::vector<unsigned char> before = slurp(path_);
  const auto attempt = [&] {
    BinaryWriter out(path_);
    out.write_u32(0xDEADu);
    out.commit();
  };
  for (const char* op : {"open_write", "write", "fsync", "rename"}) {
    fault::arm_io_fault(op, 1);
    EXPECT_THROW(attempt(), CheckError) << "op " << op;
    fault::clear_io_fault();
    EXPECT_EQ(slurp(path_), before) << "op " << op;
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp")) << "op " << op;
    read_sample(path_);  // still loadable
  }
}

TEST_F(IoTest, AbandonedWriterTouchesNothing) {
  write_sample();
  const std::vector<unsigned char> before = slurp(path_);
  {
    BinaryWriter out(path_);
    out.write_u32(0xDEADu);
    // destroyed without commit()
  }
  EXPECT_EQ(slurp(path_), before);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(IoTest, ReadFaultsInjectable) {
  write_sample();
  fault::arm_io_fault("open_read", 1);
  EXPECT_THROW(BinaryReader r1(path_), CheckError);
  fault::arm_io_fault("read", 1);
  EXPECT_THROW(BinaryReader r2(path_), CheckError);
  fault::clear_io_fault();
  read_sample(path_);
}

TEST_F(IoTest, NthWriteFails) {
  fault::arm_io_fault("write", 3);
  EXPECT_THROW(write_sample(), CheckError);
  EXPECT_GE(fault::matched_io_ops(), 3);
  fault::clear_io_fault();
  write_sample();
  read_sample(path_);
}

TEST_F(IoTest, EnvVariableArmsFault) {
  ASSERT_EQ(setenv("TG_FAULT_IO", "rename:1", 1), 0);
  fault::reparse_io_fault_env();
  EXPECT_THROW(write_sample(), CheckError);
  ASSERT_EQ(unsetenv("TG_FAULT_IO"), 0);
  fault::reparse_io_fault_env();
  write_sample();
  read_sample(path_);
}

TEST_F(IoTest, MalformedEnvValueDisarms) {
  ASSERT_EQ(setenv("TG_FAULT_IO", "not-a-fault-spec", 1), 0);
  fault::reparse_io_fault_env();
  write_sample();  // no throw
  read_sample(path_);
  ASSERT_EQ(unsetenv("TG_FAULT_IO"), 0);
  fault::reparse_io_fault_env();
}

}  // namespace
}  // namespace tg::io
