#pragma once
/// \file steiner.hpp
/// Rectilinear Steiner tree construction (Prim-style with segment
/// splitting). This is the pre-routing wire estimate: every edge of the
/// produced topology is a straight axis-aligned segment; L-shaped
/// connections insert explicit corner nodes, and connections landing in
/// the interior of an existing segment insert Steiner nodes.

#include <span>

#include "route/topology.hpp"

namespace tg {

struct SteinerSink {
  Point pos;
  PinId pin = kInvalidId;
};

/// Builds a Steiner topology rooted at the driver. Deterministic.
[[nodiscard]] RouteTopology build_steiner(Point driver_pos, PinId driver_pin,
                                          std::span<const SteinerSink> sinks);

/// Convenience: Steiner topology of a placed net.
[[nodiscard]] RouteTopology build_net_steiner(const Design& design,
                                              NetId net_id);

}  // namespace tg
