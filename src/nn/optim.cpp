#include "nn/optim.hpp"

#include <cmath>

#include "nn/kernels.hpp"
#include "util/check.hpp"
#include "util/io.hpp"

namespace tg::nn {

void Optimizer::zero_grad() {
  for (Tensor& t : params_) t.zero_grad();
}

Adam::Adam(std::vector<Tensor> params, Config config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& t : params_) {
    m_.emplace_back(static_cast<std::size_t>(t.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(t.numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  // Optional global gradient clipping.
  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (Tensor& t : params_) {
      for (float g : t.grad()) norm_sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip) {
      clip_scale = static_cast<float>(config_.grad_clip / norm);
    }
  }

  // One fused SIMD pass per parameter: clip/decay, moment updates, bias
  // correction, and the write-back all stay in registers (kernels.hpp).
  const kern::AdamConsts consts{config_.lr,          config_.beta1,
                                config_.beta2,       config_.eps,
                                config_.weight_decay, clip_scale,
                                bc1,                 bc2};
  for (std::size_t p = 0; p < params_.size(); ++p) {
    auto data = params_[p].data();
    auto grad = params_[p].grad();
    kern::adam_step(data.data(), grad.data(), m_[p].data(), v_[p].data(),
                    data.size(), consts);
  }
}

void Adam::set_state(State state) {
  TG_CHECK_MSG(state.m.size() == m_.size() && state.v.size() == v_.size(),
               "Adam state holds " << state.m.size()
                                   << " moment vectors, optimizer has "
                                   << m_.size());
  for (std::size_t p = 0; p < m_.size(); ++p) {
    TG_CHECK_MSG(state.m[p].size() == m_[p].size() &&
                     state.v[p].size() == v_[p].size(),
                 "Adam state size mismatch for parameter " << p);
  }
  t_ = state.t;
  m_ = std::move(state.m);
  v_ = std::move(state.v);
}

void Adam::save_state(io::BinaryWriter& out) const {
  out.write_u64(static_cast<std::uint64_t>(t_));
  out.write_u32(static_cast<std::uint32_t>(m_.size()));
  for (std::size_t p = 0; p < m_.size(); ++p) {
    out.write_u64(m_[p].size());
    out.write_f32_span(m_[p]);
    out.write_f32_span(v_[p]);
  }
}

void Adam::load_state(io::BinaryReader& in) {
  State state;
  state.t = static_cast<long long>(in.read_u64("Adam step count"));
  const std::uint32_t count = in.read_u32("Adam moment-vector count");
  state.m.reserve(count);
  state.v.reserve(count);
  for (std::uint32_t p = 0; p < count; ++p) {
    const std::uint64_t n = in.read_u64("Adam moment length");
    state.m.push_back(in.read_f32_vec(n, "Adam first moment"));
    state.v.push_back(in.read_f32_vec(n, "Adam second moment"));
  }
  set_state(std::move(state));
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  for (const Tensor& t : params_) {
    velocity_.emplace_back(static_cast<std::size_t>(t.numel()), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t p = 0; p < params_.size(); ++p) {
    auto data = params_[p].data();
    auto grad = params_[p].grad();
    auto& vel = velocity_[p];
    for (std::size_t i = 0; i < data.size(); ++i) {
      vel[i] = momentum_ * vel[i] + grad[i];
      data[i] -= lr_ * vel[i];
    }
  }
}

}  // namespace tg::nn
