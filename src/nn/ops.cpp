#include "nn/ops.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/obs/trace.hpp"
#include "util/parallel.hpp"

namespace tg::nn {

namespace {

/// Grain sizes for the parallel kernels. Chunks always own disjoint output
/// rows/columns/elements and keep the serial per-element accumulation
/// order, so thread count never changes results; the grains only keep
/// small tensors on the serial fallback (`parallel_for` runs inline when
/// the range is within one grain).
constexpr std::int64_t kPointwiseGrain = 1 << 15;  ///< elements per chunk
constexpr std::int64_t kRowFlops = 1 << 14;  ///< target flops per row chunk

/// Rows per chunk so one chunk carries ~kRowFlops work.
constexpr std::int64_t row_grain(std::int64_t flops_per_row) {
  return flops_per_row <= 0 ? kRowFlops
                            : (kRowFlops + flops_per_row - 1) / flops_per_row;
}

TensorImplPtr make_result(std::int64_t rows, std::int64_t cols,
                          std::initializer_list<const Tensor*> inputs) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(static_cast<std::size_t>(rows * cols), 0.0f);
  for (const Tensor* t : inputs) {
    if (t->requires_grad()) impl->requires_grad = true;
  }
  if (impl->requires_grad) {
    for (const Tensor* t : inputs) impl->parents.push_back(t->ptr());
  }
  return impl;
}

/// Adds src into dst (same length), allocating dst's grad buffer first.
void accumulate(TensorImpl& parent, std::span<const float> grad_piece,
                std::size_t offset = 0) {
  parent.ensure_grad();
  for (std::size_t i = 0; i < grad_piece.size(); ++i) {
    parent.grad[offset + i] += grad_piece[i];
  }
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  const bool broadcast = (b.rows() == 1 && a.cols() == b.cols() && a.rows() != 1);
  TG_CHECK_MSG(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()),
               "add: shape mismatch " << a.rows() << "x" << a.cols() << " vs "
                                      << b.rows() << "x" << b.cols());
  auto impl = make_result(a.rows(), a.cols(), {&a, &b});
  const auto& av = a.data();
  const auto& bv = b.data();
  const std::size_t cols = static_cast<std::size_t>(a.cols());
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 for (auto i = static_cast<std::size_t>(lo);
                      i < static_cast<std::size_t>(hi); ++i) {
                   impl->data[i] = av[i] + (broadcast ? bv[i % cols] : bv[i]);
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->backward_fn = [pa, pb, broadcast, cols](TensorImpl& self) {
      if (pa->requires_grad) {
        pa->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       for (auto i = static_cast<std::size_t>(lo);
                            i < static_cast<std::size_t>(hi); ++i) {
                         pa->grad[i] += self.grad[i];
                       }
                     });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        if (broadcast) {
          // Column-sliced so concurrent chunks own disjoint grad slots and
          // each slot keeps the serial (row-ascending) accumulation order.
          const std::int64_t rows =
              static_cast<std::int64_t>(self.grad.size() / cols);
          parallel_for(0, static_cast<std::int64_t>(cols),
                       row_grain(2 * rows),
                       [&](std::int64_t cb, std::int64_t ce) {
                         for (std::int64_t r = 0; r < rows; ++r) {
                           const float* g = self.grad.data() +
                                            r * static_cast<std::int64_t>(cols);
                           for (std::int64_t c = cb; c < ce; ++c) {
                             pb->grad[static_cast<std::size_t>(c)] +=
                                 g[c];
                           }
                         }
                       });
        } else {
          parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                       kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                         for (auto i = static_cast<std::size_t>(lo);
                              i < static_cast<std::size_t>(hi); ++i) {
                           pb->grad[i] += self.grad[i];
                         }
                       });
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor sub(const Tensor& a, const Tensor& b) { return add(a, scale(b, -1.0f)); }

Tensor mul(const Tensor& a, const Tensor& b) {
  TG_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto impl = make_result(a.rows(), a.cols(), {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 for (auto i = static_cast<std::size_t>(lo);
                      i < static_cast<std::size_t>(hi); ++i) {
                   impl->data[i] = ad[i] * bd[i];
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->backward_fn = [pa, pb](TensorImpl& self) {
      if (pa->requires_grad) {
        pa->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       for (auto i = static_cast<std::size_t>(lo);
                            i < static_cast<std::size_t>(hi); ++i) {
                         pa->grad[i] += self.grad[i] * pb->data[i];
                       }
                     });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       for (auto i = static_cast<std::size_t>(lo);
                            i < static_cast<std::size_t>(hi); ++i) {
                         pb->grad[i] += self.grad[i] * pa->data[i];
                       }
                     });
      }
    };
  }
  return Tensor(impl);
}

Tensor scale(const Tensor& a, float s) {
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const float* ad = a.data().data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 for (auto i = static_cast<std::size_t>(lo);
                      i < static_cast<std::size_t>(hi); ++i) {
                   impl->data[i] = ad[i] * s;
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->backward_fn = [pa, s](TensorImpl& self) {
      pa->ensure_grad();
      parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                   kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                     for (auto i = static_cast<std::size_t>(lo);
                          i < static_cast<std::size_t>(hi); ++i) {
                       pa->grad[i] += self.grad[i] * s;
                     }
                   });
    };
  }
  return Tensor(impl);
}

namespace {

template <typename Fwd, typename Bwd>
Tensor pointwise(const Tensor& a, Fwd fwd, Bwd dydx_from_xy) {
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const float* ad = a.data().data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 for (auto i = static_cast<std::size_t>(lo);
                      i < static_cast<std::size_t>(hi); ++i) {
                   impl->data[i] = fwd(ad[i]);
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->backward_fn = [pa, dydx_from_xy](TensorImpl& self) {
      pa->ensure_grad();
      parallel_for(
          0, static_cast<std::int64_t>(self.grad.size()), kPointwiseGrain,
          [&](std::int64_t lo, std::int64_t hi) {
            for (auto i = static_cast<std::size_t>(lo);
                 i < static_cast<std::size_t>(hi); ++i) {
              pa->grad[i] +=
                  self.grad[i] * dydx_from_xy(pa->data[i], self.data[i]);
            }
          });
    };
  }
  return Tensor(impl);
}

}  // namespace

Tensor relu(const Tensor& a) {
  return pointwise(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float slope) {
  return pointwise(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Tensor sigmoid(const Tensor& a) {
  return pointwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return pointwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor softplus(const Tensor& a) {
  return pointwise(
      a,
      [](float x) {
        return x > 20.0f ? x : std::log1p(std::exp(std::min(x, 20.0f)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TG_TRACE_SCOPE("nn/matmul", obs::kSpanDetail);
  TG_CHECK_MSG(a.cols() == b.rows(), "matmul: " << a.rows() << "x" << a.cols()
                                                << " times " << b.rows() << "x"
                                                << b.cols());
  const std::int64_t n = a.rows(), k = a.cols(), m = b.cols();
  auto impl = make_result(n, m, {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* out = impl->data.data();
  // ikj loop order: streaming writes over the output row. Row blocks run
  // in parallel; each output row is produced by exactly one chunk in the
  // serial kk/j order, so results match the serial run bit for bit.
  parallel_for(0, n, row_grain(2 * k * m), [&](std::int64_t ib,
                                               std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) {
      float* orow = out + i * m;
      const float* arow = ad + i * k;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = bd + kk * m;
        for (std::int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
      }
    }
  });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->backward_fn = [pa, pb, n, k, m](TensorImpl& self) {
      const float* g = self.grad.data();
      if (pa->requires_grad) {
        pa->ensure_grad();
        // dA = dY · Bᵀ — row blocks of dA are independent.
        parallel_for(0, n, row_grain(2 * k * m), [&](std::int64_t ib,
                                                     std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) {
            const float* grow = g + i * m;
            float* darow = pa->grad.data() + i * k;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              const float* brow = pb->data.data() + kk * m;
              float acc = 0.0f;
              for (std::int64_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
              darow[kk] += acc;
            }
          }
        });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        // dB = Aᵀ · dY — column blocks of dB are independent, and every
        // dB element still accumulates its n contributions in ascending-i
        // (serial) order inside its one owning chunk.
        parallel_for(0, m, row_grain(2 * n * k), [&](std::int64_t jb,
                                                     std::int64_t je) {
          for (std::int64_t i = 0; i < n; ++i) {
            const float* arow = pa->data.data() + i * k;
            const float* grow = g + i * m;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              const float av = arow[kk];
              if (av == 0.0f) continue;
              float* dbrow = pb->grad.data() + kk * m;
              for (std::int64_t j = jb; j < je; ++j) {
                dbrow[j] += av * grow[j];
              }
            }
          }
        });
      }
    };
  }
  return Tensor(impl);
}

Tensor concat_cols(std::span<const Tensor> parts) {
  TG_CHECK(!parts.empty());
  const std::int64_t rows = parts[0].rows();
  std::int64_t cols = 0;
  for (const Tensor& t : parts) {
    TG_CHECK_MSG(t.rows() == rows, "concat_cols: row mismatch");
    cols += t.cols();
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(static_cast<std::size_t>(rows * cols), 0.0f);
  for (const Tensor& t : parts) {
    if (t.requires_grad()) impl->requires_grad = true;
  }
  std::vector<TensorImplPtr> srcs;
  for (const Tensor& t : parts) srcs.push_back(t.ptr());
  if (impl->requires_grad) impl->parents = srcs;

  std::int64_t off = 0;
  for (const Tensor& t : parts) {
    const std::int64_t tc = t.cols();
    for (std::int64_t r = 0; r < rows; ++r) {
      std::copy_n(t.data().data() + r * tc, tc,
                  impl->data.data() + r * cols + off);
    }
    off += tc;
  }
  if (impl->requires_grad) {
    impl->backward_fn = [srcs, rows, cols](TensorImpl& self) {
      std::int64_t o = 0;
      for (const auto& s : srcs) {
        const std::int64_t tc = s->cols;
        if (s->requires_grad) {
          s->ensure_grad();
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* g = self.grad.data() + r * cols + o;
            float* dst = s->grad.data() + r * tc;
            for (std::int64_t c = 0; c < tc; ++c) dst[c] += g[c];
          }
        }
        o += tc;
      }
    };
  }
  return Tensor(impl);
}

Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end) {
  TG_CHECK(0 <= begin && begin < end && end <= a.cols());
  const std::int64_t rows = a.rows(), cols = end - begin, ac = a.cols();
  auto impl = make_result(rows, cols, {&a});
  for (std::int64_t r = 0; r < rows; ++r) {
    std::copy_n(a.data().data() + r * ac + begin, cols,
                impl->data.data() + r * cols);
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->backward_fn = [pa, rows, cols, ac, begin](TensorImpl& self) {
      pa->ensure_grad();
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* g = self.grad.data() + r * cols;
        float* dst = pa->grad.data() + r * ac + begin;
        for (std::int64_t c = 0; c < cols; ++c) dst[c] += g[c];
      }
    };
  }
  return Tensor(impl);
}

Tensor concat_rows(std::span<const Tensor> parts) {
  TG_CHECK(!parts.empty());
  const std::int64_t cols = parts[0].cols();
  std::int64_t rows = 0;
  for (const Tensor& t : parts) {
    TG_CHECK_MSG(t.cols() == cols, "concat_rows: column mismatch");
    rows += t.rows();
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.resize(static_cast<std::size_t>(rows * cols));
  for (const Tensor& t : parts) {
    if (t.requires_grad()) impl->requires_grad = true;
  }
  std::vector<TensorImplPtr> srcs;
  for (const Tensor& t : parts) srcs.push_back(t.ptr());
  if (impl->requires_grad) impl->parents = srcs;

  std::size_t off = 0;
  for (const Tensor& t : parts) {
    std::copy_n(t.data().data(), t.numel(), impl->data.data() + off);
    off += static_cast<std::size_t>(t.numel());
  }
  if (impl->requires_grad) {
    impl->backward_fn = [srcs](TensorImpl& self) {
      std::size_t o = 0;
      for (const auto& s : srcs) {
        if (s->requires_grad) {
          accumulate(*s, std::span<const float>(
                             self.grad.data() + o,
                             static_cast<std::size_t>(s->numel())));
        }
        o += static_cast<std::size_t>(s->numel());
      }
    };
  }
  return Tensor(impl);
}

Tensor gather_rows(const Tensor& a, std::vector<int> idx) {
  const std::int64_t cols = a.cols();
  auto impl = make_result(static_cast<std::int64_t>(idx.size()), cols, {&a});
  const int* ix = idx.data();
  const float* ad = a.data().data();
  parallel_for(
      0, static_cast<std::int64_t>(idx.size()), row_grain(cols),
      [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          TG_DCHECK(ix[i] >= 0 && ix[i] < a.rows());
          std::copy_n(ad + static_cast<std::int64_t>(ix[i]) * cols, cols,
                      impl->data.data() + i * cols);
        }
      });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto shared_idx = std::make_shared<std::vector<int>>(std::move(idx));
    impl->backward_fn = [pa, shared_idx, cols](TensorImpl& self) {
      pa->ensure_grad();
      // Scatter: duplicate indices collide on rows, so slice by output
      // column instead — each grad slot has one owner chunk and keeps the
      // ascending-i accumulation order of the serial loop.
      const auto n = static_cast<std::int64_t>(shared_idx->size());
      parallel_for(0, cols, row_grain(2 * n), [&](std::int64_t cb,
                                                  std::int64_t ce) {
        for (std::int64_t i = 0; i < n; ++i) {
          const float* g = self.grad.data() + i * cols;
          float* dst =
              pa->grad.data() +
              static_cast<std::int64_t>(
                  (*shared_idx)[static_cast<std::size_t>(i)]) *
                  cols;
          for (std::int64_t c = cb; c < ce; ++c) dst[c] += g[c];
        }
      });
    };
  }
  return Tensor(impl);
}

Tensor multi_gather(std::span<const Tensor> sources, std::vector<int> src_tensor,
                    std::vector<int> src_row) {
  TG_CHECK(!sources.empty());
  TG_CHECK(src_tensor.size() == src_row.size());
  const std::int64_t cols = sources[0].cols();
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = static_cast<std::int64_t>(src_tensor.size());
  impl->cols = cols;
  impl->data.resize(static_cast<std::size_t>(impl->rows * cols));
  std::vector<TensorImplPtr> srcs;
  for (const Tensor& t : sources) {
    TG_CHECK(t.cols() == cols);
    if (t.requires_grad()) impl->requires_grad = true;
    srcs.push_back(t.ptr());
  }
  if (impl->requires_grad) impl->parents = srcs;

  for (std::size_t i = 0; i < src_tensor.size(); ++i) {
    const auto& s = srcs[static_cast<std::size_t>(src_tensor[i])];
    TG_DCHECK(src_row[i] >= 0 && src_row[i] < s->rows);
    std::copy_n(s->data.data() + static_cast<std::int64_t>(src_row[i]) * cols,
                cols, impl->data.data() + static_cast<std::int64_t>(i) * cols);
  }
  if (impl->requires_grad) {
    auto st = std::make_shared<std::vector<int>>(std::move(src_tensor));
    auto sr = std::make_shared<std::vector<int>>(std::move(src_row));
    impl->backward_fn = [srcs, st, sr, cols](TensorImpl& self) {
      for (std::size_t i = 0; i < st->size(); ++i) {
        const auto& s = srcs[static_cast<std::size_t>((*st)[i])];
        if (!s->requires_grad) continue;
        s->ensure_grad();
        const float* g = self.grad.data() + static_cast<std::int64_t>(i) * cols;
        float* dst = s->grad.data() + static_cast<std::int64_t>((*sr)[i]) * cols;
        for (std::int64_t c = 0; c < cols; ++c) dst[c] += g[c];
      }
    };
  }
  return Tensor(impl);
}

Tensor segment_sum(const Tensor& a, std::vector<int> seg,
                   std::int64_t num_segments) {
  TG_TRACE_SCOPE("nn/segment_sum", obs::kSpanDetail);
  TG_CHECK(static_cast<std::int64_t>(seg.size()) == a.rows());
  const std::int64_t cols = a.cols();
  auto impl = make_result(num_segments, cols, {&a});
  const auto n = static_cast<std::int64_t>(seg.size());
  const int* sg = seg.data();
  const float* ad = a.data().data();
  // Scatter by segment: rows collide, columns never do — slice columns.
  parallel_for(0, cols, row_grain(2 * n), [&](std::int64_t cb,
                                              std::int64_t ce) {
    for (std::int64_t i = 0; i < n; ++i) {
      TG_DCHECK(sg[i] >= 0 && sg[i] < num_segments);
      const float* src = ad + i * cols;
      float* dst = impl->data.data() + static_cast<std::int64_t>(sg[i]) * cols;
      for (std::int64_t c = cb; c < ce; ++c) dst[c] += src[c];
    }
  });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto s = std::make_shared<std::vector<int>>(std::move(seg));
    impl->backward_fn = [pa, s, cols](TensorImpl& self) {
      pa->ensure_grad();
      // Gather: each input row is written by exactly one chunk.
      parallel_for(
          0, static_cast<std::int64_t>(s->size()), row_grain(cols),
          [&](std::int64_t ib, std::int64_t ie) {
            for (std::int64_t i = ib; i < ie; ++i) {
              const float* g =
                  self.grad.data() +
                  static_cast<std::int64_t>((*s)[static_cast<std::size_t>(i)]) *
                      cols;
              float* dst = pa->grad.data() + i * cols;
              for (std::int64_t c = 0; c < cols; ++c) dst[c] += g[c];
            }
          });
    };
  }
  return Tensor(impl);
}

Tensor segment_max(const Tensor& a, std::vector<int> seg,
                   std::int64_t num_segments) {
  TG_CHECK(static_cast<std::int64_t>(seg.size()) == a.rows());
  const std::int64_t cols = a.cols();
  auto impl = make_result(num_segments, cols, {&a});
  // argmax[s*cols + c] = input row that won; -1 = empty (output stays 0).
  auto argmax = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(num_segments * cols), -1);
  {
    const auto n = static_cast<std::int64_t>(seg.size());
    const int* sg = seg.data();
    const float* ad = a.data().data();
    // Column-sliced like segment_sum: every (segment, column) max/argmax
    // slot is owned by one chunk and scanned in ascending-i order.
    parallel_for(0, cols, row_grain(2 * n), [&](std::int64_t cb,
                                                std::int64_t ce) {
      for (std::int64_t i = 0; i < n; ++i) {
        TG_DCHECK(sg[i] >= 0 && sg[i] < num_segments);
        const float* src = ad + i * cols;
        const std::int64_t base = static_cast<std::int64_t>(sg[i]) * cols;
        for (std::int64_t c = cb; c < ce; ++c) {
          int& am = (*argmax)[static_cast<std::size_t>(base + c)];
          if (am < 0 || src[c] > impl->data[static_cast<std::size_t>(base + c)]) {
            impl->data[static_cast<std::size_t>(base + c)] = src[c];
            am = static_cast<int>(i);
          }
        }
      }
    });
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->backward_fn = [pa, argmax, cols](TensorImpl& self) {
      pa->ensure_grad();
      for (std::size_t j = 0; j < self.grad.size(); ++j) {
        const int row = (*argmax)[j];
        if (row < 0) continue;
        pa->grad[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                 j % static_cast<std::size_t>(cols)] += self.grad[j];
      }
    };
  }
  return Tensor(impl);
}

Tensor spmm(std::vector<int> src, std::vector<int> dst, std::vector<float> w,
            const Tensor& x, std::int64_t out_rows) {
  TG_TRACE_SCOPE("nn/spmm", obs::kSpanDetail);
  TG_CHECK(src.size() == dst.size() && src.size() == w.size());
  const std::int64_t cols = x.cols();
  auto impl = make_result(out_rows, cols, {&x});
  {
    const auto ne = static_cast<std::int64_t>(src.size());
    const int* sp = src.data();
    const int* dp = dst.data();
    const float* wp = w.data();
    const float* xd = x.data().data();
    // Edge scatter: both endpoints repeat across edges, so slice columns.
    parallel_for(0, cols, row_grain(2 * ne), [&](std::int64_t cb,
                                                 std::int64_t ce) {
      for (std::int64_t k = 0; k < ne; ++k) {
        TG_DCHECK(sp[k] >= 0 && sp[k] < x.rows());
        TG_DCHECK(dp[k] >= 0 && dp[k] < out_rows);
        const float* xs = xd + static_cast<std::int64_t>(sp[k]) * cols;
        float* od = impl->data.data() + static_cast<std::int64_t>(dp[k]) * cols;
        const float wk = wp[k];
        for (std::int64_t c = cb; c < ce; ++c) od[c] += wk * xs[c];
      }
    });
  }
  if (impl->requires_grad) {
    auto px = x.ptr();
    auto ps = std::make_shared<std::vector<int>>(std::move(src));
    auto pd = std::make_shared<std::vector<int>>(std::move(dst));
    auto pw = std::make_shared<std::vector<float>>(std::move(w));
    impl->backward_fn = [px, ps, pd, pw, cols](TensorImpl& self) {
      px->ensure_grad();
      const auto ne = static_cast<std::int64_t>(ps->size());
      parallel_for(0, cols, row_grain(2 * ne), [&](std::int64_t cb,
                                                   std::int64_t ce) {
        for (std::int64_t k = 0; k < ne; ++k) {
          const auto ku = static_cast<std::size_t>(k);
          const float* g =
              self.grad.data() + static_cast<std::int64_t>((*pd)[ku]) * cols;
          float* dx =
              px->grad.data() + static_cast<std::int64_t>((*ps)[ku]) * cols;
          const float wk = (*pw)[ku];
          for (std::int64_t c = cb; c < ce; ++c) dx[c] += wk * g[c];
        }
      });
    };
  }
  return Tensor(impl);
}

Tensor sum_all(const Tensor& a) {
  auto impl = make_result(1, 1, {&a});
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  impl->data[0] = acc;
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->backward_fn = [pa](TensorImpl& self) {
      pa->ensure_grad();
      for (float& g : pa->grad) g += self.grad[0];
    };
  }
  return Tensor(impl);
}

Tensor mean_all(const Tensor& a) {
  TG_CHECK(a.numel() > 0);
  return scale(sum_all(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  TG_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  const Tensor diff = sub(pred, target);
  return mean_all(mul(diff, diff));
}

Tensor mse_loss_rows(const Tensor& pred, std::vector<int> rows,
                     const Tensor& target) {
  TG_CHECK(static_cast<std::int64_t>(rows.size()) == target.rows());
  if (rows.empty()) return Tensor::zeros(1, 1);
  return mse_loss(gather_rows(pred, std::move(rows)), target);
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  const std::int64_t rows = x.rows(), cols = x.cols();
  TG_CHECK(gamma.rows() == 1 && gamma.cols() == cols);
  TG_CHECK(beta.rows() == 1 && beta.cols() == cols);
  auto impl = make_result(rows, cols, {&x, &gamma, &beta});

  // Cache per-row statistics and the normalized values for backward.
  auto xhat = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(rows * cols));
  auto inv_std = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data().data() + r * cols;
    float mean = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) mean += xr[c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float istd = 1.0f / std::sqrt(var + eps);
    (*inv_std)[static_cast<std::size_t>(r)] = istd;
    float* out = impl->data.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float h = (xr[c] - mean) * istd;
      (*xhat)[static_cast<std::size_t>(r * cols + c)] = h;
      out[c] = h * gamma.data()[static_cast<std::size_t>(c)] +
               beta.data()[static_cast<std::size_t>(c)];
    }
  }
  if (impl->requires_grad) {
    auto px = x.ptr();
    auto pg = gamma.ptr();
    auto pb = beta.ptr();
    impl->backward_fn = [px, pg, pb, xhat, inv_std, rows,
                         cols](TensorImpl& self) {
      if (pg->requires_grad) pg->ensure_grad();
      if (pb->requires_grad) pb->ensure_grad();
      if (px->requires_grad) px->ensure_grad();
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* g = self.grad.data() + r * cols;
        const float* h = xhat->data() + r * cols;
        // dgamma, dbeta.
        if (pg->requires_grad) {
          for (std::int64_t c = 0; c < cols; ++c) {
            pg->grad[static_cast<std::size_t>(c)] += g[c] * h[c];
          }
        }
        if (pb->requires_grad) {
          for (std::int64_t c = 0; c < cols; ++c) {
            pb->grad[static_cast<std::size_t>(c)] += g[c];
          }
        }
        if (px->requires_grad) {
          // dx = (istd/D) · (D·gy − Σgy − h·Σ(gy·h)), gy = g·gamma.
          float sum_gy = 0.0f, sum_gyh = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) {
            const float gy = g[c] * pg->data[static_cast<std::size_t>(c)];
            sum_gy += gy;
            sum_gyh += gy * h[c];
          }
          const float istd = (*inv_std)[static_cast<std::size_t>(r)];
          float* dx = px->grad.data() + r * cols;
          const float inv_d = 1.0f / static_cast<float>(cols);
          for (std::int64_t c = 0; c < cols; ++c) {
            const float gy = g[c] * pg->data[static_cast<std::size_t>(c)];
            dx[c] += istd * (gy - inv_d * sum_gy - h[c] * inv_d * sum_gyh);
          }
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor softmax_groups(const Tensor& a, std::int64_t group) {
  TG_CHECK(group >= 1 && a.cols() % group == 0);
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const std::int64_t cols = a.cols();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t g0 = 0; g0 < cols; g0 += group) {
      const float* in = a.data().data() + r * cols + g0;
      float* out = impl->data.data() + r * cols + g0;
      float mx = in[0];
      for (std::int64_t i = 1; i < group; ++i) mx = std::max(mx, in[i]);
      float denom = 0.0f;
      for (std::int64_t i = 0; i < group; ++i) {
        out[i] = std::exp(in[i] - mx);
        denom += out[i];
      }
      for (std::int64_t i = 0; i < group; ++i) out[i] /= denom;
    }
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->backward_fn = [pa, group](TensorImpl& self) {
      pa->ensure_grad();
      const std::int64_t cols = self.cols;
      for (std::int64_t r = 0; r < self.rows; ++r) {
        for (std::int64_t g0 = 0; g0 < cols; g0 += group) {
          const float* y = self.data.data() + r * cols + g0;
          const float* gy = self.grad.data() + r * cols + g0;
          float dot = 0.0f;
          for (std::int64_t i = 0; i < group; ++i) dot += y[i] * gy[i];
          float* gx = pa->grad.data() + r * cols + g0;
          for (std::int64_t i = 0; i < group; ++i) {
            gx[i] += y[i] * (gy[i] - dot);
          }
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor lut_kron_dot(const Tensor& a, const Tensor& b, const Tensor& lut,
                    std::int64_t lut_dim) {
  TG_TRACE_SCOPE("nn/lut_kron_dot", obs::kSpanDetail);
  const std::int64_t rows = a.rows();
  TG_CHECK(b.rows() == rows && lut.rows() == rows);
  TG_CHECK(a.cols() == b.cols() && a.cols() % lut_dim == 0);
  const std::int64_t groups = a.cols() / lut_dim;
  TG_CHECK(lut.cols() == groups * lut_dim * lut_dim);

  auto impl = make_result(rows, groups, {&a, &b, &lut});
  const std::int64_t d = lut_dim;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t g = 0; g < groups; ++g) {
      const float* av = a.data().data() + r * a.cols() + g * d;
      const float* bv = b.data().data() + r * b.cols() + g * d;
      const float* lv = lut.data().data() + r * lut.cols() + g * d * d;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < d; ++i) {
        const float ai = av[i];
        if (ai == 0.0f) continue;
        const float* lrow = lv + i * d;
        float inner = 0.0f;
        for (std::int64_t j = 0; j < d; ++j) inner += bv[j] * lrow[j];
        acc += ai * inner;
      }
      impl->data[static_cast<std::size_t>(r * groups + g)] = acc;
    }
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    auto pl = lut.ptr();
    impl->backward_fn = [pa, pb, pl, d, groups](TensorImpl& self) {
      const std::int64_t rows2 = self.rows;
      const std::int64_t acols = pa->cols;
      const std::int64_t lcols = pl->cols;
      if (pa->requires_grad) pa->ensure_grad();
      if (pb->requires_grad) pb->ensure_grad();
      if (pl->requires_grad) pl->ensure_grad();
      for (std::int64_t r = 0; r < rows2; ++r) {
        for (std::int64_t g = 0; g < groups; ++g) {
          const float go = self.grad[static_cast<std::size_t>(r * groups + g)];
          if (go == 0.0f) continue;
          const float* av = pa->data.data() + r * acols + g * d;
          const float* bv = pb->data.data() + r * acols + g * d;
          const float* lv = pl->data.data() + r * lcols + g * d * d;
          for (std::int64_t i = 0; i < d; ++i) {
            const float* lrow = lv + i * d;
            if (pa->requires_grad) {
              float inner = 0.0f;
              for (std::int64_t j = 0; j < d; ++j) inner += bv[j] * lrow[j];
              pa->grad[static_cast<std::size_t>(r * acols + g * d + i)] +=
                  go * inner;
            }
            if (pb->requires_grad) {
              const float ai = av[i];
              for (std::int64_t j = 0; j < d; ++j) {
                pb->grad[static_cast<std::size_t>(r * acols + g * d + j)] +=
                    go * ai * lrow[j];
              }
            }
            if (pl->requires_grad) {
              const float ai = av[i];
              for (std::int64_t j = 0; j < d; ++j) {
                pl->grad[static_cast<std::size_t>(r * lcols + g * d * d + i * d +
                                                  j)] += go * ai * bv[j];
              }
            }
          }
        }
      }
    };
  }
  return Tensor(impl);
}

}  // namespace tg::nn
