#include "data/extract.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "liberty/library_builder.hpp"

namespace tg::data {
namespace {

/// One shared extraction for the whole file (expensive to build).
class ExtractTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(build_library());
    DatasetOptions options;
    options.scale = 1.0 / 32;
    graph_ = new DatasetGraph(
        build_design_graph(suite_entry("usb", options.scale), *lib_, options));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete lib_;
    graph_ = nullptr;
    lib_ = nullptr;
  }

  static Library* lib_;
  static DatasetGraph* graph_;
};

Library* ExtractTest::lib_ = nullptr;
DatasetGraph* ExtractTest::graph_ = nullptr;

TEST_F(ExtractTest, ShapesMatchPaperTables) {
  const DatasetGraph& g = *graph_;
  EXPECT_EQ(g.node_feat.rows(), g.num_nodes);
  EXPECT_EQ(g.node_feat.cols(), kNodeFeatureDim);
  EXPECT_EQ(g.net_edge_feat.rows(), static_cast<std::int64_t>(g.net_src.size()));
  EXPECT_EQ(g.net_edge_feat.cols(), kNetEdgeFeatureDim);
  EXPECT_EQ(g.cell_edge_feat.rows(), static_cast<std::int64_t>(g.cell_src.size()));
  EXPECT_EQ(g.cell_edge_feat.cols(), 512);
  EXPECT_EQ(g.net_delay.rows(), g.num_nodes);
  EXPECT_EQ(g.arrival.cols(), kNumCorners);
  EXPECT_EQ(g.cell_delay.rows(), static_cast<std::int64_t>(g.cell_src.size()));
}

TEST_F(ExtractTest, StatsMatchArrays) {
  const DatasetGraph& g = *graph_;
  EXPECT_EQ(g.stats.num_nodes, g.num_nodes);
  EXPECT_EQ(g.stats.num_net_edges, static_cast<long long>(g.net_src.size()));
  EXPECT_EQ(g.stats.num_cell_edges, static_cast<long long>(g.cell_src.size()));
  EXPECT_EQ(g.stats.num_endpoints, static_cast<long long>(g.endpoints.size()));
}

TEST_F(ExtractTest, FeaturesAreFinite) {
  const DatasetGraph& g = *graph_;
  for (float v : g.node_feat.data()) EXPECT_TRUE(std::isfinite(v));
  for (float v : g.net_edge_feat.data()) EXPECT_TRUE(std::isfinite(v));
  for (float v : g.cell_edge_feat.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(ExtractTest, NodeFeatureSemantics) {
  const DatasetGraph& g = *graph_;
  const Design& d = *g.design;
  for (PinId p = 0; p < d.num_pins(); p += 11) {
    EXPECT_FLOAT_EQ(g.node_feat.at(p, 0), d.pin(p).is_port ? 1.0f : 0.0f);
    EXPECT_FLOAT_EQ(g.node_feat.at(p, 1), d.pin(p).drives_net ? 1.0f : 0.0f);
    // The four boundary distances sum to (W+H) * kDistScale.
    const float sum = g.node_feat.at(p, 2) + g.node_feat.at(p, 3) +
                      g.node_feat.at(p, 4) + g.node_feat.at(p, 5);
    EXPECT_NEAR(sum,
                (d.die().width() + d.die().height()) * kDistScale, 1e-3);
  }
}

TEST_F(ExtractTest, CellEdgeValidFlagsAllOne) {
  const DatasetGraph& g = *graph_;
  for (std::int64_t e = 0; e < g.cell_edge_feat.rows(); e += 7) {
    for (int l = 0; l < kCellEdgeValidDim; ++l) {
      EXPECT_FLOAT_EQ(g.cell_edge_feat.at(e, l), 1.0f);
    }
  }
}

TEST_F(ExtractTest, LutAxisIndicesAscending) {
  const DatasetGraph& g = *graph_;
  // Within each LUT's 7 slew-axis entries, values ascend.
  for (std::int64_t e = 0; e < std::min<std::int64_t>(g.cell_edge_feat.rows(), 20); ++e) {
    for (int l = 0; l < kNumLutsPerArc; ++l) {
      const int base = kCellEdgeValidDim + l * 2 * kLutDim;
      for (int i = 1; i < kLutDim; ++i) {
        EXPECT_GT(g.cell_edge_feat.at(e, base + i),
                  g.cell_edge_feat.at(e, base + i - 1));
      }
    }
  }
}

TEST_F(ExtractTest, LabelsMatchGoldenSta) {
  const DatasetGraph& g = *graph_;
  // Re-run the golden STA and compare a sample of labels.
  const TimingGraph tgraph(*g.design);
  const StaResult sta = run_sta(tgraph, *g.truth_routing);
  for (PinId p = 0; p < g.num_nodes; p += 13) {
    for (int c = 0; c < kNumCorners; ++c) {
      EXPECT_NEAR(g.arrival.at(p, c),
                  static_cast<float>(sta.arrival[static_cast<std::size_t>(p)][c]), 1e-4);
      EXPECT_NEAR(g.slew.at(p, c),
                  static_cast<float>(sta.slew[static_cast<std::size_t>(p)][c]) *
                      kSlewLabelScale,
                  1e-3);
    }
  }
}

TEST_F(ExtractTest, EndpointsAndSinksConsistent) {
  const DatasetGraph& g = *graph_;
  const Design& d = *g.design;
  for (int ep : g.endpoints) EXPECT_TRUE(d.is_endpoint(ep));
  // Every net edge's dst appears in net_sinks exactly once.
  std::vector<int> count(static_cast<std::size_t>(g.num_nodes), 0);
  for (int s : g.net_sinks) ++count[static_cast<std::size_t>(s)];
  for (int dst : g.net_dst) EXPECT_EQ(count[static_cast<std::size_t>(dst)], 1);
}

TEST_F(ExtractTest, SlackVectorsAlignedWithEndpoints) {
  const DatasetGraph& g = *graph_;
  EXPECT_EQ(g.endpoint_setup_slack.size(), g.endpoints.size());
  EXPECT_EQ(g.endpoint_hold_slack.size(), g.endpoints.size());
  for (double s : g.endpoint_setup_slack) EXPECT_TRUE(std::isfinite(s));
}

TEST_F(ExtractTest, LevelsMatchArcDirection) {
  const DatasetGraph& g = *graph_;
  for (std::size_t e = 0; e < g.net_src.size(); ++e) {
    EXPECT_LT(g.node_level[static_cast<std::size_t>(g.net_src[e])],
              g.node_level[static_cast<std::size_t>(g.net_dst[e])]);
  }
  for (std::size_t e = 0; e < g.cell_src.size(); ++e) {
    EXPECT_LT(g.node_level[static_cast<std::size_t>(g.cell_src[e])],
              g.node_level[static_cast<std::size_t>(g.cell_dst[e])]);
  }
}

TEST_F(ExtractTest, RuntimesRecorded) {
  EXPECT_GT(graph_->route_seconds, 0.0);
  EXPECT_GE(graph_->sta_seconds, 0.0);
  EXPECT_GT(graph_->clock_period, 0.0);
}

}  // namespace
}  // namespace tg::data
