/// \file shard_fault_test.cpp
/// TG_FAULT_SHARD drills (`ctest -L fault`): every injected shard fault —
/// worker throw, slow-shard stall, boundary-buffer corruption, stale
/// version — either recovers (bit-identical result, recovery counters
/// bumped) or fails loudly (ShardSweepError naming the shard, its level
/// range and the first-offender pin). Zero hangs: every drill runs under
/// the normal ctest timeout with the straggler watchdog armed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "sta/incremental.hpp"
#include "sta/shard.hpp"
#include "sta/timer.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/task_graph.hpp"

namespace tg {
namespace {

void expect_results_equal(const StaResult& a, const StaResult& b) {
  ASSERT_EQ(a.arrival.size(), b.arrival.size());
  for (std::size_t i = 0; i < a.arrival.size(); ++i) {
    for (int c = 0; c < kNumCorners; ++c) {
      ASSERT_EQ(std::memcmp(&a.arrival[i][c], &b.arrival[i][c],
                            sizeof(double)), 0)
          << "arrival differs at pin " << i << " corner " << c;
      ASSERT_EQ(std::memcmp(&a.rat[i][c], &b.rat[i][c], sizeof(double)), 0)
          << "rat differs at pin " << i << " corner " << c;
      ASSERT_EQ(std::memcmp(&a.slack[i][c], &b.slack[i][c], sizeof(double)),
                0)
          << "slack differs at pin " << i << " corner " << c;
    }
  }
}

class ShardFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(build_library());
    design_ = new Design(
        generate_design(suite_entry("spm", 1.0 / 32).spec, *lib_));
    place_design(*design_);
    RoutingOptions ropts;
    ropts.mode = RouteMode::kSteiner;
    routing_ = new DesignRouting(route_design(*design_, ropts));
    graph_ = new TimingGraph(*design_);
    // Clean reference, levelized.
    set_sta_engine(StaEngine::kLevel);
    clean_ = new StaResult(run_sta(*graph_, *routing_));
  }
  static void TearDownTestSuite() {
    delete clean_;
    delete graph_;
    delete routing_;
    delete design_;
    delete lib_;
    clean_ = nullptr;
    graph_ = nullptr;
    routing_ = nullptr;
    design_ = nullptr;
    lib_ = nullptr;
  }

  void SetUp() override {
    set_num_threads(8);
    set_sta_engine(StaEngine::kShard);
    set_sta_shards(4);
    set_shard_retries(2);
    reset_shard_stats();
  }
  void TearDown() override {
    fault::clear_shard_fault();
    set_num_threads(saved_threads_);
    set_sta_engine(saved_engine_);
    set_sta_shards(saved_shards_);
    set_shard_retries(-1);
    set_shard_straggler_ms(0.0);
  }

  int saved_threads_ = num_threads();
  StaEngine saved_engine_ = sta_engine();
  int saved_shards_ = sta_shards();

  static Library* lib_;
  static Design* design_;
  static DesignRouting* routing_;
  static TimingGraph* graph_;
  static StaResult* clean_;
};

Library* ShardFaultTest::lib_ = nullptr;
Design* ShardFaultTest::design_ = nullptr;
DesignRouting* ShardFaultTest::routing_ = nullptr;
TimingGraph* ShardFaultTest::graph_ = nullptr;
StaResult* ShardFaultTest::clean_ = nullptr;

TEST_F(ShardFaultTest, TransientWorkerThrowRecoversBitIdentical) {
  fault::arm_shard_fault("worker", 1);  // one blip, first shard attempt
  const StaResult r = run_sta(*graph_, *routing_);
  expect_results_equal(*clean_, r);
  const ShardStats s = shard_stats();
  EXPECT_GE(s.retries, 1u);
  EXPECT_EQ(s.failures, 0u);
}

TEST_F(ShardFaultTest, PersistentWorkerThrowFailsLoudlyWithShardContext) {
  // The window outlasts the retry budget on every shard.
  fault::arm_shard_fault("worker", 1, 1000);
  try {
    (void)run_sta(*graph_, *routing_);
    FAIL() << "persistently failing shard must escalate";
  } catch (const ShardSweepError& e) {
    EXPECT_GE(e.shard(), 0);
    EXPECT_LT(e.shard(), 4);
    const std::string what = e.what();
    EXPECT_NE(what.find("shard"), std::string::npos) << what;
    EXPECT_NE(what.find("levels"), std::string::npos) << what;
    EXPECT_NE(what.find("failed 3 attempts"), std::string::npos) << what;
    ASSERT_FALSE(e.diags().empty());
    EXPECT_EQ(e.diags().front().severity, Severity::kError);
    EXPECT_EQ(e.diags().front().stage, Stage::kSta);
  }
  EXPECT_GE(shard_stats().failures, 1u);
}

TEST_F(ShardFaultTest, CorruptBoundaryDetectedAndReExported) {
  fault::arm_shard_fault("corrupt", 1);  // first publish flips a payload bit
  const StaResult r = run_sta(*graph_, *routing_);
  expect_results_equal(*clean_, r);
  const ShardStats s = shard_stats();
  EXPECT_GE(s.ghost_mismatches, 1u);
  EXPECT_GE(s.ghost_reexports, 1u);
  EXPECT_EQ(s.failures, 0u);
}

TEST_F(ShardFaultTest, StaleBoundaryDetectedAndReExported) {
  fault::arm_shard_fault("stale", 1);  // first publish carries an old version
  const StaResult r = run_sta(*graph_, *routing_);
  expect_results_equal(*clean_, r);
  const ShardStats s = shard_stats();
  EXPECT_GE(s.ghost_mismatches, 1u);
  EXPECT_GE(s.ghost_reexports, 1u);
  EXPECT_EQ(s.failures, 0u);
}

TEST_F(ShardFaultTest, PersistentCorruptionNamesFirstOffenderPin) {
  // Every publish (including the recovery re-exports) keeps corrupting:
  // verification must exhaust its budget and escalate with the offender.
  fault::arm_shard_fault("corrupt", 1, 100000);
  try {
    (void)run_sta(*graph_, *routing_);
    FAIL() << "persistently corrupt exchange must escalate";
  } catch (const ShardSweepError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boundary exchange"), std::string::npos) << what;
    EXPECT_NE(what.find("first-offender pin"), std::string::npos) << what;
    ASSERT_FALSE(e.diags().empty());
    EXPECT_FALSE(e.diags().front().object.empty());  // offender pin name
  }
  EXPECT_GE(shard_stats().failures, 1u);
}

TEST_F(ShardFaultTest, SlowShardSpeculativelyReissuedBitIdentical) {
  // 5 ms explicit straggler floor; the injected stall holds one attempt
  // ~120 ms, so the watchdog cancels it and the worker re-runs the shard
  // (the one-shot fault window has passed by then).
  set_shard_straggler_ms(5.0);
  fault::arm_shard_fault("slow", 1);
  const StaResult r = run_sta(*graph_, *routing_);
  expect_results_equal(*clean_, r);
  const ShardStats s = shard_stats();
  EXPECT_GE(s.speculations, 1u);
  EXPECT_EQ(s.failures, 0u);
}

TEST_F(ShardFaultTest, SerialOrchestratorRecoversWithoutPool) {
  // num_threads()==1 leaves zero pool workers: the inline serial path must
  // still run the full fault/recovery protocol.
  set_num_threads(1);
  fault::arm_shard_fault("worker", 1);
  const StaResult r = run_sta(*graph_, *routing_);
  expect_results_equal(*clean_, r);
  EXPECT_GE(shard_stats().retries, 1u);
}

TEST_F(ShardFaultTest, ConeRetimeRecoversFromWorkerFault) {
  DesignRouting routing = *routing_;  // private copy to perturb
  IncrementalTimer inc(*graph_, &routing);
  NetId victim = -1;
  for (NetId n = 0; n < design_->num_nets(); ++n) {
    if (!design_->net(n).is_clock) {
      victim = n;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  for (auto& d : routing.nets[static_cast<std::size_t>(victim)].sink_delay) {
    for (double& v : d) v *= 1.5;
  }
  inc.invalidate_net(victim);
  fault::arm_shard_fault("worker", 1);  // blips the first touched shard
  EXPECT_GT(inc.update(), 0);

  // The recovered incremental state matches a clean from-scratch run.
  const StaResult full = run_sta(*graph_, routing);
  expect_results_equal(full, inc.result());
}

TEST_F(ShardFaultTest, EnvArmedFaultPathWorks) {
  // The env parse path (TG_FAULT_SHARD) must reach the same state as the
  // programmatic arming the other drills use.
  ASSERT_EQ(setenv("TG_FAULT_SHARD", "worker:1", 1), 0);
  fault::reparse_shard_fault_env();
  const StaResult r = run_sta(*graph_, *routing_);
  expect_results_equal(*clean_, r);
  EXPECT_GE(fault::matched_shard_ops(), 1);
  ASSERT_EQ(unsetenv("TG_FAULT_SHARD"), 0);
  fault::reparse_shard_fault_env();
}

}  // namespace
}  // namespace tg
