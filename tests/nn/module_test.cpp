#include "nn/module.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"

namespace tg::nn {
namespace {

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  Linear lin(4, 3, rng);
  EXPECT_EQ(lin.in_features(), 4);
  EXPECT_EQ(lin.out_features(), 3);
  EXPECT_EQ(lin.parameters().size(), 2u);  // W and b
  EXPECT_EQ(lin.num_parameters(), 4 * 3 + 3);
  Tensor x = Tensor::zeros(5, 4);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  // Zero input → bias only, which is initialized to 0.
  for (float v : y.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Linear, DifferentSeedsDifferentWeights) {
  Rng r1(1), r2(2);
  Linear a(3, 3, r1), b(3, 3, r2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.parameters()[0].data().size(); ++i) {
    any_diff |= a.parameters()[0].data()[i] != b.parameters()[0].data()[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Mlp, ArchitectureMatchesConfig) {
  Rng rng(3);
  Mlp mlp(10, 4, /*hidden=*/16, /*hidden_layers=*/3, &rng);
  EXPECT_EQ(mlp.in_features(), 10);
  EXPECT_EQ(mlp.out_features(), 4);
  // 4 Linear layers → 8 parameter tensors.
  EXPECT_EQ(mlp.parameters().size(), 8u);
  Tensor x = Tensor::zeros(2, 10);
  Tensor y = mlp.forward(x);
  EXPECT_EQ(y.cols(), 4);
}

TEST(Mlp, ZeroHiddenLayersIsLinear) {
  Rng rng(4);
  Mlp mlp(5, 2, 16, 0, &rng);
  EXPECT_EQ(mlp.parameters().size(), 2u);
}

TEST(Mlp, ParameterNamesUnique) {
  Rng rng(5);
  Mlp mlp(5, 2, 8, 2, &rng, "m");
  const auto& names = mlp.parameter_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(Mlp, GradientsFlowToAllParameters) {
  Rng rng(6);
  Mlp mlp(3, 2, 8, 2, &rng);
  Tensor x = Tensor::rand_uniform(4, 3, 1.0f, rng);
  Tensor loss = mean_all(mul(mlp.forward(x), mlp.forward(x)));
  loss.backward();
  for (const Tensor& p : mlp.parameters()) {
    double norm = 0.0;
    Tensor copy = p;
    for (float g : copy.grad()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0);
  }
}

TEST(Mlp, GradCheckThroughWeights) {
  Rng rng(7);
  Mlp mlp(3, 2, 4, 1, &rng);
  Tensor x = Tensor::rand_uniform(3, 3, 1.0f, rng);
  std::vector<Tensor> params(mlp.parameters().begin(), mlp.parameters().end());
  const GradCheckResult res = gradcheck(
      [&](const std::vector<Tensor>&) {
        return mean_all(mul(mlp.forward(x), mlp.forward(x)));
      },
      params);
  EXPECT_TRUE(res.ok) << res.max_rel_error;
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(8);
  Mlp mlp(3, 2, 4, 1, &rng);
  Tensor x = Tensor::rand_uniform(2, 3, 1.0f, rng);
  sum_all(mlp.forward(x)).backward();
  mlp.zero_grad();
  for (const Tensor& p : mlp.parameters()) {
    Tensor copy = p;
    for (float g : copy.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
  }
}

}  // namespace
}  // namespace tg::nn
