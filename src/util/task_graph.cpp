#include "util/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/obs/metrics.hpp"
#include "util/parallel.hpp"

namespace tg {

void TaskDag::finalize() {
  TG_CHECK(static_cast<int>(succ_off.size()) == num_nodes + 1);
  indegree.assign(static_cast<std::size_t>(num_nodes), 0);
  for (int s : succ) {
    TG_DCHECK(s >= 0 && s < num_nodes);
    ++indegree[static_cast<std::size_t>(s)];
  }
  roots.clear();
  for (int v = 0; v < num_nodes; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) roots.push_back(v);
  }
  // Kahn order, reused by every single-worker full run: a serial drain
  // needs no counters at all when the visit order is precomputed.
  topo.clear();
  topo.reserve(static_cast<std::size_t>(num_nodes));
  topo.insert(topo.end(), roots.begin(), roots.end());
  std::vector<int> pending(indegree);
  for (std::size_t head = 0; head < topo.size(); ++head) {
    for (int s : successors(topo[head])) {
      if (--pending[static_cast<std::size_t>(s)] == 0) topo.push_back(s);
    }
  }
  TG_CHECK_MSG(static_cast<int>(topo.size()) == num_nodes,
               "task graph has a cycle: only " << topo.size() << " of "
                                               << num_nodes
                                               << " nodes are orderable");
}

TaskDag TaskDag::from_edges(int num_nodes,
                            std::span<const std::pair<int, int>> edges) {
  TaskDag dag;
  dag.num_nodes = num_nodes;
  dag.succ_off.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [from, to] : edges) {
    TG_CHECK(from >= 0 && from < num_nodes && to >= 0 && to < num_nodes);
    ++dag.succ_off[static_cast<std::size_t>(from) + 1];
  }
  for (int v = 0; v < num_nodes; ++v) {
    dag.succ_off[static_cast<std::size_t>(v) + 1] +=
        dag.succ_off[static_cast<std::size_t>(v)];
  }
  dag.succ.resize(edges.size());
  std::vector<int> cursor(dag.succ_off.begin(), dag.succ_off.end() - 1);
  for (const auto& [from, to] : edges) {
    dag.succ[static_cast<std::size_t>(cursor[static_cast<std::size_t>(from)]++)] =
        to;
  }
  dag.finalize();
  return dag;
}

namespace {

/// Thieves take at most this many tasks per steal (and never more than
/// half the victim's deque) — large enough to amortize the victim lock,
/// small enough to keep work spread out.
constexpr std::size_t kMaxStealBatch = 32;

/// Shared state of one engine run. Owned via shared_ptr by every helper
/// task: a pool worker that wakes up after the run already drained still
/// touches only this object.
struct EngineState {
  const TaskDag* dag = nullptr;
  /// Runs node v's body; returns whether its value changed (full runs
  /// always report true). Never called for skipped (clean) cone nodes.
  std::function<bool(int)> body;

  // Per-node live counters. `pending` starts at the (in-cone) fan-in;
  // the last decrement makes a node ready. Raw arrays sized num_nodes.
  std::unique_ptr<std::atomic<int>[]> pending;
  /// Cone runs only: 1 when the node must evaluate (seed or a changed
  /// predecessor). Plain-relaxed stores — the pending RMW chain publishes
  /// them to whoever fires the node.
  std::unique_ptr<std::atomic<unsigned char>[]> dirty;
  /// Cone runs only: 1 when the node is inside the reachable cone.
  std::vector<unsigned char> in_cone;
  bool cone_mode = false;

  /// Nodes not yet known-completed. Workers retire completions in local
  /// batches (flushed when their deque drains) so this line is not an
  /// every-task rendezvous — with ~100ns tasks a per-task acq_rel RMW on
  /// one cache line serializes eight workers all by itself.
  std::atomic<long long> remaining{0};
  std::atomic<bool> abort{false};

  /// Ambient cancellation token of the submitting thread, captured at run
  /// entry and polled by every worker before firing a node. A tripped
  /// token aborts exactly like a task exception — remaining task bodies
  /// are skipped, bookkeeping drains — and CancelError is rethrown after
  /// the drain, so a cancelled request stops within one task batch.
  CancelToken cancel;

  /// Records the cancellation as the run's error (first writer wins) and
  /// flips abort, mirroring the task-exception path.
  void abort_cancelled() {
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!error) error = std::make_exception_ptr(CancelError(cancel.reason()));
    }
    abort.store(true, std::memory_order_relaxed);
  }

  struct alignas(64) Worker {
    std::mutex mu;
    std::deque<int> ready;  ///< owner pushes/pops back, thieves pop front
    /// Approximate deque size, maintained by whoever holds `mu`. Thieves
    /// probe it with a relaxed load and skip victims below the steal
    /// threshold without touching the mutex — an idle worker sweeping
    /// seven victims must not hammer seven locks per sweep.
    std::atomic<int> approx_size{0};
    std::uint64_t fired = 0;
    std::uint64_t evaluated = 0;
    std::uint64_t steal_batches = 0;
    std::uint64_t stolen_tasks = 0;
    std::uint64_t max_depth = 0;
  };
  std::vector<Worker> workers;

  // Helper-completion handshake (same shape as parallel_for's ForState).
  std::mutex done_mu;
  std::condition_variable done_cv;
  int helpers_done = 0;
  int helpers_expected = 0;

  std::mutex err_mu;
  std::exception_ptr error;

  /// Sum of per-worker evaluated counts, filled in by run_engine after the
  /// helpers-done handshake (cone runs report it as ConeStats::evaluated).
  long long evaluated_total = 0;

  void push_local(int wid, int v) {
    Worker& w = workers[static_cast<std::size_t>(wid)];
    std::lock_guard<std::mutex> lock(w.mu);
    w.ready.push_back(v);
    w.approx_size.store(static_cast<int>(w.ready.size()),
                        std::memory_order_relaxed);
    w.max_depth = std::max(w.max_depth, static_cast<std::uint64_t>(w.ready.size()));
  }

  int pop_local(int wid) {
    Worker& w = workers[static_cast<std::size_t>(wid)];
    if (w.approx_size.load(std::memory_order_relaxed) == 0) return -1;
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.ready.empty()) return -1;
    const int v = w.ready.back();
    w.ready.pop_back();
    w.approx_size.store(static_cast<int>(w.ready.size()),
                        std::memory_order_relaxed);
    return v;
  }

  /// One sweep over the other workers; brings a batch home and returns one
  /// task to run now (or -1). The batch is staged in a local buffer so the
  /// victim's and the thief's mutexes are never held together — two workers
  /// stealing from each other must not form a lock cycle. Victims whose
  /// occupancy hint is below 2 are skipped without locking: taking a
  /// worker's *only* task just bounces a serial chain between cores (one
  /// cache migration per node), so thieves only go where a surplus exists.
  int steal(int wid) {
    Worker& self = workers[static_cast<std::size_t>(wid)];
    const int n = static_cast<int>(workers.size());
    int batch[kMaxStealBatch];
    for (int k = 1; k < n; ++k) {
      const int vid = (wid + k) % n;
      Worker& victim = workers[static_cast<std::size_t>(vid)];
      if (victim.approx_size.load(std::memory_order_relaxed) < 2) continue;
      std::size_t got = 0;
      {
        std::lock_guard<std::mutex> lock(victim.mu);
        const std::size_t avail = victim.ready.size();
        if (avail < 2) continue;
        const std::size_t take = std::min(kMaxStealBatch, avail / 2);
        for (; got < take; ++got) {
          batch[got] = victim.ready.front();
          victim.ready.pop_front();
        }
        victim.approx_size.store(static_cast<int>(victim.ready.size()),
                                 std::memory_order_relaxed);
      }
      const int run_now = batch[0];
      if (got > 1) {
        std::lock_guard<std::mutex> self_lock(self.mu);
        for (std::size_t i = 1; i < got; ++i) self.ready.push_back(batch[i]);
        self.approx_size.store(static_cast<int>(self.ready.size()),
                               std::memory_order_relaxed);
        self.max_depth = std::max(
            self.max_depth, static_cast<std::uint64_t>(self.ready.size()));
      }
      self.steal_batches += 1;
      self.stolen_tasks += got;
      return run_now;
    }
    return -1;
  }

  /// Runs node v and returns the first successor it made ready (or -1);
  /// further ready successors go to the local deque. Continuation chaining:
  /// a serial chain advances with zero deque traffic — the caller loops on
  /// the return value instead of round-tripping through the mutex.
  int run_node(int wid, int v) {
    Worker& self = workers[static_cast<std::size_t>(wid)];
    self.fired += 1;
    bool changed = true;
    if (!abort.load(std::memory_order_relaxed) && cancel.cancelled()) {
      abort_cancelled();
    }
    if (!abort.load(std::memory_order_relaxed)) {
      const bool evaluate =
          !cone_mode || dirty[static_cast<std::size_t>(v)].load(
                            std::memory_order_relaxed) != 0;
      if (evaluate) {
        try {
          changed = body(v);
          self.evaluated += 1;
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!error) error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
        }
      } else {
        changed = false;
      }
    }
    int next = -1;
    for (int s : dag->successors(v)) {
      if (cone_mode) {
        if (!in_cone[static_cast<std::size_t>(s)]) continue;
        if (changed) {
          dirty[static_cast<std::size_t>(s)].store(1,
                                                   std::memory_order_relaxed);
        }
      }
      // The RMW chain on `pending[s]` is the publication edge: the worker
      // that fires s synchronized with every decrementer, so it sees all
      // predecessor outputs (and dirty marks) without extra fences.
      if (pending[static_cast<std::size_t>(s)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        if (next < 0) {
          next = s;
        } else {
          push_local(wid, s);
        }
      }
    }
    return next;
  }

  /// Single-worker drain: a plain LIFO stack, no locks, and unsynchronized
  /// load/store counter updates instead of RMWs — nobody else touches the
  /// arrays. Bit-identity is unaffected (task bodies are order-independent
  /// by contract); what this buys is level-engine-grade per-task overhead
  /// whenever the run is serial anyway (one core, or num_threads() == 1).
  void run_serial(std::span<const int> ready) {
    Worker& self = workers[0];
    std::vector<int> stack(ready.begin(), ready.end());
    self.max_depth = static_cast<std::uint64_t>(stack.size());
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      while (v >= 0) {
        self.fired += 1;
        bool changed = true;
        if (!abort.load(std::memory_order_relaxed) && cancel.cancelled()) {
          if (!error) error = std::make_exception_ptr(CancelError(cancel.reason()));
          abort.store(true, std::memory_order_relaxed);
        }
        if (!abort.load(std::memory_order_relaxed)) {
          const bool evaluate =
              !cone_mode || dirty[static_cast<std::size_t>(v)].load(
                                std::memory_order_relaxed) != 0;
          if (evaluate) {
            try {
              changed = body(v);
              self.evaluated += 1;
            } catch (...) {
              if (!error) error = std::current_exception();
              abort.store(true, std::memory_order_relaxed);
            }
          } else {
            changed = false;
          }
        }
        int next = -1;
        for (int s : dag->successors(v)) {
          if (cone_mode) {
            if (!in_cone[static_cast<std::size_t>(s)]) continue;
            if (changed) {
              dirty[static_cast<std::size_t>(s)].store(
                  1, std::memory_order_relaxed);
            }
          }
          auto& cnt = pending[static_cast<std::size_t>(s)];
          const int left = cnt.load(std::memory_order_relaxed) - 1;
          cnt.store(left, std::memory_order_relaxed);
          if (left == 0) {
            if (next < 0) {
              next = s;
            } else {
              stack.push_back(s);
              self.max_depth = std::max(
                  self.max_depth, static_cast<std::uint64_t>(stack.size()));
            }
          }
        }
        v = next;
      }
    }
  }

  void worker_loop(int wid) {
    long long retired = 0;  // completions not yet subtracted from remaining
    int idle_sweeps = 0;
    for (;;) {
      int v = pop_local(wid);
      if (v < 0) {
        if (retired > 0) {
          remaining.fetch_sub(retired, std::memory_order_acq_rel);
          retired = 0;
        }
        v = steal(wid);
      }
      if (v < 0) {
        if (remaining.load(std::memory_order_acquire) <= 0) return;
        // Brief spin, then doze: a persistently-empty worker must stop
        // burning cycles (and, when threads exceed cores, timeslices that
        // belong to the workers that DO hold work).
        if (++idle_sweeps < 16) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        continue;
      }
      idle_sweeps = 0;
      while (v >= 0) {
        v = run_node(wid, v);
        ++retired;
      }
    }
  }
};

/// Worker count for a run of `total` tasks: the thread-count setting
/// bounded by the physical core count — running more DAG workers than
/// cores only adds timeslice churn (idle workers preempting the ones that
/// hold work). Tests force a higher count via set_task_dag_workers to
/// exercise the steal paths on small machines.
int engine_worker_count(long long total) {
  const int forced = task_dag_workers();
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = forced > 0
                      ? forced
                      : (hw == 0 ? num_threads() : static_cast<int>(hw));
  return std::max(1, std::min({num_threads(), cap, static_cast<int>(total)}));
}

TaskDagStats run_engine(std::shared_ptr<EngineState> state,
                        std::span<const int> ready, long long total) {
  TaskDagStats stats;
  if (total <= 0) return stats;
  state->remaining.store(total, std::memory_order_release);

  const int nworkers = engine_worker_count(total);
  state->workers = std::vector<EngineState::Worker>(
      static_cast<std::size_t>(nworkers));
  stats.workers = nworkers;

  if (nworkers == 1) {
    state->run_serial(ready);
  } else {
    // Round-robin the initially-ready nodes so every worker starts hot.
    for (std::size_t i = 0; i < ready.size(); ++i) {
      EngineState::Worker& w =
          state->workers[i % static_cast<std::size_t>(nworkers)];
      w.ready.push_back(ready[i]);
      w.approx_size.store(static_cast<int>(w.ready.size()),
                          std::memory_order_relaxed);
      w.max_depth = std::max(w.max_depth,
                             static_cast<std::uint64_t>(w.ready.size()));
    }

    state->helpers_expected = nworkers - 1;
    for (int h = 1; h < nworkers; ++h) {
      parallel_detail::pool_submit([state, h] {
        state->worker_loop(h);
        std::lock_guard<std::mutex> lock(state->done_mu);
        ++state->helpers_done;
        state->done_cv.notify_all();
      });
    }
    state->worker_loop(0);
    {
      std::unique_lock<std::mutex> lock(state->done_mu);
      state->done_cv.wait(lock, [&] {
        return state->helpers_done == state->helpers_expected;
      });
    }
  }

  for (const EngineState::Worker& w : state->workers) {
    stats.tasks_fired += w.fired;
    stats.steal_batches += w.steal_batches;
    stats.stolen_tasks += w.stolen_tasks;
    stats.max_ready_depth = std::max(stats.max_ready_depth, w.max_depth);
    state->evaluated_total += static_cast<long long>(w.evaluated);
  }
  if (state->error) std::rethrow_exception(state->error);
  return stats;
}

}  // namespace

TaskDagStats run_task_dag(const TaskDag& dag,
                          const std::function<void(int)>& task) {
  TaskDagStats stats;
  if (dag.num_nodes <= 0) return stats;
  // A token that tripped before the run starts must stop it before any
  // task body fires (not after the first batch is staged).
  current_cancel_token().throw_if_cancelled();
  if (engine_worker_count(dag.num_nodes) == 1) {
    // Serial full run: walk the precomputed topological order directly —
    // no dependency counters, no deques, no shared state to set up. This
    // keeps the async engine's serial walk at (or below) the levelized
    // serial sweep's per-node cost, which is what the engine degrades to
    // on a single core.
    stats.workers = 1;
    const CancelToken cancel = current_cancel_token();
    std::exception_ptr error;
    for (int v : dag.topo) {
      stats.tasks_fired += 1;
      if (!error && cancel.cancelled()) {
        error = std::make_exception_ptr(CancelError(cancel.reason()));
      }
      if (error) continue;  // drain semantics: bodies stop, count doesn't
      try {
        task(v);
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return stats;
  }

  auto state = std::make_shared<EngineState>();
  state->dag = &dag;
  state->cancel = current_cancel_token();
  state->body = [&task](int v) {
    task(v);
    return true;
  };
  const auto n = static_cast<std::size_t>(dag.num_nodes);
  state->pending = std::make_unique<std::atomic<int>[]>(n);
  for (std::size_t v = 0; v < n; ++v) {
    state->pending[v].store(dag.indegree[v], std::memory_order_relaxed);
  }
  return run_engine(std::move(state), dag.roots, dag.num_nodes);
}

ConeStats run_task_dag_cone(const TaskDag& dag, std::span<const int> seeds,
                            const std::function<bool(int)>& task) {
  ConeStats out;
  if (seeds.empty()) return out;
  // Pre-cancelled callers must not pay for the cone BFS (or fire a single
  // node): check at entry, before any work is staged.
  current_cancel_token().throw_if_cancelled();
  const auto n = static_cast<std::size_t>(dag.num_nodes);

  auto state = std::make_shared<EngineState>();
  state->dag = &dag;
  state->cancel = current_cancel_token();
  state->body = task;
  state->cone_mode = true;
  state->in_cone.assign(n, 0);
  state->dirty = std::make_unique<std::atomic<unsigned char>[]>(n);
  state->pending = std::make_unique<std::atomic<int>[]>(n);
  // Zero-init only what the BFS touches lazily is not possible with raw
  // atomics, so clear both arrays up front (O(n), same as the serial
  // walker's queued bitmap).
  for (std::size_t v = 0; v < n; ++v) {
    state->dirty[v].store(0, std::memory_order_relaxed);
    state->pending[v].store(0, std::memory_order_relaxed);
  }

  // BFS from the seeds: membership plus in-cone fan-in counts. Every edge
  // out of a cone node is traversed exactly once, so pending[s] ends at
  // the number of in-cone predecessor incidences of s.
  std::vector<int> cone;
  for (int s : seeds) {
    TG_CHECK(s >= 0 && s < dag.num_nodes);
    if (state->in_cone[static_cast<std::size_t>(s)]) continue;
    state->in_cone[static_cast<std::size_t>(s)] = 1;
    state->dirty[static_cast<std::size_t>(s)].store(
        1, std::memory_order_relaxed);
    cone.push_back(s);
  }
  for (std::size_t head = 0; head < cone.size(); ++head) {
    for (int s : dag.successors(cone[head])) {
      state->pending[static_cast<std::size_t>(s)].fetch_add(
          1, std::memory_order_relaxed);
      if (!state->in_cone[static_cast<std::size_t>(s)]) {
        state->in_cone[static_cast<std::size_t>(s)] = 1;
        cone.push_back(s);
      }
    }
  }
  out.cone_nodes = static_cast<long long>(cone.size());

  std::vector<int> ready;
  for (int v : cone) {
    if (state->pending[static_cast<std::size_t>(v)].load(
            std::memory_order_relaxed) == 0) {
      ready.push_back(v);
    }
  }

  out.run = run_engine(state, ready, static_cast<long long>(cone.size()));
  out.evaluated = state->evaluated_total;
  return out;
}

void record_task_dag_metrics(const TaskDagStats& stats) {
  TG_METRIC_COUNT("sta/async/runs", 1);
  TG_METRIC_COUNT("sta/async/tasks", stats.tasks_fired);
  TG_METRIC_COUNT("sta/async/steal_batches", stats.steal_batches);
  TG_METRIC_COUNT("sta/async/stolen_tasks", stats.stolen_tasks);
  static obs::Gauge& depth = obs::gauge("sta/async/max_ready_depth");
  depth.set_max(static_cast<double>(stats.max_ready_depth));
  static obs::Gauge& workers = obs::gauge("sta/async/workers");
  workers.set_max(static_cast<double>(stats.workers));
}

// ---- engine selection ----------------------------------------------------

namespace {

std::atomic<int> g_engine{-1};  // -1 unresolved, else StaEngine
// -1 unresolved, 0 hardware-bounded default, >0 forced worker cap.
std::atomic<int> g_dag_workers{-1};

StaEngine resolve_engine_env() {
  if (const char* env = std::getenv("TG_STA_ENGINE")) {
    const std::string v(env);
    if (v == "async") return StaEngine::kAsync;
    if (v == "shard") return StaEngine::kShard;
    TG_CHECK_MSG(v == "level" || v.empty(),
                 "TG_STA_ENGINE must be level, async or shard, got " << v);
  }
  return StaEngine::kLevel;
}

// -1 unresolved, else the shard count K (>= 1).
std::atomic<int> g_sta_shards{-1};

}  // namespace

int task_dag_workers() {
  int n = g_dag_workers.load(std::memory_order_acquire);
  if (n < 0) {
    n = 0;
    if (const char* env = std::getenv("TG_TASK_DAG_WORKERS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) n = static_cast<int>(v);
    }
    int expected = -1;
    if (!g_dag_workers.compare_exchange_strong(expected, n,
                                               std::memory_order_acq_rel)) {
      n = expected;
    }
  }
  return n;
}

void set_task_dag_workers(int n) {
  g_dag_workers.store(n < 0 ? 0 : n, std::memory_order_release);
}

StaEngine sta_engine() {
  int e = g_engine.load(std::memory_order_acquire);
  if (e < 0) {
    e = static_cast<int>(resolve_engine_env());
    int expected = -1;
    if (!g_engine.compare_exchange_strong(expected, e,
                                          std::memory_order_acq_rel)) {
      e = expected;
    }
  }
  return static_cast<StaEngine>(e);
}

void set_sta_engine(StaEngine engine) {
  g_engine.store(static_cast<int>(engine), std::memory_order_release);
}

StaEngine configure_sta_engine(const CliOptions& options) {
  if (options.has("sta-engine")) {
    const std::string v = options.get("sta-engine", "level");
    TG_CHECK_MSG(v == "level" || v == "async" || v == "shard",
                 "--sta-engine must be level, async or shard, got " << v);
    set_sta_engine(v == "shard"   ? StaEngine::kShard
                   : v == "async" ? StaEngine::kAsync
                                  : StaEngine::kLevel);
  }
  if (options.has("sta-shards")) {
    set_sta_shards(static_cast<int>(options.get_int("sta-shards", 4)));
  }
  return sta_engine();
}

const char* sta_engine_name(StaEngine engine) {
  switch (engine) {
    case StaEngine::kAsync: return "async";
    case StaEngine::kShard: return "shard";
    case StaEngine::kLevel: break;
  }
  return "level";
}

int sta_shards() {
  int k = g_sta_shards.load(std::memory_order_acquire);
  if (k < 0) {
    k = 4;
    if (const char* env = std::getenv("TG_STA_SHARDS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) k = static_cast<int>(v);
    }
    int expected = -1;
    if (!g_sta_shards.compare_exchange_strong(expected, k,
                                              std::memory_order_acq_rel)) {
      k = expected;
    }
  }
  return k;
}

void set_sta_shards(int k) {
  // 0 (or negative) re-arms the env/default resolution in sta_shards().
  g_sta_shards.store(k <= 0 ? -1 : k, std::memory_order_release);
}

}  // namespace tg
