#pragma once
/// \file timing_gnn.hpp
/// The full timing-engine-inspired GNN (paper §3): net embedding stage +
/// levelized delay propagation stage, with prediction heads for
///  - arrival time & slew at pins (main task, Eq. 4),
///  - cell-arc delay (auxiliary, Eq. 5),
///  - net delay at fan-in (sink) pins (auxiliary, Eq. 6),
/// trained jointly (Eq. 7). Ablation switches reproduce the paper's
/// "w/ Cell" and "w/ Net" columns of Table 5.

#include "core/delay_prop.hpp"
#include "core/net_embed.hpp"

namespace tg::core {

struct TimingGnnConfig {
  NetEmbedConfig net;
  DelayPropConfig prop;
  bool use_net_aux = true;   ///< Eq. 6 term
  bool use_cell_aux = true;  ///< Eq. 5 term
  std::uint64_t seed = 1;
};

class TimingGnn : public nn::Module {
 public:
  explicit TimingGnn(const TimingGnnConfig& config);

  struct Prediction {
    nn::Tensor atslew;      ///< [N, 8]: arrival (4) | slew (4)
    nn::Tensor net_delay;   ///< [N, 4]
    nn::Tensor cell_delay;  ///< [Ec, 4] in plan.cell_edge_order
  };

  [[nodiscard]] Prediction forward(const data::DatasetGraph& g,
                                   const PropPlan& plan) const;

  /// Combined loss of Eq. 7 (terms gated by the ablation config).
  [[nodiscard]] nn::Tensor loss(const data::DatasetGraph& g,
                                const PropPlan& plan,
                                const Prediction& pred) const;

  [[nodiscard]] const TimingGnnConfig& config() const { return config_; }
  [[nodiscard]] const NetEmbed& net_embed() const { return net_embed_; }

 private:
  TimingGnnConfig config_;
  Rng rng_;
  NetEmbed net_embed_;
  DelayProp prop_;
  nn::Mlp atslew_head_;
};

/// Slack reconstruction at an endpoint from a predicted arrival row:
/// setup = min over rise/fall of (RAT_late − AT_late),
/// hold  = min over rise/fall of (AT_early − RAT_early).
struct EndpointSlack {
  double setup = 0.0;
  double hold = 0.0;
};
[[nodiscard]] EndpointSlack predicted_endpoint_slack(
    const data::DatasetGraph& g, const nn::Tensor& atslew, int endpoint_node);

}  // namespace tg::core
