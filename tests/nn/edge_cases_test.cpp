/// Boundary-condition tests for the tensor ops: empty index sets, single
/// elements, degenerate shapes — the places scatter/gather code breaks.

#include <gtest/gtest.h>

#include "nn/ops.hpp"
#include "util/check.hpp"

namespace tg::nn {
namespace {

TEST(EdgeCases, GatherEmptyIndexList) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor g = gather_rows(a, {});
  EXPECT_EQ(g.rows(), 0);
  EXPECT_EQ(g.cols(), 2);
}

TEST(EdgeCases, SegmentSumZeroRows) {
  Tensor a = Tensor::zeros(0, 3);
  Tensor s = segment_sum(a, {}, 4);
  EXPECT_EQ(s.rows(), 4);
  for (float v : s.data()) EXPECT_EQ(v, 0.0f);
}

TEST(EdgeCases, SegmentMaxAllOneSegment) {
  Tensor a = Tensor::from_vector({1, 5, 3}, 3, 1);
  Tensor m = segment_max(a, {0, 0, 0}, 1);
  EXPECT_FLOAT_EQ(m.at(0), 5.0f);
}

TEST(EdgeCases, ConcatSinglePart) {
  Tensor a = Tensor::from_vector({1, 2}, 1, 2);
  const Tensor parts[] = {a};
  Tensor c = concat_cols(parts);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 1), 2.0f);
}

TEST(EdgeCases, SliceFullRangeIsIdentityValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor s = slice_cols(a, 0, 2);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(s.data()[static_cast<std::size_t>(i)],
              a.data()[static_cast<std::size_t>(i)]);
  }
}

TEST(EdgeCases, SliceBadRangeThrows) {
  Tensor a = Tensor::zeros(2, 3);
  EXPECT_THROW(slice_cols(a, 2, 2), CheckError);
  EXPECT_THROW(slice_cols(a, 1, 4), CheckError);
  EXPECT_THROW(slice_cols(a, -1, 2), CheckError);
}

TEST(EdgeCases, MatmulWithZeroRows) {
  Tensor a = Tensor::zeros(0, 4);
  Tensor b = Tensor::zeros(4, 2);
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 2);
}

TEST(EdgeCases, SpmmNoEdgesIsZero) {
  Tensor x = Tensor::from_vector({1, 2}, 1, 2);
  Tensor y = spmm({}, {}, {}, x, 3);
  EXPECT_EQ(y.rows(), 3);
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

TEST(EdgeCases, MseLossRowsEmptySubsetIsZero) {
  Tensor pred = Tensor::from_vector({1, 2}, 2, 1);
  Tensor target = Tensor::zeros(0, 1);
  EXPECT_FLOAT_EQ(mse_loss_rows(pred, {}, target).item(), 0.0f);
}

TEST(EdgeCases, BackwardThroughEmptyGather) {
  // Empty gathers must not corrupt gradient flow of sibling branches.
  Tensor a = Tensor::from_vector({2.0f, 3.0f}, 2, 1, true);
  Tensor empty = gather_rows(a, {});
  const Tensor parts[] = {empty, gather_rows(a, {0, 1})};
  Tensor both = concat_rows(parts);
  sum_all(mul(both, both)).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 6.0f);
}

TEST(EdgeCases, SoftmaxGroupSizeOneIsAllOnes) {
  Tensor a = Tensor::from_vector({-5, 0, 7}, 1, 3);
  Tensor s = softmax_groups(a, 1);
  for (float v : s.data()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(EdgeCases, SoftmaxGroupRejectsNonDivisor) {
  Tensor a = Tensor::zeros(1, 5);
  EXPECT_THROW(softmax_groups(a, 2), CheckError);
}

TEST(EdgeCases, LutKronDotShapeChecks) {
  Tensor a = Tensor::zeros(2, 6);
  Tensor b = Tensor::zeros(2, 6);
  Tensor lut_bad = Tensor::zeros(2, 10);
  EXPECT_THROW(lut_kron_dot(a, b, lut_bad, 3), CheckError);
}

}  // namespace
}  // namespace tg::nn
