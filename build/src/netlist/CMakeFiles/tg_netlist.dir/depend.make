# Empty dependencies file for tg_netlist.
# This may be replaced when dependencies are built.
