#include "common.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "liberty/library_builder.hpp"
#include "nn/serialize.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace tg::bench {

core::TimingGnnConfig BenchConfig::gnn_config(bool use_net_aux,
                                              bool use_cell_aux) const {
  core::TimingGnnConfig cfg;
  cfg.net.hidden = hidden;
  cfg.net.mlp_hidden = hidden;
  cfg.net.mlp_layers = 2;
  cfg.net.num_layers = 3;  // paper: 3 net convolution layers
  cfg.prop.hidden = hidden;
  cfg.prop.mlp_hidden = hidden;
  cfg.prop.mlp_layers = 2;
  cfg.prop.lut.mlp_hidden = hidden;
  cfg.prop.lut.mlp_layers = 2;
  cfg.use_net_aux = use_net_aux;
  cfg.use_cell_aux = use_cell_aux;
  cfg.seed = seed;
  return cfg;
}

core::NetEmbedConfig BenchConfig::net_embed_config() const {
  core::NetEmbedConfig cfg;
  cfg.hidden = hidden;
  cfg.mlp_hidden = hidden;
  cfg.mlp_layers = 2;
  cfg.num_layers = 3;
  return cfg;
}

core::TrainOptions BenchConfig::train_options(int epoch_count) const {
  core::TrainOptions opt;
  opt.epochs = epoch_count;
  opt.lr = lr;
  opt.lr_final = lr_final;
  opt.grad_clip = 5.0f;
  opt.verbose = verbose;
  return opt;
}

BenchConfig parse_bench_config(int argc, const char* const* argv) {
  const CliOptions opts(argc, argv);
  BenchConfig cfg;
  cfg.scale = opts.get_double("scale", cfg.scale);
  cfg.hidden = static_cast<int>(opts.get_int("hidden", cfg.hidden));
  cfg.epochs = static_cast<int>(opts.get_int("epochs", cfg.epochs));
  cfg.gcnii_epochs =
      static_cast<int>(opts.get_int("gcnii-epochs", cfg.gcnii_epochs));
  cfg.net_embed_epochs =
      static_cast<int>(opts.get_int("net-embed-epochs", cfg.net_embed_epochs));
  cfg.lr = static_cast<float>(opts.get_double("lr", cfg.lr));
  cfg.lr_final = static_cast<float>(opts.get_double("lr-final", cfg.lr_final));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  cfg.verbose = opts.get_bool("verbose", false);
  cfg.cache_dir = opts.get("cache-dir", cfg.cache_dir);
  cfg.out_dir = opts.get("out-dir", cfg.out_dir);
  cfg.threads = configure_threads(opts);
  set_log_level(cfg.verbose ? LogLevel::kInfo : LogLevel::kWarn);
  return cfg;
}

data::SuiteDataset build_dataset(const BenchConfig& config,
                                 const std::vector<std::string>& only) {
  static Library* library = new Library(build_library());
  data::DatasetOptions options;
  options.scale = config.scale;
  std::printf("# building dataset (scale=%.4f, threads=%d)...\n", config.scale,
              num_threads());
  std::fflush(stdout);
  data::SuiteDataset ds;
  {
    ScopedTimer timer([&ds](double s) {
      std::printf("# dataset ready: %zu designs in %.1f s\n", ds.graphs.size(),
                  s);
      std::fflush(stdout);
    });
    ds = build_suite_dataset(*library, options, only);
  }
  return ds;
}

std::unique_ptr<core::TimingGnnTrainer> train_or_load_full_model(
    const BenchConfig& config, const data::SuiteDataset& dataset) {
  auto trainer = std::make_unique<core::TimingGnnTrainer>(
      config.gnn_config(), config.train_options(config.epochs));

  std::ostringstream name;
  name << "timing_gnn_full_s" << config.scale << "_h" << config.hidden << "_e"
       << config.epochs << "_lrf" << config.lr_final << "_seed" << config.seed
       << "_n" << dataset.train_ids.size() << ".bin";
  const std::filesystem::path cache =
      std::filesystem::path(config.cache_dir) / name.str();

  if (std::filesystem::exists(cache)) {
    std::printf("# loading cached full model: %s\n", cache.string().c_str());
    nn::load_parameters(trainer->model(), cache.string());
    return trainer;
  }
  std::printf("# training full timing GNN (%d epochs, hidden=%d)...\n",
              config.epochs, config.hidden);
  std::fflush(stdout);
  {
    ScopedTimer timer(
        [](double s) { std::printf("# trained in %.1f s\n", s); });
    trainer->fit(dataset);
  }
  std::error_code ec;
  std::filesystem::create_directories(config.cache_dir, ec);
  if (!ec) {
    nn::save_parameters(trainer->model(), cache.string());
    std::printf("# cached model: %s\n", cache.string().c_str());
  }
  return trainer;
}

std::string fmt_r2(double value) { return format_fixed(value, 4); }

}  // namespace tg::bench
