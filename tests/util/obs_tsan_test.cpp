/// Thread-safety hammer for the obs layer, built to run under
/// TG_SANITIZE=thread (`ctest -L tsan`): pool workers record spans,
/// counters and histogram samples concurrently while the main thread takes
/// snapshots and writes a trace dump mid-flight — exactly the "dump while
/// the pool is busy" pattern the per-thread buffers were designed for.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"
#include "util/parallel.hpp"

namespace tg::obs {
namespace {

class ObsTsanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = num_threads();
    set_trace_level(kSpanVerbose);
    set_metrics_enabled(true);
    clear_trace();
    reset_metrics();
  }
  void TearDown() override {
    set_metrics_enabled(false);
    set_trace_level(-1);
    clear_trace();
    reset_metrics();
    set_num_threads(saved_threads_);
  }
  int saved_threads_ = 1;
};

TEST_F(ObsTsanTest, ConcurrentSpansCountersAndSnapshots) {
  set_num_threads(8);
  Counter& hits = counter("tsan/hits");
  Histogram& values = histogram("tsan/values");
  const std::string path =
      (std::filesystem::temp_directory_path() / "tg_obs_tsan_trace.json")
          .string();

  for (int round = 0; round < 4; ++round) {
    parallel_for(0, 4000, 16, [&](std::int64_t b, std::int64_t e) {
      TG_TRACE_SCOPE("tsan/chunk", kSpanDetail);
      for (std::int64_t i = b; i < e; ++i) {
        TG_TRACE_SCOPE("tsan/item", kSpanVerbose);
        hits.add(1);
        values.record(static_cast<std::uint64_t>(i));
        TG_METRIC_COUNT("tsan/macro_hits", 1);
        TG_METRIC_GAUGE_SET("tsan/last", i);
      }
    });
    // Snapshot + dump while nothing guarantees the workers' buffers are
    // quiescent relative to other rounds.
    const MetricsSnapshot snap = snapshot_metrics();
    EXPECT_GE(snap.counters.size(), 2u);
    EXPECT_TRUE(write_trace_json(path));
    (void)collected_trace_events();
    (void)trace_stats();
  }

  EXPECT_EQ(hits.value(), 4u * 4000u);
  EXPECT_EQ(counter("tsan/macro_hits").value(), 4u * 4000u);
  const Histogram::Snapshot s = values.snapshot();
  EXPECT_EQ(s.count, 4u * 4000u);
  // Spans either landed in a buffer or were counted as dropped; none lost.
  const TraceStats stats = trace_stats();
  EXPECT_GT(stats.recorded, 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tg::obs
