#include "liberty/liberty_io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace tg {

namespace {

const char* kCornerTag[kNumCorners] = {"early_rise", "early_fall",
                                       "late_rise", "late_fall"};

int corner_from_tag(const std::string& tag, int line) {
  for (int c = 0; c < kNumCorners; ++c) {
    if (tag == kCornerTag[c]) return c;
  }
  TG_CHECK_MSG(false, "line " << line << ": unknown corner tag " << tag);
  return -1;
}

const char* sense_name(Sense s) {
  switch (s) {
    case Sense::kPositive: return "positive_unate";
    case Sense::kNegative: return "negative_unate";
    case Sense::kNonUnate: return "non_unate";
  }
  return "non_unate";
}

Sense sense_from_name(const std::string& s, int line) {
  if (s == "positive_unate") return Sense::kPositive;
  if (s == "negative_unate") return Sense::kNegative;
  if (s == "non_unate") return Sense::kNonUnate;
  TG_CHECK_MSG(false, "line " << line << ": unknown timing_sense " << s);
  return Sense::kNonUnate;
}

void write_axis(std::ostream& out, const char* name,
                const std::array<double, kLutDim>& axis, int indent) {
  out << std::string(static_cast<std::size_t>(indent), ' ') << name << " (\"";
  for (int i = 0; i < kLutDim; ++i) {
    if (i) out << ", ";
    out << format_fixed(axis[static_cast<std::size_t>(i)], 9);
  }
  out << "\");\n";
}

void write_lut(std::ostream& out, const char* group, const char* tag,
               const NldmLut& lut, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << group << " (" << tag << ") {\n";
  write_axis(out, "index_1", lut.slew_axis(), indent + 2);
  write_axis(out, "index_2", lut.load_axis(), indent + 2);
  out << pad << "  values ( \\\n";
  for (int i = 0; i < kLutDim; ++i) {
    out << pad << "    \"";
    for (int j = 0; j < kLutDim; ++j) {
      if (j) out << ", ";
      out << format_fixed(lut.at(i, j), 9);
    }
    out << (i + 1 < kLutDim ? "\", \\\n" : "\" \\\n");
  }
  out << pad << "  );\n" << pad << "}\n";
}

void write_per_corner(std::ostream& out, const char* name, const PerCorner& v,
                      int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (int c = 0; c < kNumCorners; ++c) {
    out << pad << name << '_' << kCornerTag[c] << " : "
        << format_fixed(v[c], 9) << ";\n";
  }
}

// ---------------------------------------------------------------------
// Tokenizer for the parser.
struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& in) : in_(in) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    const int c = in_.peek();
    if (c == EOF) return t;
    if (std::isalpha(c) || c == '_') {
      t.kind = Token::kIdent;
      while (std::isalnum(in_.peek()) || in_.peek() == '_') {
        t.text.push_back(static_cast<char>(in_.get()));
      }
      return t;
    }
    const bool sign_start = (c == '-' || c == '+' || c == '.');
    if (std::isdigit(c) || sign_start) {
      if (sign_start) {
        // Only a number if a digit follows ("->" must stay punctuation).
        const char first = static_cast<char>(in_.get());
        const int peeked = in_.peek();
        in_.unget();
        (void)first;
        if (!std::isdigit(peeked) && peeked != '.') {
          t.kind = Token::kPunct;
          t.text.push_back(static_cast<char>(in_.get()));
          return t;
        }
      }
      t.kind = Token::kNumber;
      while (std::isdigit(in_.peek()) || in_.peek() == '-' ||
             in_.peek() == '+' || in_.peek() == '.' || in_.peek() == 'e' ||
             in_.peek() == 'E') {
        t.text.push_back(static_cast<char>(in_.get()));
      }
      return t;
    }
    if (c == '"') {
      in_.get();
      t.kind = Token::kString;
      while (in_.peek() != '"' && in_.peek() != EOF) {
        const char ch = static_cast<char>(in_.get());
        if (ch == '\n') ++line_;
        t.text.push_back(ch);
      }
      TG_CHECK_MSG(in_.get() == '"', "line " << line_ << ": unterminated string");
      return t;
    }
    t.kind = Token::kPunct;
    t.text.push_back(static_cast<char>(in_.get()));
    return t;
  }

 private:
  void skip_ws_and_comments() {
    for (;;) {
      int c = in_.peek();
      if (c == '\n') ++line_;
      if (std::isspace(c)) {
        in_.get();
        continue;
      }
      if (c == '\\') {  // line continuation
        in_.get();
        continue;
      }
      if (c == '/') {
        in_.get();
        if (in_.peek() == '/') {
          while (in_.peek() != '\n' && in_.peek() != EOF) in_.get();
          continue;
        }
        TG_CHECK_MSG(false, "line " << line_ << ": stray '/'");
      }
      return;
    }
  }

  std::istream& in_;
  int line_ = 1;
};

/// Recursive-descent parser over group(args) { statements } syntax.
class Parser {
 public:
  explicit Parser(std::istream& in) : lex_(in) { advance(); }

  Library parse_library() {
    expect_ident("library");
    skip_args();
    expect_punct("{");
    Library lib;
    while (!at_punct("}")) {
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      if (head == "cell") {
        advance();
        lib.add_cell(parse_cell());
      } else {
        advance();
        skip_statement();
      }
    }
    expect_punct("}");
    return lib;
  }

 private:
  CellType parse_cell() {
    CellType cell;
    expect_punct("(");
    cell.name = take_name();
    expect_punct(")");
    expect_punct("{");
    while (!at_punct("}")) {
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      if (head == "pin") {
        cell.pins.push_back(parse_pin(cell));
      } else if (head == "timing") {
        cell.arcs.push_back(parse_timing(cell));
      } else if (head == "function_class") {
        cell.function = take_attr_value();
      } else if (head == "drive_strength") {
        cell.drive = static_cast<int>(take_attr_number());
      } else if (head == "is_sequential") {
        cell.is_sequential = take_attr_value() == "true";
      } else if (starts_with(head, "setup_")) {
        cell.setup[corner_from_tag(head.substr(6), cur_.line)] =
            take_attr_number();
      } else if (starts_with(head, "hold_")) {
        cell.hold[corner_from_tag(head.substr(5), cur_.line)] =
            take_attr_number();
      } else {
        skip_statement();
      }
    }
    expect_punct("}");
    // Reconstruct sequential pin roles from pin flags.
    if (cell.is_sequential) {
      for (std::size_t i = 0; i < cell.pins.size(); ++i) {
        const CellPin& p = cell.pins[i];
        if (p.is_clock) cell.clock_pin = static_cast<int>(i);
        else if (p.dir == PinDir::kInput) cell.data_pin = static_cast<int>(i);
        else cell.output_pin = static_cast<int>(i);
      }
    }
    return cell;
  }

  CellPin parse_pin(const CellType&) {
    CellPin pin;
    expect_punct("(");
    pin.name = take_name();
    expect_punct(")");
    expect_punct("{");
    while (!at_punct("}")) {
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      if (head == "direction") {
        pin.dir = take_attr_value() == "output" ? PinDir::kOutput
                                                : PinDir::kInput;
      } else if (head == "clock") {
        pin.is_clock = take_attr_value() == "true";
      } else if (starts_with(head, "capacitance_")) {
        pin.cap[corner_from_tag(head.substr(12), cur_.line)] =
            take_attr_number();
      } else {
        skip_statement();
      }
    }
    expect_punct("}");
    return pin;
  }

  TimingArc parse_timing(const CellType& cell) {
    TimingArc arc;
    expect_punct("(");
    const std::string from = take_name();
    // "->" rendered as two puncts
    expect_punct("-");
    expect_punct(">");
    const std::string to = take_name();
    expect_punct(")");
    arc.from_pin = find_pin_index(cell, from);
    arc.to_pin = find_pin_index(cell, to);
    expect_punct("{");
    while (!at_punct("}")) {
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      if (head == "timing_sense") {
        arc.sense = sense_from_name(take_attr_value(), cur_.line);
      } else if (head == "cell_delay" || head == "output_slew") {
        expect_punct("(");
        const int corner = corner_from_tag(take_name(), cur_.line);
        expect_punct(")");
        const NldmLut lut = parse_lut();
        (head == "cell_delay" ? arc.delay : arc.out_slew)[corner] = lut;
      } else {
        skip_statement();
      }
    }
    expect_punct("}");
    return arc;
  }

  NldmLut parse_lut() {
    std::array<double, kLutDim> slew{}, load{};
    std::array<double, kLutCells> values{};
    expect_punct("{");
    while (!at_punct("}")) {
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      expect_punct("(");
      if (head == "index_1" || head == "index_2") {
        auto& axis = head == "index_1" ? slew : load;
        const std::vector<double> vals = take_number_string();
        TG_CHECK_MSG(vals.size() == kLutDim,
                     "line " << cur_.line << ": axis needs " << kLutDim
                             << " values");
        std::copy(vals.begin(), vals.end(), axis.begin());
        expect_punct(")");
        expect_punct(";");
      } else if (head == "values") {
        int row = 0;
        while (!at_punct(")")) {
          const std::vector<double> vals = take_number_string();
          TG_CHECK_MSG(vals.size() == kLutDim,
                       "line " << cur_.line << ": row needs " << kLutDim
                               << " values");
          TG_CHECK_MSG(row < kLutDim, "too many value rows");
          std::copy(vals.begin(), vals.end(),
                    values.begin() + row * kLutDim);
          ++row;
          if (at_punct(",")) advance();
        }
        TG_CHECK_MSG(row == kLutDim, "expected " << kLutDim << " value rows");
        expect_punct(")");
        expect_punct(";");
      } else {
        TG_CHECK_MSG(false, "line " << cur_.line << ": unknown LUT field "
                                    << head);
      }
    }
    expect_punct("}");
    return NldmLut(slew, load, values);
  }

  static int find_pin_index(const CellType& cell, const std::string& name) {
    for (std::size_t i = 0; i < cell.pins.size(); ++i) {
      if (cell.pins[i].name == name) return static_cast<int>(i);
    }
    TG_CHECK_MSG(false, "timing arc references unknown pin " << name);
    return -1;
  }

  // ---- token helpers ------------------------------------------------
  void advance() { cur_ = lex_.next(); }
  [[nodiscard]] bool at_punct(const char* p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }
  void expect_kind(Token::Kind k) {
    TG_CHECK_MSG(cur_.kind == k, "line " << cur_.line
                                         << ": unexpected token '" << cur_.text
                                         << "'");
  }
  void expect_punct(const char* p) {
    TG_CHECK_MSG(at_punct(p), "line " << cur_.line << ": expected '" << p
                                      << "', got '" << cur_.text << "'");
    advance();
  }
  void expect_ident(const char* name) {
    TG_CHECK_MSG(cur_.kind == Token::kIdent && cur_.text == name,
                 "line " << cur_.line << ": expected '" << name << "'");
    advance();
  }
  std::string take_name() {
    expect_kind(Token::kIdent);
    std::string s = cur_.text;
    advance();
    return s;
  }
  std::string take_attr_value() {
    expect_punct(":");
    std::string s = cur_.text;
    advance();
    expect_punct(";");
    return s;
  }
  double take_attr_number() {
    expect_punct(":");
    expect_kind(Token::kNumber);
    const double v = std::strtod(cur_.text.c_str(), nullptr);
    advance();
    expect_punct(";");
    return v;
  }
  /// A quoted, comma-separated number list: "0.1, 0.2, ...".
  std::vector<double> take_number_string() {
    expect_kind(Token::kString);
    std::vector<double> out;
    for (const std::string& field : split(cur_.text, ',')) {
      out.push_back(std::strtod(std::string(trim(field)).c_str(), nullptr));
    }
    advance();
    return out;
  }
  /// Skips the rest of an unrecognized statement (attribute or group).
  void skip_statement() {
    if (at_punct(":")) {
      while (!at_punct(";")) advance();
      advance();
      return;
    }
    if (at_punct("(")) {
      int depth = 0;
      do {
        if (at_punct("(")) ++depth;
        if (at_punct(")")) --depth;
        advance();
      } while (depth > 0);
    }
    if (at_punct("{")) {
      int depth = 0;
      do {
        if (at_punct("{")) ++depth;
        if (at_punct("}")) --depth;
        advance();
      } while (depth > 0);
      return;
    }
    if (at_punct(";")) advance();
  }
  void skip_args() {
    expect_punct("(");
    while (!at_punct(")")) advance();
    advance();
  }

  Lexer lex_;
  Token cur_;
};

}  // namespace

void write_liberty(const Library& library, std::ostream& out,
                   const std::string& library_name) {
  out << "library (" << library_name << ") {\n";
  out << "  time_unit : ns;\n";
  out << "  capacitance_unit : pf;\n";
  for (const CellType& cell : library.cells()) {
    out << "  cell (" << cell.name << ") {\n";
    out << "    function_class : " << cell.function << ";\n";
    out << "    drive_strength : " << cell.drive << ";\n";
    out << "    is_sequential : " << (cell.is_sequential ? "true" : "false")
        << ";\n";
    if (cell.is_sequential) {
      write_per_corner(out, "setup", cell.setup, 4);
      write_per_corner(out, "hold", cell.hold, 4);
    }
    for (const CellPin& pin : cell.pins) {
      out << "    pin (" << pin.name << ") {\n";
      out << "      direction : "
          << (pin.dir == PinDir::kOutput ? "output" : "input") << ";\n";
      out << "      clock : " << (pin.is_clock ? "true" : "false") << ";\n";
      if (pin.dir == PinDir::kInput) {
        write_per_corner(out, "capacitance", pin.cap, 6);
      }
      out << "    }\n";
    }
    for (const TimingArc& arc : cell.arcs) {
      out << "    timing ("
          << cell.pins[static_cast<std::size_t>(arc.from_pin)].name << " -> "
          << cell.pins[static_cast<std::size_t>(arc.to_pin)].name << ") {\n";
      out << "      timing_sense : " << sense_name(arc.sense) << ";\n";
      for (int c = 0; c < kNumCorners; ++c) {
        write_lut(out, "cell_delay", kCornerTag[c], arc.delay[c], 6);
        write_lut(out, "output_slew", kCornerTag[c], arc.out_slew[c], 6);
      }
      out << "    }\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

void write_liberty_file(const Library& library, const std::string& path,
                        const std::string& library_name) {
  std::ofstream out(path);
  TG_CHECK_MSG(out.is_open(), "cannot write " << path);
  write_liberty(library, out, library_name);
  TG_CHECK_MSG(out.good(), "write failure on " << path);
}

Library read_liberty(std::istream& in) {
  Parser parser(in);
  return parser.parse_library();
}

Library read_liberty_file(const std::string& path) {
  std::ifstream in(path);
  TG_CHECK_MSG(in.is_open(), "cannot read " << path);
  return read_liberty(in);
}

}  // namespace tg
