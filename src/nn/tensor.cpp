#include "nn/tensor.hpp"

#include <algorithm>
#include <unordered_set>

#include <chrono>

#include "util/check.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"

namespace tg::nn {

Tensor Tensor::zeros(std::int64_t rows, std::int64_t cols,
                     bool requires_grad) {
  return full(rows, cols, 0.0f, requires_grad);
}

Tensor Tensor::full(std::int64_t rows, std::int64_t cols, float value,
                    bool requires_grad) {
  TG_CHECK(rows >= 0 && cols >= 1);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(static_cast<std::size_t>(rows * cols), value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::from_vector(std::vector<float> values, std::int64_t rows,
                           std::int64_t cols, bool requires_grad) {
  TG_CHECK_MSG(static_cast<std::int64_t>(values.size()) == rows * cols,
               "from_vector: " << values.size() << " values for " << rows
                               << "x" << cols);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign_copy(values.data(), values.size());
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::rand_uniform(std::int64_t rows, std::int64_t cols, float bound,
                            Rng& rng, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.resize_discard(static_cast<std::size_t>(rows * cols));
  for (float& v : impl->data) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

std::span<float> Tensor::grad() {
  impl_->ensure_grad();
  return impl_->grad;
}

std::span<const float> Tensor::grad() const {
  TG_CHECK_MSG(impl_->grad.size() == impl_->data.size(),
               "grad not allocated; call backward() first");
  return impl_->grad;
}

float Tensor::item() const {
  TG_CHECK_MSG(numel() == 1, "item() on tensor with " << numel() << " values");
  return impl_->data[0];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  TG_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  return impl_->data[static_cast<std::size_t>(r * cols() + c)];
}

void Tensor::zero_grad() {
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

void Tensor::backward() {
  TG_TRACE_SCOPE("nn/backward", obs::kSpanDetail);
  TG_CHECK_MSG(numel() == 1, "backward() requires a scalar loss");
  // Topological order by iterative DFS.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Hoisted grad allocation: every tensor that participates in this
  // backward gets its buffer up front, so the ensure_grad() calls inside
  // the closures are no-op size checks instead of per-consumer
  // allocation probes (and repeated consumers keep accumulating into the
  // same buffer).
  for (TensorImpl* node : order) {
    if (node->requires_grad) node->ensure_grad();
  }
  impl_->ensure_grad();  // the seed needs a buffer even without grad
  impl_->grad[0] = 1.0f;
  // The tape itself replays serially — closures may parallelize their own
  // interior loops, but closure-vs-closure ordering stays deterministic.
  if (!obs::metrics_enabled()) {
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      TensorImpl* node = *it;
      if (node->backward_fn && !node->grad.empty()) {
        node->backward_fn(*node);
      }
    }
    return;
  }
  // Metrics path: attribute each closure's wall time to a `bwd/<op>`
  // histogram. Op labels are static-storage literals, so a tiny
  // pointer-keyed cache avoids a registry lookup per node.
  std::vector<std::pair<const char*, obs::Histogram*>> hists;
  auto hist_of = [&hists](const char* op) -> obs::Histogram& {
    for (auto& [k, h] : hists) {
      if (k == op) return *h;
    }
    obs::Histogram& h =
        obs::histogram(std::string("bwd/") + (op != nullptr ? op : "other"));
    hists.emplace_back(op, &h);
    return h;
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      node->backward_fn(*node);
      const auto t1 = std::chrono::steady_clock::now();
      hist_of(node->op).record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
  }
}

Tensor detach(const Tensor& t) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = t.rows();
  impl->cols = t.cols();
  impl->data.assign_copy(t.data().data(), t.data().size());
  return Tensor(std::move(impl));
}

}  // namespace tg::nn
