#include "util/fault.hpp"

#include <cstdlib>
#include <mutex>

namespace tg::fault {

namespace {

/// One fault domain: an env var + its armed (op, nth, count) window and
/// match counter. Domains are independent — arming a serve fault never
/// perturbs io state.
struct FaultState {
  explicit FaultState(const char* var) : env_var(var) {}

  const char* env_var;
  std::mutex mutex;
  bool env_parsed = false;
  std::string op;       // empty = disarmed
  long long nth = 0;    // 1-based first failing match
  long long count = 1;  // consecutive failing matches from nth on
  long long matched = 0;

  /// Parses <op>:<nth>[:<count>] from this domain's env var. Malformed
  /// values disarm (and are ignored): fault injection is a test facility,
  /// not a user-facing contract.
  void parse_env_locked() {
    env_parsed = true;
    const char* env = std::getenv(env_var);
    if (env == nullptr) return;
    const std::string spec(env);
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0) return;
    char* end = nullptr;
    const long long n = std::strtoll(spec.c_str() + colon + 1, &end, 10);
    if (n <= 0) return;
    long long c = 1;
    if (end != nullptr && *end == ':') {
      c = std::strtoll(end + 1, nullptr, 10);
      if (c <= 0) return;
    }
    op = spec.substr(0, colon);
    nth = n;
    count = c;
  }

  void arm(const std::string& armed_op, long long armed_nth,
           long long armed_count) {
    const std::lock_guard<std::mutex> lock(mutex);
    env_parsed = true;  // explicit arming overrides the env var
    op = armed_op;
    nth = armed_nth;
    count = armed_count;
    matched = 0;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex);
    env_parsed = true;
    op.clear();
    nth = 0;
    count = 1;
    matched = 0;
  }

  void reparse() {
    const std::lock_guard<std::mutex> lock(mutex);
    op.clear();
    nth = 0;
    count = 1;
    matched = 0;
    parse_env_locked();
  }

  bool should_fail(const char* probe_op) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!env_parsed) parse_env_locked();
    if (op.empty() || op != probe_op) return false;
    ++matched;
    return matched >= nth && matched < nth + count;
  }

  long long matched_ops() {
    const std::lock_guard<std::mutex> lock(mutex);
    return matched;
  }
};

FaultState& io_state() {
  static FaultState s("TG_FAULT_IO");
  return s;
}

FaultState& serve_state() {
  static FaultState s("TG_FAULT_SERVE");
  return s;
}

FaultState& shard_state() {
  static FaultState s("TG_FAULT_SHARD");
  return s;
}

}  // namespace

void arm_io_fault(const std::string& op, long long nth) {
  io_state().arm(op, nth, 1);
}

void clear_io_fault() { io_state().clear(); }

void reparse_io_fault_env() { io_state().reparse(); }

bool should_fail_io(const char* op) { return io_state().should_fail(op); }

long long matched_io_ops() { return io_state().matched_ops(); }

void arm_serve_fault(const std::string& op, long long nth, long long count) {
  serve_state().arm(op, nth, count);
}

void clear_serve_fault() { serve_state().clear(); }

void reparse_serve_fault_env() { serve_state().reparse(); }

bool should_fail_serve(const char* op) {
  return serve_state().should_fail(op);
}

long long matched_serve_ops() { return serve_state().matched_ops(); }

void arm_shard_fault(const std::string& op, long long nth, long long count) {
  shard_state().arm(op, nth, count);
}

void clear_shard_fault() { shard_state().clear(); }

void reparse_shard_fault_env() { shard_state().reparse(); }

bool should_fail_shard(const char* op) {
  return shard_state().should_fail(op);
}

long long matched_shard_ops() { return shard_state().matched_ops(); }

}  // namespace tg::fault
