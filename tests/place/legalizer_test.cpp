#include "place/legalizer.hpp"

#include <gtest/gtest.h>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "util/check.hpp"

namespace tg {
namespace {

class LegalizerTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();

  Design placed(const char* name, double util = 0.5) {
    Design d = generate_design(suite_entry(name, 1.0 / 32).spec, lib_);
    PlacerConfig cfg;
    cfg.utilization = util;  // leave room for legal slots
    place_design(d, cfg);
    return d;
  }
};

TEST_F(LegalizerTest, ProducesLegalPlacement) {
  Design d = placed("spm");
  EXPECT_FALSE(placement_is_legal(d));  // jittered placement overlaps
  legalize_placement(d);
  EXPECT_TRUE(placement_is_legal(d));
}

TEST_F(LegalizerTest, InstancesStayInsideDie) {
  Design d = placed("usb");
  legalize_placement(d);
  for (const Instance& inst : d.instances()) {
    EXPECT_TRUE(d.die().contains(inst.pos)) << inst.name;
  }
}

TEST_F(LegalizerTest, DisplacementIsBoundedAndReported) {
  Design d = placed("spm");
  const LegalizeReport report = legalize_placement(d);
  EXPECT_GT(report.total_displacement_um, 0.0);
  EXPECT_GE(report.max_displacement_um,
            report.total_displacement_um / d.num_instances());
  // Greedy legalization of a reasonable placement should not move cells
  // across the whole die on average.
  const double avg =
      report.total_displacement_um / d.num_instances();
  EXPECT_LT(avg, 0.5 * (d.die().width() + d.die().height()));
}

TEST_F(LegalizerTest, PinsMoveWithInstances) {
  Design d = placed("spm");
  legalize_placement(d);
  LegalizerConfig cfg;
  for (const Instance& inst : d.instances()) {
    for (PinId p : inst.pins) {
      // Pins stay within a cell-footprint distance of the instance.
      EXPECT_LE(manhattan(d.pin(p).pos, inst.pos),
                2.0 * cfg.row_height_um + 1e-9);
    }
  }
}

TEST_F(LegalizerTest, IdempotentOnLegalInput) {
  Design d = placed("spm");
  legalize_placement(d);
  const LegalizeReport second = legalize_placement(d);
  EXPECT_NEAR(second.total_displacement_um, 0.0, 1e-9);
}

TEST_F(LegalizerTest, RejectsOverfullDie) {
  Design d = placed("spm");
  LegalizerConfig cfg;
  cfg.sites_per_instance = 100000;  // cannot fit
  EXPECT_THROW(legalize_placement(d, cfg), CheckError);
}

}  // namespace
}  // namespace tg
