#include "core/gcnii.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/test_fixture.hpp"

namespace tg::core {
namespace {

GcniiConfig tiny_config(int layers = 4) {
  GcniiConfig cfg;
  cfg.num_layers = layers;
  cfg.hidden = 8;
  return cfg;
}

TEST(GcniiAdjacency, SymmetricNormalization) {
  const auto& g = testing::train_graph();
  const GcniiAdjacency adj = build_gcnii_adjacency(g);
  // Edge count: 2×(net + cell) + self loops.
  EXPECT_EQ(adj.src.size(),
            2 * (g.net_src.size() + g.cell_src.size()) +
                static_cast<std::size_t>(g.num_nodes));
  // Weights positive, symmetric (w(u,v) == w(v,u) since paired entries are
  // adjacent), and self loops carry exactly 1/d(v).
  std::vector<int> degree(static_cast<std::size_t>(g.num_nodes), 1);
  for (std::size_t e = 0; e < g.net_src.size(); ++e) {
    ++degree[static_cast<std::size_t>(g.net_src[e])];
    ++degree[static_cast<std::size_t>(g.net_dst[e])];
  }
  for (std::size_t e = 0; e < g.cell_src.size(); ++e) {
    ++degree[static_cast<std::size_t>(g.cell_src[e])];
    ++degree[static_cast<std::size_t>(g.cell_dst[e])];
  }
  for (std::size_t e = 0; e < adj.src.size(); ++e) {
    EXPECT_GT(adj.w[e], 0.0f);
    const double expected =
        1.0 / std::sqrt(static_cast<double>(degree[static_cast<std::size_t>(adj.src[e])]) *
                        static_cast<double>(degree[static_cast<std::size_t>(adj.dst[e])]));
    EXPECT_NEAR(adj.w[e], expected, 1e-6);
  }
}

TEST(Gcnii, ForwardShapes) {
  const Gcnii model(tiny_config());
  const auto& g = testing::train_graph();
  const GcniiAdjacency adj = build_gcnii_adjacency(g);
  const nn::Tensor pred = model.forward(g, adj);
  EXPECT_EQ(pred.rows(), g.num_nodes);
  EXPECT_EQ(pred.cols(), 2 * kNumCorners);
  for (float v : pred.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Gcnii, DepthChangesOutput) {
  const auto& g = testing::train_graph();
  const GcniiAdjacency adj = build_gcnii_adjacency(g);
  const Gcnii shallow(tiny_config(2));
  const Gcnii deep(tiny_config(8));
  const nn::Tensor a = shallow.forward(g, adj);
  const nn::Tensor b = deep.forward(g, adj);
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.numel(); i += 17) {
    diff += std::abs(a.data()[static_cast<std::size_t>(i)] -
                     b.data()[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Gcnii, ParameterCountScalesWithDepth) {
  const Gcnii l4(tiny_config(4));
  const Gcnii l8(tiny_config(8));
  EXPECT_GT(l8.num_parameters(), l4.num_parameters());
  // in + layers + head, each with W and b.
  EXPECT_EQ(l4.parameters().size(), 2u * (1 + 4 + 1));
}

TEST(Gcnii, ResidualKeepsDeepOutputsBounded) {
  // GCNII's residual/identity design keeps a 16-layer forward finite.
  const Gcnii deep(tiny_config(16));
  const auto& g = testing::train_graph();
  const GcniiAdjacency adj = build_gcnii_adjacency(g);
  const nn::Tensor pred = deep.forward(g, adj);
  for (float v : pred.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 1e4f);
  }
}

TEST(Gcnii, LayerNormVariantRunsAndAddsParameters) {
  GcniiConfig plain_cfg = tiny_config(4);
  GcniiConfig norm_cfg = tiny_config(4);
  norm_cfg.use_layer_norm = true;
  const Gcnii plain(plain_cfg);
  Gcnii normed(norm_cfg);
  // 4 layers × (gamma + beta) extra tensors.
  EXPECT_EQ(normed.parameters().size(), plain.parameters().size() + 8);

  const auto& g = testing::train_graph();
  const GcniiAdjacency adj = build_gcnii_adjacency(g);
  const nn::Tensor pred = normed.forward(g, adj);
  EXPECT_EQ(pred.rows(), g.num_nodes);
  for (float v : pred.data()) EXPECT_TRUE(std::isfinite(v));
  // Gradients reach the norm parameters.
  normed.loss(g, normed.forward(g, adj)).backward();
  int with_grad = 0;
  for (const nn::Tensor& p : normed.parameters()) {
    nn::Tensor copy = p;
    double norm = 0.0;
    for (float v : copy.grad()) norm += std::abs(v);
    if (norm > 0.0) ++with_grad;
  }
  EXPECT_EQ(with_grad, static_cast<int>(normed.parameters().size()));
}

TEST(Gcnii, LossBackwardProducesGradients) {
  Gcnii model(tiny_config());
  const auto& g = testing::train_graph();
  const GcniiAdjacency adj = build_gcnii_adjacency(g);
  model.loss(g, model.forward(g, adj)).backward();
  for (const nn::Tensor& p : model.parameters()) {
    nn::Tensor copy = p;
    double norm = 0.0;
    for (float v : copy.grad()) norm += std::abs(v);
    EXPECT_GT(norm, 0.0);
  }
}

}  // namespace
}  // namespace tg::core
