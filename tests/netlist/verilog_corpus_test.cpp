/// Malformed-input corpus for the Verilog and placement readers: each case
/// is a handcrafted broken file with an exact expected diagnostic. These
/// pin down the error-recovery contract — every problem reported, with
/// file:line and the offending token, and parsing continues.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/verilog_io.hpp"
#include "testing/fixtures.hpp"

namespace tg {
namespace {

class VerilogCorpus : public ::testing::Test {
 protected:
  Library lib_ = tg::testing::small_library();

  DiagSink parse(const std::string& text, Design* out = nullptr) {
    std::istringstream in(text);
    DiagSink sink;
    Design d = read_verilog(in, &lib_, sink, "corpus.v");
    if (out != nullptr) *out = std::move(d);
    return sink;
  }
};

TEST_F(VerilogCorpus, TruncatedFileReportsEofWithFileContext) {
  const DiagSink sink = parse(
      "module top (a);\n"
      "  input a;\n"
      "  wire w;\n"
      "  assign w = a;\n");
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("unexpected end of file in module body"));
  // Every parse diagnostic carries the file path.
  EXPECT_NE(sink.report_text().find("corpus.v"), std::string::npos);
}

TEST_F(VerilogCorpus, UnknownCellNamesTheTokenAndLine) {
  const DiagSink sink = parse(
      "module top (a);\n"
      "  input a;\n"
      "  wire w;\n"
      "  assign w = a;\n"
      "  FOOBAR u1 (.A(w));\n"
      "endmodule\n");
  EXPECT_EQ(sink.num_errors(), 1u);
  EXPECT_TRUE(sink.contains("unknown cell"));
  EXPECT_TRUE(sink.contains("FOOBAR"));
  EXPECT_NE(sink.report_text().find("corpus.v:5"), std::string::npos);
}

TEST_F(VerilogCorpus, DuplicateModuleIsDiagnosedAndSkipped) {
  Design d("placeholder", &lib_);
  const DiagSink sink = parse(
      "module top (a);\n"
      "  input a;\n"
      "module again (b);\n"
      "  wire w;\n"
      "endmodule\n",
      &d);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("duplicate 'module' declaration"));
  // Recovery continued: the wire after the bogus header still registered.
  EXPECT_EQ(d.num_nets(), 1);
}

TEST_F(VerilogCorpus, EmptyFileIsAnErrorNotACrash) {
  const DiagSink sink = parse("");
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("no module declaration found"));
}

TEST_F(VerilogCorpus, DuplicateWireAndPortDeclarations) {
  const DiagSink sink = parse(
      "module top (a);\n"
      "  input a;\n"
      "  input a;\n"
      "  wire w;\n"
      "  wire w;\n"
      "endmodule\n");
  EXPECT_EQ(sink.num_errors(), 2u);
  EXPECT_TRUE(sink.contains("duplicate port declaration"));
  EXPECT_TRUE(sink.contains("duplicate wire declaration"));
  EXPECT_NE(sink.report_text().find("corpus.v:3"), std::string::npos);
  EXPECT_NE(sink.report_text().find("corpus.v:5"), std::string::npos);
}

TEST_F(VerilogCorpus, MultipleErrorsAreAllCollectedInOnePass) {
  const DiagSink sink = parse(
      "module top (a);\n"
      "  input a;\n"
      "  FOOBAR u1 (.A(w));\n"
      "  wire w;\n"
      "  BAZ u2 (.Z(w));\n"
      "endmodule\n");
  // Recovery must surface both unknown cells, not stop at the first.
  EXPECT_EQ(sink.num_errors(), 2u);
  EXPECT_TRUE(sink.contains("FOOBAR"));
  EXPECT_TRUE(sink.contains("BAZ"));
}

TEST_F(VerilogCorpus, LegacyReaderThrowsAggregatedCheckError) {
  std::istringstream in("module top (a);\n  FOOBAR u1 (.A(w));\nendmodule\n");
  try {
    const Design d = read_verilog(in, &lib_);
    FAIL() << "expected DiagError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown cell"), std::string::npos);
  }
}

class PlacementCorpus : public ::testing::Test {
 protected:
  Library lib_ = tg::testing::small_library();
  Design design_ = tg::testing::small_design(lib_);

  DiagSink apply(const std::string& text) {
    std::istringstream in(text);
    DiagSink sink;
    read_placement(design_, in, sink, "corpus.pl");
    return sink;
  }
};

TEST_F(PlacementCorpus, DuplicateInstRecordFirstWins) {
  const DiagSink sink = apply(
      "die 0 0 100 100\n"
      "inst u1 10 20\n"
      "inst u1 90 90\n");
  EXPECT_EQ(sink.num_errors(), 1u);
  EXPECT_TRUE(sink.contains("duplicate inst record"));
  EXPECT_TRUE(sink.contains("u1"));
  EXPECT_NE(sink.report_text().find("corpus.pl:3"), std::string::npos);
  // The first record was applied, the duplicate ignored.
  EXPECT_DOUBLE_EQ(design_.instance(0).pos.x, 10.0);
  EXPECT_DOUBLE_EQ(design_.instance(0).pos.y, 20.0);
}

TEST_F(PlacementCorpus, DuplicatePortAndDieRecords) {
  const DiagSink sink = apply(
      "die 0 0 100 100\n"
      "die 0 0 50 50\n"
      "port a 1 2\n"
      "port a 3 4\n");
  EXPECT_EQ(sink.num_errors(), 2u);
  EXPECT_TRUE(sink.contains("duplicate die record"));
  EXPECT_TRUE(sink.contains("duplicate port record"));
}

TEST_F(PlacementCorpus, NonNumericCoordinateIsDiagnosed) {
  const DiagSink sink = apply(
      "die 0 0 100 100\n"
      "inst u1 ten 20\n");
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("bad inst record"));
}

TEST_F(PlacementCorpus, UnknownNamesAndRecordKindsAreReported) {
  const DiagSink sink = apply(
      "die 0 0 100 100\n"
      "inst nosuch 1 2\n"
      "port nosuch 1 2\n"
      "blob u1 1 2\n");
  EXPECT_EQ(sink.num_errors(), 3u);
  EXPECT_TRUE(sink.contains("unknown instance"));
  EXPECT_TRUE(sink.contains("unknown port"));
  EXPECT_TRUE(sink.contains("unknown record kind"));
  EXPECT_TRUE(sink.contains("blob"));
}

TEST_F(PlacementCorpus, MissingDieIsAnError) {
  const DiagSink sink = apply("inst u1 1 2\n");
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("lacks a die record"));
}

TEST_F(PlacementCorpus, EmptyFileReportsMissingDie) {
  const DiagSink sink = apply("");
  EXPECT_EQ(sink.num_errors(), 1u);
  EXPECT_TRUE(sink.contains("lacks a die record"));
}

}  // namespace
}  // namespace tg
