#pragma once
/// \file fixtures.hpp
/// Shared tiny fixtures for the fuzz and corpus suites: a two-cell library
/// (one inverter-like combinational cell + one flip-flop) and a five-net
/// design using both, small enough that ten thousand mutate→parse→validate
/// iterations stay fast.

#include <cstdlib>
#include <string>

#include "liberty/library_builder.hpp"
#include "netlist/design.hpp"

namespace tg::testing {

/// One combinational 2-pin cell plus one flip-flop from the synthetic
/// library (single drive strength keeps the Liberty text small).
inline Library small_library() {
  LibraryConfig cfg;
  cfg.drives = {1};
  const Library full = build_library(cfg);
  Library lib;
  bool have_inv = false, have_dff = false;
  for (const CellType& c : full.cells()) {
    if (c.is_sequential && !have_dff) {
      lib.add_cell(c);
      have_dff = true;
    } else if (!c.is_sequential && c.pins.size() == 2 && !have_inv) {
      lib.add_cell(c);
      have_inv = true;
    }
  }
  return lib;
}

/// PI → inv → DFF → inv → PO, with a clocked net and a valid die. Passes
/// Design::validate() and round-trips through write_verilog/read_verilog.
inline Design small_design(const Library& lib) {
  int inv = -1, dff = -1;
  for (int c = 0; c < lib.num_cells(); ++c) {
    (lib.cell(c).is_sequential ? dff : inv) = c;
  }
  const CellType& invc = lib.cell(inv);
  const int in_pin = invc.pins[0].dir == PinDir::kInput ? 0 : 1;
  const int out_pin = 1 - in_pin;
  const CellType& dffc = lib.cell(dff);

  Design d("fuzz_base", &lib);
  const PinId a = d.add_primary_input("a");
  const PinId clk = d.add_primary_input("clk");
  const PinId y = d.add_primary_output("y");
  const NetId n_in = d.add_net("n_in");
  const NetId n_clk = d.add_net("n_clk", /*is_clock=*/true);
  const NetId n_d = d.add_net("n_d");
  const NetId n_q = d.add_net("n_q");
  const NetId n_out = d.add_net("n_out");
  const InstId u1 = d.add_instance("u1", inv);
  const InstId u2 = d.add_instance("u2", dff);
  const InstId u3 = d.add_instance("u3", inv);
  d.connect(n_in, a);
  d.connect(n_in, d.instance(u1).pins[static_cast<std::size_t>(in_pin)]);
  d.connect(n_d, d.instance(u1).pins[static_cast<std::size_t>(out_pin)]);
  d.connect(n_d,
            d.instance(u2).pins[static_cast<std::size_t>(dffc.data_pin)]);
  d.connect(n_clk, clk);
  d.connect(n_clk,
            d.instance(u2).pins[static_cast<std::size_t>(dffc.clock_pin)]);
  d.connect(n_q,
            d.instance(u2).pins[static_cast<std::size_t>(dffc.output_pin)]);
  d.connect(n_q, d.instance(u3).pins[static_cast<std::size_t>(in_pin)]);
  d.connect(n_out, d.instance(u3).pins[static_cast<std::size_t>(out_pin)]);
  d.connect(n_out, y);
  d.set_clock(n_clk, 1.0);
  BBox die;
  die.expand(Point{0.0, 0.0});
  die.expand(Point{100.0, 100.0});
  d.set_die(die);
  return d;
}

/// Iteration budget for the fuzz drivers: TG_FUZZ_ITERS overrides the
/// 10,000-iteration default (e.g. for quick local runs or long soaks).
inline int fuzz_iters() {
  if (const char* env = std::getenv("TG_FUZZ_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10000;
}

}  // namespace tg::testing
