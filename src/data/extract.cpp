#include "data/extract.hpp"

#include "util/check.hpp"
#include "util/obs/trace.hpp"

namespace tg::data {

namespace {

nn::Tensor per_corner_tensor(const std::vector<PerCorner>& values,
                             float scale) {
  std::vector<float> flat;
  flat.reserve(values.size() * kNumCorners);
  for (const PerCorner& v : values) {
    for (int c = 0; c < kNumCorners; ++c) {
      flat.push_back(static_cast<float>(v[c]) * scale);
    }
  }
  return nn::Tensor::from_vector(std::move(flat),
                                 static_cast<std::int64_t>(values.size()),
                                 kNumCorners);
}

}  // namespace

DatasetGraph extract_graph(const Design& design, const TimingGraph& graph,
                           const DesignRouting& truth, const StaResult& sta) {
  TG_TRACE_SCOPE("data/extract", obs::kSpanCoarse);
  DatasetGraph g;
  g.name = design.name();
  g.num_nodes = design.num_pins();
  g.num_levels = graph.num_levels();
  g.clock_period = design.clock_period();
  g.stats = design.stats();

  const BBox& die = design.die();

  // ---- node features (Table 2) ----------------------------------------
  {
    std::vector<float> feat;
    feat.reserve(static_cast<std::size_t>(g.num_nodes) * kNodeFeatureDim);
    for (PinId p = 0; p < design.num_pins(); ++p) {
      const Pin& pin = design.pin(p);
      feat.push_back(pin.is_port ? 1.0f : 0.0f);
      feat.push_back(pin.drives_net ? 1.0f : 0.0f);
      feat.push_back(static_cast<float>(pin.pos.x - die.xmin) * kDistScale);
      feat.push_back(static_cast<float>(die.xmax - pin.pos.x) * kDistScale);
      feat.push_back(static_cast<float>(pin.pos.y - die.ymin) * kDistScale);
      feat.push_back(static_cast<float>(die.ymax - pin.pos.y) * kDistScale);
      for (int c = 0; c < kNumCorners; ++c) {
        feat.push_back(static_cast<float>(design.pin_cap(p, c)) * kCapScale);
      }
    }
    g.node_feat = nn::Tensor::from_vector(std::move(feat), g.num_nodes,
                                          kNodeFeatureDim);
  }

  // ---- net edges -------------------------------------------------------
  {
    const auto& arcs = graph.net_arcs();
    std::vector<float> feat;
    feat.reserve(arcs.size() * kNetEdgeFeatureDim);
    g.net_src.reserve(arcs.size());
    g.net_dst.reserve(arcs.size());
    for (const NetArc& a : arcs) {
      g.net_src.push_back(a.from);
      g.net_dst.push_back(a.to);
      const Point& dp = design.pin(a.from).pos;
      const Point& sp = design.pin(a.to).pos;
      feat.push_back(static_cast<float>(std::abs(sp.x - dp.x)) * kDistScale);
      feat.push_back(static_cast<float>(std::abs(sp.y - dp.y)) * kDistScale);
    }
    g.net_edge_feat = nn::Tensor::from_vector(
        std::move(feat), static_cast<std::int64_t>(arcs.size()),
        kNetEdgeFeatureDim);
  }

  // ---- cell edges (Table 3: valid | axis indices | LUT values) ---------
  {
    const auto& arcs = graph.cell_arcs();
    std::vector<float> feat;
    feat.reserve(arcs.size() * kCellEdgeFeatureDim);
    g.cell_src.reserve(arcs.size());
    g.cell_dst.reserve(arcs.size());
    for (const CellArc& a : arcs) {
      g.cell_src.push_back(a.from);
      g.cell_dst.push_back(a.to);
      const TimingArc& lib = graph.lib_arc(a);
      // LUT order: delay[c0..c3], out_slew[c0..c3].
      const NldmLut* luts[kNumLutsPerArc];
      for (int c = 0; c < kNumCorners; ++c) {
        luts[c] = &lib.delay[c];
        luts[kNumCorners + c] = &lib.out_slew[c];
      }
      for (int l = 0; l < kNumLutsPerArc; ++l) feat.push_back(1.0f);  // valid
      for (int l = 0; l < kNumLutsPerArc; ++l) {
        for (double v : luts[l]->slew_axis()) {
          feat.push_back(static_cast<float>(v) * kSlewAxisScale);
        }
        for (double v : luts[l]->load_axis()) {
          feat.push_back(static_cast<float>(v) * kLoadAxisScale);
        }
      }
      for (int l = 0; l < kNumLutsPerArc; ++l) {
        for (double v : luts[l]->values()) {
          feat.push_back(static_cast<float>(v));
        }
      }
    }
    g.cell_edge_feat = nn::Tensor::from_vector(
        std::move(feat), static_cast<std::int64_t>(arcs.size()),
        kCellEdgeFeatureDim);
  }

  // ---- levels and index sets -------------------------------------------
  g.node_level.resize(static_cast<std::size_t>(g.num_nodes));
  for (PinId p = 0; p < design.num_pins(); ++p) {
    g.node_level[static_cast<std::size_t>(p)] = graph.level(p);
    if (design.is_endpoint(p)) g.endpoints.push_back(p);
    if (graph.in_net_arc(p) >= 0) g.net_sinks.push_back(p);
  }

  // ---- labels ------------------------------------------------------------
  g.net_delay = per_corner_tensor(sta.net_delay, kNetDelayScale);
  g.arrival = per_corner_tensor(sta.arrival, kArrivalScale);
  g.slew = per_corner_tensor(sta.slew, kSlewLabelScale);
  g.cell_delay = per_corner_tensor(sta.cell_arc_delay, kCellDelayScale);
  {
    // RAT is ±inf away from constrained pins; store raw values at
    // endpoints and 0 elsewhere (the models only read endpoint rows).
    // Same unit as arrival so predicted slack = RAT − AT works directly.
    std::vector<PerCorner> rat(static_cast<std::size_t>(g.num_nodes),
                               per_corner_fill(0.0));
    for (int p : g.endpoints) {
      rat[static_cast<std::size_t>(p)] = sta.rat[static_cast<std::size_t>(p)];
    }
    g.rat = per_corner_tensor(rat, kArrivalScale);
  }
  for (int p : g.endpoints) {
    g.endpoint_setup_slack.push_back(endpoint_setup_slack(sta, p));
    g.endpoint_hold_slack.push_back(endpoint_hold_slack(sta, p));
  }
  g.route_seconds = truth.route_seconds;
  g.sta_seconds = sta.sta_seconds;
  return g;
}

}  // namespace tg::data
