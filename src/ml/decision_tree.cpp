#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace tg::ml {

namespace {

/// Mean of y over idx[begin, end).
float subset_mean(std::span<const float> y, std::span<const int> idx, int begin,
                  int end) {
  double acc = 0.0;
  for (int i = begin; i < end; ++i) acc += y[static_cast<std::size_t>(idx[i])];
  return static_cast<float>(acc / std::max(1, end - begin));
}

}  // namespace

void DecisionTree::fit(const Matrix& x, std::span<const float> y,
                       std::span<const int> sample_idx,
                       const TreeConfig& config, Rng& rng) {
  TG_CHECK(x.rows == y.size());
  TG_CHECK(!sample_idx.empty());
  nodes_.clear();
  std::vector<int> idx(sample_idx.begin(), sample_idx.end());
  build(x, y, idx, 0, static_cast<int>(idx.size()), config.max_depth, config,
        rng);
}

int DecisionTree::build(const Matrix& x, std::span<const float> y,
                        std::vector<int>& idx, int begin, int end,
                        int depth_left, const TreeConfig& config, Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].value = subset_mean(y, idx, begin, end);

  const int n = end - begin;
  if (depth_left <= 0 || n < config.min_samples_split) return node_id;

  // Candidate features.
  std::vector<int> feats(x.cols);
  std::iota(feats.begin(), feats.end(), 0);
  int mtry = config.max_features > 0
                 ? std::min<int>(config.max_features, static_cast<int>(x.cols))
                 : static_cast<int>(x.cols);
  rng.shuffle(feats);
  feats.resize(static_cast<std::size_t>(mtry));

  // Best split by variance reduction (computed as SSE decrease using the
  // sorted prefix-sum trick per feature).
  double best_gain = 1e-12;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, float>> vals;  // (feature value, target)
  vals.reserve(static_cast<std::size_t>(n));

  double total_sum = 0.0, total_sq = 0.0;
  for (int i = begin; i < end; ++i) {
    const float t = y[static_cast<std::size_t>(idx[i])];
    total_sum += t;
    total_sq += static_cast<double>(t) * t;
  }
  const double parent_sse = total_sq - total_sum * total_sum / n;

  for (int f : feats) {
    vals.clear();
    for (int i = begin; i < end; ++i) {
      vals.emplace_back(x.at(static_cast<std::size_t>(idx[i]), static_cast<std::size_t>(f)),
                        y[static_cast<std::size_t>(idx[i])]);
    }
    std::sort(vals.begin(), vals.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double left_sum = 0.0, left_sq = 0.0;
    for (int k = 0; k + 1 < n; ++k) {
      const double t = vals[static_cast<std::size_t>(k)].second;
      left_sum += t;
      left_sq += t * t;
      if (vals[static_cast<std::size_t>(k)].first >=
          vals[static_cast<std::size_t>(k) + 1].first) {
        continue;  // no valid threshold between equal values
      }
      const int nl = k + 1;
      const int nr = n - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / nl) +
                         (right_sq - right_sum * right_sum / nr);
      const double gain = parent_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (vals[static_cast<std::size_t>(k)].first +
                                 vals[static_cast<std::size_t>(k) + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition idx[begin, end) in place.
  const auto mid_it = std::partition(
      idx.begin() + begin, idx.begin() + end, [&](int row) {
        return x.at(static_cast<std::size_t>(row),
                    static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left =
      build(x, y, idx, begin, mid, depth_left - 1, config, rng);
  const int right = build(x, y, idx, mid, end, depth_left - 1, config, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

float DecisionTree::predict(std::span<const float> features) const {
  TG_CHECK(!nodes_.empty());
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(cur)];
    cur = features[static_cast<std::size_t>(nd.feature)] <= nd.threshold
              ? nd.left
              : nd.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.feature >= 0) {
      stack.emplace_back(nd.left, d + 1);
      stack.emplace_back(nd.right, d + 1);
    }
  }
  return best;
}

}  // namespace tg::ml
