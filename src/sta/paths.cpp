#include "sta/paths.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace tg {

std::vector<CriticalPath> worst_paths(const TimingGraph& graph,
                                      const StaResult& sta, int k,
                                      bool setup) {
  const Design& d = graph.design();
  std::vector<std::pair<double, PinId>> endpoints;
  for (PinId p = 0; p < d.num_pins(); ++p) {
    if (!d.is_endpoint(p)) continue;
    const double slack =
        setup ? endpoint_setup_slack(sta, p) : endpoint_hold_slack(sta, p);
    endpoints.emplace_back(slack, p);
  }
  std::sort(endpoints.begin(), endpoints.end());
  if (static_cast<int>(endpoints.size()) > k) endpoints.resize(static_cast<std::size_t>(k));

  std::vector<CriticalPath> out;
  for (const auto& [slack, p] : endpoints) {
    CriticalPath path;
    path.endpoint = p;
    path.slack = slack;
    path.is_setup = setup;

    // Worst corner within the chosen mode.
    const Mode mode = setup ? Mode::kLate : Mode::kEarly;
    int corner = corner_index(mode, Trans::kRise);
    const int alt = corner_index(mode, Trans::kFall);
    if (sta.slack[static_cast<std::size_t>(p)][alt] <
        sta.slack[static_cast<std::size_t>(p)][corner]) {
      corner = alt;
    }

    // Walk predecessors to the root.
    int pin = p;
    int c = corner;
    while (pin >= 0) {
      path.steps.push_back(
          PathStep{pin, c, sta.arrival[static_cast<std::size_t>(pin)][c]});
      const int prev = sta.pred_pin[static_cast<std::size_t>(pin)][c];
      const int prev_c = sta.pred_corner[static_cast<std::size_t>(pin)][c];
      pin = prev;
      c = prev_c;
    }
    std::reverse(path.steps.begin(), path.steps.end());
    out.push_back(std::move(path));
  }
  return out;
}

std::string format_path(const Design& design, const StaResult& sta,
                        const CriticalPath& path) {
  std::ostringstream os;
  os << (path.is_setup ? "Setup" : "Hold") << " path to "
     << design.pin_name(path.endpoint)
     << "  slack=" << format_fixed(path.slack, 4) << " ns\n";
  double prev_at = 0.0;
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const PathStep& s = path.steps[i];
    const double incr = s.arrival - prev_at;
    prev_at = s.arrival;
    os << "  " << format_fixed(s.arrival, 4) << " (+"
       << format_fixed(i == 0 ? 0.0 : incr, 4) << ") ["
       << corner_name(s.corner) << "] " << design.pin_name(s.pin) << '\n';
  }
  (void)sta;
  return os.str();
}

std::vector<std::pair<double, int>> slack_histogram(const Design& design,
                                                    const StaResult& sta,
                                                    int bins, bool setup) {
  TG_CHECK(bins > 0);
  std::vector<double> slacks;
  for (PinId p = 0; p < design.num_pins(); ++p) {
    if (!design.is_endpoint(p)) continue;
    slacks.push_back(setup ? endpoint_setup_slack(sta, p)
                           : endpoint_hold_slack(sta, p));
  }
  std::vector<std::pair<double, int>> hist;
  if (slacks.empty()) return hist;
  const auto [lo_it, hi_it] = std::minmax_element(slacks.begin(), slacks.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double width = std::max(1e-12, (hi - lo) / bins);
  hist.assign(static_cast<std::size_t>(bins), {0.0, 0});
  for (int b = 0; b < bins; ++b) {
    hist[static_cast<std::size_t>(b)].first = lo + width * (b + 1);
  }
  for (double s : slacks) {
    int b = static_cast<int>((s - lo) / width);
    b = std::clamp(b, 0, bins - 1);
    ++hist[static_cast<std::size_t>(b)].second;
  }
  return hist;
}

}  // namespace tg
