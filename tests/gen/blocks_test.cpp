#include "gen/blocks.hpp"

#include <gtest/gtest.h>

#include "liberty/library_builder.hpp"
#include "util/check.hpp"

namespace tg {
namespace {

class BlocksTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();
  Rng rng_{1};
  Design design_{"t", &lib_};
  CircuitBuilder cb_{&design_, &rng_};

  std::vector<SigId> inputs(int n) {
    std::vector<SigId> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(cb_.add_input("i" + std::to_string(i)));
    }
    return out;
  }
};

TEST_F(BlocksTest, XorTreeDepthIsLogarithmic) {
  const auto in = inputs(16);
  const SigId out = block_xor_tree(cb_, in);
  EXPECT_EQ(cb_.sig(out).level, 4);  // log2(16)
  // 15 XOR gates.
  EXPECT_EQ(design_.num_instances(), 15);
}

TEST_F(BlocksTest, XorTreeSingleInputPassThrough) {
  const auto in = inputs(1);
  EXPECT_EQ(block_xor_tree(cb_, in), in[0]);
  EXPECT_EQ(design_.num_instances(), 0);
}

TEST_F(BlocksTest, AdderWidthAndCarry) {
  const auto a = inputs(4);
  const auto b = inputs(4);
  const auto sum = block_ripple_adder(cb_, a, b);
  EXPECT_EQ(sum.size(), 5u);  // 4 sum bits + carry
  // Carry chain makes the MSB deeper than the LSB.
  EXPECT_GT(cb_.sig(sum[3]).level, cb_.sig(sum[0]).level);
}

TEST_F(BlocksTest, MuxTreeConsumesSelects) {
  const auto data = inputs(8);
  const auto sel = inputs(3);
  const SigId out = block_mux_tree(cb_, data, sel);
  EXPECT_EQ(cb_.sig(out).level, 3);
  EXPECT_EQ(design_.num_instances(), 7);  // 4 + 2 + 1 muxes
  // Lowest select level feeds 4 muxes.
  EXPECT_EQ(cb_.sig(sel[0]).fanout, 4);
  EXPECT_EQ(cb_.sig(sel[2]).fanout, 1);
}

TEST_F(BlocksTest, SboxConeOutputsRequestedWidth) {
  const auto in = inputs(8);
  const auto out = block_sbox_cone(cb_, in, 4, 8);
  EXPECT_EQ(out.size(), 8u);
  for (SigId s : out) EXPECT_GE(cb_.sig(s).level, 1);
}

TEST_F(BlocksTest, DecoderProducesAllMinterms) {
  const auto sel = inputs(3);
  const auto out = block_decoder(cb_, sel);
  EXPECT_EQ(out.size(), 8u);
  // Each select or its complement feeds 8 terms → heavy fanout.
  EXPECT_GE(cb_.sig(sel[0]).fanout, 1);
}

TEST_F(BlocksTest, BuilderTracksFanout) {
  const auto in = inputs(2);
  cb_.gate("NAND2", {in[0], in[1]});
  cb_.gate("AND2", {in[0], in[1]});
  EXPECT_EQ(cb_.sig(in[0]).fanout, 2);
}

TEST_F(BlocksTest, RegisterSignalCreatesClock) {
  const auto in = inputs(1);
  const SigId q = cb_.register_signal(in[0]);
  EXPECT_EQ(cb_.sig(q).level, 0);
  EXPECT_EQ(cb_.num_ffs(), 1);
  EXPECT_NE(design_.clock_net(), kInvalidId);
}

TEST_F(BlocksTest, GateRejectsWrongArity) {
  const auto in = inputs(1);
  EXPECT_THROW(cb_.gate("NAND2", {in[0]}), CheckError);
}

}  // namespace
}  // namespace tg
