#pragma once
/// \file json.hpp
/// Minimal JSON DOM parser — just enough for `tools/tg_top` and the trace
/// golden tests to read back the files the obs layer writes (trace_event
/// JSON, metrics snapshots, bench JSON). Parses the full JSON grammar
/// (objects, arrays, strings with escapes, numbers, bools, null); not a
/// streaming parser and not tuned for huge inputs.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tg::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw CheckError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; throws CheckError if absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const;

  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parses `text`; throws CheckError with byte offset on malformed input.
[[nodiscard]] Value parse(const std::string& text);

/// Reads the file and parses it; throws CheckError on I/O or parse error.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace tg::json
