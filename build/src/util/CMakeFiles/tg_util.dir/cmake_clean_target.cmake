file(REMOVE_RECURSE
  "libtg_util.a"
)
