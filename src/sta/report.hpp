#pragma once
/// \file report.hpp
/// Sign-off-style text timing report (in the spirit of report_checks):
/// summary, K worst setup and hold paths, and the endpoint slack
/// histogram, written to any ostream.

#include <iosfwd>

#include "sta/paths.hpp"

namespace tg {

struct ReportOptions {
  int num_paths = 3;
  int histogram_bins = 10;
  bool include_hold = true;
};

/// Writes the full report; `sta` must come from `run_sta` on `graph`.
void write_timing_report(std::ostream& out, const TimingGraph& graph,
                         const StaResult& sta,
                         const ReportOptions& options = {});

}  // namespace tg
