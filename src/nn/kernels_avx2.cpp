/// \file kernels_avx2.cpp
/// AVX2 backend, compiled with -mavx2 on x86-64 only (CMake gates the
/// flag). Mirrors the portable loops in kernels.cpp operation for
/// operation: unaligned loads, mul-then-add (never FMA — the contract
/// requires two roundings), and the 8-lane blocked dot reduction. The
/// dispatcher in kernels.cpp only selects this table after
/// __builtin_cpu_supports("avx2") confirms the ISA at runtime.

#include "nn/kernels.hpp"

#if defined(TG_HAVE_AVX2_TU)

#include <immintrin.h>

#include <cmath>

namespace tg::nn::kern {

namespace {

namespace avx2 {

void add(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void add_acc(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void mul_acc(float* dst, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void scale(float* out, const float* a, float s, std::size_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

void axpy(float* dst, float a, const float* x, std::size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += a * x[i];
}

void relu(float* out, const float* a, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
  }
  for (; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void add_relu(float* out, const float* a, const float* b, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sum =
        _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(out + i, _mm256_max_ps(sum, zero));
  }
  for (; i < n; ++i) {
    const float v = a[i] + b[i];
    out[i] = v > 0.0f ? v : 0.0f;
  }
}

void relu_mask_acc(float* dst, const float* y, const float* g,
                   std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask =
        _mm256_cmp_ps(_mm256_loadu_ps(y + i), zero, _CMP_GT_OQ);
    const __m256 gm = _mm256_and_ps(_mm256_loadu_ps(g + i), mask);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), gm));
  }
  for (; i < n; ++i) {
    if (y[i] > 0.0f) dst[i] += g[i];
  }
}

float dot(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();  // 8 striped lanes of the contract
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  float total = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (std::size_t i = n8; i < n; ++i) total += a[i] * b[i];
  return total;
}

void matmul_row(float* out, const float* a, const float* b, std::size_t k,
                std::size_t m) {
  if (k == 0) {
    for (std::size_t j = 0; j < m; ++j) out[j] = 0.0f;
    return;
  }
  std::size_t j = 0;
  // 32-wide register tile: per output element the kk accumulation order
  // is unchanged, so the tiling is invisible to the contract.
  for (; j + 32 <= m; j += 32) {
    __m256 av = _mm256_set1_ps(a[0]);
    const float* br = b + j;
    __m256 acc0 = _mm256_mul_ps(av, _mm256_loadu_ps(br));
    __m256 acc1 = _mm256_mul_ps(av, _mm256_loadu_ps(br + 8));
    __m256 acc2 = _mm256_mul_ps(av, _mm256_loadu_ps(br + 16));
    __m256 acc3 = _mm256_mul_ps(av, _mm256_loadu_ps(br + 24));
    for (std::size_t kk = 1; kk < k; ++kk) {
      av = _mm256_set1_ps(a[kk]);
      br = b + kk * m + j;
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(br)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(br + 8)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(br + 16)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(br + 24)));
    }
    _mm256_storeu_ps(out + j, acc0);
    _mm256_storeu_ps(out + j + 8, acc1);
    _mm256_storeu_ps(out + j + 16, acc2);
    _mm256_storeu_ps(out + j + 24, acc3);
  }
  for (; j + 8 <= m; j += 8) {
    __m256 av = _mm256_set1_ps(a[0]);
    __m256 acc = _mm256_mul_ps(av, _mm256_loadu_ps(b + j));
    for (std::size_t kk = 1; kk < k; ++kk) {
      av = _mm256_set1_ps(a[kk]);
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(av, _mm256_loadu_ps(b + kk * m + j)));
    }
    _mm256_storeu_ps(out + j, acc);
  }
  for (; j < m; ++j) {
    float acc = a[0] * b[j];
    for (std::size_t kk = 1; kk < k; ++kk) acc += a[kk] * b[kk * m + j];
    out[j] = acc;
  }
}

void matmul_nt_row(float* out, const float* g, const float* b, std::size_t k,
                   std::size_t m) {
  // kk blocked by 4: one g load feeds four independent accumulator chains
  // (hides add latency); each output element still reduces with exactly
  // the 8-lane dot tree, so this matches k separate dot() calls bit for
  // bit.
  const std::size_t m8 = m & ~std::size_t{7};
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float* b0 = b + kk * m;
    const float* b1 = b0 + m;
    const float* b2 = b1 + m;
    const float* b3 = b2 + m;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    for (std::size_t i = 0; i < m8; i += 8) {
      const __m256 gv = _mm256_loadu_ps(g + i);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(gv, _mm256_loadu_ps(b0 + i)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(gv, _mm256_loadu_ps(b1 + i)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(gv, _mm256_loadu_ps(b2 + i)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(gv, _mm256_loadu_ps(b3 + i)));
    }
    // In-register realization of the contract's reduction tree: hadd
    // produces adjacent-pair sums per 128-bit lane, so two hadd levels
    // yield ((l0+l1)+(l2+l3)) and ((l4+l5)+(l6+l7)) for all four
    // accumulators at once, and the final 128-bit add combines the
    // halves — the same float additions in the same association as the
    // scalar tree.
    const __m256 h01 = _mm256_hadd_ps(acc0, acc1);
    const __m256 h23 = _mm256_hadd_ps(acc2, acc3);
    const __m256 h = _mm256_hadd_ps(h01, h23);
    const __m128 quad = _mm_add_ps(_mm256_castps256_ps128(h),
                                   _mm256_extractf128_ps(h, 1));
    alignas(16) float t[4];
    _mm_store_ps(t, quad);
    for (std::size_t i = m8; i < m; ++i) {
      t[0] += g[i] * b0[i];
      t[1] += g[i] * b1[i];
      t[2] += g[i] * b2[i];
      t[3] += g[i] * b3[i];
    }
    out[kk] += t[0];
    out[kk + 1] += t[1];
    out[kk + 2] += t[2];
    out[kk + 3] += t[3];
  }
  for (; kk < k; ++kk) out[kk] += dot(g, b + kk * m, m);
}

void atb_acc(float* db, const float* a, const float* g, std::size_t n,
             std::size_t k, std::size_t stride, std::size_t width) {
  // i blocked by 4: one db tile load/store serves four source rows. Each
  // db element still receives its contributions in ascending-i order with
  // exact zeros skipped, so the result matches portable bit for bit.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    const float* g0 = g + i * stride;
    const float* g1 = g0 + stride;
    const float* g2 = g1 + stride;
    const float* g3 = g2 + stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) continue;
      float* drow = db + kk * stride;
      const __m256 v0 = _mm256_set1_ps(av0);
      const __m256 v1 = _mm256_set1_ps(av1);
      const __m256 v2 = _mm256_set1_ps(av2);
      const __m256 v3 = _mm256_set1_ps(av3);
      std::size_t j = 0;
      for (; j + 8 <= width; j += 8) {
        __m256 acc = _mm256_loadu_ps(drow + j);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(v0, _mm256_loadu_ps(g0 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(v1, _mm256_loadu_ps(g1 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(v2, _mm256_loadu_ps(g2 + j)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(v3, _mm256_loadu_ps(g3 + j)));
        _mm256_storeu_ps(drow + j, acc);
      }
      for (; j < width; ++j) {
        float t = drow[j];
        t += av0 * g0[j];
        t += av1 * g1[j];
        t += av2 * g2[j];
        t += av3 * g3[j];
        drow[j] = t;
      }
    }
  }
  for (; i < n; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      axpy(db + kk * stride, av, grow, width);
    }
  }
}

void adam_step(float* data, const float* grad, float* m, float* v,
               std::size_t n, const AdamConsts& c) {
  const __m256 clip = _mm256_set1_ps(c.clip_scale);
  const __m256 wd = _mm256_set1_ps(c.weight_decay);
  const __m256 b1 = _mm256_set1_ps(c.beta1);
  const __m256 one_minus_b1 = _mm256_set1_ps(1.0f - c.beta1);
  const __m256 b2 = _mm256_set1_ps(c.beta2);
  const __m256 one_minus_b2 = _mm256_set1_ps(1.0f - c.beta2);
  const __m256 bc1 = _mm256_set1_ps(c.bc1);
  const __m256 bc2 = _mm256_set1_ps(c.bc2);
  const __m256 lr = _mm256_set1_ps(c.lr);
  const __m256 eps = _mm256_set1_ps(c.eps);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_loadu_ps(data + i);
    const __m256 g = _mm256_add_ps(
        _mm256_mul_ps(_mm256_loadu_ps(grad + i), clip), _mm256_mul_ps(wd, d));
    const __m256 mv = _mm256_add_ps(
        _mm256_mul_ps(b1, _mm256_loadu_ps(m + i)),
        _mm256_mul_ps(one_minus_b1, g));
    const __m256 vv = _mm256_add_ps(
        _mm256_mul_ps(b2, _mm256_loadu_ps(v + i)),
        _mm256_mul_ps(_mm256_mul_ps(one_minus_b2, g), g));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 mhat = _mm256_div_ps(mv, bc1);
    const __m256 vhat = _mm256_div_ps(vv, bc2);
    const __m256 upd = _mm256_div_ps(
        _mm256_mul_ps(lr, mhat), _mm256_add_ps(_mm256_sqrt_ps(vhat), eps));
    _mm256_storeu_ps(data + i, _mm256_sub_ps(d, upd));
  }
  for (; i < n; ++i) {
    const float g = grad[i] * c.clip_scale + c.weight_decay * data[i];
    m[i] = c.beta1 * m[i] + (1.0f - c.beta1) * g;
    v[i] = c.beta2 * v[i] + ((1.0f - c.beta2) * g) * g;
    const float mhat = m[i] / c.bc1;
    const float vhat = v[i] / c.bc2;
    data[i] -= c.lr * mhat / (std::sqrt(vhat) + c.eps);
  }
}

constexpr KernelTable kTable = {
    "avx2", add, add_acc, mul,        mul_acc,    scale, axpy,
    relu,   add_relu,     relu_mask_acc, dot, matmul_row,
    matmul_nt_row, atb_acc, adam_step,
};

}  // namespace avx2

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &avx2::kTable; }
}  // namespace detail

}  // namespace tg::nn::kern

#else  // !TG_HAVE_AVX2_TU

namespace tg::nn::kern::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace tg::nn::kern::detail

#endif
