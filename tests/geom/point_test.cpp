#include "geom/point.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tg {
namespace {

TEST(Manhattan, Basics) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(manhattan({-2, 0}, {2, 0}), 4.0);
}

TEST(Manhattan, Symmetry) {
  const Point a{1.5, -2.0}, b{-7.0, 3.25};
  EXPECT_DOUBLE_EQ(manhattan(a, b), manhattan(b, a));
}

TEST(BBox, EmptyInvalid) {
  BBox b;
  EXPECT_FALSE(b.valid());
  EXPECT_DOUBLE_EQ(b.width(), 0.0);
  EXPECT_DOUBLE_EQ(b.hpwl(), 0.0);
}

TEST(BBox, ExpandPoint) {
  BBox b;
  b.expand(Point{1, 2});
  EXPECT_TRUE(b.valid());
  EXPECT_DOUBLE_EQ(b.hpwl(), 0.0);
  b.expand(Point{4, 6});
  EXPECT_DOUBLE_EQ(b.width(), 3.0);
  EXPECT_DOUBLE_EQ(b.height(), 4.0);
  EXPECT_DOUBLE_EQ(b.hpwl(), 7.0);
}

TEST(BBox, ExpandBox) {
  BBox a;
  a.expand(Point{0, 0});
  a.expand(Point{1, 1});
  BBox b;
  b.expand(Point{5, -2});
  a.expand(b);
  EXPECT_DOUBLE_EQ(a.xmax, 5.0);
  EXPECT_DOUBLE_EQ(a.ymin, -2.0);
}

TEST(BBox, Contains) {
  BBox b;
  b.expand(Point{0, 0});
  b.expand(Point{10, 10});
  EXPECT_TRUE(b.contains({5, 5}));
  EXPECT_TRUE(b.contains({0, 0}));   // boundary inclusive
  EXPECT_TRUE(b.contains({10, 10}));
  EXPECT_FALSE(b.contains({11, 5}));
  EXPECT_FALSE(b.contains({5, -1}));
}

TEST(Hpwl, MatchesBoundingBox) {
  const std::vector<Point> pts{{0, 0}, {2, 5}, {-1, 3}};
  EXPECT_DOUBLE_EQ(hpwl(pts), 3.0 + 5.0);
}

TEST(Hpwl, SinglePointZero) {
  const std::vector<Point> pts{{3, 3}};
  EXPECT_DOUBLE_EQ(hpwl(pts), 0.0);
}

}  // namespace
}  // namespace tg
