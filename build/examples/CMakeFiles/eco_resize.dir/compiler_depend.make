# Empty compiler generated dependencies file for eco_resize.
# This may be replaced when dependencies are built.
