
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/tg_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/tg_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/extract.cpp" "src/data/CMakeFiles/tg_data.dir/extract.cpp.o" "gcc" "src/data/CMakeFiles/tg_data.dir/extract.cpp.o.d"
  "/root/repo/src/data/graph_io.cpp" "src/data/CMakeFiles/tg_data.dir/graph_io.cpp.o" "gcc" "src/data/CMakeFiles/tg_data.dir/graph_io.cpp.o.d"
  "/root/repo/src/data/hetero_graph.cpp" "src/data/CMakeFiles/tg_data.dir/hetero_graph.cpp.o" "gcc" "src/data/CMakeFiles/tg_data.dir/hetero_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/tg_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tg_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/tg_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tg_place.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tg_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
