#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace tg {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string with_commas(long long value) {
  const bool neg = value < 0;
  unsigned long long v =
      neg ? 0ULL - static_cast<unsigned long long>(value)
          : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  if (neg) out.insert(out.begin(), '-');
  return out;
}

}  // namespace tg
