#pragma once
/// \file delay_prop.hpp
/// The paper's delay propagation model (§3.3.2, Fig. 3): levelized,
/// asynchronous message passing over the DAG of net and cell arcs —
/// exactly one update per pin, applied level by level like an STA engine's
/// propagation. Net propagation layers move signals along wires; cell
/// propagation layers compute cell-arc messages through the LUT
/// interpolation module and reduce them with sum & max channels.
///
/// Because each level only reads states of strictly earlier levels, the
/// model's receptive field covers the full fan-in cone regardless of
/// depth — the paper's answer to the K-hop limit of K-layer GCNs (Fig. 1).

#include "core/lut_interp.hpp"

namespace tg::core {

/// Precomputed traversal schedule for one graph (build once, reuse every
/// epoch). Derived from the graph's level-packed CSR (data::LevelCsr);
/// all gather/scatter index arrays the forward pass needs are materialized
/// here as shared handles, so a training step performs zero index
/// marshalling — it just passes the handles to the shared-index ops.
struct PropPlan {
  int num_levels = 0;
  std::vector<std::vector<int>> level_nodes;  ///< node ids per level
  std::vector<int> node_level;                ///< level of each node
  std::vector<int> node_row;                  ///< row within its level tensor
  /// Per level: indices into g.net_src/net_dst of edges terminating here
  /// (sorted by destination id — CSR order).
  std::vector<std::vector<int>> level_net_edges;
  /// Per level: indices into g.cell_src/cell_dst of edges terminating here
  /// (CSR order).
  std::vector<std::vector<int>> level_cell_edges;
  /// Cell-edge indices in traversal order (for aligning predictions with
  /// labels).
  std::vector<int> cell_edge_order;

  // ---- shared per-step feeds (see forward) ----------------------------
  // `src_t` is remapped: it indexes into `dep_levels` (the distinct source
  // levels of this level's edges, ascending), not into the full level
  // list. The forward pass hands multi_gather only the dep levels' state
  // tensors, so the gather's autograd parents are exactly the levels that
  // feed it — which is what lets the async engine fire a level as soon as
  // its actual dependencies (not all earlier levels) are done, with an
  // autograd graph identical to the serial walk's.
  struct NetFeed {
    std::vector<int> dep_levels;  ///< distinct source levels, ascending
    nn::IndexVec src_t;      ///< index into dep_levels per edge
    nn::IndexVec src_r;      ///< source row within its level per edge
    nn::IndexVec dst_row;    ///< destination row within this level
    nn::IndexVec feat_rows;  ///< edge id per edge (feature gather)
    nn::IndexVec emb_v_rows; ///< destination node id per edge
  };
  struct CellFeed {
    std::vector<int> dep_levels;  ///< distinct source levels, ascending
    nn::IndexVec src_t, src_r, dst_row, feat_rows;
    nn::IndexVec emb_u_rows;  ///< source node id per edge
    nn::IndexVec emb_v_rows;  ///< destination node id per edge
  };
  std::vector<nn::IndexVec> level_rows;  ///< node ids per level (shared)
  std::vector<NetFeed> net_feed;         ///< [num_levels]
  std::vector<CellFeed> cell_feed;       ///< [num_levels]
  nn::IndexVec assemble_t;  ///< node → its level (final assembly)
  nn::IndexVec assemble_r;  ///< node → its level row (final assembly)
  nn::IndexVec cell_order;  ///< shared handle of cell_edge_order
};

[[nodiscard]] PropPlan build_prop_plan(const data::DatasetGraph& g);

struct DelayPropConfig {
  int hidden = 32;      ///< propagated state width
  int mlp_hidden = 32;
  int mlp_layers = 2;
  LutInterpConfig lut;
};

class DelayProp : public nn::Module {
 public:
  DelayProp(int embed_dim, const DelayPropConfig& config, Rng& rng);

  struct Output {
    nn::Tensor state;       ///< [N, hidden], node order
    nn::Tensor cell_delay;  ///< [Ec, 4] in plan.cell_edge_order
  };

  /// `embedding` is the net-embedding stage output [N, embed_dim].
  /// Honors the global STA engine switch (util/task_graph.hpp): with
  /// `async` the per-level net/cell/aux/combine steps run as a dependency
  /// DAG on the worklist engine — branch steps of independent levels
  /// overlap — producing bit-identical outputs and gradients.
  /// `want_aux = false` skips the cell-delay auxiliary head (its output
  /// feeds only the training loss); `state` is unchanged and `cell_delay`
  /// comes back empty. The serving plane's inference path uses this.
  [[nodiscard]] Output forward(const data::DatasetGraph& g,
                               const PropPlan& plan,
                               const nn::Tensor& embedding,
                               bool want_aux = true) const;

  [[nodiscard]] const DelayPropConfig& config() const { return config_; }

 private:
  [[nodiscard]] Output forward_async(const data::DatasetGraph& g,
                                     const PropPlan& plan,
                                     const nn::Tensor& embedding,
                                     bool want_aux) const;
  DelayPropConfig config_;
  int embed_dim_ = 0;
  nn::Mlp entry_;      ///< roots: embedding → initial state
  nn::Mlp net_prop_;   ///< [state_u, e, emb_v] → net message
  nn::Mlp cell_prop_;  ///< [state_u, interp, emb_v] → cell message
  nn::Mlp combine_;    ///< [net_in, Σcell, max cell, emb_v] → state_v
  LutInterp lut_;      ///< query: [state_u, emb_u, emb_v]
  nn::Mlp cell_delay_head_;  ///< [interp, state_u] → 4 (softplus)
};

}  // namespace tg::core
