#pragma once
/// \file timer.hpp
/// The golden static timing engine: 4-corner levelized propagation over
/// the heterogeneous timing graph, exactly the two-step flow the paper's
/// Section 3.1 describes — net delays/loads from routing first, then
/// level-by-level arrival/slew propagation with NLDM lookups, followed by
/// required-time back-propagation and endpoint slack.
///
/// This engine produces every training label of the reproduction:
/// per-pin net delay (4), arrival (4), slew (4), endpoint RAT (4) and
/// per-cell-arc delay (4).

#include <vector>

#include "route/router.hpp"
#include "sta/timing_graph.hpp"

namespace tg {

struct StaOptions {
  double input_slew_ns = 0.05;  ///< slew asserted at primary inputs
  double clock_slew_ns = 0.03;  ///< ideal-clock slew at FF CK pins
  double po_setup_margin_ns = 0.0;  ///< extra required margin at POs
  double po_hold_margin_ns = 0.0;
};

struct StaResult {
  // Indexed by pin, then corner.
  std::vector<PerCorner> arrival;
  std::vector<PerCorner> slew;
  std::vector<PerCorner> rat;        ///< required arrival time
  std::vector<PerCorner> slack;      ///< late: RAT−AT, early: AT−RAT
  std::vector<PerCorner> net_delay;  ///< delay from the net root (sinks)
  /// Indexed like TimingGraph::cell_arcs(); the delay the propagation used.
  std::vector<PerCorner> cell_arc_delay;
  /// Predecessor (pin, corner) of the winning arrival candidate, for path
  /// tracing; -1 when the pin is a root.
  std::vector<std::array<int, kNumCorners>> pred_pin;
  std::vector<std::array<int, kNumCorners>> pred_corner;

  double wns_setup = 0.0;  ///< worst late slack over endpoints
  double tns_setup = 0.0;  ///< total negative late slack
  double wns_hold = 0.0;
  double tns_hold = 0.0;
  double sta_seconds = 0.0;  ///< propagation wall time (Table 5 column)
};

/// Runs the golden STA. `routing` must cover every non-clock net.
[[nodiscard]] StaResult run_sta(const TimingGraph& graph,
                                const DesignRouting& routing,
                                const StaOptions& options = {});

/// Setup (late) endpoint slack of `pin` reduced over rise/fall — the
/// quantity plotted in the paper's Fig. 4 ("setup slack").
[[nodiscard]] double endpoint_setup_slack(const StaResult& sta, PinId pin);
/// Hold (early) endpoint slack reduced over rise/fall.
[[nodiscard]] double endpoint_hold_slack(const StaResult& sta, PinId pin);

namespace sta_detail {
/// Recomputes arrival/slew/net_delay of one pin (and the delays of its
/// incoming cell arcs) from its predecessors' current values. Returns the
/// largest absolute arrival/slew change across corners. Shared by the full
/// and incremental timers.
double propagate_pin(const TimingGraph& graph, const DesignRouting& routing,
                     const StaOptions& options, StaResult& r, PinId pin);
/// Pulls the required time of one pin from its (already final) successors.
/// Writes only `r.rat[pin]`, so independent pins relax concurrently.
void relax_required_pin(const TimingGraph& graph, StaResult& r, PinId pin);
/// Backward RAT sweep + slack + WNS/TNS summary.
void compute_required(const TimingGraph& graph, const StaOptions& options,
                      StaResult& r);
}  // namespace sta_detail

}  // namespace tg
