#pragma once
/// \file library.hpp
/// A standard-cell library: an owned set of CellTypes with name lookup,
/// playing the role of the SkyWater130 liberty files in the paper's flow.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "liberty/cell_type.hpp"

namespace tg {

class Library {
 public:
  /// Adds a cell and returns its id. Names must be unique.
  int add_cell(CellType cell);

  [[nodiscard]] int num_cells() const { return static_cast<int>(cells_.size()); }
  [[nodiscard]] const CellType& cell(int id) const;
  /// Id of the cell named `name`, or -1.
  [[nodiscard]] int find_cell(std::string_view name) const;
  [[nodiscard]] const std::vector<CellType>& cells() const { return cells_; }

  /// All cell ids whose family tag equals `function` (e.g. all NAND2
  /// drive variants).
  [[nodiscard]] std::vector<int> cells_of_function(
      std::string_view function) const;

 private:
  std::vector<CellType> cells_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace tg
