#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace tg::nn {

namespace {

constexpr std::uint32_t kMagicV0 = 0x54474E4E;  // "TGNN" — legacy, no CRC
constexpr std::uint32_t kMagicV1 = 0x314E4754;  // "TGN1" (LE bytes)
constexpr std::uint32_t kVersion = 1;

using BlobMap =
    std::map<std::string, std::pair<std::uint32_t, std::vector<float>>>;

/// Dimension sanity cap: no tensor in this project has a side anywhere near
/// 2^31; a corrupted dimension past it fails fast with a named error.
void check_dims(io::BinaryReader& in, std::uint64_t rows, std::uint64_t cols,
                const std::string& name) {
  TG_CHECK_MSG(rows < (1ull << 31) && cols < (1ull << 31),
               in.path() << ": implausible shape " << rows << "x" << cols
                         << " for parameter '" << name << "' at offset "
                         << in.offset());
}

BlobMap read_blobs_v1(io::BinaryReader& in) {
  const std::uint32_t count = in.read_u32("parameter count");
  BlobMap blobs;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = in.read_string("parameter name");
    const std::uint32_t rows = in.read_u32("parameter rows");
    const std::uint32_t cols = in.read_u32("parameter cols");
    check_dims(in, rows, cols, name);
    std::vector<float> data = in.read_f32_vec(
        static_cast<std::uint64_t>(rows) * cols, "parameter data");
    blobs.emplace(std::move(name), std::make_pair(rows, std::move(data)));
  }
  return blobs;
}

/// v0 layout: u32 magic, u32 count, then per parameter
/// {u32 name_len, bytes, u32 rows, u32 cols, f32 data} — no version, no CRC.
/// Every read is still bounds-checked, so the truncated/bit-flipped v0 files
/// that the old loader read as garbage now raise CheckError.
BlobMap read_blobs_v0(io::BinaryReader& in) {
  const std::uint32_t count = in.read_u32("parameter count");
  BlobMap blobs;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = in.read_u32("parameter name length");
    std::string name = in.read_raw(name_len, "parameter name");
    const std::uint32_t rows = in.read_u32("parameter rows");
    const std::uint32_t cols = in.read_u32("parameter cols");
    check_dims(in, rows, cols, name);
    std::vector<float> data = in.read_f32_vec(
        static_cast<std::uint64_t>(rows) * cols, "parameter data");
    blobs.emplace(std::move(name), std::make_pair(rows, std::move(data)));
  }
  return blobs;
}

void apply_blobs(Module& module, const BlobMap& blobs,
                 const std::string& path) {
  std::size_t matched = 0;
  for (std::size_t i = 0; i < module.parameters().size(); ++i) {
    const std::string& name = module.parameter_names()[i];
    auto it = blobs.find(name);
    TG_CHECK_MSG(it != blobs.end(),
                 "parameter missing from " << path << ": " << name);
    Tensor t = module.parameters()[i];
    TG_CHECK_MSG(static_cast<std::size_t>(t.numel()) == it->second.second.size(),
                 "shape mismatch for " << name << " in " << path);
    std::copy(it->second.second.begin(), it->second.second.end(),
              t.data().begin());
    ++matched;
  }
  TG_CHECK_MSG(matched == blobs.size(),
               path << " has " << blobs.size() << " tensors, module expects "
                    << matched);
}

}  // namespace

void write_parameter_block(const Module& module, io::BinaryWriter& out) {
  out.write_u32(static_cast<std::uint32_t>(module.parameters().size()));
  for (std::size_t i = 0; i < module.parameters().size(); ++i) {
    const Tensor& t = module.parameters()[i];
    out.write_string(module.parameter_names()[i]);
    out.write_u32(static_cast<std::uint32_t>(t.rows()));
    out.write_u32(static_cast<std::uint32_t>(t.cols()));
    out.write_f32_span(t.data());
  }
}

void read_parameter_block(Module& module, io::BinaryReader& in) {
  apply_blobs(module, read_blobs_v1(in), in.path());
}

void save_parameters(const Module& module, const std::string& path) {
  io::BinaryWriter out(path);
  out.write_u32(kMagicV1);
  out.write_u32(kVersion);
  write_parameter_block(module, out);
  out.commit();
}

void load_parameters(Module& module, const std::string& path) {
  io::BinaryReader in(path);
  const std::uint32_t magic = in.peek_u32();
  if (magic == kMagicV1) {
    in.verify_crc();
    (void)in.read_u32("magic");
    const std::uint32_t version = in.read_u32("format version");
    TG_CHECK_MSG(version == kVersion, path << ": unsupported model format"
                                           << " version " << version);
    const BlobMap blobs = read_blobs_v1(in);
    in.expect_eof();
    apply_blobs(module, blobs, path);
  } else if (magic == kMagicV0) {
    (void)in.read_u32("magic");
    const BlobMap blobs = read_blobs_v0(in);
    in.expect_eof();
    apply_blobs(module, blobs, path);
  } else {
    TG_CHECK_MSG(false, "bad model file magic in " << path);
  }
}

}  // namespace tg::nn
