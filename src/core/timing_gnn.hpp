#pragma once
/// \file timing_gnn.hpp
/// The full timing-engine-inspired GNN (paper §3): net embedding stage +
/// levelized delay propagation stage, with prediction heads for
///  - arrival time & slew at pins (main task, Eq. 4),
///  - cell-arc delay (auxiliary, Eq. 5),
///  - net delay at fan-in (sink) pins (auxiliary, Eq. 6),
/// trained jointly (Eq. 7). Ablation switches reproduce the paper's
/// "w/ Cell" and "w/ Net" columns of Table 5.

#include <vector>

#include "core/delay_prop.hpp"
#include "core/net_embed.hpp"
#include "data/graph_pack.hpp"

namespace tg::core {

struct TimingGnnConfig {
  NetEmbedConfig net;
  DelayPropConfig prop;
  bool use_net_aux = true;   ///< Eq. 6 term
  bool use_cell_aux = true;  ///< Eq. 5 term
  std::uint64_t seed = 1;
};

class TimingGnn : public nn::Module {
 public:
  explicit TimingGnn(const TimingGnnConfig& config);

  struct Prediction {
    nn::Tensor atslew;      ///< [N, 8]: arrival (4) | slew (4)
    nn::Tensor net_delay;   ///< [N, 4]
    nn::Tensor cell_delay;  ///< [Ec, 4] in plan.cell_edge_order
  };

  [[nodiscard]] Prediction forward(const data::DatasetGraph& g,
                                   const PropPlan& plan) const;

  /// Net-embedding stage output [N, embed_dim]. Depends only on the graph
  /// (not on the query), so serving caches it per template / per pack and
  /// replays it through forward_atslew.
  [[nodiscard]] nn::Tensor embed(const data::DatasetGraph& g) const;

  /// Inference fast path: arrival/slew [N, 8] from a precomputed
  /// `embedding` (see embed()), skipping the net-delay and cell-delay
  /// auxiliary heads whose outputs only feed the training loss. Matches
  /// forward(g, plan).atslew exactly (same op sequence on the state path).
  [[nodiscard]] nn::Tensor forward_atslew(const data::DatasetGraph& g,
                                          const PropPlan& plan,
                                          const nn::Tensor& embedding) const;

  /// Combined loss of Eq. 7 (terms gated by the ablation config).
  [[nodiscard]] nn::Tensor loss(const data::DatasetGraph& g,
                                const PropPlan& plan,
                                const Prediction& pred) const;

  [[nodiscard]] const TimingGnnConfig& config() const { return config_; }
  [[nodiscard]] const NetEmbed& net_embed() const { return net_embed_; }

 private:
  TimingGnnConfig config_;
  Rng rng_;
  NetEmbed net_embed_;
  DelayProp prop_;
  nn::Mlp atslew_head_;
};

/// Slack reconstruction at an endpoint from a predicted arrival row:
/// setup = min over rise/fall of (RAT_late − AT_late),
/// hold  = min over rise/fall of (AT_early − RAT_early).
struct EndpointSlack {
  double setup = 0.0;
  double hold = 0.0;
};
[[nodiscard]] EndpointSlack predicted_endpoint_slack(
    const data::DatasetGraph& g, const nn::Tensor& atslew, int endpoint_node);

/// Per-graph slack digest scattered back from one packed forward
/// (data/graph_pack.hpp): entry k summarizes part k's endpoint slice of
/// the packed atslew. Because packing is a disjoint union, entry k equals
/// the digest of running part k's forward alone.
struct GraphSlackSummary {
  double wns_setup = 0.0;
  double tns_setup = 0.0;
  double wns_hold = 0.0;
  /// Aligned with part k's own endpoint list.
  std::vector<double> endpoint_setup;
};
[[nodiscard]] std::vector<GraphSlackSummary> packed_endpoint_slacks(
    const data::GraphPack& pack, const nn::Tensor& atslew);

}  // namespace tg::core
