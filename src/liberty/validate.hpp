#pragma once
/// \file validate.hpp
/// Library invariant checker (DESIGN.md §8). Collects every violation into
/// a DiagSink instead of throwing, so a whole library's problems surface in
/// one pass. Fast level covers the O(cells) structural invariants (pin/arc
/// index consistency, sequential roles, duplicate names); full adds the
/// per-LUT sweeps (strictly monotone axes, finite values/axes, finite
/// setup/hold/capacitance).

#include "liberty/library.hpp"
#include "util/diag.hpp"

namespace tg {

/// Checks one cell; `sink` receives diagnostics with object = cell name.
void validate_cell(const CellType& cell, DiagSink& sink,
                   ValidateLevel level = validate_level());

/// Checks the whole library. No-op at ValidateLevel::kOff.
void validate_library(const Library& library, DiagSink& sink,
                      ValidateLevel level = validate_level());

}  // namespace tg
