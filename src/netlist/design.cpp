#include "netlist/design.hpp"

#include "netlist/validate.hpp"
#include "util/check.hpp"

namespace tg {

Design::Design(std::string name, const Library* library)
    : name_(std::move(name)), library_(library) {
  TG_CHECK(library_ != nullptr);
}

PinId Design::add_primary_input(std::string port_name) {
  Pin p;
  p.is_port = true;
  p.drives_net = true;  // a primary input drives its net
  p.port_name = std::move(port_name);
  const PinId id = static_cast<PinId>(pins_.size());
  pins_.push_back(std::move(p));
  primary_inputs_.push_back(id);
  return id;
}

PinId Design::add_primary_output(std::string port_name) {
  Pin p;
  p.is_port = true;
  p.drives_net = false;  // a primary output is a net sink
  p.port_name = std::move(port_name);
  const PinId id = static_cast<PinId>(pins_.size());
  pins_.push_back(std::move(p));
  primary_outputs_.push_back(id);
  return id;
}

InstId Design::add_instance(std::string inst_name, int cell_id) {
  const CellType& cell = library_->cell(cell_id);
  Instance inst;
  inst.name = std::move(inst_name);
  inst.cell_id = cell_id;
  const InstId inst_id = static_cast<InstId>(instances_.size());
  for (std::size_t i = 0; i < cell.pins.size(); ++i) {
    Pin p;
    p.inst = inst_id;
    p.cell_pin = static_cast<int>(i);
    p.drives_net = (cell.pins[i].dir == PinDir::kOutput);
    inst.pins.push_back(static_cast<PinId>(pins_.size()));
    pins_.push_back(std::move(p));
  }
  instances_.push_back(std::move(inst));
  return inst_id;
}

NetId Design::add_net(std::string net_name, bool is_clock) {
  Net n;
  n.name = std::move(net_name);
  n.is_clock = is_clock;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

void Design::connect(NetId net_id, PinId pin_id) {
  TG_CHECK(net_id >= 0 && net_id < num_nets());
  TG_CHECK(pin_id >= 0 && pin_id < num_pins());
  Net& n = nets_[net_id];
  Pin& p = pins_[pin_id];
  TG_CHECK_MSG(p.net == kInvalidId,
               "pin " << pin_name(pin_id) << " already connected");
  p.net = net_id;
  if (p.drives_net) {
    TG_CHECK_MSG(n.driver == kInvalidId,
                 "net " << n.name << " already has a driver");
    n.driver = pin_id;
  } else {
    n.sinks.push_back(pin_id);
  }
}

void Design::set_clock(NetId clock_net, double period_ns) {
  TG_CHECK(clock_net >= 0 && clock_net < num_nets());
  TG_CHECK(period_ns > 0.0);
  clock_net_ = clock_net;
  clock_period_ = period_ns;
  nets_[clock_net].is_clock = true;
}

void Design::set_period(double period_ns) {
  TG_CHECK(period_ns > 0.0);
  clock_period_ = period_ns;
}

const Instance& Design::instance(InstId id) const {
  TG_CHECK(id >= 0 && id < num_instances());
  return instances_[id];
}
Instance& Design::instance(InstId id) {
  TG_CHECK(id >= 0 && id < num_instances());
  return instances_[id];
}
const Pin& Design::pin(PinId id) const {
  TG_CHECK(id >= 0 && id < num_pins());
  return pins_[id];
}
Pin& Design::pin(PinId id) {
  TG_CHECK(id >= 0 && id < num_pins());
  return pins_[id];
}
const Net& Design::net(NetId id) const {
  TG_CHECK(id >= 0 && id < num_nets());
  return nets_[id];
}

std::string Design::pin_name(PinId id) const {
  const Pin& p = pin(id);
  if (p.is_port) return p.port_name;
  const Instance& inst = instances_[p.inst];
  const CellType& cell = library_->cell(inst.cell_id);
  return inst.name + "/" + cell.pins[static_cast<std::size_t>(p.cell_pin)].name;
}

const CellType& Design::cell_of(PinId id) const {
  const Pin& p = pin(id);
  TG_CHECK_MSG(p.inst != kInvalidId, "pin is a port: " << pin_name(id));
  return library_->cell(instances_[p.inst].cell_id);
}

double Design::pin_cap(PinId id, int corner) const {
  const Pin& p = pin(id);
  if (p.is_port) {
    // Primary outputs present an external load; primary inputs none.
    return p.drives_net ? 0.0 : output_port_cap_;
  }
  const CellType& cell = cell_of(id);
  return cell.pins[static_cast<std::size_t>(p.cell_pin)].cap[corner];
}

bool Design::is_endpoint(PinId id) const {
  const Pin& p = pin(id);
  if (p.is_port) return !p.drives_net;  // primary output
  const CellType& cell = cell_of(id);
  return cell.is_sequential && p.cell_pin == cell.data_pin;
}

bool Design::is_clock_pin(PinId id) const {
  const Pin& p = pin(id);
  if (p.is_port) return false;
  const CellType& cell = cell_of(id);
  return cell.is_sequential && p.cell_pin == cell.clock_pin;
}

bool Design::is_timing_root(PinId id) const {
  // Roots of the timing graph: pins with no incoming timing arcs. These
  // are primary inputs and FF clock pins (the launch point of CK→Q arcs;
  // the ideal clock net itself is not propagated).
  const Pin& p = pin(id);
  if (p.is_port) return p.drives_net;  // primary input
  const CellType& cell = cell_of(id);
  return cell.is_sequential && p.cell_pin == cell.clock_pin;
}

void Design::validate() const {
  // Full-level invariant sweep via the shared checker (DESIGN.md §8); all
  // violations are collected and escalated as one aggregated DiagError.
  DiagSink sink;
  validate_design(*this, sink, ValidateLevel::kFull);
  sink.throw_if_errors("design '" + name_ + "' validation");
}

DesignStats Design::stats() const {
  DesignStats s;
  s.num_nodes = num_pins();
  for (const Net& net : nets_) {
    if (net.is_clock) continue;
    s.num_net_edges += static_cast<long long>(net.sinks.size());
  }
  for (const Instance& inst : instances_) {
    const CellType& cell = library_->cell(inst.cell_id);
    s.num_cell_edges += static_cast<long long>(cell.arcs.size());
    if (cell.is_sequential) ++s.num_ffs;
  }
  for (PinId p = 0; p < num_pins(); ++p) {
    if (is_endpoint(p)) ++s.num_endpoints;
  }
  s.num_instances = num_instances();
  s.num_nets = num_nets();
  return s;
}

}  // namespace tg
