#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.hpp"

namespace tg::nn {
namespace {

Tensor randn(std::int64_t r, std::int64_t c, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(static_cast<std::size_t>(r * c));
  for (float& x : v) x = static_cast<float>(rng.normal()) * scale;
  return Tensor::from_vector(std::move(v), r, c, true);
}

// Variadic so lambdas containing commas (braced initializers) still parse.
#define TG_EXPECT_GRAD_OK(...)                                     \
  do {                                                             \
    const GradCheckResult res = gradcheck(__VA_ARGS__);            \
    EXPECT_TRUE(res.ok) << "max rel err " << res.max_rel_error     \
                        << ", max abs err " << res.max_abs_error;  \
  } while (0)

TEST(GradCheck, Add) {
  Rng rng(1);
  std::vector<Tensor> in{randn(3, 4, rng), randn(3, 4, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) { return sum_all(add(t[0], t[1])); },
      in);
}

TEST(GradCheck, AddBroadcast) {
  Rng rng(2);
  std::vector<Tensor> in{randn(4, 3, rng), randn(1, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return mean_all(mul(add(t[0], t[1]), add(t[0], t[1])));
      },
      in);
}

TEST(GradCheck, MulAndScale) {
  Rng rng(3);
  std::vector<Tensor> in{randn(3, 3, rng), randn(3, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return sum_all(scale(mul(t[0], t[1]), 0.7f));
      },
      in);
}

TEST(GradCheck, Matmul) {
  Rng rng(4);
  std::vector<Tensor> in{randn(3, 4, rng), randn(4, 2, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return sum_all(mul(matmul(t[0], t[1]), matmul(t[0], t[1])));
      },
      in);
}

TEST(GradCheck, ActivationsSmooth) {
  Rng rng(5);
  std::vector<Tensor> in{randn(4, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) { return sum_all(sigmoid(t[0])); }, in);
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) { return sum_all(tanh_op(t[0])); }, in);
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) { return sum_all(softplus(t[0])); },
      in);
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(6);
  // Shift inputs away from 0 so finite differences are valid.
  Tensor x = randn(4, 4, rng);
  for (float& v : x.data()) v += (v >= 0.0f ? 0.5f : -0.5f);
  std::vector<Tensor> in{x};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return sum_all(mul(relu(t[0]), relu(t[0])));
      },
      in);
}

TEST(GradCheck, AddReluFused) {
  Rng rng(61);
  // Kink of add_relu sits at a + b == 0: nudge a so every sum is away
  // from it and finite differences stay valid.
  Tensor a = randn(4, 5, rng);
  Tensor b = randn(4, 5, rng);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const float s = a.data()[idx] + b.data()[idx];
    a.data()[idx] += (s >= 0.0f ? 0.5f : -0.5f);
  }
  std::vector<Tensor> in{a, b};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return sum_all(mul(add_relu(t[0], t[1]), add_relu(t[0], t[1])));
      },
      in);
}

TEST(GradCheck, AddReluBroadcastBias) {
  Rng rng(62);
  // The Linear+bias+ReLU fusion path: b is a 1 x cols row broadcast over
  // every row of a. Same kink shift, applied against the broadcast sum.
  Tensor a = randn(5, 3, rng);
  Tensor b = randn(1, 3, rng);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      const auto idx = static_cast<std::size_t>(r * a.cols() + c);
      const float s = a.data()[idx] + b.data()[static_cast<std::size_t>(c)];
      a.data()[idx] += (s >= 0.0f ? 0.5f : -0.5f);
    }
  }
  std::vector<Tensor> in{a, b};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return sum_all(mul(add_relu(t[0], t[1]), add_relu(t[0], t[1])));
      },
      in);
}

TEST(GradCheck, MulSigmoidFused) {
  Rng rng(63);
  // Smooth everywhere — no kink handling needed for the gating fusion.
  std::vector<Tensor> in{randn(4, 4, rng), randn(4, 4, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return sum_all(mul_sigmoid(t[0], t[1]));
      },
      in);
}

TEST(GradCheck, FusedMatchesUnfused) {
  // The fused ops must agree with their primitive compositions: forward
  // is the same float expression (bit-equal); backward may associate the
  // chain-rule products differently, so gradients compare to a tight
  // tolerance instead.
  Rng rng(64);
  auto clone = [](const Tensor& t) {
    return Tensor::from_vector(
        std::vector<float>(t.data().begin(), t.data().end()), t.rows(),
        t.cols(), true);
  };
  Tensor a1 = randn(6, 4, rng);
  Tensor b1 = randn(1, 4, rng);
  Tensor a2 = clone(a1);
  Tensor b2 = clone(b1);
  Tensor fused = sum_all(add_relu(a1, b1));
  Tensor ref = sum_all(relu(add(a2, b2)));
  ASSERT_EQ(fused.item(), ref.item());
  fused.backward();
  ref.backward();
  for (std::int64_t i = 0; i < a1.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(a1.grad()[idx], a2.grad()[idx]) << "dA at " << i;
  }
  for (std::int64_t i = 0; i < b1.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(b1.grad()[idx], b2.grad()[idx]) << "dBias at " << i;
  }

  Tensor c1 = randn(5, 3, rng);
  Tensor d1 = randn(5, 3, rng);
  Tensor c2 = clone(c1);
  Tensor d2 = clone(d1);
  Tensor fused2 = sum_all(mul_sigmoid(c1, d1));
  Tensor ref2 = sum_all(mul(c2, sigmoid(d2)));
  ASSERT_EQ(fused2.item(), ref2.item());
  fused2.backward();
  ref2.backward();
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(c1.grad()[idx], c2.grad()[idx]) << "dA at " << i;
    ASSERT_NEAR(d1.grad()[idx], d2.grad()[idx],
                1e-6f * (1.0f + std::abs(d2.grad()[idx])))
        << "dGate at " << i;
  }
}

TEST(GradCheck, ConcatSliceRows) {
  Rng rng(7);
  std::vector<Tensor> in{randn(3, 2, rng), randn(3, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        const Tensor parts[] = {t[0], t[1]};
        Tensor c = concat_cols(parts);
        return sum_all(mul(slice_cols(c, 1, 4), slice_cols(c, 0, 3)));
      },
      in);
}

TEST(GradCheck, ConcatRows) {
  Rng rng(8);
  std::vector<Tensor> in{randn(2, 3, rng), randn(3, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        const Tensor parts[] = {t[0], t[1]};
        Tensor c = concat_rows(parts);
        return sum_all(mul(c, c));
      },
      in);
}

TEST(GradCheck, GatherRows) {
  Rng rng(9);
  std::vector<Tensor> in{randn(5, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        Tensor g = gather_rows(t[0], {0, 2, 2, 4});
        return sum_all(mul(g, g));
      },
      in);
}

TEST(GradCheck, MultiGather) {
  Rng rng(10);
  std::vector<Tensor> in{randn(2, 3, rng), randn(3, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        const Tensor sources[] = {t[0], t[1]};
        Tensor g = multi_gather(sources, {0, 1, 1, 0}, {1, 2, 0, 1});
        return sum_all(mul(g, g));
      },
      in);
}

TEST(GradCheck, SegmentSum) {
  Rng rng(11);
  std::vector<Tensor> in{randn(6, 2, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        Tensor s = segment_sum(t[0], {0, 1, 1, 2, 2, 2}, 4);
        return sum_all(mul(s, s));
      },
      in);
}

TEST(GradCheck, SegmentMax) {
  Rng rng(12);
  std::vector<Tensor> in{randn(6, 2, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        Tensor m = segment_max(t[0], {0, 0, 1, 1, 1, 2}, 3);
        return sum_all(mul(m, m));
      },
      in);
}

TEST(GradCheck, Spmm) {
  Rng rng(13);
  std::vector<Tensor> in{randn(4, 3, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        Tensor y = spmm({0, 1, 2, 3, 0}, {0, 0, 1, 2, 2},
                        {0.5f, 1.5f, -1.0f, 2.0f, 0.3f}, t[0], 3);
        return sum_all(mul(y, y));
      },
      in);
}

TEST(GradCheck, SoftmaxGroups) {
  Rng rng(14);
  std::vector<Tensor> in{randn(3, 6, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        Tensor s = softmax_groups(t[0], 3);
        return sum_all(mul(s, s));
      },
      in);
}

TEST(GradCheck, LutKronDotAllInputs) {
  Rng rng(15);
  const std::int64_t d = 3;
  std::vector<Tensor> in{randn(2, 2 * d, rng), randn(2, 2 * d, rng),
                         randn(2, 2 * d * d, rng)};
  TG_EXPECT_GRAD_OK(
      [d](const std::vector<Tensor>& t) {
        Tensor out = lut_kron_dot(t[0], t[1], t[2], d);
        return sum_all(mul(out, out));
      },
      in);
}

TEST(GradCheck, MseLoss) {
  Rng rng(16);
  std::vector<Tensor> in{randn(4, 2, rng), randn(4, 2, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) { return mse_loss(t[0], t[1]); }, in);
}

TEST(GradCheck, MseLossRows) {
  Rng rng(17);
  std::vector<Tensor> in{randn(5, 2, rng), randn(3, 2, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        return mse_loss_rows(t[0], {0, 2, 4}, t[1]);
      },
      in);
}

TEST(GradCheck, ComposedMessagePassingLayer) {
  // A miniature net-conv layer: gather, concat, matmul, relu-free path,
  // segment reduce — the full composition the model uses.
  Rng rng(18);
  std::vector<Tensor> in{randn(4, 3, rng), randn(9, 2, rng)};
  TG_EXPECT_GRAD_OK(
      [](const std::vector<Tensor>& t) {
        Tensor h = t[0];                           // [4 nodes, 3]
        Tensor w = t[1];                           // weight [9, 2]
        Tensor hd = gather_rows(h, {0, 0, 1, 2});  // 4 edges
        Tensor hs = gather_rows(h, {1, 2, 3, 3});
        const Tensor cat_parts[] = {hd, hs, gather_rows(h, {3, 2, 1, 0})};
        Tensor msg = matmul(concat_cols(cat_parts), w);  // [4, 2]
        Tensor summed = segment_sum(msg, {0, 1, 1, 2}, 3);
        Tensor maxed = segment_max(msg, {0, 1, 1, 2}, 3);
        return sum_all(mul(add(summed, maxed), add(summed, maxed)));
      },
      in);
}

}  // namespace
}  // namespace tg::nn
