#include "liberty/library_builder.hpp"

#include <cmath>

#include "util/check.hpp"

namespace tg {

namespace {

/// Static description of a combinational family.
struct Family {
  const char* name;
  int num_inputs;
  double logical_effort;  ///< g
  double parasitic;       ///< p (intrinsic delay in tau units)
  Sense sense;
};

constexpr Family kFamilies[] = {
    {"INV", 1, 1.00, 1.0, Sense::kNegative},
    {"BUF", 1, 1.00, 2.0, Sense::kPositive},
    {"NAND2", 2, 1.33, 2.0, Sense::kNegative},
    {"NAND3", 3, 1.67, 3.0, Sense::kNegative},
    {"NOR2", 2, 1.67, 2.0, Sense::kNegative},
    {"NOR3", 3, 2.33, 3.0, Sense::kNegative},
    {"AND2", 2, 1.40, 3.0, Sense::kPositive},
    {"OR2", 2, 1.70, 3.0, Sense::kPositive},
    {"XOR2", 2, 3.00, 4.0, Sense::kNonUnate},
    {"XNOR2", 2, 3.00, 4.0, Sense::kNonUnate},
    {"MUX2", 3, 2.00, 3.5, Sense::kNonUnate},
    {"AOI21", 3, 2.00, 2.5, Sense::kNegative},
    {"OAI21", 3, 2.00, 2.5, Sense::kNegative},
};

std::array<double, kLutDim> log_axis(double lo, double hi) {
  std::array<double, kLutDim> axis{};
  const double ratio = std::pow(hi / lo, 1.0 / (kLutDim - 1));
  double v = lo;
  for (int i = 0; i < kLutDim; ++i) {
    axis[i] = v;
    v *= ratio;
  }
  axis[kLutDim - 1] = hi;  // exact endpoint despite fp drift
  return axis;
}

/// Analytic late-corner model for one (slew, load) grid point.
struct ArcModel {
  double r_drive;    ///< effective drive resistance (kΩ)
  double intrinsic;  ///< intrinsic delay (ns)
  double slew_coeff;
  double slew_gain;
  double cross_term;
  double slew_ref;  ///< normalization for the cross term
  double load_ref;

  [[nodiscard]] double delay(double slew, double load) const {
    const double cross =
        1.0 + cross_term * (slew / slew_ref) * (load / load_ref) /
                  (1.0 + (slew / slew_ref) + (load / load_ref));
    return (intrinsic + r_drive * load) * cross + slew_coeff * slew;
  }
  [[nodiscard]] double out_slew(double slew, double load) const {
    return 0.5 * intrinsic + slew_gain * r_drive * load + 0.10 * slew;
  }
};

/// Fills the 8 LUTs of one arc from the analytic model with per-cell
/// deterministic jitter.
void characterize_arc(TimingArc& arc, const ArcModel& model,
                      const LibraryConfig& cfg, Rng& rng) {
  const auto slew_axis = log_axis(cfg.slew_axis_min, cfg.slew_axis_max);
  const auto load_axis = log_axis(cfg.load_axis_min, cfg.load_axis_max);

  for (int m = 0; m < kNumModes; ++m) {
    for (int t = 0; t < kNumTrans; ++t) {
      const int corner =
          corner_index(static_cast<Mode>(m), static_cast<Trans>(t));
      const double mode_scale =
          (static_cast<Mode>(m) == Mode::kEarly) ? cfg.early_derate : 1.0;
      const double trans_scale = (static_cast<Trans>(t) == Trans::kRise)
                                     ? 1.0 + cfg.rise_fall_asym
                                     : 1.0 - cfg.rise_fall_asym;
      std::array<double, kLutCells> delay_vals{};
      std::array<double, kLutCells> slew_vals{};
      for (int i = 0; i < kLutDim; ++i) {
        for (int j = 0; j < kLutDim; ++j) {
          const double s = slew_axis[i];
          const double l = load_axis[j];
          const double dj = 1.0 + cfg.noise * rng.normal();
          const double sj = 1.0 + cfg.noise * rng.normal();
          delay_vals[static_cast<std::size_t>(i * kLutDim + j)] =
              model.delay(s, l) * mode_scale * trans_scale * dj;
          slew_vals[static_cast<std::size_t>(i * kLutDim + j)] =
              model.out_slew(s, l) * mode_scale * trans_scale * sj;
        }
      }
      arc.delay[corner] = NldmLut(slew_axis, load_axis, delay_vals);
      arc.out_slew[corner] = NldmLut(slew_axis, load_axis, slew_vals);
    }
  }
}

PerCorner pin_cap(double base, Rng& rng) {
  PerCorner cap{};
  for (int m = 0; m < kNumModes; ++m) {
    for (int t = 0; t < kNumTrans; ++t) {
      const double mode_scale = (static_cast<Mode>(m) == Mode::kEarly) ? 0.96 : 1.0;
      const double trans_scale =
          (static_cast<Trans>(t) == Trans::kRise) ? 1.03 : 0.97;
      cap[corner_index(static_cast<Mode>(m), static_cast<Trans>(t))] =
          base * mode_scale * trans_scale * (1.0 + 0.02 * rng.normal());
    }
  }
  return cap;
}

CellType make_combinational(const Family& fam, int drive,
                            const LibraryConfig& cfg, Rng& rng) {
  CellType cell;
  cell.function = fam.name;
  cell.drive = drive;
  cell.name = std::string(fam.name) + "_X" + std::to_string(drive);

  const double cin = fam.logical_effort * cfg.base_cap_pf * drive;
  static const char* kInputNames[] = {"A", "B", "C", "D"};
  for (int i = 0; i < fam.num_inputs; ++i) {
    CellPin pin;
    pin.name = kInputNames[i];
    pin.dir = PinDir::kInput;
    pin.cap = pin_cap(cin, rng);
    cell.pins.push_back(std::move(pin));
  }
  CellPin out;
  out.name = "Y";
  out.dir = PinDir::kOutput;
  cell.pins.push_back(std::move(out));
  const int out_idx = fam.num_inputs;

  // Slightly different electrical behaviour per input pin, as in real
  // libraries (inner transistor stacks are slower).
  for (int i = 0; i < fam.num_inputs; ++i) {
    TimingArc arc;
    arc.from_pin = i;
    arc.to_pin = out_idx;
    arc.sense = fam.sense;
    ArcModel model;
    model.r_drive = cfg.tau_ns / (cfg.base_cap_pf * drive);
    model.intrinsic =
        cfg.tau_ns * fam.parasitic * (1.0 + 0.12 * i + 0.05 * rng.normal());
    model.slew_coeff = cfg.slew_coeff * (1.0 + 0.08 * i);
    model.slew_gain = cfg.slew_gain;
    model.cross_term = cfg.cross_term;
    model.slew_ref = cfg.slew_axis_max * 0.5;
    model.load_ref = cfg.load_axis_max * 0.5;
    characterize_arc(arc, model, cfg, rng);
    cell.arcs.push_back(std::move(arc));
  }
  return cell;
}

CellType make_dff(int drive, const LibraryConfig& cfg, Rng& rng) {
  CellType cell;
  cell.function = "DFF";
  cell.drive = drive;
  cell.name = "DFF_X" + std::to_string(drive);
  cell.is_sequential = true;

  CellPin d{"D", PinDir::kInput, pin_cap(cfg.base_cap_pf * 1.2, rng), false};
  CellPin ck{"CK", PinDir::kInput, pin_cap(cfg.base_cap_pf * 0.8, rng), true};
  CellPin q{"Q", PinDir::kOutput, per_corner_fill(0.0), false};
  cell.pins = {d, ck, q};
  cell.data_pin = 0;
  cell.clock_pin = 1;
  cell.output_pin = 2;

  TimingArc ck_to_q;
  ck_to_q.from_pin = cell.clock_pin;
  ck_to_q.to_pin = cell.output_pin;
  ck_to_q.sense = Sense::kNonUnate;  // Q can rise or fall off the CK edge
  ArcModel model;
  model.r_drive = cfg.tau_ns / (cfg.base_cap_pf * drive);
  model.intrinsic = cfg.dff_clk_to_q * (1.0 + 0.05 * rng.normal());
  model.slew_coeff = cfg.slew_coeff * 0.5;
  model.slew_gain = cfg.slew_gain;
  model.cross_term = cfg.cross_term * 0.5;
  model.slew_ref = cfg.slew_axis_max * 0.5;
  model.load_ref = cfg.load_axis_max * 0.5;
  characterize_arc(ck_to_q, model, cfg, rng);
  cell.arcs.push_back(std::move(ck_to_q));

  for (int c = 0; c < kNumCorners; ++c) {
    cell.setup[c] = cfg.dff_setup * (1.0 + 0.03 * rng.normal());
    cell.hold[c] = cfg.dff_hold * (1.0 + 0.03 * rng.normal());
  }
  return cell;
}

}  // namespace

Library build_library(const LibraryConfig& config) {
  TG_CHECK(!config.drives.empty());
  Rng rng(config.seed);
  Library lib;
  for (const Family& fam : kFamilies) {
    for (int drive : config.drives) {
      lib.add_cell(make_combinational(fam, drive, config, rng));
    }
  }
  for (int drive : config.drives) {
    lib.add_cell(make_dff(drive, config, rng));
  }
  return lib;
}

}  // namespace tg
