# Empty compiler generated dependencies file for fig4_slack_scatter.
# This may be replaced when dependencies are built.
