# Empty dependencies file for tg_data.
# This may be replaced when dependencies are built.
