file(REMOVE_RECURSE
  "CMakeFiles/sta_explorer.dir/sta_explorer.cpp.o"
  "CMakeFiles/sta_explorer.dir/sta_explorer.cpp.o.d"
  "sta_explorer"
  "sta_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sta_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
