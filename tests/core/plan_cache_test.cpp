/// Regression test: trainer caches (PropPlan, GCNII adjacency) must key on
/// graph identity, not design name — the same benchmark can exist at
/// several scales in one process (this segfaulted once).

#include <gtest/gtest.h>

#include "core/test_fixture.hpp"
#include "core/trainer.hpp"

namespace tg::core {
namespace {

TEST(PlanCache, SameNameDifferentGraphsGetDistinctPlans) {
  const Library lib = build_library();
  data::DatasetOptions small;
  small.scale = 1.0 / 32;
  data::DatasetOptions larger;
  larger.scale = 1.0 / 16;
  const data::DatasetGraph a =
      data::build_design_graph(suite_entry("picorv32a", small.scale), lib, small);
  const data::DatasetGraph b =
      data::build_design_graph(suite_entry("picorv32a", larger.scale), lib, larger);
  ASSERT_EQ(a.name, b.name);
  ASSERT_NE(a.num_nodes, b.num_nodes);

  TimingGnnConfig cfg;
  cfg.net.hidden = cfg.net.mlp_hidden = 8;
  cfg.net.mlp_layers = 1;
  cfg.prop.hidden = cfg.prop.mlp_hidden = cfg.prop.lut.mlp_hidden = 8;
  cfg.prop.mlp_layers = cfg.prop.lut.mlp_layers = 1;
  TrainOptions opt;
  opt.epochs = 1;
  opt.verbose = false;
  TimingGnnTrainer trainer(cfg, opt);

  // Both evaluations must succeed with plans matching their own graph.
  const PropPlan& pa = trainer.plan_for(a);
  const PropPlan& pb = trainer.plan_for(b);
  EXPECT_NE(&pa, &pb);
  EXPECT_EQ(static_cast<int>(pa.node_level.size()), a.num_nodes);
  EXPECT_EQ(static_cast<int>(pb.node_level.size()), b.num_nodes);
  EXPECT_NO_THROW(trainer.evaluate(a));
  EXPECT_NO_THROW(trainer.evaluate(b));
}

}  // namespace
}  // namespace tg::core
