#pragma once
/// \file cell_type.hpp
/// Standard-cell characterization data: pins with per-corner capacitance,
/// NLDM timing arcs (8 LUTs each: delay and output slew × 4 EL/RF corners),
/// and sequential setup/hold constraints.

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/corner.hpp"
#include "liberty/nldm_lut.hpp"

namespace tg {

/// Unateness of a timing arc: how the output transition relates to the
/// input transition that caused it.
enum class Sense { kPositive, kNegative, kNonUnate };

/// Input transition that produces output transition `out` through an arc of
/// the given sense. Non-unate arcs are handled by the timer as
/// worst-of-both; this helper returns the same-transition convention.
[[nodiscard]] constexpr Trans arc_input_trans(Sense sense, Trans out) {
  return sense == Sense::kNegative ? flip(out) : out;
}

/// One characterized cell arc (from an input pin to an output pin).
struct TimingArc {
  int from_pin = -1;  ///< index into CellType::pins (input side)
  int to_pin = -1;    ///< index into CellType::pins (output side)
  Sense sense = Sense::kPositive;
  /// Indexed by corner_index(mode, output transition).
  std::array<NldmLut, kNumCorners> delay;
  std::array<NldmLut, kNumCorners> out_slew;
};

enum class PinDir { kInput, kOutput };

struct CellPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  /// Input capacitance per corner (pF); zero for outputs.
  PerCorner cap = per_corner_fill(0.0);
  bool is_clock = false;
};

/// A library cell. Combinational cells carry input→output arcs; sequential
/// cells (flip-flops) carry a clock→output arc plus setup/hold constraints
/// at the data pin, which makes that pin a timing endpoint.
struct CellType {
  std::string name;      ///< e.g. "NAND2_X2"
  std::string function;  ///< family tag, e.g. "NAND2"
  int drive = 1;
  bool is_sequential = false;
  std::vector<CellPin> pins;
  std::vector<TimingArc> arcs;

  // Sequential-only fields (ignored for combinational cells).
  PerCorner setup = per_corner_fill(0.0);  ///< setup margin at D (ns)
  PerCorner hold = per_corner_fill(0.0);   ///< hold margin at D (ns)
  int clock_pin = -1;
  int data_pin = -1;
  int output_pin = -1;

  [[nodiscard]] int num_inputs() const;
  [[nodiscard]] int num_outputs() const;
  /// Index of the pin named `name`, or -1.
  [[nodiscard]] int find_pin(std::string_view pin_name) const;
  /// The single output pin index. Checks there is exactly one.
  [[nodiscard]] int single_output() const;
};

}  // namespace tg
