#include "nn/gradcheck.hpp"

#include <cmath>

#include "util/check.hpp"

namespace tg::nn {

GradCheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& loss_fn,
    std::vector<Tensor> inputs, double eps, double tol) {
  // Analytic gradients.
  for (Tensor& t : inputs) t.zero_grad();
  Tensor loss = loss_fn(inputs);
  loss.backward();

  GradCheckResult res;
  res.ok = true;
  for (Tensor& input : inputs) {
    if (!input.requires_grad()) continue;
    auto grad = input.grad();
    auto data = input.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const float keep = data[i];
      data[i] = keep + static_cast<float>(eps);
      const double up = loss_fn(inputs).item();
      data[i] = keep - static_cast<float>(eps);
      const double down = loss_fn(inputs).item();
      data[i] = keep;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = grad[i];
      const double abs_err = std::abs(numeric - analytic);
      const double rel_err =
          abs_err / std::max(1.0, std::max(std::abs(numeric), std::abs(analytic)));
      res.max_abs_error = std::max(res.max_abs_error, abs_err);
      res.max_rel_error = std::max(res.max_rel_error, rel_err);
      if (rel_err > tol) res.ok = false;
    }
  }
  return res;
}

}  // namespace tg::nn
