# Empty dependencies file for tg_liberty.
# This may be replaced when dependencies are built.
