#pragma once
/// \file metrics.hpp
/// Process-wide metrics registry (DESIGN.md §9): named counters, gauges and
/// fixed-bucket histograms behind a zero-overhead-when-disabled gate.
///
/// Every record call starts with one relaxed atomic load of the enabled
/// flag; with `TG_METRICS` unset nothing else happens, so instrumentation
/// can live permanently on hot paths. When `TG_METRICS=<path>` is set the
/// merged snapshot is dumped at process exit — JSON by default, CSV when
/// the path ends in `.csv`.
///
/// Recording is thread-sharded: each thread writes its own
/// cache-line-padded stripe (picked by a stable per-thread id), and
/// `snapshot_metrics()` merges the stripes. Merged totals therefore depend
/// only on *what* was recorded, never on which thread or interleaving
/// recorded it — the snapshot-merge determinism the obs tests pin down.
///
/// Span durations from the tracer (util/obs/trace.hpp) auto-feed
/// histograms named `span/<span-name>`, which is what `tools/tg_top`
/// aggregates into a profile.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tg::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
/// Stable small id for the calling thread; indexes the metric stripes.
[[nodiscard]] int thread_stripe();
}  // namespace detail

/// True when metric recording is on (TG_METRICS or set_metrics_enabled).
[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flips recording on or off (tests, tools; TG_METRICS drives it at init).
void set_metrics_enabled(bool enabled);

inline constexpr int kMetricStripes = 16;
/// log2 duration buckets: bucket 0 holds value 0, bucket b >= 1 holds
/// [2^(b-1), 2^b - 1]. 44 buckets cover 1 ns .. ~2.4 h in nanoseconds.
inline constexpr int kHistogramBuckets = 44;

/// Monotonic add-only counter (events, pins, arcs, bytes).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    cells_[static_cast<std::size_t>(detail::thread_stripe())].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged value across all stripes.
  [[nodiscard]] std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricStripes> cells_{};
};

/// Last-write-wins scalar; set_max keeps the peak (peak-RSS style).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void set_max(double v);

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log2-bucket histogram of non-negative integer samples
/// (nanoseconds for the span-duration histograms).
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< meaningless when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    [[nodiscard]] double mean() const;
    /// Percentile estimate (p in [0, 100]), linearly interpolated inside
    /// the containing bucket.
    [[nodiscard]] double percentile(double p) const;
  };

  void record(std::uint64_t value);
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Bucket index of a sample (0 for 0, else bit_width, capped).
  [[nodiscard]] static int bucket_of(std::uint64_t v);
  [[nodiscard]] static std::uint64_t bucket_lo(int b);
  [[nodiscard]] static std::uint64_t bucket_hi(int b);

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

// ---- registry ------------------------------------------------------------
// Returned references are stable for the process lifetime, so call sites
// cache them in function-local statics (see TG_METRIC_COUNT).

[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Point-in-time merged view of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    double value;
  };
  struct HistogramRow {
    std::string name;
    Histogram::Snapshot hist;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Dumps the merged snapshot; returns false (after TG_WARN) on I/O failure.
bool write_metrics_json(const std::string& path);
bool write_metrics_csv(const std::string& path);

/// Zeroes every registered metric (references stay valid). Test helper.
void reset_metrics();

}  // namespace tg::obs

/// Counter bump with a per-site cached registry lookup. `name_` must be a
/// constant; the lookup happens once, afterwards the disabled-mode cost is
/// the static guard plus one relaxed load.
#define TG_METRIC_COUNT(name_, delta_)                                 \
  do {                                                                 \
    static ::tg::obs::Counter& tg_obs_counter_ =                       \
        ::tg::obs::counter(name_);                                     \
    tg_obs_counter_.add(static_cast<std::uint64_t>(delta_));           \
  } while (0)

/// Gauge set (last write wins) with a per-site cached lookup.
#define TG_METRIC_GAUGE_SET(name_, value_)                             \
  do {                                                                 \
    static ::tg::obs::Gauge& tg_obs_gauge_ = ::tg::obs::gauge(name_);  \
    tg_obs_gauge_.set(static_cast<double>(value_));                    \
  } while (0)
