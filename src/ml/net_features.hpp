#pragma once
/// \file net_features.hpp
/// Hand-engineered per-net-sink placement features in the style of
/// Barboza et al. (DAC'19) — the "statistics-based" RF/MLP baselines of
/// the paper's Table 4. One sample per (net, sink) pair; the target is the
/// ground-truth routed net delay at that sink.

#include <utility>
#include <vector>

#include "ml/decision_tree.hpp"
#include "route/router.hpp"

namespace tg::ml {

inline constexpr std::size_t kNetFeatureCount = 14;

struct NetFeatureSet {
  std::vector<float> features;  ///< rows × kNetFeatureCount, row-major
  std::size_t rows = 0;
  /// Routed sink net delay per corner (training target).
  std::vector<PerCorner> target;
  /// Provenance of each row.
  std::vector<std::pair<NetId, int>> sample;

  [[nodiscard]] Matrix matrix() const {
    return Matrix{features.data(), rows, kNetFeatureCount};
  }
  /// Single-corner target column.
  [[nodiscard]] std::vector<float> target_corner(int corner) const;
};

/// Extracts features from the placement and targets from the ground-truth
/// routing. Skips clock nets.
[[nodiscard]] NetFeatureSet extract_net_features(const Design& design,
                                                 const DesignRouting& truth);

}  // namespace tg::ml
