#include "util/cancel.hpp"

#include <atomic>

namespace tg {

namespace cancel_detail {

/// Shared cancellation state. `flag` latches the reason (0 = live); the
/// deadline is immutable after construction, so polling needs no lock —
/// one relaxed load, plus a steady_clock read only while a deadline is
/// armed and the state has not latched yet.
struct CancelState {
  std::atomic<int> flag{0};  ///< CancelReason, latched
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  CancelToken parent;  ///< null for root sources

  /// Latched or freshly-tripped reason; latches deadline/parent trips so
  /// later polls are cheap.
  CancelReason poll() {
    int f = flag.load(std::memory_order_relaxed);
    if (f != 0) return static_cast<CancelReason>(f);
    if (has_deadline &&
        std::chrono::steady_clock::now() >= deadline) {
      latch(CancelReason::kDeadline);
      return CancelReason::kDeadline;
    }
    if (parent.valid() && parent.cancelled()) {
      const CancelReason r = parent.reason();
      latch(r);
      return r;
    }
    return CancelReason::kNone;
  }

  void latch(CancelReason reason) {
    int expected = 0;
    flag.compare_exchange_strong(expected, static_cast<int>(reason),
                                 std::memory_order_relaxed);
  }
};

namespace {
thread_local CancelToken t_current;
}  // namespace

}  // namespace cancel_detail

const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kCancelled: return "cancelled";
    case CancelReason::kDeadline: return "deadline";
  }
  return "?";
}

CancelError::CancelError(CancelReason reason)
    : std::runtime_error(std::string("operation stopped: ") +
                         cancel_reason_name(reason)),
      reason_(reason) {}

bool CancelToken::cancelled() const {
  return state_ != nullptr && state_->poll() != CancelReason::kNone;
}

CancelReason CancelToken::reason() const {
  return state_ == nullptr ? CancelReason::kNone : state_->poll();
}

void CancelToken::throw_if_cancelled() const {
  if (state_ == nullptr) return;
  const CancelReason r = state_->poll();
  if (r != CancelReason::kNone) throw CancelError(r);
}

std::chrono::nanoseconds CancelToken::remaining() const {
  if (state_ == nullptr) return std::chrono::nanoseconds::max();
  if (state_->poll() != CancelReason::kNone) {
    return std::chrono::nanoseconds::zero();
  }
  std::chrono::nanoseconds best = std::chrono::nanoseconds::max();
  const cancel_detail::CancelState* s = state_.get();
  const auto now = std::chrono::steady_clock::now();
  while (s != nullptr) {
    if (s->has_deadline) {
      const auto left =
          std::chrono::duration_cast<std::chrono::nanoseconds>(s->deadline -
                                                               now);
      best = std::min(best, std::max(left, std::chrono::nanoseconds::zero()));
    }
    s = s->parent.state_.get();
  }
  return best;
}

CancelSource::CancelSource()
    : state_(std::make_shared<cancel_detail::CancelState>()) {}

CancelSource CancelSource::with_deadline(
    std::chrono::steady_clock::time_point deadline, CancelToken parent) {
  CancelSource src;
  src.state_->has_deadline = true;
  src.state_->deadline = deadline;
  src.state_->parent = std::move(parent);
  return src;
}

CancelSource CancelSource::with_budget(std::chrono::nanoseconds budget,
                                       CancelToken parent) {
  return with_deadline(std::chrono::steady_clock::now() + budget,
                       std::move(parent));
}

CancelSource CancelSource::with_parent(CancelToken parent) {
  CancelSource src;
  src.state_->parent = std::move(parent);
  return src;
}

void CancelSource::cancel() { state_->latch(CancelReason::kCancelled); }

CancelToken current_cancel_token() { return cancel_detail::t_current; }

ScopedCancel::ScopedCancel(CancelToken token)
    : prev_(cancel_detail::t_current) {
  cancel_detail::t_current = std::move(token);
}

ScopedCancel::~ScopedCancel() { cancel_detail::t_current = prev_; }

}  // namespace tg
