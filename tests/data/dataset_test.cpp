#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include "liberty/library_builder.hpp"

namespace tg::data {
namespace {

TEST(Dataset, SubsetBuildRespectsSplit) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  const SuiteDataset ds =
      build_suite_dataset(lib, options, {"spm", "usb", "zipdiv"});
  ASSERT_EQ(ds.graphs.size(), 3u);
  // zipdiv & usb are train designs; spm is a test design.
  EXPECT_EQ(ds.train_ids.size(), 2u);
  EXPECT_EQ(ds.test_ids.size(), 1u);
  EXPECT_EQ(ds.graphs[static_cast<std::size_t>(ds.test_ids[0])].name, "spm");
}

TEST(Dataset, SlimModeDropsHeavyHandles) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const DatasetGraph g =
      build_design_graph(suite_entry("spm", options.scale), lib, options);
  EXPECT_EQ(g.design, nullptr);
  EXPECT_EQ(g.truth_routing, nullptr);
  EXPECT_GT(g.num_nodes, 0);
}

TEST(Dataset, ClockPeriodCalibrated) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  const SuiteEntry entry = suite_entry("usb", options.scale);
  const DatasetGraph g = build_design_graph(entry, lib, options);
  // Calibration factor > 1 ⇒ all setup slacks positive-ish but not huge.
  double min_slack = 1e9, max_slack = -1e9;
  for (double s : g.endpoint_setup_slack) {
    min_slack = std::min(min_slack, s);
    max_slack = std::max(max_slack, s);
  }
  EXPECT_GT(min_slack, 0.0);
  EXPECT_LT(min_slack, 0.15 * g.clock_period);  // something is near-critical
}

TEST(Dataset, DeterministicRebuild) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  const DatasetGraph a =
      build_design_graph(suite_entry("spm", options.scale), lib, options);
  const DatasetGraph b =
      build_design_graph(suite_entry("spm", options.scale), lib, options);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  ASSERT_EQ(a.arrival.numel(), b.arrival.numel());
  for (std::int64_t i = 0; i < a.arrival.numel(); i += 97) {
    EXPECT_EQ(a.arrival.data()[static_cast<std::size_t>(i)],
              b.arrival.data()[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace tg::data
