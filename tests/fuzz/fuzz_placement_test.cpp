/// Structured fuzz driver for the placement reader: mutate a valid ".pl"
/// sidecar 10,000 seeded ways, apply each variant onto a fresh copy of the
/// design, and run the placement validator on clean parses.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/validate.hpp"
#include "netlist/verilog_io.hpp"
#include "testing/fixtures.hpp"
#include "testing/fuzz.hpp"

namespace tg {
namespace {

TEST(FuzzPlacement, MutatedPlacementsNeverCrashParserOrValidator) {
  const Library lib = tg::testing::small_library();
  const Design base = tg::testing::small_design(lib);
  std::ostringstream os;
  write_placement(base, os);
  const std::string text = os.str();

  const int iters = tg::testing::fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Rng rng(0x9A7EULL * 1000003ULL + static_cast<std::uint64_t>(i));
    const std::string mutated = tg::testing::mutate_text(text, rng);
    Design d = base;  // read_placement mutates the design in place
    std::istringstream in(mutated);
    DiagSink sink;
    read_placement(d, in, sink, "fuzz.pl");
    if (sink.ok()) {
      DiagSink vsink;
      validate_placement(d, vsink);
    }
  }
}

}  // namespace
}  // namespace tg
