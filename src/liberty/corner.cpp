#include "liberty/corner.hpp"

namespace tg {

std::string corner_name(int corner) {
  const Mode m = corner_mode(corner);
  const Trans t = corner_trans(corner);
  std::string s = (m == Mode::kEarly) ? "early/" : "late/";
  s += (t == Trans::kRise) ? "rise" : "fall";
  return s;
}

}  // namespace tg
