/// \file fig1_receptive_field.cpp
/// Reproduces **Figure 1**'s argument quantitatively: a K-layer GNN only
/// aggregates features within K hops, but computing an endpoint's arrival
/// time needs its *entire fan-in cone*. For every benchmark we measure the
/// cone depth (in graph hops) of each timing endpoint and report what
/// fraction of endpoints a K-layer GCN could fully cover for K ∈
/// {2, 4, 8, 16} — versus the levelized model, which always covers 100%.
///
///   ./fig1_receptive_field [--scale=...]

#include <cstdio>

#include "common.hpp"
#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "sta/timing_graph.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const bench::BenchConfig config = bench::parse_bench_config(argc, argv);
  std::printf("== Fig. 1: receptive field of K-layer GNNs vs required cone "
              "depth ==\n");

  const Library library = build_library();
  const int ks[] = {2, 4, 8, 16};

  Table table({"Benchmark", "Max depth", "Median EP depth", "K=2", "K=4",
               "K=8", "K=16", "Levelized"});

  for (const SuiteEntry& entry : table1_suite(config.scale)) {
    Design design = generate_design(entry.spec, library);
    const TimingGraph graph(design);

    // Fan-in cone depth of node v = its topological level (every arc hops
    // one level, so level == longest hop distance from a root).
    std::vector<int> ep_depth;
    for (PinId p = 0; p < design.num_pins(); ++p) {
      if (design.is_endpoint(p)) ep_depth.push_back(graph.level(p));
    }
    std::sort(ep_depth.begin(), ep_depth.end());
    const int median = ep_depth[ep_depth.size() / 2];

    std::vector<std::string> row{entry.spec.name,
                                 std::to_string(graph.num_levels() - 1),
                                 std::to_string(median)};
    for (int k : ks) {
      int covered = 0;
      for (int d : ep_depth) covered += (d <= k) ? 1 : 0;
      const double frac =
          100.0 * covered / static_cast<double>(ep_depth.size());
      row.push_back(format_fixed(frac, 1) + "%");
    }
    row.push_back("100.0%");
    table.add_row(row);
  }
  table.print();

  std::printf(
      "\nReading: a K-layer GCN fully covers an endpoint's fan-in cone only "
      "if the cone depth is <= K.\nThe paper cites logic depths around 300 "
      "levels on large designs — far beyond any practical GCN depth —\n"
      "while the levelized (timing-engine-inspired) propagation always "
      "covers the full cone with ONE pass.\n");
  return 0;
}
