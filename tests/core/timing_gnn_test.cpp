#include "core/timing_gnn.hpp"

#include <gtest/gtest.h>

#include "core/test_fixture.hpp"

namespace tg::core {
namespace {

TimingGnnConfig tiny_config(bool net_aux = true, bool cell_aux = true) {
  TimingGnnConfig cfg;
  cfg.net.hidden = 8;
  cfg.net.mlp_hidden = 8;
  cfg.net.mlp_layers = 1;
  cfg.net.num_layers = 2;
  cfg.prop.hidden = 8;
  cfg.prop.mlp_hidden = 8;
  cfg.prop.mlp_layers = 1;
  cfg.prop.lut.mlp_hidden = 8;
  cfg.prop.lut.mlp_layers = 1;
  cfg.use_net_aux = net_aux;
  cfg.use_cell_aux = cell_aux;
  return cfg;
}

TEST(TimingGnn, ForwardShapes) {
  const TimingGnn model(tiny_config());
  const auto& g = testing::train_graph();
  const PropPlan plan = build_prop_plan(g);
  const TimingGnn::Prediction pred = model.forward(g, plan);
  EXPECT_EQ(pred.atslew.rows(), g.num_nodes);
  EXPECT_EQ(pred.atslew.cols(), 2 * kNumCorners);
  EXPECT_EQ(pred.net_delay.rows(), g.num_nodes);
  EXPECT_EQ(pred.cell_delay.rows(), static_cast<std::int64_t>(g.cell_src.size()));
}

TEST(TimingGnn, InferenceFastPathMatchesTrainingForward) {
  // The serving plane answers from forward_atslew (cached embedding, no
  // auxiliary heads); it must produce bit-identical arrival/slew to the
  // full training forward.
  const TimingGnn model(tiny_config());
  const auto& g = testing::train_graph();
  const PropPlan plan = build_prop_plan(g);
  const TimingGnn::Prediction pred = model.forward(g, plan);
  const nn::Tensor emb = model.embed(g);
  const nn::Tensor fast = model.forward_atslew(g, plan, emb);
  ASSERT_EQ(fast.rows(), pred.atslew.rows());
  ASSERT_EQ(fast.cols(), pred.atslew.cols());
  for (std::int64_t r = 0; r < fast.rows(); ++r) {
    for (std::int64_t c = 0; c < fast.cols(); ++c) {
      EXPECT_EQ(fast.at(r, c), pred.atslew.at(r, c)) << "r=" << r << " c=" << c;
    }
  }
}

TEST(TimingGnn, LossFiniteAndPositive) {
  const TimingGnn model(tiny_config());
  const auto& g = testing::train_graph();
  const PropPlan plan = build_prop_plan(g);
  const auto pred = model.forward(g, plan);
  const nn::Tensor loss = model.loss(g, plan, pred);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(TimingGnn, AblationsReduceLossTerms) {
  // Full loss ≥ loss with an auxiliary term disabled (same predictions).
  const TimingGnnConfig full_cfg = tiny_config(true, true);
  const TimingGnn full(full_cfg);
  const auto& g = testing::train_graph();
  const PropPlan plan = build_prop_plan(g);
  const auto pred = full.forward(g, plan);
  const float l_full = full.loss(g, plan, pred).item();

  TimingGnnConfig no_aux_cfg = tiny_config(false, false);
  const TimingGnn no_aux(no_aux_cfg);  // same seed → same weights
  const float l_main = no_aux.loss(g, plan, pred).item();
  EXPECT_GT(l_full, l_main);
}

TEST(TimingGnn, SameSeedSameWeights) {
  const TimingGnn a(tiny_config());
  const TimingGnn b(tiny_config());
  ASSERT_EQ(a.parameters().size(), b.parameters().size());
  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    const auto av = a.parameters()[i].data();
    const auto bv = b.parameters()[i].data();
    for (std::size_t j = 0; j < av.size(); j += 13) {
      EXPECT_EQ(av[j], bv[j]);
    }
  }
}

TEST(TimingGnn, BackwardTouchesEverything) {
  TimingGnn model(tiny_config());
  const auto& g = testing::train_graph();
  const PropPlan plan = build_prop_plan(g);
  const auto pred = model.forward(g, plan);
  model.loss(g, plan, pred).backward();
  int with_grad = 0;
  for (const nn::Tensor& p : model.parameters()) {
    nn::Tensor copy = p;
    double norm = 0.0;
    for (float v : copy.grad()) norm += std::abs(v);
    if (norm > 0.0) ++with_grad;
  }
  // Nearly all parameters get gradient (the final-layer merge of the cell
  // delay head included thanks to the aux loss).
  EXPECT_GE(with_grad, static_cast<int>(model.parameters().size()) - 2);
}

TEST(PredictedEndpointSlack, MatchesManualComputation) {
  const auto& g = testing::test_graph();
  ASSERT_FALSE(g.endpoints.empty());
  const int ep = g.endpoints[0];
  // Build a fake atslew where arrival = RAT - 0.25 at late corners and
  // arrival = RAT + 0.5 at early corners.
  std::vector<float> at(static_cast<std::size_t>(g.num_nodes) * 8, 0.0f);
  for (int c = 0; c < kNumCorners; ++c) {
    const bool late = corner_mode(c) == Mode::kLate;
    at[static_cast<std::size_t>(ep * 8 + c)] =
        g.rat.at(ep, c) + (late ? -0.25f : 0.5f);
  }
  nn::Tensor atslew = nn::Tensor::from_vector(std::move(at), g.num_nodes, 8);
  const EndpointSlack s = predicted_endpoint_slack(g, atslew, ep);
  EXPECT_NEAR(s.setup, 0.25, 1e-5);
  EXPECT_NEAR(s.hold, 0.5, 1e-5);
}

}  // namespace
}  // namespace tg::core
