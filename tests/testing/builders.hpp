#pragma once
/// Shared hand-built circuits for tests. The caller owns the Library and
/// keeps it alive for the Design's lifetime (fixtures hold both as
/// members).

#include <string>

#include "liberty/library_builder.hpp"
#include "netlist/design.hpp"

namespace tg::testing {

struct CombChain {
  PinId in0 = kInvalidId, in1 = kInvalidId, out = kInvalidId;
  InstId nand_inst = kInvalidId, inv_inst = kInvalidId;
  NetId n_in0 = kInvalidId, n_in1 = kInvalidId, n_mid = kInvalidId,
        n_out = kInvalidId;
};

/// in0,in1 → NAND2_X1 → INV_X1 → out. Pins get simple placements.
inline CombChain build_comb_chain(Design& d, const Library& lib) {
  CombChain c;
  c.in0 = d.add_primary_input("in0");
  c.in1 = d.add_primary_input("in1");
  c.out = d.add_primary_output("out");

  c.nand_inst = d.add_instance("u_nand", lib.find_cell("NAND2_X1"));
  c.inv_inst = d.add_instance("u_inv", lib.find_cell("INV_X1"));

  c.n_in0 = d.add_net("n_in0");
  c.n_in1 = d.add_net("n_in1");
  c.n_mid = d.add_net("n_mid");
  c.n_out = d.add_net("n_out");

  const CellType& nand = lib.cell(d.instance(c.nand_inst).cell_id);
  const CellType& inv = lib.cell(d.instance(c.inv_inst).cell_id);

  d.connect(c.n_in0, c.in0);
  d.connect(c.n_in0, d.instance(c.nand_inst).pins[static_cast<std::size_t>(nand.find_pin("A"))]);
  d.connect(c.n_in1, c.in1);
  d.connect(c.n_in1, d.instance(c.nand_inst).pins[static_cast<std::size_t>(nand.find_pin("B"))]);
  d.connect(c.n_mid, d.instance(c.nand_inst).pins[static_cast<std::size_t>(nand.find_pin("Y"))]);
  d.connect(c.n_mid, d.instance(c.inv_inst).pins[static_cast<std::size_t>(inv.find_pin("A"))]);
  d.connect(c.n_out, d.instance(c.inv_inst).pins[static_cast<std::size_t>(inv.find_pin("Y"))]);
  d.connect(c.n_out, c.out);

  // Simple manual placement on a 100×100 die.
  BBox die;
  die.expand(Point{0, 0});
  die.expand(Point{100, 100});
  d.set_die(die);
  d.pin(c.in0).pos = {0, 30};
  d.pin(c.in1).pos = {0, 60};
  d.pin(c.out).pos = {100, 50};
  auto place_inst = [&](InstId id, double x, double y) {
    d.instance(id).pos = {x, y};
    for (PinId p : d.instance(id).pins) d.pin(p).pos = {x, y};
  };
  place_inst(c.nand_inst, 30, 45);
  place_inst(c.inv_inst, 70, 50);
  return c;
}

struct SeqChain {
  CombChain comb;
  InstId ff = kInvalidId;
  PinId ff_d = kInvalidId, ff_ck = kInvalidId, ff_q = kInvalidId;
  PinId q_out = kInvalidId;
  NetId clock_net = kInvalidId;
};

/// comb chain → DFF → second output; declares the clock (period 1 ns).
inline SeqChain build_seq_chain(Design& d, const Library& lib) {
  SeqChain s;
  s.comb = build_comb_chain(d, lib);

  s.ff = d.add_instance("u_ff", lib.find_cell("DFF_X1"));
  const CellType& dff = lib.cell(d.instance(s.ff).cell_id);
  s.ff_d = d.instance(s.ff).pins[static_cast<std::size_t>(dff.data_pin)];
  s.ff_ck = d.instance(s.ff).pins[static_cast<std::size_t>(dff.clock_pin)];
  s.ff_q = d.instance(s.ff).pins[static_cast<std::size_t>(dff.output_pin)];

  // The INV output also feeds the FF data pin.
  d.connect(s.comb.n_out, s.ff_d);

  const PinId clk_port = d.add_primary_input("clk");
  s.clock_net = d.add_net("clk_net", /*is_clock=*/true);
  d.connect(s.clock_net, clk_port);
  d.connect(s.clock_net, s.ff_ck);
  d.set_clock(s.clock_net, 1.0);
  d.pin(clk_port).pos = {0, 0};

  s.q_out = d.add_primary_output("q_out");
  const NetId q_net = d.add_net("q_net");
  d.connect(q_net, s.ff_q);
  d.connect(q_net, s.q_out);
  d.pin(s.q_out).pos = {100, 80};
  d.instance(s.ff).pos = {85, 60};
  for (PinId p : d.instance(s.ff).pins) d.pin(p).pos = {85, 60};
  return s;
}

}  // namespace tg::testing
