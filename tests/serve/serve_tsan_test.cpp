/// \file serve_tsan_test.cpp
/// Concurrency soak for the serving plane, built to run under
/// ThreadSanitizer (`ctest -L tsan`): many client threads hammer a
/// multi-worker `SlackServer` with a mix of predictions, ECO moves,
/// client-side cancellations, tight deadlines and injected faults across
/// several sessions, while another thread inspects session views. The
/// invariants are the zero-hang contract — every future resolves, every
/// response is tagged ok|degraded|shed — and clean shutdown with work in
/// flight.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "util/fault.hpp"

namespace tg::serve {
namespace {

constexpr const char* kDesign = "spm";
constexpr double kScale = 0.03125;

int alternative_cell(const SessionView& v, int inst) {
  const Library& lib = v.design.library();
  const int current = v.design.instance(inst).cell_id;
  for (int c : lib.cells_of_function(lib.cell(current).function)) {
    if (c != current) return c;
  }
  return -1;
}

TEST(ServeTsanTest, ConcurrentMixedLoadNeverHangsAndTagsEveryResponse) {
  ServeOptions o;
  o.workers = 4;
  o.queue_capacity = 32;
  o.max_retries = 1;
  o.backoff_base = std::chrono::milliseconds(1);
  o.quarantine_period = std::chrono::milliseconds(50);
  SlackServer server(o);

  constexpr int kClients = 6;
  constexpr int kPerClient = 24;
  std::vector<SessionId> sessions;
  for (int i = 0; i < kClients; ++i) {
    sessions.push_back(server.open_session(kDesign, kScale));
  }

  // A periodic worker blip keeps the retry/stale paths hot under TSan.
  fault::arm_serve_fault("worker", 5, 3);

  std::atomic<int> tagged{0};
  std::atomic<int> untagged{0};
  std::atomic<int> hangs{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const SessionId id = sessions[static_cast<std::size_t>(c)];
      ResizeMove move{-1, -1};
      server.inspect(id, [&](const SessionView& v) {
        move = {c % v.design.num_instances(), -1};
        move.new_cell = alternative_cell(v, move.inst);
      });
      for (int i = 0; i < kPerClient; ++i) {
        Request req;
        req.session = id;
        CancelSource cancel;
        switch (i % 6) {
          case 0:  // plain prediction (batchable)
            break;
          case 1:  // engine view
            req.mode = RequestMode::kSta;
            break;
          case 2:  // ECO move through the cone fast path
            if (move.new_cell >= 0) req.moves.push_back(move);
            break;
          case 3:  // tight deadline: must degrade or shed, never block
            req.budget = std::chrono::microseconds(50);
            break;
          case 4:  // client cancels mid-flight from this thread
            req.cancel = cancel.token();
            break;
          case 5:  // reference answer
            req.mode = RequestMode::kSta;
            req.force_full = true;
            break;
        }
        std::future<Response> fut = server.submit(std::move(req));
        if (i % 6 == 4) cancel.cancel();
        if (fut.wait_for(std::chrono::seconds(120)) !=
            std::future_status::ready) {
          hangs.fetch_add(1);
          continue;
        }
        const Response r = fut.get();
        const bool ok_tag = r.status == ResponseStatus::kOk ||
                            r.status == ResponseStatus::kDegraded ||
                            r.status == ResponseStatus::kShed;
        (ok_tag ? tagged : untagged).fetch_add(1);
        if (r.status == ResponseStatus::kShed && r.retry_after.count() > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }

  // Concurrent read-only inspection while the load runs (view racing
  // against moves is exactly what TSan is here to check).
  std::atomic<bool> stop_inspect{false};
  std::thread inspector([&] {
    while (!stop_inspect.load()) {
      for (const SessionId id : sessions) {
        server.inspect(id, [](const SessionView& v) {
          volatile double sink = v.sta.wns_setup;
          (void)sink;
          (void)v.pristine;
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : clients) t.join();
  stop_inspect.store(true);
  inspector.join();
  fault::clear_serve_fault();

  EXPECT_EQ(hangs.load(), 0);
  EXPECT_EQ(untagged.load(), 0);
  EXPECT_EQ(tagged.load(), kClients * kPerClient);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_EQ(s.ok + s.degraded + s.shed, s.completed);
}

TEST(ServeTsanTest, MixedDesignConcurrentSubmitsCrossBatchCleanly) {
  // Cross-template packed batching under concurrency: clients on three
  // different designs hammer predictions (all batchable), with occasional
  // moves and tight deadlines thrown in to race the pack path against
  // materialization and degradation. Invariants: zero hangs, every
  // response tagged, and per-session totals conserved.
  ServeOptions o;
  o.workers = 4;
  o.queue_capacity = 32;
  o.max_batch = 8;
  o.cross_batch = 1;  // pin on regardless of the ambient environment
  SlackServer server(o);

  const char* designs[] = {"spm", "zipdiv", "xtea"};
  constexpr int kClients = 6;
  constexpr int kPerClient = 16;
  std::vector<SessionId> sessions;
  for (int i = 0; i < kClients; ++i) {
    sessions.push_back(server.open_session(designs[i % 3], kScale));
  }

  std::atomic<int> tagged{0};
  std::atomic<int> untagged{0};
  std::atomic<int> hangs{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const SessionId id = sessions[static_cast<std::size_t>(c)];
      ResizeMove move{-1, -1};
      server.inspect(id, [&](const SessionView& v) {
        move = {c % v.design.num_instances(), -1};
        move.new_cell = alternative_cell(v, move.inst);
      });
      for (int i = 0; i < kPerClient; ++i) {
        Request req;
        req.session = id;
        switch (i % 8) {
          case 6:  // one client materializes mid-run: its tickets must
                   // drop out of packed batches via the pristine recheck
            if (c == 0 && move.new_cell >= 0) req.moves.push_back(move);
            break;
          case 7:  // tight deadline inside a packed batch: degraded tag
            req.budget = std::chrono::microseconds(50);
            break;
          default:  // plain batchable prediction — the cross-batch fuel
            break;
        }
        std::future<Response> fut = server.submit(std::move(req));
        if (fut.wait_for(std::chrono::seconds(120)) !=
            std::future_status::ready) {
          hangs.fetch_add(1);
          continue;
        }
        const Response r = fut.get();
        const bool ok_tag = r.status == ResponseStatus::kOk ||
                            r.status == ResponseStatus::kDegraded ||
                            r.status == ResponseStatus::kShed;
        (ok_tag ? tagged : untagged).fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(hangs.load(), 0);
  EXPECT_EQ(untagged.load(), 0);
  EXPECT_EQ(tagged.load(), kClients * kPerClient);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_EQ(s.ok + s.degraded + s.shed, s.completed);
  // Cross-template packs imply pack builds/hits; the converse bounds the
  // counter plumbing (no cross_batched without a pack).
  if (s.cross_batched > 0) EXPECT_GE(s.pack_hits + s.pack_misses, 1u);
}

TEST(ServeTsanTest, ShutdownRacesInFlightWorkCleanly) {
  ServeOptions o;
  o.workers = 2;
  o.queue_capacity = 16;
  SlackServer server(o);
  const SessionId id = server.open_session(kDesign, kScale);

  std::vector<std::future<Response>> futs;
  std::thread submitter([&] {
    for (int i = 0; i < 64; ++i) {
      Request req;
      req.session = id;
      if (i % 2 == 0) req.mode = RequestMode::kSta;
      futs.push_back(server.submit(std::move(req)));
      // Submissions continue right through the racing shutdown below:
      // late ones must be shed at the door, never lost.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  server.shutdown();
  submitter.join();

  for (auto& fut : futs) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "a future was dropped by shutdown";
    (void)fut.get();
  }
  EXPECT_EQ(server.stats().completed, server.stats().submitted);
}

}  // namespace
}  // namespace tg::serve
