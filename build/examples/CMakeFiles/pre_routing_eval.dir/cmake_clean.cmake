file(REMOVE_RECURSE
  "CMakeFiles/pre_routing_eval.dir/pre_routing_eval.cpp.o"
  "CMakeFiles/pre_routing_eval.dir/pre_routing_eval.cpp.o.d"
  "pre_routing_eval"
  "pre_routing_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pre_routing_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
