#include "data/graph_io.hpp"

#include <cstdint>

#include "util/check.hpp"
#include "util/io.hpp"

namespace tg::data {

namespace {

// v3 ("TGD2" envelope, version 3): v2 body plus an optional trailing
// level-packed CSR section, so datasets built once ship their traversal
// schedule and loaders skip the per-graph rebuild.
// v2 ("TGD2"): u32 magic + u32 version, CRC-32 trailer, atomic commit.
// v1: u64 magic "TGDG" + u64 version, no checksum — still readable; every
// field is bounds-checked so truncated v1 files raise CheckError.
constexpr std::uint32_t kMagicV2 = 0x32444754;  // "TGD2" (LE bytes)
constexpr std::uint32_t kVersionV2 = 2;
constexpr std::uint32_t kVersionV3 = 3;
constexpr std::uint64_t kMagicV1 = 0x54474447;  // "TGDG"

void write_tensor(io::BinaryWriter& out, const nn::Tensor& t) {
  out.write_u64(static_cast<std::uint64_t>(t.rows()));
  out.write_u64(static_cast<std::uint64_t>(t.cols()));
  out.write_f32_span(t.data());
}

nn::Tensor read_tensor(io::BinaryReader& in, const char* what) {
  const std::uint64_t rows = in.read_u64(what);
  const std::uint64_t cols = in.read_u64(what);
  TG_CHECK_MSG(rows < (1ull << 31) && cols < (1ull << 31),
               in.path() << ": implausible shape " << rows << "x" << cols
                         << " for " << what << " at offset " << in.offset());
  std::vector<float> data = in.read_f32_vec(rows * cols, what);
  return nn::Tensor::from_vector(std::move(data),
                                 static_cast<std::int64_t>(rows),
                                 static_cast<std::int64_t>(cols));
}

void write_body(io::BinaryWriter& out, const DatasetGraph& g) {
  out.write_string(g.name);
  out.write_u64(g.is_test ? 1 : 0);
  out.write_u64(static_cast<std::uint64_t>(g.num_nodes));
  out.write_u64(static_cast<std::uint64_t>(g.num_levels));
  out.write_f64(g.clock_period);
  out.write_f64(g.route_seconds);
  out.write_f64(g.sta_seconds);

  write_tensor(out, g.node_feat);
  write_tensor(out, g.net_edge_feat);
  write_tensor(out, g.cell_edge_feat);
  out.write_i32_vec(g.net_src);
  out.write_i32_vec(g.net_dst);
  out.write_i32_vec(g.cell_src);
  out.write_i32_vec(g.cell_dst);
  out.write_i32_vec(g.node_level);

  write_tensor(out, g.net_delay);
  write_tensor(out, g.arrival);
  write_tensor(out, g.slew);
  write_tensor(out, g.rat);
  write_tensor(out, g.cell_delay);
  out.write_i32_vec(g.endpoints);
  out.write_i32_vec(g.net_sinks);
  out.write_f64_vec(g.endpoint_setup_slack);
  out.write_f64_vec(g.endpoint_hold_slack);

  // Table-1 stats.
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_nodes));
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_net_edges));
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_cell_edges));
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_endpoints));
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_instances));
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_nets));
  out.write_u64(static_cast<std::uint64_t>(g.stats.num_ffs));
}

/// Field order is identical in v1 and v2; only the envelope differs.
DatasetGraph read_body(io::BinaryReader& in) {
  DatasetGraph g;
  g.name = in.read_string("design name");
  g.is_test = in.read_u64("is_test flag") != 0;
  g.num_nodes = static_cast<int>(in.read_u64("num_nodes"));
  g.num_levels = static_cast<int>(in.read_u64("num_levels"));
  g.clock_period = in.read_f64("clock_period");
  g.route_seconds = in.read_f64("route_seconds");
  g.sta_seconds = in.read_f64("sta_seconds");

  g.node_feat = read_tensor(in, "node_feat");
  g.net_edge_feat = read_tensor(in, "net_edge_feat");
  g.cell_edge_feat = read_tensor(in, "cell_edge_feat");
  g.net_src = in.read_i32_vec("net_src");
  g.net_dst = in.read_i32_vec("net_dst");
  g.cell_src = in.read_i32_vec("cell_src");
  g.cell_dst = in.read_i32_vec("cell_dst");
  g.node_level = in.read_i32_vec("node_level");

  g.net_delay = read_tensor(in, "net_delay");
  g.arrival = read_tensor(in, "arrival");
  g.slew = read_tensor(in, "slew");
  g.rat = read_tensor(in, "rat");
  g.cell_delay = read_tensor(in, "cell_delay");
  g.endpoints = in.read_i32_vec("endpoints");
  g.net_sinks = in.read_i32_vec("net_sinks");
  g.endpoint_setup_slack = in.read_f64_vec("endpoint_setup_slack");
  g.endpoint_hold_slack = in.read_f64_vec("endpoint_hold_slack");

  g.stats.num_nodes = static_cast<long long>(in.read_u64("stats.num_nodes"));
  g.stats.num_net_edges =
      static_cast<long long>(in.read_u64("stats.num_net_edges"));
  g.stats.num_cell_edges =
      static_cast<long long>(in.read_u64("stats.num_cell_edges"));
  g.stats.num_endpoints =
      static_cast<long long>(in.read_u64("stats.num_endpoints"));
  g.stats.num_instances =
      static_cast<long long>(in.read_u64("stats.num_instances"));
  g.stats.num_nets = static_cast<long long>(in.read_u64("stats.num_nets"));
  g.stats.num_ffs = static_cast<long long>(in.read_u64("stats.num_ffs"));

  // Internal consistency.
  TG_CHECK(g.node_feat.rows() == g.num_nodes);
  TG_CHECK(g.net_src.size() == g.net_dst.size());
  TG_CHECK(g.cell_src.size() == g.cell_dst.size());
  TG_CHECK(static_cast<int>(g.node_level.size()) == g.num_nodes);
  return g;
}

// ---- v3 optional section: level-packed CSR ------------------------------

void write_level_csr(io::BinaryWriter& out, const LevelCsr& csr) {
  out.write_u64(static_cast<std::uint64_t>(csr.num_levels));
  out.write_i32_vec(csr.node_off);
  out.write_i32_vec(csr.node_perm);
  out.write_i32_vec(csr.node_row);
  out.write_i32_vec(csr.net_off);
  out.write_i32_vec(csr.net_perm);
  out.write_i32_vec(csr.cell_off);
  out.write_i32_vec(csr.cell_perm);
}

LevelCsr read_level_csr(io::BinaryReader& in, const DatasetGraph& g) {
  LevelCsr csr;
  csr.num_levels = static_cast<int>(in.read_u64("level_csr.num_levels"));
  csr.node_off = in.read_i32_vec("level_csr.node_off");
  csr.node_perm = in.read_i32_vec("level_csr.node_perm");
  csr.node_row = in.read_i32_vec("level_csr.node_row");
  csr.net_off = in.read_i32_vec("level_csr.net_off");
  csr.net_perm = in.read_i32_vec("level_csr.net_perm");
  csr.cell_off = in.read_i32_vec("level_csr.cell_off");
  csr.cell_perm = in.read_i32_vec("level_csr.cell_perm");

  const auto levels = static_cast<std::size_t>(g.num_levels);
  TG_CHECK_MSG(csr.num_levels == g.num_levels &&
                   csr.node_off.size() == levels + 1 &&
                   csr.node_perm.size() ==
                       static_cast<std::size_t>(g.num_nodes) &&
                   csr.node_row.size() ==
                       static_cast<std::size_t>(g.num_nodes) &&
                   csr.net_off.size() == levels + 1 &&
                   csr.net_perm.size() == g.net_dst.size() &&
                   csr.cell_off.size() == levels + 1 &&
                   csr.cell_perm.size() == g.cell_dst.size(),
               in.path() << ": level CSR section inconsistent with graph");
  return csr;
}

}  // namespace

void save_graph(const DatasetGraph& g, const std::string& path) {
  io::BinaryWriter out(path);
  out.write_u32(kMagicV2);
  out.write_u32(kVersionV3);
  write_body(out, g);
  // Optional section: persist the level-packed CSR when the graph carries
  // one (dataset builds always do; hand-assembled graphs may not).
  if (g.level_csr) {
    out.write_u64(1);
    write_level_csr(out, *g.level_csr);
  } else {
    out.write_u64(0);
  }
  out.commit();
}

DatasetGraph load_graph(const std::string& path) {
  io::BinaryReader in(path);
  const std::uint32_t magic = in.peek_u32();
  if (magic == kMagicV2) {
    in.verify_crc();
    (void)in.read_u32("magic");
    const std::uint32_t version = in.read_u32("format version");
    TG_CHECK_MSG(version == kVersionV2 || version == kVersionV3,
                 path << ": unsupported dataset-graph version " << version);
    DatasetGraph g = read_body(in);
    if (version >= kVersionV3 && in.read_u64("level_csr flag") != 0) {
      g.level_csr = std::make_shared<const LevelCsr>(read_level_csr(in, g));
    }
    in.expect_eof();
    return g;
  }
  // Legacy v1 envelope: u64 magic, u64 version, no CRC.
  TG_CHECK_MSG(static_cast<std::uint32_t>(kMagicV1) == magic,
               "bad dataset-graph magic in " << path);
  TG_CHECK_MSG(in.read_u64("magic") == kMagicV1,
               "bad dataset-graph magic in " << path);
  TG_CHECK_MSG(in.read_u64("format version") == 1,
               path << ": unsupported dataset-graph version");
  DatasetGraph g = read_body(in);
  in.expect_eof();
  return g;
}

}  // namespace tg::data
