#!/usr/bin/env bash
# Local CI driver — the same matrix as .github/workflows/ci.yml, runnable
# offline. Jobs:
#   tier1  plain build + full ctest (the correctness gate)
#   asan   ASan build running the `fuzz` label (parsers + validators
#          under 10k seeded mutations each)
#   ubsan  UBSan build running the `fault` + `fuzz` labels
#   obs    observability gate: quickstart under TG_TRACE/TG_METRICS must
#          produce parseable artifacts covering every layer, tg_top must
#          render both, and the disabled-mode span overhead selfcheck
#          must stay within budget
#   tsan   TSan build running the `tsan` label (thread pool, allocator
#          and the async worklist STA engine under real interleavings)
#   bench  perf gate: micro_models --selfcheck (steady-state allocator
#          hit rate on real train steps) plus micro_nn_ops/micro_models/
#          micro_sta --json medians vs the checked-in bench/BENCH_*.json
#          baselines, failing on >25% regression (ci/check_bench.py)
#   serve  serving-plane gate: `serve` label suites, the tg_serve_load
#          acceptance drill (deadlines + overload spike + injected worker
#          faults; non-zero exit on any hang or untagged response), and
#          serve_slack request-latency medians vs the checked-in
#          bench/BENCH_serve_slack.json baseline
#   shard  sharded-STA gate: `shard` label suites — bit-identity vs the
#          levelized engine across K, the TG_FAULT_SHARD recovery drills,
#          and the concurrent-sweep soak (the tsan build re-runs the soak
#          under the race detector via the `tsan` label)
# Usage: ci/run.sh [tier1|asan|ubsan|tsan|obs|bench|serve|shard|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_tier1() {
  echo "==> tier1: build + ctest"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "$jobs"
  ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_asan() {
  echo "==> asan: fuzz label under AddressSanitizer"
  cmake -B build-asan -S . -DTG_SANITIZE=address
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L fuzz
}

run_ubsan() {
  echo "==> ubsan: fault + fuzz labels under UBSan"
  cmake -B build-ubsan -S . -DTG_SANITIZE=undefined
  cmake --build build-ubsan -j "$jobs"
  ctest --test-dir build-ubsan --output-on-failure -L 'fault|fuzz'
}

run_tsan() {
  echo "==> tsan: tsan label under ThreadSanitizer"
  cmake -B build-tsan -S . -DTG_SANITIZE=thread
  cmake --build build-tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -L tsan
}

run_obs() {
  echo "==> obs: trace/metrics artifacts + overhead selfcheck"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "$jobs" --target quickstart tg_top micro_obs
  local dir
  dir="$(mktemp -d)"
  trap 'rm -rf "$dir"' RETURN
  TG_TRACE="$dir/trace.json" TG_METRICS="$dir/metrics.json" \
    ./build-ci/examples/quickstart --design=spm --scale=0.03125 > /dev/null
  for cat in sta route data nn core; do
    grep -q "\"cat\":\"$cat\"" "$dir/trace.json" \
      || { echo "obs: missing $cat spans in trace" >&2; return 1; }
  done
  ./build-ci/tools/tg_top --trace="$dir/trace.json" | grep -q 'top self time'
  ./build-ci/tools/tg_top --metrics="$dir/metrics.json" | grep -q 'histograms'
  ./build-ci/bench/micro_obs --selfcheck
}

run_bench() {
  echo "==> bench: allocator selfcheck + perf baselines"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "$jobs" --target micro_nn_ops micro_models micro_sta
  local dir
  dir="$(mktemp -d)"
  trap 'rm -rf "$dir"' RETURN
  # Steady-state allocator gate: real train steps, alloc/miss must be ~0.
  TG_THREADS=1 ./build-ci/bench/micro_models --selfcheck
  # Perf gate: single-threaded medians vs the checked-in baselines.
  # min_time is short and the medians are taken over 3 repetitions — the
  # 25% threshold absorbs what's left of small-sample noise.
  TG_THREADS=1 ./build-ci/bench/micro_nn_ops \
    --json="$dir/BENCH_micro_nn_ops.json" --benchmark_min_time=0.1 \
    --benchmark_repetitions=3 > /dev/null
  TG_THREADS=1 ./build-ci/bench/micro_models \
    --json="$dir/BENCH_micro_models.json" --benchmark_min_time=0.2 \
    --benchmark_repetitions=3 > /dev/null
  # Both engines' plain propagation benches; the SWEEP_* scaling entries
  # in the checked-in baseline are machine-shaped and skipped by the gate.
  TG_THREADS=1 ./build-ci/bench/micro_sta \
    --json="$dir/BENCH_micro_sta.json" --benchmark_min_time=0.1 \
    --benchmark_repetitions=3 > /dev/null
  python3 ci/check_bench.py bench/BENCH_micro_nn_ops.json \
    "$dir/BENCH_micro_nn_ops.json"
  python3 ci/check_bench.py bench/BENCH_micro_models.json \
    "$dir/BENCH_micro_models.json"
  python3 ci/check_bench.py bench/BENCH_micro_sta.json \
    "$dir/BENCH_micro_sta.json"
}

run_serve() {
  echo "==> serve: serving-plane gate (label suites + load drill + baseline)"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "$jobs" \
    --target serve_test serve_fault_test serve_tsan_test tg_serve_load serve_slack
  ctest --test-dir build-ci --output-on-failure -L serve
  # Acceptance drill: a cross-template tenant mix with per-request
  # deadlines, an overload spike past queue capacity and a persistent
  # worker-fault window, all at once. The tool exits non-zero if any
  # future hangs, any response (batched included) is untagged, or the
  # completed/submitted accounting drifts.
  ./build-ci/tools/tg_serve_load --design=spm,zipdiv,xtea --scale=0.03125 \
    --sessions=9 --requests=24 --workers=2 --queue=16 --deadline-ms=50 \
    --cancel-frac=0.1 --move-frac=0.3 --spike=true --fault=worker:3:4
  local dir
  dir="$(mktemp -d)"
  trap 'rm -rf "$dir"' RETURN
  TG_THREADS=1 ./build-ci/bench/serve_slack --design=spm --scale=0.03125 \
    --requests=32 --workers=2 --json="$dir/BENCH_serve_slack.json" > /dev/null
  python3 ci/check_bench.py bench/BENCH_serve_slack.json \
    "$dir/BENCH_serve_slack.json"
}

run_shard() {
  echo "==> shard: sharded-STA gate (bit-identity + fault drills + soak)"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "$jobs" \
    --target sta_shard_test sta_shard_fault_test sta_shard_tsan_test
  ctest --test-dir build-ci --output-on-failure -L shard
}

case "$job" in
  tier1) run_tier1 ;;
  asan)  run_asan ;;
  ubsan) run_ubsan ;;
  tsan)  run_tsan ;;
  obs)   run_obs ;;
  bench) run_bench ;;
  serve) run_serve ;;
  shard) run_shard ;;
  all)   run_tier1; run_asan; run_ubsan; run_tsan; run_obs; run_bench; run_serve; run_shard ;;
  *) echo "usage: $0 [tier1|asan|ubsan|tsan|obs|bench|serve|shard|all]" >&2; exit 2 ;;
esac
echo "==> $job: OK"
