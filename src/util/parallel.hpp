#pragma once
/// \file parallel.hpp
/// The repository's shared concurrency substrate: one lazily-initialized
/// global thread pool (sized from `TG_THREADS` / `--threads`, default
/// `hardware_concurrency`) behind two deterministic primitives:
///
///   - `parallel_for(begin, end, grain, fn)` — static chunking of an index
///     range; `fn(chunk_begin, chunk_end)` runs on pool workers plus the
///     calling thread. Chunks must write disjoint outputs; the per-index
///     iteration order *inside* a chunk is the serial order, so any kernel
///     whose chunks own disjoint outputs is bit-identical to its serial run.
///   - `parallel_invoke(tasks)` — runs independent thunks concurrently.
///
/// With `threads <= 1` (or a range below the grain) both primitives
/// degenerate to plain inline loops — the serial fallback the determinism
/// tests diff against. Nested calls are safe: the caller always claims
/// chunks itself, so progress never depends on a free worker.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <vector>

namespace tg {

class CliOptions;

/// Number of worker threads the pool will use (>= 1). Before the first
/// `set_num_threads` call this is resolved from the `TG_THREADS`
/// environment variable, falling back to `hardware_concurrency`.
[[nodiscard]] int num_threads();

/// Resizes the global pool (clamped to >= 1). Safe to call repeatedly —
/// benches use it to sweep thread counts; `1` restores pure serial
/// execution. Must not be called from inside a parallel region.
void set_num_threads(int threads);

/// Applies `--threads=N` from the command line (when present) and returns
/// the resulting thread count. Shared by benches and tools.
int configure_threads(const CliOptions& options);

namespace parallel_detail {

using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;

/// Runs `fn(chunk_begin, chunk_end)` over static chunks of [begin, end).
void parallel_for_impl(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, const ChunkFn& fn);

void parallel_invoke_impl(const std::function<void()>* tasks,
                          std::size_t count);

/// Hands a raw task to the global pool. Substrate for the task-graph
/// engine (util/task_graph.hpp), whose workers outlive any single chunk;
/// everything else should use parallel_for / parallel_invoke.
void pool_submit(std::function<void()> task);

}  // namespace parallel_detail

/// Splits [begin, end) into chunks of at least `grain` indices and runs
/// `fn(chunk_begin, chunk_end)` concurrently. Serial (single inline call
/// covering the whole range) when the pool has one thread or the range is
/// no larger than the grain.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  if (end <= begin) return;
  if (num_threads() <= 1 || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  parallel_detail::parallel_for_impl(begin, end, grain,
                                     parallel_detail::ChunkFn(fn));
}

/// Runs the given independent tasks, concurrently when the pool has more
/// than one thread; always returns after every task completed.
void parallel_invoke(std::initializer_list<std::function<void()>> tasks);
void parallel_invoke(const std::vector<std::function<void()>>& tasks);

}  // namespace tg
