
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/tg_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/tg_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/net_features.cpp" "src/ml/CMakeFiles/tg_ml.dir/net_features.cpp.o" "gcc" "src/ml/CMakeFiles/tg_ml.dir/net_features.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/tg_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/tg_ml.dir/random_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/tg_route.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tg_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tg_place.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tg_liberty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
