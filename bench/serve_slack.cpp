/// \file serve_slack.cpp
/// Serving-plane latency/throughput bench (DESIGN.md §12). Four phases:
///
///   serve_predict/N        sequential full-graph GNN predictions on a
///                          pristine session (N = graph nodes) — the
///                          batcher's unit cost,
///   serve_move/N           sequential single-move ECO requests — the
///                          incremental dirty-cone fast path,
///   serve_mixed/N          concurrent clients (2x workers) replaying a
///                          mixed move/predict stream under a deadline —
///                          the serving p50/p99 the ladder exists to bound,
///   serve_mixed_designs/N  one client per template over >= 4 distinct
///                          designs x 3 clock corners (pure batchable
///                          predictions), run twice on otherwise identical
///                          single-worker servers — cross-template packed
///                          batching on vs off — to measure the packing
///                          speedup (N = sum of template nodes).
///
/// Writes BENCH_serve_slack.json (`--json=...`): per-phase median/p90
/// request latency as the gated entries, plus "serve" and
/// "serve_mixed_designs" sections with throughput, percentiles and the
/// pack-cache/cross-batch counters. Gated by ci/check_bench.py like the
/// micro benches.
///
///   ./serve_slack [--design=spm] [--scale=0.03125] [--requests=32]
///                 [--workers=2] [--mixed-designs=spm,zipdiv,...]
///                 [--json=BENCH_serve_slack.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"

namespace tg {
namespace {

double percentile_s(std::vector<double>& s, double p) {
  if (s.empty()) return 0.0;
  std::sort(s.begin(), s.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(s.size() - 1) + 0.5);
  return s[std::min(idx, s.size() - 1)];
}

bench_json::Entry make_entry(const std::string& op, long long size,
                             int threads, std::vector<double>& lat_s) {
  bench_json::Entry e;
  e.op = op;
  e.size = size;
  e.threads = threads;
  e.name = op + "/" + std::to_string(size);
  e.iterations = static_cast<long long>(lat_s.size());
  e.median_s = percentile_s(lat_s, 0.50);
  e.p90_s = percentile_s(lat_s, 0.90);
  return e;
}

double seconds(std::chrono::nanoseconds ns) {
  return static_cast<double>(ns.count()) / 1e9;
}

/// One leg of the cross-design comparison (packing on or off).
struct MixedDesignsLeg {
  double throughput_rps = 0.0;
  std::vector<double> lat_s;
  long long nodes = 0;  ///< sum of the distinct templates' pin counts
  serve::ServerStats stats;
};

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  opts.require_known(
      {"design", "scale", "requests", "workers", "mixed-designs", "json"});
  const std::string design = opts.get("design", "spm");
  const double scale = opts.get_double("scale", 0.03125);
  const int requests = static_cast<int>(opts.get_int("requests", 32));
  const int workers = static_cast<int>(opts.get_int("workers", 2));
  const std::string json = opts.get("json", "BENCH_serve_slack.json");
  std::vector<std::string> mix;
  for (const std::string& d :
       split(opts.get("mixed-designs", "spm,zipdiv,xtea,cic_decimator"), ',')) {
    if (!d.empty()) mix.push_back(d);
  }

  serve::ServeOptions so;
  so.workers = workers;
  serve::SlackServer server(so);

  long long nodes = 0;
  const serve::SessionId warm = server.open_session(design, scale);
  server.inspect(warm, [&](const serve::SessionView& v) {
    nodes = static_cast<long long>(v.design.num_pins());
  });
  std::printf("serve_slack: %s/%.5f (%lld nodes), %d requests/phase, "
              "%d workers\n",
              design.c_str(), scale, nodes, requests, workers);

  std::vector<bench_json::Entry> entries;

  // Phase 1: pristine full-graph predictions (template-served GNN).
  {
    std::vector<double> lat;
    lat.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      serve::Request req;
      req.session = warm;
      const serve::Response r = server.call(std::move(req));
      if (r.status != serve::ResponseStatus::kShed) {
        lat.push_back(seconds(r.latency));
      }
    }
    entries.push_back(make_entry("serve_predict", nodes, 1, lat));
  }

  // Phase 2: single-move ECO requests (incremental cone path). Bounce one
  // instance between two same-function cells so every request has work.
  {
    const serve::SessionId eco = server.open_session(design, scale);
    int cell_a = -1, cell_b = -1;
    server.inspect(eco, [&](const serve::SessionView& v) {
      cell_a = v.design.instance(0).cell_id;
      cell_b = cell_a;
      const Library& lib = v.design.library();
      for (int c : lib.cells_of_function(lib.cell(cell_a).function)) {
        if (c != cell_a) { cell_b = c; break; }
      }
    });
    std::vector<double> lat;
    lat.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      serve::Request req;
      req.session = eco;
      req.moves.push_back({0, i % 2 == 0 ? cell_b : cell_a});
      const serve::Response r = server.call(std::move(req));
      if (r.status != serve::ResponseStatus::kShed) {
        lat.push_back(seconds(r.latency));
      }
    }
    entries.push_back(make_entry("serve_move", nodes, 1, lat));
  }

  // Phase 3: mixed concurrent stream under a generous deadline.
  long long ok = 0, degraded = 0, shed = 0;
  double throughput = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  {
    const int clients = 2 * workers;
    const int per_client = std::max(1, requests / 2);
    std::vector<serve::SessionId> ids;
    for (int c = 0; c < clients; ++c) {
      ids.push_back(server.open_session(design, scale));
    }
    std::vector<std::vector<serve::Response>> got(
        static_cast<std::size_t>(clients));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        int inst_cell = -1;
        server.inspect(ids[static_cast<std::size_t>(c)],
                       [&](const serve::SessionView& v) {
                         inst_cell = v.design.instance(0).cell_id;
                       });
        for (int i = 0; i < per_client; ++i) {
          serve::Request req;
          req.session = ids[static_cast<std::size_t>(c)];
          req.budget = std::chrono::milliseconds(500);
          if (i % 2 == 0) req.moves.push_back({0, inst_cell});
          got[static_cast<std::size_t>(c)].push_back(
              server.call(std::move(req)));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall =
        seconds(std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0));
    std::vector<double> lat;
    for (const auto& per : got) {
      for (const serve::Response& r : per) {
        switch (r.status) {
          case serve::ResponseStatus::kOk: ++ok; break;
          case serve::ResponseStatus::kDegraded: ++degraded; break;
          case serve::ResponseStatus::kShed: ++shed; break;
        }
        if (r.status != serve::ResponseStatus::kShed) {
          lat.push_back(seconds(r.latency));
        }
      }
    }
    const long long total = static_cast<long long>(clients) * per_client;
    throughput = static_cast<double>(total) / wall;
    std::vector<double> lat_copy = lat;
    p50_ms = percentile_s(lat_copy, 0.50) * 1e3;
    p99_ms = percentile_s(lat_copy, 0.99) * 1e3;
    entries.push_back(make_entry("serve_mixed", nodes, clients, lat));
  }
  server.shutdown();

  // Phase 4: cross-design packed batching — the multi-tenant story. One
  // client per template (no same-template sharing to hide behind) drives
  // pure batchable predictions through fresh servers pinned to a single
  // worker, i.e. one compute slot multiplexed across K tenants. The only
  // difference between the two legs is cross-template packing: off
  // round-robins K solo forwards per wave, on answers the wave with one
  // packed forward. The gated entry comes from the packing-on leg (the
  // shipped default).
  const auto run_mixed_designs = [&](bool cross_on) {
    MixedDesignsLeg leg;
    serve::ServeOptions mo;
    mo.workers = 1;
    mo.queue_capacity = 64;
    mo.max_batch = std::max(8, 3 * static_cast<int>(mix.size()));
    mo.cross_batch = cross_on ? 1 : 0;
    serve::SlackServer s(mo);
    // Three tenants per design: the suite's calibrated clock, a tight ECO
    // corner and a relaxed what-if corner. Distinct clock factors are
    // distinct templates (design-hash keyed), so this is a 3x-wider honest
    // mix — every tenant is a separate graph in the pack and a separate
    // solo forward on the off leg.
    static constexpr double kCorners[] = {0.0, 0.92, 1.08};
    const int clients = 3 * static_cast<int>(mix.size());
    const int per_client = std::max(8, requests);
    std::vector<serve::SessionId> ids;
    for (int c = 0; c < clients; ++c) {
      const std::string& design = mix[static_cast<std::size_t>(c) % mix.size()];
      const double clock_factor =
          kCorners[static_cast<std::size_t>(c) / mix.size()];
      ids.push_back(s.open_session(design, scale, clock_factor));
    }
    for (int c = 0; c < clients; ++c) {
      s.inspect(ids[static_cast<std::size_t>(c)],
                [&](const serve::SessionView& v) {
                  leg.nodes += static_cast<long long>(v.design.num_pins());
                });
    }
    // Untimed warmup wave: a concurrent round per tenant so the steady
    // state being measured starts with the pack + embedding caches hot on
    // both legs (the off leg has nothing to warm beyond the templates the
    // opens already built, so the legs stay comparable).
    {
      std::vector<std::thread> warm;
      for (int c = 0; c < clients; ++c) {
        warm.emplace_back([&, c] {
          for (int i = 0; i < 2; ++i) {
            serve::Request req;
            req.session = ids[static_cast<std::size_t>(c)];
            (void)s.call(std::move(req));
          }
        });
      }
      for (std::thread& t : warm) t.join();
    }
    std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < per_client; ++i) {
          serve::Request req;
          req.session = ids[static_cast<std::size_t>(c)];
          const serve::Response r = s.call(std::move(req));
          if (r.status != serve::ResponseStatus::kShed) {
            lat[static_cast<std::size_t>(c)].push_back(seconds(r.latency));
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall =
        seconds(std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0));
    leg.throughput_rps =
        static_cast<double>(static_cast<long long>(clients) * per_client) /
        wall;
    for (auto& per : lat) {
      leg.lat_s.insert(leg.lat_s.end(), per.begin(), per.end());
    }
    leg.stats = s.stats();
    s.shutdown();
    return leg;
  };
  const MixedDesignsLeg md_off = run_mixed_designs(false);
  const MixedDesignsLeg md_on = run_mixed_designs(true);
  const double md_speedup = md_off.throughput_rps > 0.0
                                ? md_on.throughput_rps / md_off.throughput_rps
                                : 0.0;
  std::vector<double> md_lat = md_on.lat_s;
  const double md_p50_ms = percentile_s(md_lat, 0.50) * 1e3;
  const double md_p99_ms = percentile_s(md_lat, 0.99) * 1e3;
  {
    std::vector<double> gated = md_on.lat_s;
    entries.push_back(make_entry("serve_mixed_designs", md_on.nodes,
                                 3 * static_cast<int>(mix.size()), gated));
  }

  for (const bench_json::Entry& e : entries) {
    std::printf("  %-24s median %9.3f ms  p90 %9.3f ms  (%lld samples)\n",
                e.name.c_str(), e.median_s * 1e3, e.p90_s * 1e3,
                e.iterations);
  }
  std::printf("  mixed: %.1f req/s, p50 %.3f ms, p99 %.3f ms "
              "(%lld ok, %lld degraded, %lld shed)\n",
              throughput, p50_ms, p99_ms, ok, degraded, shed);
  std::printf("  mixed-designs (%zu templates): cross-batch on %.1f req/s "
              "vs off %.1f req/s (%.2fx), p50 %.3f ms, p99 %.3f ms\n",
              3 * mix.size(), md_on.throughput_rps, md_off.throughput_rps,
              md_speedup, md_p50_ms, md_p99_ms);
  std::printf("  packed: %llu cross-batched, %llu pack hits, "
              "%llu pack misses\n",
              static_cast<unsigned long long>(md_on.stats.cross_batched),
              static_cast<unsigned long long>(md_on.stats.pack_hits),
              static_cast<unsigned long long>(md_on.stats.pack_misses));

  char extra[1024];
  std::snprintf(
      extra, sizeof(extra),
      "\"serve\": {\"throughput_rps\": %.3f, \"p50_ms\": %.6f, "
      "\"p99_ms\": %.6f, \"ok\": %lld, \"degraded\": %lld, "
      "\"shed\": %lld},\n  "
      "\"serve_mixed_designs\": {\"templates\": %d, "
      "\"throughput_rps\": %.3f, \"throughput_off_rps\": %.3f, "
      "\"speedup\": %.3f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
      "\"cross_batched\": %llu, \"pack_hits\": %llu, \"pack_misses\": %llu}",
      throughput, p50_ms, p99_ms, ok, degraded, shed,
      3 * static_cast<int>(mix.size()), md_on.throughput_rps,
      md_off.throughput_rps, md_speedup, md_p50_ms, md_p99_ms,
      static_cast<unsigned long long>(md_on.stats.cross_batched),
      static_cast<unsigned long long>(md_on.stats.pack_hits),
      static_cast<unsigned long long>(md_on.stats.pack_misses));
  if (!bench_json::write_file(json, "serve_slack", workers, entries, extra)) {
    return 1;
  }
  std::printf("wrote %s\n", json.c_str());
  return 0;
}
