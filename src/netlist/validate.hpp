#pragma once
/// \file validate.hpp
/// Design invariant checker (DESIGN.md §8). Collects every violation into a
/// DiagSink: dangling/undriven/multi-driven nets, unconnected pins,
/// inconsistent net/instance back-pointers, port-list consistency, missing
/// clock. Full level adds duplicate-name detection, finite/in-die placement
/// and the combinational-cycle sweep. Design::validate() keeps its
/// throw-on-first-use contract by escalating this checker's report.

#include "netlist/design.hpp"
#include "util/diag.hpp"

namespace tg {

/// Checks the whole design. No-op at ValidateLevel::kOff. Robust against
/// arbitrarily corrupted in-memory designs (fuzzed ids out of range etc.) —
/// it reports instead of crashing.
void validate_design(const Design& design, DiagSink& sink,
                     ValidateLevel level = validate_level());

/// Placement-specific subset (finite coordinates, pins/instances inside the
/// die). Run after a placement stage or read_placement; included in
/// validate_design at full level.
void validate_placement(const Design& design, DiagSink& sink);

}  // namespace tg
