# Empty dependencies file for timgnn_export.
# This may be replaced when dependencies are built.
