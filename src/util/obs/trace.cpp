#include "util/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "util/log.hpp"
#include "util/obs/metrics.hpp"

namespace tg::obs {

namespace detail {

std::atomic<int> g_span_gate{-1};

namespace {

std::atomic<int> g_trace_level{-1};
std::mutex g_trace_path_mu;
std::string& trace_path_storage() {
  static std::string* s = new std::string;
  return *s;
}

std::uint64_t default_buffer_capacity() {
  if (const char* cap = std::getenv("TG_TRACE_CAP")) {
    const long v = std::strtol(cap, nullptr, 10);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return std::uint64_t{1} << 16;
}

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::int32_t depth;
};

/// Per-thread bounded span buffer. The owner thread appends and publishes
/// `count` with a release store; readers acquire `count` and read only the
/// published prefix, so dumps are race-free while the owner keeps writing.
struct ThreadBuffer {
  std::vector<Event> events;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  int tid = 0;
  std::string name;

  explicit ThreadBuffer(std::uint64_t capacity) { events.resize(capacity); }

  void push(const char* name_, std::uint64_t start_ns, std::uint64_t dur_ns,
            int depth) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    if (n >= events.size()) {
      if (dropped.fetch_add(1, std::memory_order_relaxed) == 0) {
        TG_WARN_ONCE("trace: per-thread span buffer full ("
                     << events.size()
                     << " events); dropping further spans. Raise TG_TRACE_CAP"
                        " or lower TG_TRACE_LEVEL.");
      }
      return;
    }
    events[n] = Event{name_, start_ns, dur_ns, depth};
    count.store(n + 1, std::memory_order_release);
  }
};

/// Leaked registry of all thread buffers; buffers are never removed so a
/// dump can read spans from threads that have already exited.
struct BufferRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};
BufferRegistry& buffer_registry() {
  static BufferRegistry* r = new BufferRegistry;
  return *r;
}

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local int t_depth = 0;
thread_local std::uint64_t t_start_stack[64];
// Name requested via set_thread_name before the buffer existed.
thread_local std::string* t_pending_name = nullptr;

ThreadBuffer& this_thread_buffer() {
  if (t_buffer) return *t_buffer;
  static const std::uint64_t capacity = default_buffer_capacity();
  auto buf = std::make_unique<ThreadBuffer>(capacity);
  BufferRegistry& reg = buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  buf->tid = static_cast<int>(reg.buffers.size());
  if (t_pending_name) {
    buf->name = *t_pending_name;
    delete t_pending_name;
    t_pending_name = nullptr;
  }
  t_buffer = buf.get();
  reg.buffers.push_back(std::move(buf));
  return *t_buffer;
}

}  // namespace

void refresh_span_gate() {
  const int lvl = g_trace_level.load(std::memory_order_relaxed);
  // With metrics on, every span level feeds its histogram even if the
  // trace level would filter it out of the trace file.
  g_span_gate.store(metrics_enabled() ? kSpanVerbose : lvl,
                    std::memory_order_relaxed);
}

void span_begin(SpanSite&) {
  if (t_depth < 64) t_start_stack[t_depth] = now_ns();
  ++t_depth;
}

void span_end(SpanSite& site) {
  --t_depth;
  if (t_depth >= 64) return;  // deeper than the stack tracks: skip
  const std::uint64_t start = t_start_stack[t_depth];
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end >= start ? end - start : 0;
  if (site.level <= g_trace_level.load(std::memory_order_relaxed)) {
    this_thread_buffer().push(site.name, start, dur, t_depth);
  }
  if (metrics_enabled()) {
    Histogram* h = static_cast<Histogram*>(
        site.hist.load(std::memory_order_acquire));
    if (!h) {
      h = &histogram(std::string("span/") + site.name);
      site.hist.store(h, std::memory_order_release);
    }
    h->record(dur);
  }
}

}  // namespace detail

int trace_level() {
  return detail::g_trace_level.load(std::memory_order_relaxed);
}

void set_trace_level(int level) {
  detail::g_trace_level.store(level, std::memory_order_relaxed);
  detail::refresh_span_gate();
}

std::string trace_path() {
  std::lock_guard<std::mutex> lock(detail::g_trace_path_mu);
  return detail::trace_path_storage();
}

void set_trace_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(detail::g_trace_path_mu);
  detail::trace_path_storage() = path;
}

void set_thread_name(const std::string& name) {
  if (detail::t_buffer) {
    detail::BufferRegistry& reg = detail::buffer_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    detail::t_buffer->name = name;
    return;
  }
  if (!detail::t_pending_name) detail::t_pending_name = new std::string;
  *detail::t_pending_name = name;
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

std::vector<CollectedEvent> collected_trace_events() {
  std::vector<CollectedEvent> out;
  detail::BufferRegistry& reg = detail::buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    const std::uint64_t n = buf->count.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < n; ++i) {
      const detail::Event& e = buf->events[i];
      out.push_back({e.name, e.start_ns, e.dur_ns, e.depth, buf->tid});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return out;
}

void clear_trace() {
  detail::BufferRegistry& reg = detail::buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& buf : reg.buffers) {
    buf->count.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
}

TraceStats trace_stats() {
  TraceStats out;
  detail::BufferRegistry& reg = detail::buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  out.threads = static_cast<int>(reg.buffers.size());
  for (const auto& buf : reg.buffers) {
    out.recorded += buf->count.load(std::memory_order_acquire);
    out.dropped += buf->dropped.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

void json_escape(std::FILE* f, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", static_cast<unsigned>(c));
    } else {
      std::fputc(c, f);
    }
  }
}

/// Category = span-name prefix up to the first '/', so Perfetto can filter
/// by layer ("sta", "route", "data", "nn", "core").
std::string span_category(const char* name) {
  const char* slash = std::strchr(name, '/');
  return slash ? std::string(name, slash) : std::string(name);
}

}  // namespace

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    TG_WARN("trace: cannot open " << path << " for writing");
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;

  // thread_name metadata events first.
  {
    detail::BufferRegistry& reg = detail::buffer_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& buf : reg.buffers) {
      std::fprintf(f,
                   "%s\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                   "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                   first ? "" : ",", buf->tid);
      json_escape(f, buf->name.empty()
                         ? ("thread-" + std::to_string(buf->tid)).c_str()
                         : buf->name.c_str());
      std::fprintf(f, "\"}}");
      first = false;
    }
  }

  for (const CollectedEvent& e : collected_trace_events()) {
    std::fprintf(f,
                 "%s\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                 "\"dur\":%.3f,\"name\":\"",
                 first ? "" : ",", e.tid,
                 static_cast<double>(e.start_ns) / 1000.0,
                 static_cast<double>(e.dur_ns) / 1000.0);
    json_escape(f, e.name);
    std::fprintf(f, "\",\"cat\":\"");
    json_escape(f, span_category(e.name).c_str());
    std::fprintf(f, "\",\"args\":{\"depth\":%d}}", e.depth);
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok) TG_WARN("trace: error while writing " << path);
  const TraceStats stats = trace_stats();
  if (stats.dropped > 0) {
    TG_WARN("trace: " << stats.dropped
                      << " spans were dropped (buffers full); trace is "
                         "incomplete");
  }
  return ok;
}

namespace {

struct TraceEnvInit {
  TraceEnvInit() {
    const char* path = std::getenv("TG_TRACE");
    if (!path || !*path) {
      // TG_TRACE_LEVEL alone enables in-memory tracing (tests/tools).
      if (const char* lvl = std::getenv("TG_TRACE_LEVEL")) {
        set_trace_level(static_cast<int>(std::strtol(lvl, nullptr, 10)));
      }
      return;
    }
    set_trace_path(path);
    int level = kSpanDetail;
    if (const char* lvl = std::getenv("TG_TRACE_LEVEL")) {
      level = static_cast<int>(std::strtol(lvl, nullptr, 10));
    }
    set_trace_level(level);
    set_thread_name("main");
    std::atexit([] {
      const std::string p = trace_path();
      if (!p.empty()) write_trace_json(p);
    });
  }
};
const TraceEnvInit g_trace_env_init;

}  // namespace

}  // namespace tg::obs
