/// \file async_tsan_test.cpp
/// Race-detector workload for the async worklist engine: the full STA
/// (forward + backward) and an incremental dirty-cone update at 8 threads
/// on a mid-size design. Built as its own target (sta_async_tsan_test)
/// with the `tsan` label so a TG_SANITIZE=thread build runs exactly this
/// (`ctest -L tsan`) — the publication chain (pending RMW → task fire) is
/// precisely what TSan has to vet.

#include <gtest/gtest.h>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "sta/incremental.hpp"
#include "sta/timer.hpp"
#include "util/parallel.hpp"
#include "util/task_graph.hpp"

namespace tg {
namespace {

class AsyncTsanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_num_threads(8);
    set_sta_engine(StaEngine::kAsync);
    // 8 true workers even on small machines — TSan needs real thread
    // interleavings over the publication chain, not a hardware-capped
    // single-worker walk.
    set_task_dag_workers(8);
  }
  void TearDown() override {
    set_num_threads(saved_threads_);
    set_sta_engine(saved_engine_);
    set_task_dag_workers(saved_workers_);
  }
  int saved_threads_ = num_threads();
  StaEngine saved_engine_ = sta_engine();
  int saved_workers_ = task_dag_workers();
};

TEST_F(AsyncTsanTest, FullStaAndIncrementalConeUnderContention) {
  const Library lib = build_library();
  const SuiteEntry entry = suite_entry("picorv32a", 1.0 / 32);
  Design design = generate_design(entry.spec, lib);
  place_design(design);
  RoutingOptions ropts;
  ropts.mode = RouteMode::kSteiner;
  DesignRouting routing = route_design(design, ropts);
  const TimingGraph graph(design);

  // Forward + backward async sweeps, repeated to give the scheduler a few
  // distinct interleavings.
  for (int i = 0; i < 3; ++i) {
    const StaResult r = run_sta(graph, routing);
    EXPECT_EQ(static_cast<int>(r.arrival.size()), design.num_pins());
  }

  // Incremental dirty-cone worklist.
  IncrementalTimer inc(graph, &routing);
  NetId net = 0;
  for (NetId n = 0; n < design.num_nets(); ++n) {
    if (!design.net(n).is_clock) {
      net = n;
      break;
    }
  }
  for (auto& d : routing.nets[static_cast<std::size_t>(net)].sink_delay) {
    for (double& v : d) v *= 1.5;
  }
  inc.invalidate_net(net);
  EXPECT_GT(inc.update(), 0);
}

}  // namespace
}  // namespace tg
