#include "liberty/liberty_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "liberty/library_builder.hpp"
#include "util/check.hpp"

namespace tg {
namespace {

TEST(LibertyIo, RoundTripPreservesStructure) {
  const Library lib = build_library();
  std::stringstream buf;
  write_liberty(lib, buf);
  const Library parsed = read_liberty(buf);

  ASSERT_EQ(parsed.num_cells(), lib.num_cells());
  for (int i = 0; i < lib.num_cells(); ++i) {
    const CellType& a = lib.cell(i);
    const int j = parsed.find_cell(a.name);
    ASSERT_GE(j, 0) << a.name;
    const CellType& b = parsed.cell(j);
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.drive, b.drive);
    EXPECT_EQ(a.is_sequential, b.is_sequential);
    ASSERT_EQ(a.pins.size(), b.pins.size());
    ASSERT_EQ(a.arcs.size(), b.arcs.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(a.pins[p].name, b.pins[p].name);
      EXPECT_EQ(a.pins[p].dir, b.pins[p].dir);
      EXPECT_EQ(a.pins[p].is_clock, b.pins[p].is_clock);
    }
    if (a.is_sequential) {
      EXPECT_EQ(a.clock_pin, b.clock_pin);
      EXPECT_EQ(a.data_pin, b.data_pin);
      EXPECT_EQ(a.output_pin, b.output_pin);
    }
  }
}

TEST(LibertyIo, RoundTripPreservesValues) {
  const Library lib = build_library();
  std::stringstream buf;
  write_liberty(lib, buf);
  const Library parsed = read_liberty(buf);

  const int i = lib.find_cell("NAND2_X2");
  const int j = parsed.find_cell("NAND2_X2");
  const CellType& a = lib.cell(i);
  const CellType& b = parsed.cell(j);
  // Pin caps and LUT values survive within print precision (1e-9).
  for (int c = 0; c < kNumCorners; ++c) {
    EXPECT_NEAR(a.pins[0].cap[c], b.pins[0].cap[c], 1e-8);
  }
  for (std::size_t arc = 0; arc < a.arcs.size(); ++arc) {
    EXPECT_EQ(a.arcs[arc].sense, b.arcs[arc].sense);
    EXPECT_EQ(a.arcs[arc].from_pin, b.arcs[arc].from_pin);
    for (int c = 0; c < kNumCorners; ++c) {
      for (int r = 0; r < kLutDim; ++r) {
        for (int col = 0; col < kLutDim; ++col) {
          EXPECT_NEAR(a.arcs[arc].delay[c].at(r, col),
                      b.arcs[arc].delay[c].at(r, col), 1e-8);
          EXPECT_NEAR(a.arcs[arc].out_slew[c].at(r, col),
                      b.arcs[arc].out_slew[c].at(r, col), 1e-8);
        }
      }
      for (int k = 0; k < kLutDim; ++k) {
        EXPECT_NEAR(a.arcs[arc].delay[c].slew_axis()[static_cast<std::size_t>(k)],
                    b.arcs[arc].delay[c].slew_axis()[static_cast<std::size_t>(k)], 1e-8);
      }
    }
  }
  // Sequential constraints too.
  const CellType& dff_a = lib.cell(lib.find_cell("DFF_X1"));
  const CellType& dff_b = parsed.cell(parsed.find_cell("DFF_X1"));
  for (int c = 0; c < kNumCorners; ++c) {
    EXPECT_NEAR(dff_a.setup[c], dff_b.setup[c], 1e-8);
    EXPECT_NEAR(dff_a.hold[c], dff_b.hold[c], 1e-8);
  }
}

TEST(LibertyIo, ParsedLibraryLooksUpIdentically) {
  const Library lib = build_library();
  std::stringstream buf;
  write_liberty(lib, buf);
  const Library parsed = read_liberty(buf);
  const TimingArc& a =
      lib.cell(lib.find_cell("XOR2_X4")).arcs[1];
  const TimingArc& b =
      parsed.cell(parsed.find_cell("XOR2_X4")).arcs[1];
  const int c = corner_index(Mode::kLate, Trans::kFall);
  EXPECT_NEAR(a.delay[c].lookup(0.123, 0.0456), b.delay[c].lookup(0.123, 0.0456),
              1e-7);
}

TEST(LibertyIo, FileRoundTrip) {
  const Library lib = build_library();
  const std::string path = ::testing::TempDir() + "/tg_lib_test.lib";
  write_liberty_file(lib, path);
  const Library parsed = read_liberty_file(path);
  EXPECT_EQ(parsed.num_cells(), lib.num_cells());
  std::remove(path.c_str());
}

TEST(LibertyIo, UnknownAttributesSkipped) {
  // Forward compatibility: unknown attributes and groups are ignored.
  std::stringstream in(R"(
library (x) {
  exotic_attribute : 42;
  exotic_group (a, b) { nested : 1; }
  cell (FOO) {
    function_class : INV;
    drive_strength : 2;
    is_sequential : false;
    vendor_specific : yes;
    pin (A) {
      direction : input;
      clock : false;
      capacitance_early_rise : 0.001;
      capacitance_early_fall : 0.001;
      capacitance_late_rise : 0.001;
      capacitance_late_fall : 0.001;
      weird_pin_attr : 3;
    }
    pin (Y) { direction : output; clock : false; }
  }
}
)");
  const Library parsed = read_liberty(in);
  ASSERT_EQ(parsed.num_cells(), 1);
  EXPECT_EQ(parsed.cell(0).name, "FOO");
  EXPECT_EQ(parsed.cell(0).drive, 2);
  EXPECT_NEAR(parsed.cell(0).pins[0].cap[0], 0.001, 1e-9);
}

TEST(LibertyIo, MalformedInputRejected) {
  std::stringstream missing_brace("library (x) { cell (A) {");
  EXPECT_THROW(read_liberty(missing_brace), CheckError);
  std::stringstream not_a_library("cell (A) {}");
  EXPECT_THROW(read_liberty(not_a_library), CheckError);
  std::stringstream bad_corner(R"(
library (x) { cell (A) {
  pin (P) { direction : input; clock : false; capacitance_sideways : 1; }
} }
)");
  EXPECT_THROW(read_liberty(bad_corner), CheckError);
}

TEST(LibertyIo, MissingFileRejected) {
  EXPECT_THROW(read_liberty_file("/nonexistent/foo.lib"), CheckError);
}

}  // namespace
}  // namespace tg
