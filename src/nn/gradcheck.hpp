#pragma once
/// \file gradcheck.hpp
/// Numerical gradient verification used by the test suite: compares
/// reverse-mode gradients against central finite differences.

#include <functional>

#include "nn/tensor.hpp"

namespace tg::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok = false;
};

/// `loss_fn` must build a fresh graph from `inputs` and return a scalar.
/// Checks d(loss)/d(input) for every input element.
[[nodiscard]] GradCheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& loss_fn,
    std::vector<Tensor> inputs, double eps = 1e-3, double tol = 5e-2);

}  // namespace tg::nn
