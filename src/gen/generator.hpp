#pragma once
/// \file generator.hpp
/// Parameterized synthetic design generation — the repository's stand-in
/// for "OpenCores RTL through synthesis" (DESIGN.md §1). A DesignSpec
/// controls size (Table-1 node/endpoint counts), register-to-register
/// logic depth, and the mix of structural blocks that gives each
/// benchmark its character.

#include <string>

#include "gen/blocks.hpp"
#include "netlist/design.hpp"

namespace tg {

struct DesignSpec {
  std::string name = "design";
  std::uint64_t seed = 1;
  int target_nodes = 4000;      ///< approximate pin count (Table 1 "#Nodes")
  int target_endpoints = 200;   ///< FF D pins + primary outputs
  int num_inputs = 64;
  int depth = 12;               ///< register-to-register logic depth target
  int max_fanout = 12;

  // Block mix weights (unnormalized).
  double w_random = 1.0;
  double w_adder = 0.3;
  double w_xor = 0.3;
  double w_mux = 0.3;
  double w_sbox = 0.2;
  double w_decoder = 0.1;
};

/// Generates a structurally valid design (validated before return).
/// Deterministic in the spec's seed. The clock period is left at 1.0 ns;
/// calibrate it against a golden STA run with `calibrated_period`.
[[nodiscard]] Design generate_design(const DesignSpec& spec,
                                     const Library& library);

/// Clock period giving the worst setup endpoint a small positive margin:
/// period = factor × max over endpoints of (late arrival + setup). Pass
/// the result to Design::set_period and re-run slack computation.
[[nodiscard]] double calibrated_period(const Design& design,
                                       const std::vector<PerCorner>& arrival,
                                       double factor);

}  // namespace tg
