/// Golden-shape test for the Perfetto export: writes a trace from known
/// spans and validates the Chrome trace_event JSON contract that
/// https://ui.perfetto.dev actually relies on — top-level `traceEvents`
/// array, complete ("X") events with numeric ts/dur, and thread_name
/// metadata ("M") events.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/json.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"

namespace tg::obs {
namespace {

class TraceGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_level(-1);
    set_metrics_enabled(false);
    clear_trace();
  }
  void TearDown() override {
    set_trace_level(-1);
    clear_trace();
  }
};

TEST_F(TraceGoldenTest, WritesPerfettoLoadableJson) {
  set_trace_level(kSpanVerbose);
  set_thread_name("golden-main");
  {
    TG_TRACE_SCOPE("sta/golden_outer", kSpanCoarse);
    { TG_TRACE_SCOPE("sta/golden_inner", kSpanDetail); }
    { TG_TRACE_SCOPE("nn/golden_kernel", kSpanDetail); }
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "tg_trace_golden.json")
          .string();
  ASSERT_TRUE(write_trace_json(path));

  const json::Value root = json::parse_file(path);
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ns");
  const json::Array& events = root.at("traceEvents").as_array();
  int x_events = 0, m_events = 0;
  bool saw_outer = false, saw_thread_name = false;
  for (const json::Value& ev : events) {
    const std::string ph = ev.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected ph " << ph;
    if (ph == "M") {
      ++m_events;
      EXPECT_EQ(ev.at("name").as_string(), "thread_name");
      if (ev.at("args").at("name").as_string() == "golden-main") {
        saw_thread_name = true;
      }
      continue;
    }
    ++x_events;
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("dur").is_number());
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    EXPECT_TRUE(ev.at("pid").is_number());
    EXPECT_TRUE(ev.at("tid").is_number());
    EXPECT_TRUE(ev.at("args").at("depth").is_number());
    // Category = span-name prefix before the first '/'.
    const std::string name = ev.at("name").as_string();
    const std::string cat = ev.at("cat").as_string();
    EXPECT_EQ(cat, name.substr(0, name.find('/')));
    if (name == "sta/golden_outer") {
      saw_outer = true;
      EXPECT_EQ(ev.at("args").at("depth").as_number(), 0.0);
    }
  }
  EXPECT_EQ(x_events, 3);
  EXPECT_GE(m_events, 1);
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_thread_name);
  std::filesystem::remove(path);
}

TEST_F(TraceGoldenTest, EmptyTraceStillParses) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tg_trace_empty.json")
          .string();
  ASSERT_TRUE(write_trace_json(path));
  const json::Value root = json::parse_file(path);
  EXPECT_TRUE(root.at("traceEvents").is_array());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tg::obs
