file(REMOVE_RECURSE
  "libtg_data.a"
)
