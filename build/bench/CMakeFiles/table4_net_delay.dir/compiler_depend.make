# Empty compiler generated dependencies file for table4_net_delay.
# This may be replaced when dependencies are built.
