#include "core/gcnii.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/obs/trace.hpp"

namespace tg::core {

using nn::Tensor;

GcniiAdjacency build_gcnii_adjacency(const data::DatasetGraph& g) {
  GcniiAdjacency adj;
  const int n = g.num_nodes;
  std::vector<int> degree(static_cast<std::size_t>(n), 1);  // self loop

  auto add_undirected = [&](const std::vector<int>& a,
                            const std::vector<int>& b) {
    for (std::size_t e = 0; e < a.size(); ++e) {
      adj.src.push_back(a[e]);
      adj.dst.push_back(b[e]);
      adj.src.push_back(b[e]);
      adj.dst.push_back(a[e]);
      ++degree[static_cast<std::size_t>(a[e])];
      ++degree[static_cast<std::size_t>(b[e])];
    }
  };
  add_undirected(g.net_src, g.net_dst);
  add_undirected(g.cell_src, g.cell_dst);
  for (int v = 0; v < n; ++v) {
    adj.src.push_back(v);
    adj.dst.push_back(v);
  }

  adj.w.resize(adj.src.size());
  for (std::size_t e = 0; e < adj.src.size(); ++e) {
    adj.w[e] = 1.0f / std::sqrt(
                          static_cast<float>(degree[static_cast<std::size_t>(adj.src[e])]) *
                          static_cast<float>(degree[static_cast<std::size_t>(adj.dst[e])]));
  }
  adj.csr = nn::build_spmm_csr(adj.src, adj.dst, adj.w, n, n);
  return adj;
}

Gcnii::Gcnii(const GcniiConfig& config)
    : config_(config),
      rng_(config.seed),
      input_proj_(data::kNodeFeatureDim, config.hidden, rng_, "gcnii.in"),
      head_(config.hidden, 2 * kNumCorners, rng_, "gcnii.head") {
  TG_CHECK(config.num_layers >= 1);
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.emplace_back(config.hidden, config.hidden, rng_,
                         "gcnii.w" + std::to_string(l));
  }
  register_module("in", input_proj_);
  for (int l = 0; l < config.num_layers; ++l) {
    register_module("w" + std::to_string(l), layers_[static_cast<std::size_t>(l)]);
  }
  if (config.use_layer_norm) {
    for (int l = 0; l < config.num_layers; ++l) {
      ln_gamma_.push_back(register_parameter(
          "ln" + std::to_string(l) + ".gamma",
          nn::Tensor::full(1, config.hidden, 1.0f, true)));
      ln_beta_.push_back(register_parameter(
          "ln" + std::to_string(l) + ".beta",
          nn::Tensor::zeros(1, config.hidden, true)));
    }
  }
  register_module("head", head_);
}

Tensor Gcnii::forward(const data::DatasetGraph& g,
                      const GcniiAdjacency& adj) const {
  TG_TRACE_SCOPE("core/gcnii_forward", obs::kSpanDetail);
  TG_CHECK(adj.csr.out_rows == g.num_nodes);
  Tensor h0 = input_proj_.forward_relu(g.node_feat);
  Tensor h = h0;
  for (const nn::Linear& w : layers_) {
    // Eq. 3: H' = σ( ((1−α)·P·H + α·H0) · ((1−β)·I + β·W) ).
    Tensor ph = nn::spmm_csr(adj.csr, h);
    Tensor m = nn::add(nn::scale(ph, 1.0f - config_.alpha),
                       nn::scale(h0, config_.alpha));
    h = nn::add_relu(nn::scale(m, 1.0f - config_.beta),
                     nn::scale(w.forward(m), config_.beta));
    if (config_.use_layer_norm) {
      const std::size_t l = static_cast<std::size_t>(&w - layers_.data());
      h = nn::layer_norm(h, ln_gamma_[l], ln_beta_[l]);
    }
  }
  return head_.forward(h);
}

Tensor Gcnii::loss(const data::DatasetGraph& g,
                   const Tensor& atslew_pred) const {
  const Tensor target_parts[] = {g.arrival, g.slew};
  return nn::mse_loss(atslew_pred, nn::concat_cols(target_parts));
}

}  // namespace tg::core
