#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace tg {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tg_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.add_row(std::vector<std::string>{"1", "2"});
    w.add_row(std::vector<double>{3.5, 4.25}, 2);
    EXPECT_EQ(w.rows(), 2u);
  }
  const std::string s = read_file(path_);
  EXPECT_EQ(s, "a,b\n1,2\n3.50,4.25\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"x"});
    w.add_row({std::string("has,comma")});
    w.add_row({std::string("has\"quote")});
  }
  const std::string s = read_file(path_);
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST_F(CsvTest, RejectsArityMismatch) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.add_row({"only"}), CheckError);
}

TEST_F(CsvTest, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}), CheckError);
}

}  // namespace
}  // namespace tg
