#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include "nn/module.hpp"
#include "nn/ops.hpp"

namespace tg::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // minimize (x - 3)²
  Tensor x = Tensor::from_vector({0.0f}, 1, 1, true);
  Adam adam({x}, AdamConfig{.lr = 0.1f});
  for (int i = 0; i < 300; ++i) {
    adam.zero_grad();
    Tensor target = Tensor::from_vector({3.0f}, 1, 1);
    mse_loss(x, target).backward();
    adam.step();
  }
  EXPECT_NEAR(x.item(), 3.0f, 1e-2);
}

TEST(Sgd, MinimizesQuadratic) {
  Tensor x = Tensor::from_vector({5.0f}, 1, 1, true);
  Sgd sgd({x}, 0.1f, 0.5f);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    Tensor target = Tensor::from_vector({-1.0f}, 1, 1);
    mse_loss(x, target).backward();
    sgd.step();
  }
  EXPECT_NEAR(x.item(), -1.0f, 1e-2);
}

TEST(Adam, GradClipLimitsStep) {
  // A huge gradient with clipping enabled must not explode the parameter.
  Tensor x = Tensor::from_vector({0.0f}, 1, 1, true);
  Adam adam({x}, AdamConfig{.lr = 0.01f, .grad_clip = 1.0f});
  adam.zero_grad();
  Tensor target = Tensor::from_vector({1e6f}, 1, 1);
  mse_loss(x, target).backward();
  adam.step();
  EXPECT_LT(std::abs(x.item()), 0.1f);
}

TEST(Adam, WeightDecayShrinksWeights) {
  Tensor x = Tensor::from_vector({1.0f}, 1, 1, true);
  Adam adam({x}, AdamConfig{.lr = 0.01f, .weight_decay = 0.1f});
  for (int i = 0; i < 100; ++i) {
    adam.zero_grad();
    // Zero data gradient: loss independent of x.
    Tensor y = scale(x, 0.0f);
    sum_all(y).backward();
    adam.step();
  }
  EXPECT_LT(std::abs(x.item()), 0.9f);
}

TEST(Adam, TrainsMlpOnToyRegression) {
  // y = 2·x0 − x1; the MLP should fit it closely.
  Rng rng(9);
  Mlp mlp(2, 1, 16, 2, &rng);
  Adam adam(mlp.parameters(), AdamConfig{.lr = 3e-3f});

  std::vector<float> xs, ys;
  for (int i = 0; i < 64; ++i) {
    const float a = static_cast<float>(rng.uniform(-1, 1));
    const float b = static_cast<float>(rng.uniform(-1, 1));
    xs.push_back(a);
    xs.push_back(b);
    ys.push_back(2 * a - b);
  }
  Tensor x = Tensor::from_vector(xs, 64, 2);
  Tensor y = Tensor::from_vector(ys, 64, 1);

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 500; ++epoch) {
    adam.zero_grad();
    Tensor loss = mse_loss(mlp.forward(x), y);
    loss.backward();
    adam.step();
    if (epoch == 0) first_loss = loss.item();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, 0.02f * first_loss);
  EXPECT_LT(last_loss, 0.01f);
}

}  // namespace
}  // namespace tg::nn
