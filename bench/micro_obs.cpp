/// \file micro_obs.cpp
/// Microbenchmarks for the observability layer itself: the cost of a
/// TG_TRACE_SCOPE with everything off (the number the "<=1% overhead"
/// acceptance bound rests on), with tracing on, with metrics-only on, and
/// the cost of a TG_METRIC_COUNT in both modes.
///
///   micro_obs                  # google-benchmark run
///   micro_obs --selfcheck      # CI mode: hard-fails if the disabled-path
///                              # span costs more than kDisabledBudgetNs
///
/// --selfcheck bypasses google-benchmark entirely (no statistics, one
/// tight loop) so ci/run.sh can gate on it cheaply.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "micro_common.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"

namespace tg {
namespace {

/// Restores the global obs switches so benchmarks compose in one process.
struct ObsModeGuard {
  ObsModeGuard(int trace_level, bool metrics) {
    obs::set_trace_level(trace_level);
    obs::set_metrics_enabled(metrics);
  }
  ~ObsModeGuard() {
    obs::set_metrics_enabled(false);
    obs::set_trace_level(-1);
    obs::clear_trace();
  }
};

void BM_SpanDisabled(benchmark::State& state) {
  const ObsModeGuard guard(-1, false);
  for (auto _ : state) {
    TG_TRACE_SCOPE("bench/span_disabled", obs::kSpanCoarse);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanTraced(benchmark::State& state) {
  const ObsModeGuard guard(obs::kSpanVerbose, false);
  for (auto _ : state) {
    TG_TRACE_SCOPE("bench/span_traced", obs::kSpanCoarse);
    benchmark::ClobberMemory();
  }
  // Per-thread buffers are bounded; drop the events so repeated runs in one
  // process keep recording instead of hitting the drop path.
  obs::clear_trace();
}
BENCHMARK(BM_SpanTraced);

void BM_SpanMetricsOnly(benchmark::State& state) {
  const ObsModeGuard guard(-1, true);
  for (auto _ : state) {
    TG_TRACE_SCOPE("bench/span_metrics", obs::kSpanCoarse);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanMetricsOnly);

void BM_CounterAddDisabled(benchmark::State& state) {
  const ObsModeGuard guard(-1, false);
  for (auto _ : state) {
    TG_METRIC_COUNT("bench/counter", 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAdd(benchmark::State& state) {
  const ObsModeGuard guard(-1, true);
  for (auto _ : state) {
    TG_METRIC_COUNT("bench/counter", 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAdd);

// ---- --selfcheck ---------------------------------------------------------

/// Per-iteration budget for the fully-disabled span, in nanoseconds. The
/// real cost is one relaxed load + branch (~1 ns); the budget leaves wide
/// headroom for slow/contended CI machines while still catching an
/// accidental lock or clock read on the disabled path.
constexpr double kDisabledBudgetNs = 15.0;

double loop_ns_per_iter(long long iters, bool with_span) {
  const auto start = std::chrono::steady_clock::now();
  for (long long i = 0; i < iters; ++i) {
    if (with_span) {
      TG_TRACE_SCOPE("bench/selfcheck", obs::kSpanCoarse);
      asm volatile("" ::: "memory");
    } else {
      asm volatile("" ::: "memory");
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(iters);
}

int run_selfcheck() {
  obs::set_trace_level(-1);
  obs::set_metrics_enabled(false);
  constexpr long long kIters = 20'000'000;
  loop_ns_per_iter(kIters / 10, true);  // warm up
  const double base_ns = loop_ns_per_iter(kIters, false);
  const double span_ns = loop_ns_per_iter(kIters, true);
  const double cost_ns = span_ns - base_ns;
  std::printf(
      "# obs selfcheck: empty loop %.2f ns/iter, disabled span %.2f ns/iter, "
      "cost %.2f ns (budget %.1f ns)\n",
      base_ns, span_ns, cost_ns, kDisabledBudgetNs);
  if (cost_ns > kDisabledBudgetNs) {
    std::fprintf(stderr,
                 "# obs selfcheck FAILED: disabled TG_TRACE_SCOPE costs "
                 "%.2f ns/iter (> %.1f ns budget)\n",
                 cost_ns, kDisabledBudgetNs);
    return 1;
  }
  std::printf("# obs selfcheck OK\n");
  return 0;
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) return tg::run_selfcheck();
  }
  return tg::bench_micro::run_micro_main(argc, argv,
                                         [](const std::vector<int>&) {});
}
