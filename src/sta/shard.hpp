#pragma once
/// \file shard.hpp
/// Fault-isolated sharded STA engine (DESIGN.md §13), `TG_STA_ENGINE=shard`.
///
/// The timing graph is split by the level-aware partitioner
/// (sta/partition.hpp) into K shards of owned pins plus ghost copies of
/// cross-shard fanin. Each shard's forward/backward sweep is a shard-local
/// task sub-DAG; shards are scheduled by a dependency-counter orchestrator
/// (a shard becomes ready when its last upstream shard retires — the
/// cross-shard decrement), and boundary values move through *versioned,
/// FNV-1a-checksummed boundary buffers*: an exporter publishes its
/// boundary pins' values with the sweep id and a checksum, and every
/// importer verifies version + checksum + payload before trusting its
/// ghosts. A stale or corrupt exchange is detected and re-exported from
/// the owner's still-valid results, never propagated.
///
/// Every shard is a fault/recovery domain. `TG_FAULT_SHARD=<op>:<nth>
/// [:<count>]` (util/fault.hpp; ops worker, slow, corrupt, stale) injects
/// shard-worker throws, slow-shard stalls and boundary corruption; a
/// failed shard re-executes from its input frontier with capped backoff, a
/// straggler past its EMA-derived deadline is cancelled and speculatively
/// re-issued, and a repeat offender fails the sweep loudly with a
/// `ShardSweepError` naming the shard id, its level range and the
/// first-offender pin (util/diag). Results are bit-identical to the
/// levelized and async engines: shard bodies run the same `propagate_pin`
/// / `relax_required_pin` kernels, writing only pin-owned rows and reading
/// only finalized predecessors.
///
/// In-process, all shards share the `StaResult` arrays — the owner's write
/// is the authoritative publication (ordered by the shard dependency
/// handshake) and the boundary buffer is the integrity-checked exchange
/// *record*; it is the seam where a cross-process transport would slot in.

#include <cstdint>
#include <span>
#include <vector>

#include "route/router.hpp"
#include "sta/partition.hpp"
#include "sta/timer.hpp"
#include "util/diag.hpp"
#include "util/task_graph.hpp"

namespace tg {

/// Loud shard failure: a shard (or its boundary exchange) stayed broken
/// past the retry budget. Derives DiagError, so what() carries the full
/// report and diags() the structured entries (shard id, level range,
/// first-offender pin).
class ShardSweepError : public DiagError {
 public:
  ShardSweepError(const std::string& what, std::vector<Diag> diags,
                  int shard);
  [[nodiscard]] int shard() const { return shard_; }

 private:
  int shard_;
};

/// Precomputed execution plan of one (graph, K) pair: the partition plus,
/// per shard, its local task DAGs (node ids are indices into the shard's
/// owned-pin list), its shard-level dependencies and its boundary pin
/// lists. Built once and cached on the TimingGraph (thread-safe); shared
/// by concurrent sweeps — all state here is immutable after construction.
struct ShardPlan {
  Partition part;
  struct Shard {
    /// Local forward/backward DAGs over the shard's owned pins; edges are
    /// the in-shard timing arcs (ghost-fed pins simply start with fewer
    /// local fan-ins and are roots when all their fanin is remote).
    TaskDag fwd;
    TaskDag bwd;
    /// Upstream shards (forward: owners of this shard's ghosts, all with
    /// smaller ids; backward: owners of cross-shard fanout targets, all
    /// with larger ids). The forward *dependents* of shard s are exactly
    /// `bwd_deps[s]` and vice versa — cross edges read both ways.
    std::vector<int> fwd_deps;
    std::vector<int> bwd_deps;
    /// Boundary pins this shard exports: forward = owned pins with
    /// cross-shard fanout (arrival + slew lanes), backward = owned pins
    /// with cross-shard fanin (RAT lanes). Sorted ascending.
    std::vector<PinId> fwd_exports;
    std::vector<PinId> bwd_exports;
    /// Cross-shard fanout targets (the backward sweep's ghosts). The
    /// forward ghosts are `part.ghosts[s]`.
    std::vector<PinId> bwd_ghosts;
    /// CSR from forward-ghost index (aligned with part.ghosts[s]) to the
    /// local ids of its in-shard sinks — the incremental engine's seeds
    /// for "an upstream shard changed this ghost".
    std::vector<int> ghost_sink_off;
    std::vector<int> ghost_sink;
  };
  std::vector<Shard> shards;
  /// Index of each pin inside its owner's owned-pin list.
  std::vector<int> local_id;
};

/// Builds the plan for `graph` split into `num_shards` shards.
/// Deterministic. Prefer `TimingGraph::shard_plan(k)` (cached).
[[nodiscard]] ShardPlan build_shard_plan(const TimingGraph& graph,
                                         int num_shards);

/// Process-wide sharded-engine counters (cumulative; snapshot via
/// shard_stats). Benches expose these as --json extras.
struct ShardStats {
  std::uint64_t sweeps = 0;           ///< orchestrated sweeps (fwd or bwd)
  std::uint64_t shard_runs = 0;       ///< shard attempts that ran a body
  std::uint64_t retries = 0;          ///< re-executions after a shard fault
  std::uint64_t speculations = 0;     ///< straggler cancel + re-issues
  std::uint64_t ghost_exports = 0;    ///< boundary buffers published
  std::uint64_t ghost_bytes = 0;      ///< payload bytes exported
  std::uint64_t ghost_verifies = 0;   ///< importer verifications passed
  std::uint64_t ghost_mismatches = 0; ///< stale/corrupt exchanges detected
  std::uint64_t ghost_reexports = 0;  ///< recovery re-publications
  std::uint64_t failures = 0;         ///< loud ShardSweepError escalations
};
[[nodiscard]] ShardStats shard_stats();
void reset_shard_stats();

/// Retry budget per shard: a shard may re-execute this many times after a
/// fault (attempts = retries + 1) before the sweep fails loudly. Default
/// from TG_SHARD_RETRIES (2). `n < 0` restores the env/default.
void set_shard_retries(int n);
[[nodiscard]] int shard_retries();

/// Straggler deadline floor in milliseconds: an in-flight shard attempt
/// past max(floor, 8 × EMA of completed attempts) is cancelled and
/// speculatively re-issued. Default from TG_SHARD_STRAGGLER_MS (50 ms,
/// with a 500 ms grace while no EMA sample exists). `ms <= 0` restores
/// the env/default.
void set_shard_straggler_ms(double ms);
[[nodiscard]] double shard_straggler_ms();

/// Sharded forward sweep: arrival/slew/net-delay/cell-arc-delay over the
/// whole graph, bit-identical to the levelized sweep. `r` must be sized
/// (as in run_sta).
void run_sta_forward_sharded(const TimingGraph& graph,
                             const DesignRouting& routing,
                             const StaOptions& options, StaResult& r);

/// Sharded backward relax sweep (RAT only; callers initialize RAT and
/// compute slack/summary as usual).
void run_sta_backward_sharded(const TimingGraph& graph, StaResult& r);

/// Result of a sharded incremental (dirty-cone) update.
struct ShardConeStats {
  long long cone_nodes = 0;  ///< union of the per-shard discovered cones
  long long evaluated = 0;   ///< pin bodies actually run
  int changed_pins = 0;      ///< pins whose value moved
  int shards_touched = 0;    ///< shards with a non-empty local cone
};

/// Sharded dirty-cone forward update from `seeds`: shards are processed in
/// dependency order, each re-propagating only its local cone (clipped to
/// touched shards — a shard none of whose pins are seeded or ghost-fed by
/// a changed export is skipped entirely). Fault/recovery semantics match
/// the full sweep.
ShardConeStats update_cone_sharded(const TimingGraph& graph,
                                   const DesignRouting& routing,
                                   const StaOptions& options, StaResult& r,
                                   std::span<const PinId> seeds);

}  // namespace tg
