/// \file fig4_slack_scatter.cpp
/// Reproduces **Figure 4** of the paper: predicted vs ground-truth slack at
/// every timing endpoint of the test design `usbf_device`, for both setup
/// and hold corners. Emits CSV scatter data (fig4_setup.csv /
/// fig4_hold.csv), prints R²/Pearson correlations, and renders an ASCII
/// scatter so the correlation is visible in the terminal.
///
///   ./fig4_slack_scatter [--scale=...] [--epochs=...] [--design=usbf_device]

#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace tg {
namespace {

void ascii_scatter(const char* title, const std::vector<double>& x,
                   const std::vector<double>& y) {
  constexpr int kW = 56, kH = 18;
  double lo = 1e30, hi = -1e30;
  for (double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = std::max(1e-12, hi - lo);
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  // Perfect-correlation diagonal for reference.
  for (int i = 0; i < std::min(kW, kH * 3); ++i) {
    const int cx = i * (kW - 1) / std::max(1, kW - 1);
    const int cy = i * (kH - 1) / std::max(1, kW - 1);
    if (cy < kH) grid[static_cast<std::size_t>(kH - 1 - cy)][static_cast<std::size_t>(cx)] = '.';
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int cx = static_cast<int>((x[i] - lo) / span * (kW - 1));
    const int cy = static_cast<int>((y[i] - lo) / span * (kH - 1));
    grid[static_cast<std::size_t>(kH - 1 - cy)][static_cast<std::size_t>(cx)] = '*';
  }
  std::printf("\n%s  (x: ground truth, y: predicted, '.' = ideal)\n", title);
  std::printf("  +%s+\n", std::string(kW, '-').c_str());
  for (const std::string& line : grid) std::printf("  |%s|\n", line.c_str());
  std::printf("  +%s+  [%.3f, %.3f] ns\n", std::string(kW, '-').c_str(), lo, hi);
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  using namespace tg;
  const bench::BenchConfig config = bench::parse_bench_config(argc, argv);
  const CliOptions opts(argc, argv);
  const std::string design_name = opts.get("design", "usbf_device");
  std::printf("== Fig. 4: slack prediction scatter for %s ==\n",
              design_name.c_str());

  const data::SuiteDataset dataset = bench::build_dataset(config);
  auto trainer = bench::train_or_load_full_model(config, dataset);

  const data::DatasetGraph* target = nullptr;
  for (const auto& g : dataset.graphs) {
    if (g.name == design_name) target = &g;
  }
  if (target == nullptr) {
    std::fprintf(stderr, "unknown design %s\n", design_name.c_str());
    return 1;
  }

  const auto scatter = trainer->slack_scatter(*target);
  {
    CsvWriter setup_csv(config.out_dir + "/fig4_setup.csv",
                        {"true_slack_ns", "predicted_slack_ns"});
    for (std::size_t i = 0; i < scatter.true_setup.size(); ++i) {
      setup_csv.add_row({scatter.true_setup[i], scatter.pred_setup[i]});
    }
    CsvWriter hold_csv(config.out_dir + "/fig4_hold.csv",
                       {"true_slack_ns", "predicted_slack_ns"});
    for (std::size_t i = 0; i < scatter.true_hold.size(); ++i) {
      hold_csv.add_row({scatter.true_hold[i], scatter.pred_hold[i]});
    }
    std::printf("# wrote %zu endpoint samples to fig4_setup.csv / "
                "fig4_hold.csv\n",
                scatter.true_setup.size());
  }

  const double r2_setup = r2_score(std::span<const double>(scatter.true_setup),
                                   std::span<const double>(scatter.pred_setup));
  const double r2_hold = r2_score(std::span<const double>(scatter.true_hold),
                                  std::span<const double>(scatter.pred_hold));
  const double r_setup = pearson_r(std::span<const double>(scatter.true_setup),
                                   std::span<const double>(scatter.pred_setup));
  const double r_hold = pearson_r(std::span<const double>(scatter.true_hold),
                                  std::span<const double>(scatter.pred_hold));
  std::printf("setup slack: R^2 = %s, Pearson r = %s\n",
              format_fixed(r2_setup, 4).c_str(),
              format_fixed(r_setup, 4).c_str());
  std::printf("hold  slack: R^2 = %s, Pearson r = %s\n",
              format_fixed(r2_hold, 4).c_str(),
              format_fixed(r_hold, 4).c_str());

  ascii_scatter("Setup slack", scatter.true_setup, scatter.pred_setup);
  ascii_scatter("Hold slack", scatter.true_hold, scatter.pred_hold);

  std::printf("\nPaper shape: a visually tight diagonal for both corners on "
              "usbf_device.\n");
  return 0;
}
