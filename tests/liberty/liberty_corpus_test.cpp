/// Malformed-input corpus for the Liberty reader: handcrafted or surgically
/// corrupted libraries with exact expected diagnostics. The recovery
/// contract: a broken cell is dropped whole (with every diagnostic
/// reported), and the remaining cells still load.

#include <gtest/gtest.h>

#include <sstream>

#include "liberty/liberty_io.hpp"
#include "testing/fixtures.hpp"

namespace tg {
namespace {

std::string valid_text() {
  std::ostringstream os;
  write_liberty(tg::testing::small_library(), os);
  return os.str();
}

DiagSink parse(const std::string& text, Library* out = nullptr) {
  std::istringstream in(text);
  DiagSink sink;
  Library lib = read_liberty(in, sink, "corpus.lib");
  if (out != nullptr) *out = std::move(lib);
  return sink;
}

TEST(LibertyCorpus, NonNumericLutEntryDropsOnlyThatCell) {
  std::string text = valid_text();
  // Corrupt the first LUT number (inside the first values string) — it
  // belongs to the first cell, so only that cell must be rejected.
  const std::size_t values = text.find("values (");
  ASSERT_NE(values, std::string::npos);
  const std::size_t quote = text.find('"', values);
  ASSERT_NE(quote, std::string::npos);
  const std::size_t comma = text.find(',', quote);
  text.replace(quote + 1, comma - quote - 1, "garbage");

  Library lib;
  const DiagSink sink = parse(text, &lib);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("non-numeric values entry"));
  EXPECT_TRUE(sink.contains("garbage"));
  EXPECT_NE(sink.report_text().find("corpus.lib:"), std::string::npos);
  // One of the two cells survived recovery.
  EXPECT_EQ(lib.num_cells(), 1);
}

TEST(LibertyCorpus, TruncatedFileReportsEof) {
  std::string text = valid_text();
  text.resize(text.size() / 2);
  const DiagSink sink = parse(text);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("unexpected end of file"));
}

TEST(LibertyCorpus, DuplicateCellIsRejectedWithDiagnostic) {
  const std::string text = valid_text();
  // Append a full copy of the first cell group after the library body —
  // the recovering parser resyncs on the `cell` keyword and the library
  // rejects the duplicate name.
  const std::size_t first = text.find("cell (");
  const std::size_t second = text.find("cell (", first + 1);
  ASSERT_NE(second, std::string::npos);
  const std::string dup = text.substr(first, second - first);
  std::string doubled = text;
  doubled.insert(text.rfind('}'), dup);

  Library lib;
  const DiagSink sink = parse(doubled, &lib);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("cell rejected"));
  EXPECT_TRUE(sink.contains("duplicate cell name"));
  EXPECT_EQ(lib.num_cells(), 2);
}

TEST(LibertyCorpus, UnknownCornerTagIsDiagnosed) {
  const DiagSink sink = parse(
      "library (broken) {\n"
      "  cell (X1) {\n"
      "    setup_sideways : 0.1;\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("unknown corner tag"));
  EXPECT_TRUE(sink.contains("sideways"));
  EXPECT_NE(sink.report_text().find("corpus.lib:3"), std::string::npos);
}

TEST(LibertyCorpus, EmptyFileIsAnErrorNotACrash) {
  const DiagSink sink = parse("");
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("expected 'library'"));
}

TEST(LibertyCorpus, TimingArcWithUnknownPinDropsTheCell) {
  Library lib;
  const DiagSink sink = parse(
      "library (broken) {\n"
      "  cell (X1) {\n"
      "    pin (A) { direction : input; }\n"
      "    timing (A -> NOPE) {\n"
      "    }\n"
      "  }\n"
      "}\n",
      &lib);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("timing arc references unknown pin"));
  EXPECT_TRUE(sink.contains("NOPE"));
  EXPECT_EQ(lib.num_cells(), 0);
}

TEST(LibertyCorpus, LegacyReaderThrowsAggregatedCheckError) {
  std::istringstream in("library (x) {\n  cell (C) {\n");
  EXPECT_THROW({ const Library l = read_liberty(in); (void)l; }, CheckError);
}

TEST(LibertyCorpus, ValidLibraryRoundTripsWithCleanSink) {
  Library lib;
  const DiagSink sink = parse(valid_text(), &lib);
  EXPECT_TRUE(sink.ok()) << sink.report_text();
  EXPECT_EQ(lib.num_cells(), 2);
}

}  // namespace
}  // namespace tg
