#include "sta/paths.hpp"

#include <gtest/gtest.h>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "testing/builders.hpp"

namespace tg {
namespace {

class PathsTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();

  struct Prepared {
    Design design;
    DesignRouting routing;
  };

  Prepared prepare(const char* name) {
    Design d = generate_design(suite_entry(name, 1.0 / 32).spec, lib_);
    place_design(d);
    RoutingOptions opts;
    opts.mode = RouteMode::kSteiner;
    DesignRouting r = route_design(d, opts);
    return Prepared{std::move(d), std::move(r)};
  }
};

TEST_F(PathsTest, WorstPathsSortedBySlack) {
  auto prep = prepare("spm");
  const TimingGraph g(prep.design);
  StaResult sta = run_sta(g, prep.routing);
  prep.design.set_period(calibrated_period(prep.design, sta.arrival, 1.05));
  sta = run_sta(g, prep.routing);
  const auto paths = worst_paths(g, sta, 5, /*setup=*/true);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].slack, paths[i].slack);
  }
  EXPECT_NEAR(paths[0].slack, sta.wns_setup, 1e-12);
}

TEST_F(PathsTest, PathStartsAtRootEndsAtEndpoint) {
  auto prep = prepare("spm");
  const TimingGraph g(prep.design);
  const StaResult sta = run_sta(g, prep.routing);
  const auto paths = worst_paths(g, sta, 3, true);
  for (const CriticalPath& path : paths) {
    ASSERT_FALSE(path.steps.empty());
    EXPECT_TRUE(prep.design.is_timing_root(path.steps.front().pin));
    EXPECT_EQ(path.steps.back().pin, path.endpoint);
    EXPECT_TRUE(prep.design.is_endpoint(path.endpoint));
    // Arrivals are monotone along the path.
    for (std::size_t i = 1; i < path.steps.size(); ++i) {
      EXPECT_GE(path.steps[i].arrival + 1e-12, path.steps[i - 1].arrival);
    }
  }
}

TEST_F(PathsTest, HoldPathsUseEarlyCorners) {
  auto prep = prepare("spm");
  const TimingGraph g(prep.design);
  const StaResult sta = run_sta(g, prep.routing);
  const auto paths = worst_paths(g, sta, 2, /*setup=*/false);
  ASSERT_FALSE(paths.empty());
  for (const CriticalPath& path : paths) {
    EXPECT_FALSE(path.is_setup);
    for (const PathStep& step : path.steps) {
      EXPECT_EQ(corner_mode(step.corner), Mode::kEarly);
    }
  }
}

TEST_F(PathsTest, FormatPathMentionsEndpointAndSlack) {
  auto prep = prepare("spm");
  const TimingGraph g(prep.design);
  const StaResult sta = run_sta(g, prep.routing);
  const auto paths = worst_paths(g, sta, 1, true);
  ASSERT_FALSE(paths.empty());
  const std::string report = format_path(prep.design, sta, paths[0]);
  EXPECT_NE(report.find(prep.design.pin_name(paths[0].endpoint)),
            std::string::npos);
  EXPECT_NE(report.find("slack="), std::string::npos);
}

TEST_F(PathsTest, HistogramCountsAllEndpoints) {
  auto prep = prepare("usb");
  const TimingGraph g(prep.design);
  const StaResult sta = run_sta(g, prep.routing);
  const auto hist = slack_histogram(prep.design, sta, 10);
  ASSERT_EQ(hist.size(), 10u);
  long long total = 0;
  for (const auto& [edge, count] : hist) total += count;
  EXPECT_EQ(total, prep.design.stats().num_endpoints);
  // Bin edges ascend.
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GT(hist[i].first, hist[i - 1].first);
  }
}

}  // namespace
}  // namespace tg
