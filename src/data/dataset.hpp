#pragma once
/// \file dataset.hpp
/// End-to-end dataset pipeline: generate each Table-1 benchmark, place it,
/// maze-route it (timed — the "Routing" column of Table 5), run the golden
/// STA (timed — the "STA" column), calibrate the clock period, and extract
/// the DatasetGraph. This is the repository's equivalent of the paper's
/// OpenROAD data-generation flow.

#include <functional>

#include "data/extract.hpp"
#include "gen/suite.hpp"
#include "place/placer.hpp"

namespace tg::data {

struct DatasetOptions {
  double scale = kDefaultSuiteScale;
  PlacerConfig placer;
  RoutingOptions truth_routing;  ///< defaults to the maze router
  StaOptions sta;
  /// Drop the Design/DesignRouting handles after extraction (saves memory
  /// when the baselines are not needed).
  bool slim = false;
  /// Test/debug hook, run right after generation (before the first
  /// validation gate). Used to inject corruption into a specific benchmark
  /// when exercising the quarantine path.
  std::function<void(Design&)> post_generate;
};

/// A benchmark that failed a pipeline stage during a suite build. The build
/// records it (with its full diagnostic report) and carries on.
struct QuarantinedBenchmark {
  std::string name;
  std::string report;  ///< aggregated diagnostics / error text
};

struct SuiteDataset {
  std::vector<DatasetGraph> graphs;  ///< paper order (14 train, 7 test)
  std::vector<int> train_ids;
  std::vector<int> test_ids;
  /// Benchmarks dropped by quarantine; ids above index into `graphs` after
  /// compaction, so they never reference a quarantined slot.
  std::vector<QuarantinedBenchmark> quarantined;
};

/// Builds one benchmark end to end. Between stages the pipeline runs the
/// DESIGN.md §8 invariant checkers at the TG_VALIDATE level and throws a
/// DiagError carrying every collected diagnostic if a stage output is
/// corrupt.
[[nodiscard]] DatasetGraph build_design_graph(const SuiteEntry& entry,
                                              const Library& library,
                                              const DatasetOptions& options);

/// Builds the whole 21-design suite (or the subset named in `only`).
/// A benchmark failing any stage is quarantined — recorded with its
/// diagnostics in `SuiteDataset::quarantined`, summarized in the log — and
/// the build continues; only an all-benchmarks failure throws.
[[nodiscard]] SuiteDataset build_suite_dataset(
    const Library& library, const DatasetOptions& options,
    const std::vector<std::string>& only = {});

}  // namespace tg::data
