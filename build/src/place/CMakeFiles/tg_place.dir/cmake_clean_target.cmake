file(REMOVE_RECURSE
  "libtg_place.a"
)
