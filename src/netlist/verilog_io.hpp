#pragma once
/// \file verilog_io.hpp
/// Structural-Verilog (gate-level netlist) serialization — the interchange
/// format downstream users expect from an EDA library. The writer emits a
/// flat module with named port connections; the reader rebuilds a Design
/// against a Library. Clock declaration travels in a `timgnn_clock
/// directive; placement travels in a sidecar ".pl" file (one pin/instance
/// per line), since positions are not part of Verilog.
///
/// Readers come in two flavors (DESIGN.md §8):
///  - sink-based: recover at statement boundaries, collect *every* problem
///    into the DiagSink with file:line context and the offending token, and
///    return the (possibly partial) result — never throw on malformed
///    input. Callers inspect the sink and usually run validate_design.
///  - legacy: parse with an internal sink and throw one aggregated
///    DiagError (a CheckError) listing all diagnostics if any error was
///    reported.

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"
#include "util/diag.hpp"

namespace tg {

/// Writes the design as a flat structural Verilog module.
void write_verilog(const Design& design, std::ostream& out);
void write_verilog_file(const Design& design, const std::string& path);

/// Recovering reader: parses a netlist, resolving instance cell names
/// against `library`. All problems are reported into `sink` with
/// `path`:line context; parsing continues at the next statement boundary.
[[nodiscard]] Design read_verilog(std::istream& in, const Library* library,
                                  DiagSink& sink,
                                  const std::string& path = "<verilog>");
[[nodiscard]] Design read_verilog_file(const std::string& path,
                                       const Library* library,
                                       DiagSink& sink);

/// Legacy readers: throw DiagError (a CheckError) listing every diagnostic
/// on malformed input or unknown cells.
[[nodiscard]] Design read_verilog(std::istream& in, const Library* library);
[[nodiscard]] Design read_verilog_file(const std::string& path,
                                       const Library* library);

/// Writes the placement (die box, instance and port positions).
void write_placement(const Design& design, std::ostream& out);
void write_placement_file(const Design& design, const std::string& path);

/// Recovering reader: applies a placement by name onto a structurally
/// identical design. Bad records are reported into `sink` (with the file
/// path, line and record text) and skipped; duplicate die/inst/port/pin
/// records are diagnosed and the duplicate ignored (first record wins).
void read_placement(Design& design, std::istream& in, DiagSink& sink,
                    const std::string& path = "<placement>");
void read_placement_file(Design& design, const std::string& path,
                         DiagSink& sink);

/// Legacy readers: throw DiagError listing every bad record.
void read_placement(Design& design, std::istream& in);
void read_placement_file(Design& design, const std::string& path);

}  // namespace tg
