#include "netlist/verilog_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace tg {

namespace {

/// Verilog identifiers can't contain '/', so names are used as-is (the
/// generator produces safe names). Checked on write.
void check_identifier(const std::string& name) {
  TG_CHECK_MSG(!name.empty(), "empty identifier");
  for (char c : name) {
    TG_CHECK_MSG(std::isalnum(static_cast<unsigned char>(c)) || c == '_',
                 "name not a Verilog identifier: " << name);
  }
}

}  // namespace

void write_verilog(const Design& design, std::ostream& out) {
  const Library& lib = design.library();

  if (design.clock_net() != kInvalidId) {
    out << "`timgnn_clock " << design.net(design.clock_net()).name << ' '
        << format_fixed(design.clock_period(), 9) << "\n";
  }
  out << "module " << design.name() << " (";
  bool first = true;
  for (PinId p : design.primary_inputs()) {
    out << (first ? "" : ", ") << design.pin(p).port_name;
    first = false;
  }
  for (PinId p : design.primary_outputs()) {
    out << (first ? "" : ", ") << design.pin(p).port_name;
    first = false;
  }
  out << ");\n";

  for (PinId p : design.primary_inputs()) {
    check_identifier(design.pin(p).port_name);
    out << "  input " << design.pin(p).port_name << ";\n";
  }
  for (PinId p : design.primary_outputs()) {
    check_identifier(design.pin(p).port_name);
    out << "  output " << design.pin(p).port_name << ";\n";
  }
  for (const Net& net : design.nets()) {
    check_identifier(net.name);
    out << "  wire " << net.name << ";\n";
  }
  // Port-to-net aliases: the port IS a pin on some net; emit assigns for
  // readability of the mapping (inputs drive their nets, outputs read).
  for (PinId p : design.primary_inputs()) {
    out << "  assign " << design.net(design.pin(p).net).name << " = "
        << design.pin(p).port_name << ";\n";
  }
  for (PinId p : design.primary_outputs()) {
    out << "  assign " << design.pin(p).port_name << " = "
        << design.net(design.pin(p).net).name << ";\n";
  }

  for (const Instance& inst : design.instances()) {
    const CellType& cell = lib.cell(inst.cell_id);
    check_identifier(inst.name);
    out << "  " << cell.name << ' ' << inst.name << " (";
    for (std::size_t i = 0; i < cell.pins.size(); ++i) {
      if (i) out << ", ";
      const PinId pin = inst.pins[i];
      out << '.' << cell.pins[i].name << '('
          << design.net(design.pin(pin).net).name << ')';
    }
    out << ");\n";
  }
  out << "endmodule\n";
}

void write_verilog_file(const Design& design, const std::string& path) {
  std::ofstream out(path);
  TG_CHECK_MSG(out.is_open(), "cannot write " << path);
  write_verilog(design, out);
  TG_CHECK_MSG(out.good(), "write failure on " << path);
}

namespace {

/// Thrown inside the parser to unwind to the nearest statement-level
/// recovery point; never escapes read_verilog.
struct ParseBail {};

/// Minimal Verilog tokenizer for the subset the writer emits. Lexical
/// problems (stray characters) are reported and skipped, never thrown.
class VLexer {
 public:
  VLexer(std::istream& in, DiagSink& sink, const std::string& path)
      : in_(in), sink_(sink), path_(path) {}

  struct Token {
    std::string text;  // empty = EOF
    int line = 0;
  };

  Token next() {
    skip();
    Token t;
    t.line = line_;
    int c = in_.peek();
    if (c == EOF) return t;
    if (std::isalnum(c) || c == '_' || c == '`' || c == '.') {
      while (std::isalnum(in_.peek()) || in_.peek() == '_' ||
             in_.peek() == '`' || in_.peek() == '.') {
        t.text.push_back(static_cast<char>(in_.get()));
      }
      return t;
    }
    t.text.push_back(static_cast<char>(in_.get()));
    return t;
  }

 private:
  void skip() {
    for (;;) {
      int c = in_.peek();
      if (c == '\n') ++line_;
      if (std::isspace(c)) {
        in_.get();
        continue;
      }
      if (c == '/') {
        in_.get();
        if (in_.peek() == '/') {
          while (in_.peek() != '\n' && in_.peek() != EOF) in_.get();
          continue;
        }
        sink_.error(Stage::kParse, "stray '/' (not a comment)",
                    SrcLoc{path_, line_});
        continue;  // skip the character and keep lexing
      }
      return;
    }
  }

  std::istream& in_;
  DiagSink& sink_;
  std::string path_;
  int line_ = 1;
};

/// Recovering structural-Verilog parser: errors become diagnostics with
/// file:line + offending token, and parsing resumes at the next statement
/// boundary (';', 'endmodule' or EOF).
class VParser {
 public:
  VParser(std::istream& in, const Library* library, DiagSink& sink,
          const std::string& path)
      : lex_(in, sink, path), library_(library), sink_(sink), path_(path) {
    tok_ = lex_.next();
  }

  Design parse() {
    std::string clock_net_name;
    double clock_period = 0.0;
    if (tok_.text == "`timgnn_clock") {
      advance();
      clock_net_name = tok_.text;
      advance();
      clock_period = take_double("clock period");
    }

    // Resync past any leading garbage to the module header.
    if (tok_.text != "module") {
      error("expected 'module'");
      while (!at_end() && tok_.text != "module") advance();
    }
    if (at_end()) {
      error("no module declaration found");
      return Design("<invalid>", library_);
    }
    advance();  // 'module'

    std::string module_name = "<anonymous>";
    if (is_identifier(tok_.text)) {
      module_name = tok_.text;
      advance();
    } else {
      error("expected module name");
    }
    Design design(std::move(module_name), library_);

    try {
      expect("(");
      while (tok_.text != ")") {
        if (at_end()) {
          error("unexpected end of file in port list");
          return design;
        }
        advance();  // port order is re-derived from input/output statements
      }
      expect(")");
      expect(";");
    } catch (const ParseBail&) {
      sync_statement();
    }

    // Statement loop with per-statement recovery.
    while (tok_.text != "endmodule") {
      if (at_end()) {
        error("unexpected end of file in module body (missing 'endmodule')");
        break;
      }
      try {
        parse_statement(design);
      } catch (const ParseBail&) {
        sync_statement();
      }
    }

    if (!clock_net_name.empty()) {
      auto it = nets_.find(clock_net_name);
      if (it == nets_.end()) {
        error("clock directive names unknown net '" + clock_net_name + "'");
      } else if (!(std::isfinite(clock_period) && clock_period > 0.0)) {
        TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), clock_net_name,
                "clock period " << clock_period
                                << " is not a positive finite value");
      } else {
        design.set_clock(it->second, clock_period);
      }
    }
    return design;
  }

 private:
  // ---- statements ----------------------------------------------------
  void parse_statement(Design& design) {
    if (tok_.text == "input" || tok_.text == "output") {
      const bool is_input = tok_.text == "input";
      advance();
      while (tok_.text != ";") {
        if (at_end()) {
          error("unexpected end of file in port declaration");
          throw ParseBail{};
        }
        if (tok_.text != ",") {
          if (!is_identifier(tok_.text)) {
            error("expected port name");
            throw ParseBail{};
          }
          declare_port(design, tok_.text, is_input);
        }
        advance();
      }
      expect(";");
    } else if (tok_.text == "wire") {
      advance();
      while (tok_.text != ";") {
        if (at_end()) {
          error("unexpected end of file in wire declaration");
          throw ParseBail{};
        }
        if (tok_.text != ",") {
          if (!is_identifier(tok_.text)) {
            error("expected wire name");
            throw ParseBail{};
          }
          if (nets_.count(tok_.text)) {
            TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), tok_.text,
                    "duplicate wire declaration");
          } else {
            nets_[tok_.text] = design.add_net(tok_.text);
          }
        }
        advance();
      }
      expect(";");
    } else if (tok_.text == "assign") {
      parse_assign(design);
    } else if (tok_.text == "module") {
      error("duplicate 'module' declaration");
      throw ParseBail{};
    } else if (is_identifier(tok_.text)) {
      parse_instance(design);
    } else {
      error("unexpected token");
      throw ParseBail{};
    }
  }

  void parse_assign(Design& design) {
    advance();  // 'assign'
    const std::string lhs = tok_.text;
    advance();
    expect("=");
    const std::string rhs = tok_.text;
    advance();
    expect(";");
    if (auto it = input_ports_.find(rhs); it != input_ports_.end()) {
      auto net = nets_.find(lhs);
      if (net == nets_.end()) {
        TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), lhs,
                "assign to unknown wire");
        return;
      }
      connect(design, net->second, it->second);
    } else if (auto ot = output_ports_.find(lhs); ot != output_ports_.end()) {
      auto net = nets_.find(rhs);
      if (net == nets_.end()) {
        TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), rhs,
                "assign from unknown wire");
        return;
      }
      connect(design, net->second, ot->second);
    } else {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), lhs,
              "unsupported assign (neither side is a declared port)");
    }
  }

  void parse_instance(Design& design) {
    const std::string cell_name = tok_.text;
    const int cell_id = library_->find_cell(cell_name);
    if (cell_id < 0) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), cell_name,
              "unknown cell");
      throw ParseBail{};
    }
    advance();
    if (!is_identifier(tok_.text)) {
      error("expected instance name");
      throw ParseBail{};
    }
    const std::string inst_name = tok_.text;
    advance();
    const InstId inst = design.add_instance(inst_name, cell_id);
    const CellType& cell = library_->cell(cell_id);
    expect("(");
    while (tok_.text != ")") {
      if (at_end()) {
        error("unexpected end of file in instance connection list");
        throw ParseBail{};
      }
      if (tok_.text == ",") {
        advance();
        continue;
      }
      if (tok_.text.size() <= 1 || tok_.text[0] != '.') {
        error("expected .PIN(net) connection");
        throw ParseBail{};
      }
      const std::string pin_name = tok_.text.substr(1);
      advance();
      expect("(");
      const std::string net_name = tok_.text;
      advance();
      expect(")");
      const int cell_pin = cell.find_pin(pin_name);
      if (cell_pin < 0) {
        TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), inst_name,
                "cell '" << cell_name << "' has no pin '" << pin_name << "'");
        continue;
      }
      auto net = nets_.find(net_name);
      if (net == nets_.end()) {
        TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), inst_name,
                "connection to unknown net '" << net_name << "'");
        continue;
      }
      connect(design, net->second,
              design.instance(inst).pins[static_cast<std::size_t>(cell_pin)]);
    }
    expect(")");
    expect(";");
  }

  // ---- helpers -------------------------------------------------------
  void declare_port(Design& design, const std::string& name, bool is_input) {
    auto& table = is_input ? input_ports_ : output_ports_;
    if (input_ports_.count(name) || output_ports_.count(name)) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), name,
              "duplicate port declaration");
      return;
    }
    table[name] = is_input ? design.add_primary_input(name)
                           : design.add_primary_output(name);
  }

  /// Design::connect throws CheckError on structural violations (duplicate
  /// driver, doubly connected pin); convert those into diagnostics so one
  /// bad net doesn't kill the parse.
  void connect(Design& design, NetId net, PinId pin) {
    try {
      design.connect(net, pin);
    } catch (const CheckError& e) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), "",
              "invalid connection: " << e.what());
    }
  }

  [[nodiscard]] bool at_end() const { return tok_.text.empty(); }
  [[nodiscard]] SrcLoc loc() const { return SrcLoc{path_, tok_.line}; }
  void advance() { tok_ = lex_.next(); }

  static bool is_identifier(const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        return false;
      }
    }
    return true;
  }

  void error(const std::string& msg) {
    TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), "",
            msg << (at_end() ? std::string(" (at end of file)")
                             : ", got '" + tok_.text + "'"));
  }

  void expect(const char* what) {
    if (tok_.text != what) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), "",
              "expected '" << what << "', got '"
                           << (at_end() ? "<eof>" : tok_.text) << "'");
      throw ParseBail{};
    }
    advance();
  }

  double take_double(const char* what) {
    char* end = nullptr;
    const double v = std::strtod(tok_.text.c_str(), &end);
    if (tok_.text.empty() || end != tok_.text.c_str() + tok_.text.size()) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), tok_.text,
              "expected a number for " << what);
      advance();
      return 0.0;
    }
    advance();
    return v;
  }

  /// Recovery: consume tokens until just past the next ';', or stop at
  /// 'endmodule' / EOF.
  void sync_statement() {
    while (!at_end() && tok_.text != ";" && tok_.text != "endmodule") {
      advance();
    }
    if (tok_.text == ";") advance();
  }

  VLexer lex_;
  const Library* library_;
  DiagSink& sink_;
  std::string path_;
  VLexer::Token tok_;
  std::map<std::string, PinId> input_ports_, output_ports_;
  std::map<std::string, NetId> nets_;
};

}  // namespace

Design read_verilog(std::istream& in, const Library* library, DiagSink& sink,
                    const std::string& path) {
  TG_CHECK(library != nullptr);
  VParser parser(in, library, sink, path);
  return parser.parse();
}

Design read_verilog_file(const std::string& path, const Library* library,
                         DiagSink& sink) {
  std::ifstream in(path);
  if (!in.is_open()) {
    sink.error(Stage::kParse, "cannot read file", SrcLoc{path, 0});
    return Design("<invalid>", library);
  }
  return read_verilog(in, library, sink, path);
}

Design read_verilog(std::istream& in, const Library* library) {
  DiagSink sink;
  Design design = read_verilog(in, library, sink, "<verilog>");
  sink.throw_if_errors("read_verilog");
  return design;
}

Design read_verilog_file(const std::string& path, const Library* library) {
  DiagSink sink;
  Design design = read_verilog_file(path, library, sink);
  sink.throw_if_errors("read_verilog " + path);
  return design;
}

void write_placement(const Design& design, std::ostream& out) {
  const BBox& die = design.die();
  // 9 decimals: placements round-trip exactly enough that downstream
  // timing is bit-stable (see ExportRoundTrip test).
  out << "die " << format_fixed(die.xmin, 9) << ' ' << format_fixed(die.ymin, 9)
      << ' ' << format_fixed(die.xmax, 9) << ' ' << format_fixed(die.ymax, 9)
      << "\n";
  for (const Instance& inst : design.instances()) {
    out << "inst " << inst.name << ' ' << format_fixed(inst.pos.x, 9) << ' '
        << format_fixed(inst.pos.y, 9) << "\n";
  }
  for (PinId p = 0; p < design.num_pins(); ++p) {
    const Pin& pin = design.pin(p);
    if (pin.is_port) {
      out << "port " << pin.port_name << ' ' << format_fixed(pin.pos.x, 9)
          << ' ' << format_fixed(pin.pos.y, 9) << "\n";
    }
  }
  // Explicit instance-pin positions (they carry per-pin offsets within the
  // cell footprint; written last so they override the instance move).
  for (PinId p = 0; p < design.num_pins(); ++p) {
    const Pin& pin = design.pin(p);
    if (!pin.is_port) {
      out << "pin " << design.pin_name(p) << ' ' << format_fixed(pin.pos.x, 9)
          << ' ' << format_fixed(pin.pos.y, 9) << "\n";
    }
  }
}

void write_placement_file(const Design& design, const std::string& path) {
  std::ofstream out(path);
  TG_CHECK_MSG(out.is_open(), "cannot write " << path);
  write_placement(design, out);
}

namespace {

/// One "<kind> <name> <x> <y>" placement record; reports and returns false
/// on malformed fields (missing columns, non-numeric or non-finite
/// coordinates).
bool parse_record(std::istringstream& ls, const std::string& kind,
                  const std::string& file, int lineno, DiagSink& sink,
                  std::string& name, double& x, double& y) {
  ls >> name >> x >> y;
  if (!ls) {
    TG_DIAG(sink, Severity::kError, Stage::kParse, (SrcLoc{file, lineno}),
            name, "bad " << kind << " record (expected '" << kind
                         << " <name> <x> <y>')");
    return false;
  }
  if (!(std::isfinite(x) && std::isfinite(y))) {
    TG_DIAG(sink, Severity::kError, Stage::kParse, (SrcLoc{file, lineno}),
            name, kind << " position (" << x << ", " << y
                       << ") is not finite");
    return false;
  }
  return true;
}

}  // namespace

void read_placement(Design& design, std::istream& in, DiagSink& sink,
                    const std::string& path) {
  std::map<std::string, InstId> by_name;
  for (InstId i = 0; i < design.num_instances(); ++i) {
    by_name[design.instance(i).name] = i;
  }
  std::map<std::string, PinId> ports;
  std::map<std::string, PinId> inst_pins;
  for (PinId p = 0; p < design.num_pins(); ++p) {
    if (design.pin(p).is_port) {
      ports[design.pin(p).port_name] = p;
    } else {
      inst_pins[design.pin_name(p)] = p;
    }
  }

  // Duplicate-record detection: the writer emits each record once; a
  // repeated inst/port/pin (or a second die) is diagnosed and the duplicate
  // ignored, so the first record wins deterministically.
  std::set<std::string> seen_inst, seen_port, seen_pin;

  std::string line;
  int lineno = 0;
  bool saw_die = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    std::istringstream ls{line};
    std::string kind;
    ls >> kind;
    const SrcLoc here{path, lineno};
    if (kind == "die") {
      if (saw_die) {
        sink.error(Stage::kParse, "duplicate die record (first record wins)",
                   here);
        continue;
      }
      double x0, y0, x1, y1;
      ls >> x0 >> y0 >> x1 >> y1;
      if (!ls || !(std::isfinite(x0) && std::isfinite(y0) &&
                   std::isfinite(x1) && std::isfinite(y1)) ||
          x0 > x1 || y0 > y1) {
        sink.error(Stage::kParse, "bad die box", here);
        continue;
      }
      BBox die;
      die.expand(Point{x0, y0});
      die.expand(Point{x1, y1});
      design.set_die(die);
      saw_die = true;
    } else if (kind == "inst") {
      std::string name;
      double x, y;
      if (!parse_record(ls, kind, path, lineno, sink, name, x, y)) continue;
      auto it = by_name.find(name);
      if (it == by_name.end()) {
        sink.error(Stage::kParse, "unknown instance", here, name);
        continue;
      }
      if (!seen_inst.insert(name).second) {
        sink.error(Stage::kParse,
                   "duplicate inst record (first record wins)", here, name);
        continue;
      }
      Instance& inst = design.instance(it->second);
      const double dx = x - inst.pos.x;
      const double dy = y - inst.pos.y;
      inst.pos = Point{x, y};
      for (PinId p : inst.pins) {
        design.pin(p).pos.x += dx;
        design.pin(p).pos.y += dy;
      }
    } else if (kind == "port") {
      std::string name;
      double x, y;
      if (!parse_record(ls, kind, path, lineno, sink, name, x, y)) continue;
      auto it = ports.find(name);
      if (it == ports.end()) {
        sink.error(Stage::kParse, "unknown port", here, name);
        continue;
      }
      if (!seen_port.insert(name).second) {
        sink.error(Stage::kParse,
                   "duplicate port record (first record wins)", here, name);
        continue;
      }
      design.pin(it->second).pos = Point{x, y};
    } else if (kind == "pin") {
      std::string name;
      double x, y;
      if (!parse_record(ls, kind, path, lineno, sink, name, x, y)) continue;
      auto it = inst_pins.find(name);
      if (it == inst_pins.end()) {
        sink.error(Stage::kParse, "unknown pin", here, name);
        continue;
      }
      if (!seen_pin.insert(name).second) {
        sink.error(Stage::kParse, "duplicate pin record (first record wins)",
                   here, name);
        continue;
      }
      design.pin(it->second).pos = Point{x, y};
    } else {
      sink.error(Stage::kParse, "unknown record kind", here, kind);
    }
  }
  if (!saw_die) {
    sink.error(Stage::kParse, "placement file lacks a die record",
               SrcLoc{path, lineno});
  }
}

void read_placement_file(Design& design, const std::string& path,
                         DiagSink& sink) {
  std::ifstream in(path);
  if (!in.is_open()) {
    sink.error(Stage::kParse, "cannot read file", SrcLoc{path, 0});
    return;
  }
  read_placement(design, in, sink, path);
}

void read_placement(Design& design, std::istream& in) {
  DiagSink sink;
  read_placement(design, in, sink, "<placement>");
  sink.throw_if_errors("read_placement");
}

void read_placement_file(Design& design, const std::string& path) {
  DiagSink sink;
  read_placement_file(design, path, sink);
  sink.throw_if_errors("read_placement " + path);
}

}  // namespace tg
