/// Quarantine contract for suite builds: a benchmark corrupted mid-pipeline
/// is recorded with its full diagnostic report and skipped, the surviving
/// benchmarks build normally with consistent split ids, and only an
/// all-benchmarks failure is fatal.

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "liberty/library_builder.hpp"
#include "util/diag.hpp"

namespace tg::data {
namespace {

DatasetOptions corrupting_options() {
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  // Corrupt exactly one benchmark right after generation: point a pin at a
  // nonsense net id, which the post-generate design gate must catch.
  options.post_generate = [](Design& d) {
    if (d.name() == "usb") d.pin(0).net = 1 << 20;
  };
  return options;
}

TEST(Quarantine, CorruptedBenchmarkIsQuarantinedNotFatal) {
  set_validate_level(ValidateLevel::kFast);
  const Library lib = build_library();
  const SuiteDataset ds = build_suite_dataset(lib, corrupting_options(),
                                              {"spm", "usb", "zipdiv"});

  // Exactly the corrupted benchmark is quarantined, with its diagnostics.
  ASSERT_EQ(ds.quarantined.size(), 1u);
  EXPECT_EQ(ds.quarantined[0].name, "usb");
  EXPECT_NE(ds.quarantined[0].report.find("post-generate design check"),
            std::string::npos);
  EXPECT_NE(ds.quarantined[0].report.find("net"), std::string::npos);

  // The survivors built, and the split ids index the compacted vector.
  ASSERT_EQ(ds.graphs.size(), 2u);
  EXPECT_EQ(ds.train_ids.size(), 1u);  // zipdiv (usb was the other train)
  EXPECT_EQ(ds.test_ids.size(), 1u);   // spm
  for (int id : ds.train_ids) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, static_cast<int>(ds.graphs.size()));
  }
  EXPECT_EQ(ds.graphs[static_cast<std::size_t>(ds.test_ids[0])].name, "spm");
}

TEST(Quarantine, AllBenchmarksQuarantinedIsFatal) {
  set_validate_level(ValidateLevel::kFast);
  const Library lib = build_library();
  EXPECT_THROW(
      { (void)build_suite_dataset(lib, corrupting_options(), {"usb"}); },
      CheckError);
}

TEST(Quarantine, ValidationOffSkipsTheGates) {
  // With TG_VALIDATE=off the gates are no-ops: a clean suite builds with
  // zero quarantines and no validation overhead.
  set_validate_level(ValidateLevel::kOff);
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const SuiteDataset ds = build_suite_dataset(lib, options, {"spm"});
  EXPECT_TRUE(ds.quarantined.empty());
  EXPECT_EQ(ds.graphs.size(), 1u);
  set_validate_level(ValidateLevel::kFast);
}

TEST(Quarantine, FullValidationPassesOnHealthySuite) {
  // The full-level gates must not false-positive on a healthy pipeline.
  set_validate_level(ValidateLevel::kFull);
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const SuiteDataset ds = build_suite_dataset(lib, options, {"zipdiv"});
  EXPECT_TRUE(ds.quarantined.empty());
  ASSERT_EQ(ds.graphs.size(), 1u);
  set_validate_level(ValidateLevel::kFast);
}

}  // namespace
}  // namespace tg::data
