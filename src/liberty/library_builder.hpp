#pragma once
/// \file library_builder.hpp
/// Synthetic standard-cell library generator — the repository's stand-in
/// for the SkyWater130 PDK (see DESIGN.md §1). Cells are characterized
/// from a logical-effort-style analytic gate model with controlled
/// per-cell noise and a genuine 2-D slew×load nonlinearity, so the NLDM
/// LUTs are non-trivial for the GNN's LUT-interpolation module to learn.

#include "liberty/library.hpp"
#include "util/rng.hpp"

namespace tg {

struct LibraryConfig {
  std::uint64_t seed = 130;  ///< "sky130" homage; any seed works.

  // Electrical base constants (ns, pF, kΩ; ns = kΩ·pF).
  double tau_ns = 0.015;         ///< technology time constant
  double base_cap_pf = 0.002;    ///< ×1 inverter input capacitance
  double slew_coeff = 0.22;      ///< delay sensitivity to input slew
  double slew_gain = 2.2;        ///< output slew ≈ gain · R_drive · load
  double early_derate = 0.86;    ///< early corner = derate × late
  double rise_fall_asym = 0.08;  ///< typical rise/fall asymmetry
  double noise = 0.03;           ///< per-LUT-cell multiplicative jitter
  double cross_term = 0.35;      ///< strength of the slew×load nonlinearity

  // LUT axes (log-spaced between min and max).
  double slew_axis_min = 0.008, slew_axis_max = 0.60;  // ns
  double load_axis_min = 0.001, load_axis_max = 0.25;  // pF

  // Sequential constraints (ns).
  double dff_setup = 0.055;
  double dff_hold = 0.012;
  double dff_clk_to_q = 0.090;

  /// Drive strengths generated per family.
  std::vector<int> drives = {1, 2, 4};
};

/// Builds the full synthetic library: INV, BUF, NAND2/3, NOR2/3, AND2, OR2,
/// XOR2, XNOR2, MUX2, AOI21, OAI21 and DFF, each at every configured drive
/// strength. Deterministic in the seed.
[[nodiscard]] Library build_library(const LibraryConfig& config = {});

}  // namespace tg
