/// \file doctor_main.cpp
/// `tg_doctor` — standalone input checker (DESIGN.md §8). Runs the
/// recovering readers plus the invariant checkers over user-supplied
/// files and prints every diagnostic with file:line context, instead of
/// stopping at the first problem:
///
///   tg_doctor --lib=cells.lib
///   tg_doctor --verilog=top.v [--lib=cells.lib] [--placement=top.pl]
///   tg_doctor --demo
///
/// Without --lib, netlists are resolved against the built-in synthetic
/// library. --validate=off|fast|full selects the checker depth (default
/// full: a doctor should run every test it has); --max-diags=N bounds the
/// per-file report. --demo feeds the doctor intentionally broken inputs
/// to show what a report looks like.
///
/// Exit status: 0 if every checked file is clean, 1 if any diagnostics
/// carried errors, 2 on usage errors.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "liberty/liberty_io.hpp"
#include "liberty/library_builder.hpp"
#include "liberty/validate.hpp"
#include "netlist/validate.hpp"
#include "netlist/verilog_io.hpp"
#include "sta/timing_graph.hpp"
#include "sta/validate.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

void usage(const char* program) {
  std::printf(
      "usage: %s [--lib=FILE] [--verilog=FILE] [--placement=FILE]\n"
      "          [--validate=off|fast|full] [--max-diags=N] [--demo]\n"
      "\n"
      "Checks EDA input files with the recovering parsers and invariant\n"
      "checkers; reports every problem with file:line context.\n"
      "  --lib=FILE        Liberty-style library to check (and to resolve\n"
      "                    --verilog cells against; default: built-in)\n"
      "  --verilog=FILE    structural netlist to check\n"
      "  --placement=FILE  placement to apply to the netlist (needs "
      "--verilog)\n"
      "  --validate=LEVEL  checker depth, off|fast|full (default full)\n"
      "  --max-diags=N     keep at most N diagnostics per file (default "
      "256)\n"
      "  --demo            run on built-in broken inputs to show a report\n",
      program);
}

/// Prints one file's report and folds its error count into the exit code.
bool finish(const std::string& what, const tg::DiagSink& sink) {
  if (sink.empty()) {
    std::printf("%s: clean\n", what.c_str());
    return true;
  }
  std::printf("%s:\n", what.c_str());
  sink.print(std::cout);
  return sink.ok();
}

int run_demo(std::size_t max_diags) {
  using namespace tg;
  std::printf("demo: checking intentionally broken inputs\n\n");

  const char* kBrokenLib =
      "library (demo) {\n"
      "  cell (INVX1) {\n"
      "    kind: combinational;\n"
      "    area: 1.0;\n"
      "    setup_sideways: 0.1;\n"
      "  }\n"
      "}\n";
  DiagSink lib_sink(max_diags);
  std::istringstream lib_in(kBrokenLib);
  const Library lib = read_liberty(lib_in, lib_sink, "demo.lib");
  validate_library(lib, lib_sink, ValidateLevel::kFull);
  finish("demo.lib", lib_sink);

  const Library good = build_library();
  const char* kBrokenVerilog =
      "module demo (a, y);\n"
      "  input a;\n"
      "  output y;\n"
      "  wire w;\n"
      "  wire w;\n"
      "  NAND9 u1 (.A(a), .Y(w));\n"
      "endmodule\n";
  DiagSink v_sink(max_diags);
  std::istringstream v_in(kBrokenVerilog);
  const Design design = read_verilog(v_in, &good, v_sink, "demo.v");
  validate_design(design, v_sink, ValidateLevel::kFull);
  finish("demo.v", v_sink);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  try {
    opts.require_known(
        {"lib", "verilog", "placement", "validate", "max-diags", "demo",
         "help"});
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  set_log_level(LogLevel::kWarn);
  if (opts.get_bool("help", false)) {
    usage(argv[0]);
    return 0;
  }

  ValidateLevel level = ValidateLevel::kFull;
  if (opts.has("validate")) {
    try {
      level = parse_validate_level(opts.get("validate", "full"));
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  set_validate_level(level);
  const auto max_diags =
      static_cast<std::size_t>(opts.get_int("max-diags", 256));

  if (opts.get_bool("demo", false)) return run_demo(max_diags);

  const std::string lib_path = opts.get("lib", "");
  const std::string verilog_path = opts.get("verilog", "");
  const std::string placement_path = opts.get("placement", "");
  if (lib_path.empty() && verilog_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (!placement_path.empty() && verilog_path.empty()) {
    std::fprintf(stderr, "--placement requires --verilog\n");
    return 2;
  }

  bool all_clean = true;

  Library library;
  if (!lib_path.empty()) {
    DiagSink sink(max_diags);
    library = read_liberty_file(lib_path, sink);
    if (sink.ok()) validate_library(library, sink, level);
    all_clean = finish(lib_path, sink) && all_clean;
  } else {
    library = build_library();
  }

  if (!verilog_path.empty()) {
    DiagSink sink(max_diags);
    Design design = read_verilog_file(verilog_path, &library, sink);
    if (sink.ok()) validate_design(design, sink, level);

    if (!placement_path.empty()) {
      DiagSink psink(max_diags);
      read_placement_file(design, placement_path, psink);
      if (psink.ok()) validate_placement(design, psink);
      all_clean = finish(placement_path, psink) && all_clean;
    }

    // A clean netlist should also level into a legal timing graph; a
    // failure here is a checker finding, not a crash.
    if (sink.ok()) {
      try {
        const TimingGraph graph(design);
        validate_timing_graph(graph, sink, level);
      } catch (const CheckError& e) {
        sink.error(Stage::kSta, std::string("cannot build timing graph: ") +
                                    e.what());
      }
    }
    all_clean = finish(verilog_path, sink) && all_clean;
  }

  return all_clean ? 0 : 1;
}
