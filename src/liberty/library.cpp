#include "liberty/library.hpp"

#include "util/check.hpp"

namespace tg {

int Library::add_cell(CellType cell) {
  TG_CHECK_MSG(by_name_.count(cell.name) == 0,
               "duplicate cell name: " << cell.name);
  const int id = static_cast<int>(cells_.size());
  by_name_.emplace(cell.name, id);
  cells_.push_back(std::move(cell));
  return id;
}

const CellType& Library::cell(int id) const {
  TG_CHECK(id >= 0 && id < num_cells());
  return cells_[static_cast<std::size_t>(id)];
}

int Library::find_cell(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? -1 : it->second;
}

std::vector<int> Library::cells_of_function(std::string_view function) const {
  std::vector<int> out;
  for (int i = 0; i < num_cells(); ++i) {
    if (cells_[static_cast<std::size_t>(i)].function == function) out.push_back(i);
  }
  return out;
}

}  // namespace tg
