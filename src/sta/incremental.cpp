#include "sta/incremental.hpp"

#include <algorithm>
#include <atomic>
#include <queue>

#include "sta/shard.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"
#include "util/task_graph.hpp"

namespace tg {

namespace {
constexpr double kEps = 1e-12;

/// Min-heap entry ordered by topological level so updates run in
/// dependency order.
struct LevelEntry {
  int level;
  PinId pin;
  friend bool operator>(const LevelEntry& a, const LevelEntry& b) {
    return a.level > b.level;
  }
};
}  // namespace

IncrementalTimer::IncrementalTimer(const TimingGraph& graph,
                                   DesignRouting* routing,
                                   const StaOptions& options)
    : graph_(&graph), routing_(routing), options_(options) {
  TG_CHECK(routing != nullptr);
  run_full();
}

void IncrementalTimer::run_full() {
  result_ = run_sta(*graph_, *routing_, options_);
  dirty_nets_.clear();
  visited_ = graph_->num_nodes();
  cone_nodes_ = graph_->num_nodes();
}

void IncrementalTimer::invalidate_net(NetId net) {
  TG_CHECK(net >= 0 && net < graph_->design().num_nets());
  TG_CHECK_MSG(!graph_->design().net(net).is_clock,
               "clock nets are ideal and carry no parasitics");
  dirty_nets_.insert(net);
}

bool IncrementalTimer::recompute_pin(PinId pin) {
  const double change = sta_detail::propagate_pin(*graph_, *routing_, options_,
                                                  result_, pin);
  return change > kEps;
}

int IncrementalTimer::update() {
  if (dirty_nets_.empty()) {
    visited_ = 0;
    cone_nodes_ = 0;
    return 0;
  }
  TG_TRACE_SCOPE("sta/incremental", obs::kSpanCoarse);
  TG_METRIC_COUNT("sta/incremental_updates", 1);

  // Seeds: a net's parasitics affect its sinks (wire delay/slew) AND its
  // driver (the load seen by the driving cell arcs).
  std::vector<PinId> seeds;
  for (NetId net : dirty_nets_) {
    const Net& n = graph_->design().net(net);
    seeds.push_back(n.driver);
    for (PinId s : n.sinks) seeds.push_back(s);
  }
  dirty_nets_.clear();
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  int changed_pins = 0;
  if (sta_engine() == StaEngine::kShard) {
    // Sharded dirty cone: shards ascending, each re-propagating only its
    // local cone — the update is clipped to the shards the seeds (or a
    // changed ghost export) actually touch. Shard fault/recovery semantics
    // apply per shard, exactly as in the full sweep.
    TG_TRACE_SCOPE("sta/incremental/shard-dispatch", obs::kSpanDetail);
    const ShardConeStats cone =
        update_cone_sharded(*graph_, *routing_, options_, result_, seeds);
    changed_pins = cone.changed_pins;
    visited_ = cone.evaluated;
    cone_nodes_ = cone.cone_nodes;
    TG_METRIC_COUNT("sta/incremental_shards_touched", cone.shards_touched);
  } else if (sta_engine() == StaEngine::kAsync) {
    // Dirty-cone worklist: the engine BFS-discovers the fanout cone of
    // the seed frontier, then drains it dependency-counted — no levels, no
    // priority queue. Pruning matches the serial walk: a non-seed pin is
    // only re-evaluated when an in-cone predecessor actually changed.
    TG_TRACE_SCOPE("sta/incremental/async", obs::kSpanDetail);
    std::atomic<int> changed{0};
    const ConeStats cone =
        run_task_dag_cone(graph_->forward_dag(), seeds, [&](int p) {
          const bool moved = recompute_pin(p);
          if (moved) changed.fetch_add(1, std::memory_order_relaxed);
          return moved;
        });
    changed_pins = changed.load(std::memory_order_relaxed);
    visited_ = cone.evaluated;
    cone_nodes_ = cone.cone_nodes;
    record_task_dag_metrics(cone.run);
  } else {
    std::priority_queue<LevelEntry, std::vector<LevelEntry>,
                        std::greater<LevelEntry>>
        queue;
    std::vector<char> queued(static_cast<std::size_t>(graph_->num_nodes()), 0);
    auto enqueue = [&](PinId p) {
      if (!queued[static_cast<std::size_t>(p)]) {
        queued[static_cast<std::size_t>(p)] = 1;
        queue.push(LevelEntry{graph_->level(p), p});
      }
    };
    for (PinId p : seeds) enqueue(p);

    visited_ = 0;
    const CancelToken cancel = current_cancel_token();
    while (!queue.empty()) {
      // Poll every 128 pops: the clock read stays off the per-pin path but
      // a cancelled update still stops within ~one task batch.
      if ((visited_ & 127) == 0) cancel.throw_if_cancelled();
      const PinId p = queue.top().pin;
      queue.pop();
      ++visited_;
      const bool changed = recompute_pin(p);
      if (!changed) continue;
      ++changed_pins;
      for (int a : graph_->out_net_arcs(p)) {
        enqueue(graph_->net_arcs()[static_cast<std::size_t>(a)].to);
      }
      for (int a : graph_->out_cell_arcs(p)) {
        enqueue(graph_->cell_arcs()[static_cast<std::size_t>(a)].to);
      }
    }
    cone_nodes_ = visited_;
  }

  TG_METRIC_COUNT("sta/incremental_pins_visited", visited_);
  TG_METRIC_COUNT("sta/incremental_pins_changed", changed_pins);
  if (changed_pins > 0) {
    sta_detail::compute_required(*graph_, options_, result_);
  }
  return changed_pins;
}

}  // namespace tg
