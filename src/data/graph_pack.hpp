#pragma once
/// \file graph_pack.hpp
/// Disjoint-union packing of K extracted hetero-graphs into one
/// super-graph (DESIGN.md §12). The serving plane's cross-design
/// micro-batcher packs the pristine templates of a mixed-tenant batch so
/// a *single* GNN forward answers every member, then scatters the packed
/// outputs back per graph.
///
/// Packing is a pure concatenation: part k's nodes become the id range
/// [node_base[k], node_base[k+1]), its net/cell edges likewise, and each
/// node keeps its own topological level. Because every op in the forward
/// (row-local MLPs, gather, per-destination segment reductions) touches
/// only rows/segments of one part, and the merged LevelCsr keeps part
/// order inside each level block, the packed forward is bit-identical to
/// running the K forwards sequentially — the packed graph is not an
/// approximation, just a bigger batch.
///
/// Level alignment: part k's level-l nodes land in the *packed* level l
/// (levels are not stacked end-to-end). The packed level count is the max
/// over parts, so shallow parts simply stop contributing past their own
/// depth; each level's kernel row count is the sum over parts active at
/// that level, which is where the kernel-launch fusion win comes from.

#include <vector>

#include "data/hetero_graph.hpp"
#include "util/diag.hpp"

namespace tg::data {

/// One packed super-graph plus the offset tables needed to scatter packed
/// results back to the original parts. Immutable after pack_graphs.
struct GraphPack {
  /// The disjoint union, shaped exactly like a normal extracted graph —
  /// every DatasetGraph consumer (validate, build_prop_plan, forward)
  /// works on it unchanged. `g.level_csr` is pre-attached by the packer
  /// (merged from per-part blocks, equal to a from-scratch rebuild).
  DatasetGraph g;
  int num_graphs = 0;

  // ---- scatter-back tables ([K+1] exclusive prefix sums) ----------------
  std::vector<int> node_base;      ///< part k's nodes = [base[k], base[k+1])
  std::vector<int> net_base;       ///< part k's net edges
  std::vector<int> cell_base;      ///< part k's cell edges
  std::vector<int> endpoint_base;  ///< part k's slice of g.endpoints

  /// [N] packed node id → part index (the per-node graph-id map).
  std::vector<int> graph_of_node;
};

/// Packs `parts` (borrowed; must outlive the call only) into one
/// super-graph. Deterministic: output depends only on the part order and
/// contents. Parts may repeat and may have wildly different sizes/depths;
/// K = 0 yields a well-formed empty pack. Feature/label tensors are
/// copied into fresh leaf tensors (no autograd tape), so the pack shares
/// no storage with its parts and is safe to cache across requests.
[[nodiscard]] GraphPack pack_graphs(const std::vector<const DatasetGraph*>& parts);

/// Validates the pack's offset tables (monotone, totals match, graph_of_node
/// consistent, per-part level alignment) and then runs the standard
/// DatasetGraph validation on the packed graph. No-op at kOff.
void validate_graph_pack(const GraphPack& pack, DiagSink& sink,
                         ValidateLevel level = validate_level());

}  // namespace tg::data
