#include "nn/ops.hpp"

#include <cmath>
#include <cstring>

#include "nn/kernels.hpp"
#include "util/check.hpp"
#include "util/obs/trace.hpp"
#include "util/parallel.hpp"

namespace tg::nn {

namespace {

/// Grain sizes for the parallel kernels. Chunks always own disjoint output
/// rows/columns/elements and keep the serial per-element accumulation
/// order, so thread count never changes results; the grains only keep
/// small tensors on the serial fallback (`parallel_for` runs inline when
/// the range is within one grain).
constexpr std::int64_t kPointwiseGrain = 1 << 15;  ///< elements per chunk
constexpr std::int64_t kRowFlops = 1 << 14;  ///< target flops per row chunk

/// Rows per chunk so one chunk carries ~kRowFlops work.
constexpr std::int64_t row_grain(std::int64_t flops_per_row) {
  return flops_per_row <= 0 ? kRowFlops
                            : (kRowFlops + flops_per_row - 1) / flops_per_row;
}

/// Output tensor with *undefined* contents — for ops that overwrite every
/// element (pointwise, matmul, gather, concat). The arena-backed Buffer
/// skips the zero fill entirely, which is most of what made per-op
/// allocation expensive.
TensorImplPtr make_result(std::int64_t rows, std::int64_t cols,
                          std::initializer_list<const Tensor*> inputs) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.resize_discard(static_cast<std::size_t>(rows * cols));
  for (const Tensor* t : inputs) {
    if (t->requires_grad()) impl->requires_grad = true;
  }
  if (impl->requires_grad) {
    for (const Tensor* t : inputs) impl->parents.push_back(t->ptr());
  }
  return impl;
}

/// Zero-filled output — for scatter-accumulate ops (segment_sum, spmm,
/// segment_max's empty segments) whose loops add into the buffer.
TensorImplPtr make_result_zero(std::int64_t rows, std::int64_t cols,
                               std::initializer_list<const Tensor*> inputs) {
  auto impl = make_result(rows, cols, inputs);
  std::memset(impl->data.data(), 0, impl->data.size() * sizeof(float));
  return impl;
}

/// Adds src into dst (same length), allocating dst's grad buffer first.
void accumulate(TensorImpl& parent, std::span<const float> grad_piece,
                std::size_t offset = 0) {
  parent.ensure_grad();
  kern::add_acc(parent.grad.data() + offset, grad_piece.data(),
                grad_piece.size());
}

IndexVec share_index(std::vector<int> idx) {
  return std::make_shared<const std::vector<int>>(std::move(idx));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  const bool broadcast = (b.rows() == 1 && a.cols() == b.cols() && a.rows() != 1);
  TG_CHECK_MSG(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()),
               "add: shape mismatch " << a.rows() << "x" << a.cols() << " vs "
                                      << b.rows() << "x" << b.cols());
  auto impl = make_result(a.rows(), a.cols(), {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* out = impl->data.data();
  const std::int64_t cols = a.cols();
  if (broadcast) {
    // Row blocks: each output row adds the same [1, D] bias vector.
    parallel_for(0, a.rows(), row_grain(cols),
                 [&](std::int64_t rb, std::int64_t re) {
                   for (std::int64_t r = rb; r < re; ++r) {
                     kern::add(out + r * cols, ad + r * cols, bd,
                               static_cast<std::size_t>(cols));
                   }
                 });
  } else {
    parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
                 kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                   kern::add(out + lo, ad + lo, bd + lo,
                             static_cast<std::size_t>(hi - lo));
                 });
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->op = "add";
    impl->backward_fn = [pa, pb, broadcast, cols](TensorImpl& self) {
      if (pa->requires_grad) {
        pa->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       kern::add_acc(pa->grad.data() + lo,
                                     self.grad.data() + lo,
                                     static_cast<std::size_t>(hi - lo));
                     });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        if (broadcast) {
          // Column-sliced so concurrent chunks own disjoint grad slots and
          // each slot keeps the serial (row-ascending) accumulation order.
          const std::int64_t rows =
              static_cast<std::int64_t>(self.grad.size()) / cols;
          parallel_for(0, cols, row_grain(2 * rows),
                       [&](std::int64_t cb, std::int64_t ce) {
                         for (std::int64_t r = 0; r < rows; ++r) {
                           kern::add_acc(pb->grad.data() + cb,
                                         self.grad.data() + r * cols + cb,
                                         static_cast<std::size_t>(ce - cb));
                         }
                       });
        } else {
          parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                       kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                         kern::add_acc(pb->grad.data() + lo,
                                       self.grad.data() + lo,
                                       static_cast<std::size_t>(hi - lo));
                       });
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor sub(const Tensor& a, const Tensor& b) { return add(a, scale(b, -1.0f)); }

Tensor mul(const Tensor& a, const Tensor& b) {
  TG_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto impl = make_result(a.rows(), a.cols(), {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* out = impl->data.data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 kern::mul(out + lo, ad + lo, bd + lo,
                           static_cast<std::size_t>(hi - lo));
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->op = "mul";
    impl->backward_fn = [pa, pb](TensorImpl& self) {
      if (pa->requires_grad) {
        pa->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       kern::mul_acc(pa->grad.data() + lo,
                                     self.grad.data() + lo,
                                     pb->data.data() + lo,
                                     static_cast<std::size_t>(hi - lo));
                     });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       kern::mul_acc(pb->grad.data() + lo,
                                     self.grad.data() + lo,
                                     pa->data.data() + lo,
                                     static_cast<std::size_t>(hi - lo));
                     });
      }
    };
  }
  return Tensor(impl);
}

Tensor scale(const Tensor& a, float s) {
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const float* ad = a.data().data();
  float* out = impl->data.data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 kern::scale(out + lo, ad + lo, s,
                             static_cast<std::size_t>(hi - lo));
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "scale";
    impl->backward_fn = [pa, s](TensorImpl& self) {
      pa->ensure_grad();
      parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                   kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                     kern::axpy(pa->grad.data() + lo, s,
                                self.grad.data() + lo,
                                static_cast<std::size_t>(hi - lo));
                   });
    };
  }
  return Tensor(impl);
}

namespace {

template <typename Fwd, typename Bwd>
Tensor pointwise(const Tensor& a, Fwd fwd, Bwd dydx_from_xy) {
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const float* ad = a.data().data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 for (auto i = static_cast<std::size_t>(lo);
                      i < static_cast<std::size_t>(hi); ++i) {
                   impl->data[i] = fwd(ad[i]);
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "pointwise";
    impl->backward_fn = [pa, dydx_from_xy](TensorImpl& self) {
      pa->ensure_grad();
      parallel_for(
          0, static_cast<std::int64_t>(self.grad.size()), kPointwiseGrain,
          [&](std::int64_t lo, std::int64_t hi) {
            for (auto i = static_cast<std::size_t>(lo);
                 i < static_cast<std::size_t>(hi); ++i) {
              pa->grad[i] +=
                  self.grad[i] * dydx_from_xy(pa->data[i], self.data[i]);
            }
          });
    };
  }
  return Tensor(impl);
}

}  // namespace

Tensor relu(const Tensor& a) {
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const float* ad = a.data().data();
  float* out = impl->data.data();
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 kern::relu(out + lo, ad + lo,
                            static_cast<std::size_t>(hi - lo));
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "relu";
    impl->backward_fn = [pa](TensorImpl& self) {
      pa->ensure_grad();
      // y > 0 ⟺ x > 0 for relu, so the forward output doubles as the mask.
      parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                   kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                     kern::relu_mask_acc(pa->grad.data() + lo,
                                         self.data.data() + lo,
                                         self.grad.data() + lo,
                                         static_cast<std::size_t>(hi - lo));
                   });
    };
  }
  return Tensor(impl);
}

Tensor add_relu(const Tensor& a, const Tensor& b) {
  const bool broadcast = (b.rows() == 1 && a.cols() == b.cols() && a.rows() != 1);
  TG_CHECK_MSG(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()),
               "add_relu: shape mismatch " << a.rows() << "x" << a.cols()
                                           << " vs " << b.rows() << "x"
                                           << b.cols());
  auto impl = make_result(a.rows(), a.cols(), {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* out = impl->data.data();
  const std::int64_t cols = a.cols();
  if (broadcast) {
    parallel_for(0, a.rows(), row_grain(2 * cols),
                 [&](std::int64_t rb, std::int64_t re) {
                   for (std::int64_t r = rb; r < re; ++r) {
                     kern::add_relu(out + r * cols, ad + r * cols, bd,
                                    static_cast<std::size_t>(cols));
                   }
                 });
  } else {
    parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
                 kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                   kern::add_relu(out + lo, ad + lo, bd + lo,
                                  static_cast<std::size_t>(hi - lo));
                 });
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->op = "add_relu";
    impl->backward_fn = [pa, pb, broadcast, cols](TensorImpl& self) {
      const float* y = self.data.data();
      const float* g = self.grad.data();
      if (pa->requires_grad) {
        pa->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       kern::relu_mask_acc(pa->grad.data() + lo, y + lo,
                                           g + lo,
                                           static_cast<std::size_t>(hi - lo));
                     });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        if (broadcast) {
          const std::int64_t rows =
              static_cast<std::int64_t>(self.grad.size()) / cols;
          parallel_for(0, cols, row_grain(2 * rows),
                       [&](std::int64_t cb, std::int64_t ce) {
                         for (std::int64_t r = 0; r < rows; ++r) {
                           kern::relu_mask_acc(pb->grad.data() + cb,
                                               y + r * cols + cb,
                                               g + r * cols + cb,
                                               static_cast<std::size_t>(ce - cb));
                         }
                       });
        } else {
          parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                       kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                         kern::relu_mask_acc(
                             pb->grad.data() + lo, y + lo, g + lo,
                             static_cast<std::size_t>(hi - lo));
                       });
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor mul_sigmoid(const Tensor& a, const Tensor& b) {
  TG_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto impl = make_result(a.rows(), a.cols(), {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* out = impl->data.data();
  // σ(b) is needed again in backward for both inputs; cache it rather
  // than re-running exp (or dividing y by a, which loses precision near
  // a = 0).
  auto sig = std::make_shared<std::vector<float>>(impl->data.size());
  parallel_for(0, static_cast<std::int64_t>(impl->data.size()),
               kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                 for (auto i = static_cast<std::size_t>(lo);
                      i < static_cast<std::size_t>(hi); ++i) {
                   const float s = 1.0f / (1.0f + std::exp(-bd[i]));
                   (*sig)[i] = s;
                   out[i] = ad[i] * s;
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->op = "mul_sigmoid";
    impl->backward_fn = [pa, pb, sig](TensorImpl& self) {
      const float* g = self.grad.data();
      if (pa->requires_grad) {
        pa->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       kern::mul_acc(pa->grad.data() + lo, g + lo,
                                     sig->data() + lo,
                                     static_cast<std::size_t>(hi - lo));
                     });
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        parallel_for(0, static_cast<std::int64_t>(self.grad.size()),
                     kPointwiseGrain, [&](std::int64_t lo, std::int64_t hi) {
                       for (auto i = static_cast<std::size_t>(lo);
                            i < static_cast<std::size_t>(hi); ++i) {
                         const float s = (*sig)[i];
                         pb->grad[i] += g[i] * pa->data[i] * s * (1.0f - s);
                       }
                     });
      }
    };
  }
  return Tensor(impl);
}

Tensor leaky_relu(const Tensor& a, float slope) {
  return pointwise(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Tensor sigmoid(const Tensor& a) {
  return pointwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return pointwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor softplus(const Tensor& a) {
  return pointwise(
      a,
      [](float x) {
        return x > 20.0f ? x : std::log1p(std::exp(std::min(x, 20.0f)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TG_TRACE_SCOPE("nn/matmul", obs::kSpanDetail);
  TG_CHECK_MSG(a.cols() == b.rows(), "matmul: " << a.rows() << "x" << a.cols()
                                                << " times " << b.rows() << "x"
                                                << b.cols());
  const std::int64_t n = a.rows(), k = a.cols(), m = b.cols();
  auto impl = make_result(n, m, {&a, &b});
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* out = impl->data.data();
  // Register-tiled ikj kernel per output row. Row blocks run in parallel;
  // each output element accumulates its k terms in ascending-kk order in
  // every backend, so results match the serial portable run bit for bit.
  parallel_for(0, n, row_grain(2 * k * m),
               [&](std::int64_t ib, std::int64_t ie) {
                 for (std::int64_t i = ib; i < ie; ++i) {
                   kern::matmul_row(out + i * m, ad + i * k, bd,
                                    static_cast<std::size_t>(k),
                                    static_cast<std::size_t>(m));
                 }
               });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    impl->op = "matmul";
    impl->backward_fn = [pa, pb, n, k, m](TensorImpl& self) {
      TG_TRACE_SCOPE("nn/matmul_bwd", obs::kSpanDetail);
      const float* g = self.grad.data();
      if (pa->requires_grad) {
        TG_TRACE_SCOPE("nn/matmul_bwd_da", obs::kSpanDetail);
        pa->ensure_grad();
        // dA = dY · Bᵀ — row blocks of dA are independent; each entry is
        // one blocked-reduction dot (kernels.hpp contract), computed a
        // whole row at a time so B's rows stream through four shared
        // accumulator chains.
        parallel_for(0, n, row_grain(2 * k * m),
                     [&](std::int64_t ib, std::int64_t ie) {
                       for (std::int64_t i = ib; i < ie; ++i) {
                         kern::matmul_nt_row(pa->grad.data() + i * k,
                                             g + i * m, pb->data.data(),
                                             static_cast<std::size_t>(k),
                                             static_cast<std::size_t>(m));
                       }
                     });
      }
      if (pb->requires_grad) {
        TG_TRACE_SCOPE("nn/matmul_bwd_db", obs::kSpanDetail);
        pb->ensure_grad();
        // dB = Aᵀ · dY — column blocks of dB are independent, and every
        // dB element still accumulates its n contributions in ascending-i
        // (serial) order inside its one owning chunk.
        parallel_for(0, m, row_grain(2 * n * k), [&](std::int64_t jb,
                                                     std::int64_t je) {
          kern::atb_acc(pb->grad.data() + jb, pa->data.data(), g + jb,
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(k),
                        static_cast<std::size_t>(m),
                        static_cast<std::size_t>(je - jb));
        });
      }
    };
  }
  return Tensor(impl);
}

Tensor concat_cols(std::span<const Tensor> parts) {
  TG_CHECK(!parts.empty());
  const std::int64_t rows = parts[0].rows();
  std::int64_t cols = 0;
  for (const Tensor& t : parts) {
    TG_CHECK_MSG(t.rows() == rows, "concat_cols: row mismatch");
    cols += t.cols();
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.resize_discard(static_cast<std::size_t>(rows * cols));
  for (const Tensor& t : parts) {
    if (t.requires_grad()) impl->requires_grad = true;
  }
  std::vector<TensorImplPtr> srcs;
  for (const Tensor& t : parts) srcs.push_back(t.ptr());
  if (impl->requires_grad) impl->parents = srcs;

  std::int64_t off = 0;
  for (const Tensor& t : parts) {
    const std::int64_t tc = t.cols();
    for (std::int64_t r = 0; r < rows; ++r) {
      std::copy_n(t.data().data() + r * tc, tc,
                  impl->data.data() + r * cols + off);
    }
    off += tc;
  }
  if (impl->requires_grad) {
    impl->op = "concat_cols";
    impl->backward_fn = [srcs, rows, cols](TensorImpl& self) {
      std::int64_t o = 0;
      for (const auto& s : srcs) {
        const std::int64_t tc = s->cols;
        if (s->requires_grad) {
          s->ensure_grad();
          for (std::int64_t r = 0; r < rows; ++r) {
            kern::add_acc(s->grad.data() + r * tc,
                          self.grad.data() + r * cols + o,
                          static_cast<std::size_t>(tc));
          }
        }
        o += tc;
      }
    };
  }
  return Tensor(impl);
}

Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end) {
  TG_CHECK(0 <= begin && begin < end && end <= a.cols());
  const std::int64_t rows = a.rows(), cols = end - begin, ac = a.cols();
  auto impl = make_result(rows, cols, {&a});
  for (std::int64_t r = 0; r < rows; ++r) {
    std::copy_n(a.data().data() + r * ac + begin, cols,
                impl->data.data() + r * cols);
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "slice_cols";
    impl->backward_fn = [pa, rows, cols, ac, begin](TensorImpl& self) {
      pa->ensure_grad();
      for (std::int64_t r = 0; r < rows; ++r) {
        kern::add_acc(pa->grad.data() + r * ac + begin,
                      self.grad.data() + r * cols,
                      static_cast<std::size_t>(cols));
      }
    };
  }
  return Tensor(impl);
}

Tensor concat_rows(std::span<const Tensor> parts) {
  TG_CHECK(!parts.empty());
  const std::int64_t cols = parts[0].cols();
  std::int64_t rows = 0;
  for (const Tensor& t : parts) {
    TG_CHECK_MSG(t.cols() == cols, "concat_rows: column mismatch");
    rows += t.rows();
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.resize_discard(static_cast<std::size_t>(rows * cols));
  for (const Tensor& t : parts) {
    if (t.requires_grad()) impl->requires_grad = true;
  }
  std::vector<TensorImplPtr> srcs;
  for (const Tensor& t : parts) srcs.push_back(t.ptr());
  if (impl->requires_grad) impl->parents = srcs;

  std::size_t off = 0;
  for (const Tensor& t : parts) {
    std::copy_n(t.data().data(), t.numel(), impl->data.data() + off);
    off += static_cast<std::size_t>(t.numel());
  }
  if (impl->requires_grad) {
    impl->op = "concat_rows";
    impl->backward_fn = [srcs](TensorImpl& self) {
      std::size_t o = 0;
      for (const auto& s : srcs) {
        if (s->requires_grad) {
          accumulate(*s, std::span<const float>(
                             self.grad.data() + o,
                             static_cast<std::size_t>(s->numel())));
        }
        o += static_cast<std::size_t>(s->numel());
      }
    };
  }
  return Tensor(impl);
}

Tensor gather_rows(const Tensor& a, SharedIndex idx_handle) {
  const IndexVec& idx = idx_handle.get();
  TG_CHECK(idx != nullptr);
  const std::int64_t cols = a.cols();
  auto impl = make_result(static_cast<std::int64_t>(idx->size()), cols, {&a});
  const int* ix = idx->data();
  const float* ad = a.data().data();
  parallel_for(
      0, static_cast<std::int64_t>(idx->size()), row_grain(cols),
      [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          TG_DCHECK(ix[i] >= 0 && ix[i] < a.rows());
          std::memcpy(impl->data.data() + i * cols,
                      ad + static_cast<std::int64_t>(ix[i]) * cols,
                      static_cast<std::size_t>(cols) * sizeof(float));
        }
      });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "gather_rows";
    impl->backward_fn = [pa, idx, cols](TensorImpl& self) {
      pa->ensure_grad();
      // Scatter: duplicate indices collide on rows, so slice by output
      // column instead — each grad slot has one owner chunk and keeps the
      // ascending-i accumulation order of the serial loop.
      const auto n = static_cast<std::int64_t>(idx->size());
      const int* gix = idx->data();
      parallel_for(0, cols, row_grain(2 * n), [&](std::int64_t cb,
                                                  std::int64_t ce) {
        for (std::int64_t i = 0; i < n; ++i) {
          kern::add_acc(pa->grad.data() +
                            static_cast<std::int64_t>(gix[i]) * cols + cb,
                        self.grad.data() + i * cols + cb,
                        static_cast<std::size_t>(ce - cb));
        }
      });
    };
  }
  return Tensor(impl);
}

Tensor gather_rows(const Tensor& a, std::vector<int> idx) {
  return gather_rows(a, share_index(std::move(idx)));
}

Tensor multi_gather(std::span<const Tensor> sources, SharedIndex src_tensor_handle,
                    SharedIndex src_row_handle) {
  const IndexVec& src_tensor = src_tensor_handle.get();
  const IndexVec& src_row = src_row_handle.get();
  TG_CHECK(!sources.empty());
  TG_CHECK(src_tensor != nullptr && src_row != nullptr);
  TG_CHECK(src_tensor->size() == src_row->size());
  const std::int64_t cols = sources[0].cols();
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = static_cast<std::int64_t>(src_tensor->size());
  impl->cols = cols;
  impl->data.resize_discard(static_cast<std::size_t>(impl->rows * cols));
  std::vector<TensorImplPtr> srcs;
  for (const Tensor& t : sources) {
    TG_CHECK(t.cols() == cols);
    if (t.requires_grad()) impl->requires_grad = true;
    srcs.push_back(t.ptr());
  }
  if (impl->requires_grad) impl->parents = srcs;

  const int* st = src_tensor->data();
  const int* sr = src_row->data();
  for (std::size_t i = 0; i < src_tensor->size(); ++i) {
    const auto& s = srcs[static_cast<std::size_t>(st[i])];
    TG_DCHECK(sr[i] >= 0 && sr[i] < s->rows);
    std::memcpy(impl->data.data() + static_cast<std::int64_t>(i) * cols,
                s->data.data() + static_cast<std::int64_t>(sr[i]) * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
  if (impl->requires_grad) {
    impl->op = "multi_gather";
    impl->backward_fn = [srcs, src_tensor, src_row, cols](TensorImpl& self) {
      const int* bst = src_tensor->data();
      const int* bsr = src_row->data();
      for (std::size_t i = 0; i < src_tensor->size(); ++i) {
        const auto& s = srcs[static_cast<std::size_t>(bst[i])];
        if (!s->requires_grad) continue;
        s->ensure_grad();
        kern::add_acc(s->grad.data() + static_cast<std::int64_t>(bsr[i]) * cols,
                      self.grad.data() + static_cast<std::int64_t>(i) * cols,
                      static_cast<std::size_t>(cols));
      }
    };
  }
  return Tensor(impl);
}

Tensor multi_gather(std::span<const Tensor> sources,
                    std::vector<int> src_tensor, std::vector<int> src_row) {
  return multi_gather(sources, share_index(std::move(src_tensor)),
                      share_index(std::move(src_row)));
}

Tensor segment_sum(const Tensor& a, SharedIndex seg_handle, std::int64_t num_segments) {
  const IndexVec& seg = seg_handle.get();
  TG_TRACE_SCOPE("nn/segment_sum", obs::kSpanDetail);
  TG_CHECK(seg != nullptr);
  TG_CHECK(static_cast<std::int64_t>(seg->size()) == a.rows());
  const std::int64_t cols = a.cols();
  auto impl = make_result_zero(num_segments, cols, {&a});
  const auto n = static_cast<std::int64_t>(seg->size());
  const int* sg = seg->data();
  const float* ad = a.data().data();
  // Scatter by segment: rows collide, columns never do — slice columns.
  parallel_for(0, cols, row_grain(2 * n), [&](std::int64_t cb,
                                              std::int64_t ce) {
    for (std::int64_t i = 0; i < n; ++i) {
      TG_DCHECK(sg[i] >= 0 && sg[i] < num_segments);
      kern::add_acc(impl->data.data() +
                        static_cast<std::int64_t>(sg[i]) * cols + cb,
                    ad + i * cols + cb, static_cast<std::size_t>(ce - cb));
    }
  });
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "segment_sum";
    impl->backward_fn = [pa, seg, cols](TensorImpl& self) {
      pa->ensure_grad();
      const int* sgp = seg->data();
      // Gather: each input row is written by exactly one chunk.
      parallel_for(
          0, static_cast<std::int64_t>(seg->size()), row_grain(cols),
          [&](std::int64_t ib, std::int64_t ie) {
            for (std::int64_t i = ib; i < ie; ++i) {
              kern::add_acc(pa->grad.data() + i * cols,
                            self.grad.data() +
                                static_cast<std::int64_t>(sgp[i]) * cols,
                            static_cast<std::size_t>(cols));
            }
          });
    };
  }
  return Tensor(impl);
}

Tensor segment_sum(const Tensor& a, std::vector<int> seg,
                   std::int64_t num_segments) {
  return segment_sum(a, share_index(std::move(seg)), num_segments);
}

Tensor segment_max(const Tensor& a, SharedIndex seg_handle, std::int64_t num_segments) {
  const IndexVec& seg = seg_handle.get();
  TG_CHECK(seg != nullptr);
  TG_CHECK(static_cast<std::int64_t>(seg->size()) == a.rows());
  const std::int64_t cols = a.cols();
  auto impl = make_result_zero(num_segments, cols, {&a});
  // argmax[s*cols + c] = input row that won; -1 = empty (output stays 0).
  auto argmax = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(num_segments * cols), -1);
  {
    const auto n = static_cast<std::int64_t>(seg->size());
    const int* sg = seg->data();
    const float* ad = a.data().data();
    // Column-sliced like segment_sum: every (segment, column) max/argmax
    // slot is owned by one chunk and scanned in ascending-i order.
    parallel_for(0, cols, row_grain(2 * n), [&](std::int64_t cb,
                                                std::int64_t ce) {
      for (std::int64_t i = 0; i < n; ++i) {
        TG_DCHECK(sg[i] >= 0 && sg[i] < num_segments);
        const float* src = ad + i * cols;
        const std::int64_t base = static_cast<std::int64_t>(sg[i]) * cols;
        for (std::int64_t c = cb; c < ce; ++c) {
          int& am = (*argmax)[static_cast<std::size_t>(base + c)];
          if (am < 0 || src[c] > impl->data[static_cast<std::size_t>(base + c)]) {
            impl->data[static_cast<std::size_t>(base + c)] = src[c];
            am = static_cast<int>(i);
          }
        }
      }
    });
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "segment_max";
    impl->backward_fn = [pa, argmax, cols](TensorImpl& self) {
      pa->ensure_grad();
      for (std::size_t j = 0; j < self.grad.size(); ++j) {
        const int row = (*argmax)[j];
        if (row < 0) continue;
        pa->grad[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                 j % static_cast<std::size_t>(cols)] += self.grad[j];
      }
    };
  }
  return Tensor(impl);
}

Tensor segment_max(const Tensor& a, std::vector<int> seg,
                   std::int64_t num_segments) {
  return segment_max(a, share_index(std::move(seg)), num_segments);
}

Tensor spmm(std::vector<int> src, std::vector<int> dst, std::vector<float> w,
            const Tensor& x, std::int64_t out_rows) {
  TG_TRACE_SCOPE("nn/spmm", obs::kSpanDetail);
  TG_CHECK(src.size() == dst.size() && src.size() == w.size());
  const std::int64_t cols = x.cols();
  auto impl = make_result_zero(out_rows, cols, {&x});
  {
    const auto ne = static_cast<std::int64_t>(src.size());
    const int* sp = src.data();
    const int* dp = dst.data();
    const float* wp = w.data();
    const float* xd = x.data().data();
    // Edge scatter: both endpoints repeat across edges, so slice columns.
    parallel_for(0, cols, row_grain(2 * ne), [&](std::int64_t cb,
                                                 std::int64_t ce) {
      for (std::int64_t k = 0; k < ne; ++k) {
        TG_DCHECK(sp[k] >= 0 && sp[k] < x.rows());
        TG_DCHECK(dp[k] >= 0 && dp[k] < out_rows);
        kern::axpy(impl->data.data() +
                       static_cast<std::int64_t>(dp[k]) * cols + cb,
                   wp[k], xd + static_cast<std::int64_t>(sp[k]) * cols + cb,
                   static_cast<std::size_t>(ce - cb));
      }
    });
  }
  if (impl->requires_grad) {
    auto px = x.ptr();
    auto ps = std::make_shared<std::vector<int>>(std::move(src));
    auto pd = std::make_shared<std::vector<int>>(std::move(dst));
    auto pw = std::make_shared<std::vector<float>>(std::move(w));
    impl->op = "spmm";
    impl->backward_fn = [px, ps, pd, pw, cols](TensorImpl& self) {
      px->ensure_grad();
      const auto ne = static_cast<std::int64_t>(ps->size());
      parallel_for(0, cols, row_grain(2 * ne), [&](std::int64_t cb,
                                                   std::int64_t ce) {
        for (std::int64_t k = 0; k < ne; ++k) {
          const auto ku = static_cast<std::size_t>(k);
          kern::axpy(px->grad.data() +
                         static_cast<std::int64_t>((*ps)[ku]) * cols + cb,
                     (*pw)[ku],
                     self.grad.data() +
                         static_cast<std::int64_t>((*pd)[ku]) * cols + cb,
                     static_cast<std::size_t>(ce - cb));
        }
      });
    };
  }
  return Tensor(impl);
}

SpmmCsr build_spmm_csr(const std::vector<int>& src, const std::vector<int>& dst,
                       const std::vector<float>& w, std::int64_t out_rows,
                       std::int64_t in_rows) {
  TG_CHECK(src.size() == dst.size() && src.size() == w.size());
  const std::size_t ne = src.size();
  SpmmCsr plan;
  plan.out_rows = out_rows;
  plan.in_rows = in_rows;
  // Forward CSR: edges bucketed by destination row (counting sort keeps
  // the original edge order within a row, so the per-row accumulation
  // order is deterministic and independent of how the COO list arrived).
  auto fwd_off = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(out_rows) + 1, 0);
  auto fwd_col = std::make_shared<std::vector<int>>(ne);
  auto fwd_w = std::make_shared<std::vector<float>>(ne);
  for (std::size_t k = 0; k < ne; ++k) {
    TG_CHECK(dst[k] >= 0 && static_cast<std::int64_t>(dst[k]) < out_rows);
    TG_CHECK(src[k] >= 0 && static_cast<std::int64_t>(src[k]) < in_rows);
    ++(*fwd_off)[static_cast<std::size_t>(dst[k]) + 1];
  }
  for (std::size_t r = 1; r < fwd_off->size(); ++r) {
    (*fwd_off)[r] += (*fwd_off)[r - 1];
  }
  {
    std::vector<int> cursor(fwd_off->begin(), fwd_off->end() - 1);
    for (std::size_t k = 0; k < ne; ++k) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(dst[k])]++);
      (*fwd_col)[slot] = src[k];
      (*fwd_w)[slot] = w[k];
    }
  }
  // Transpose CSR (bucketed by source row) drives backward: dx is then a
  // row-parallel gather instead of a column-sliced scatter.
  auto t_off = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(in_rows) + 1, 0);
  auto t_col = std::make_shared<std::vector<int>>(ne);
  auto t_w = std::make_shared<std::vector<float>>(ne);
  for (std::size_t k = 0; k < ne; ++k) {
    ++(*t_off)[static_cast<std::size_t>(src[k]) + 1];
  }
  for (std::size_t r = 1; r < t_off->size(); ++r) {
    (*t_off)[r] += (*t_off)[r - 1];
  }
  {
    std::vector<int> cursor(t_off->begin(), t_off->end() - 1);
    for (std::size_t k = 0; k < ne; ++k) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(src[k])]++);
      (*t_col)[slot] = dst[k];
      (*t_w)[slot] = w[k];
    }
  }
  plan.row_off = std::move(fwd_off);
  plan.col = std::move(fwd_col);
  plan.w = std::move(fwd_w);
  plan.t_row_off = std::move(t_off);
  plan.t_col = std::move(t_col);
  plan.t_w = std::move(t_w);
  return plan;
}

Tensor spmm_csr(const SpmmCsr& plan, const Tensor& x) {
  TG_TRACE_SCOPE("nn/spmm_csr", obs::kSpanDetail);
  TG_CHECK(plan.row_off != nullptr && x.rows() == plan.in_rows);
  const std::int64_t cols = x.cols();
  auto impl = make_result(plan.out_rows, cols, {&x});
  const int* off = plan.row_off->data();
  const int* col = plan.col->data();
  const float* w = plan.w->data();
  const float* xd = x.data().data();
  // Row-parallel gather: each output row owns its edge range, accumulated
  // in CSR order — deterministic for any thread count, and sequential
  // reads of the packed col/w arrays.
  const std::int64_t avg_deg =
      plan.out_rows > 0
          ? static_cast<std::int64_t>(plan.col->size()) / plan.out_rows + 1
          : 1;
  parallel_for(0, plan.out_rows, row_grain(2 * avg_deg * cols),
               [&](std::int64_t rb, std::int64_t re) {
                 for (std::int64_t r = rb; r < re; ++r) {
                   float* orow = impl->data.data() + r * cols;
                   const int b = off[r], e = off[r + 1];
                   std::memset(orow, 0,
                               static_cast<std::size_t>(cols) * sizeof(float));
                   for (int k = b; k < e; ++k) {
                     kern::axpy(orow, w[k],
                                xd + static_cast<std::int64_t>(col[k]) * cols,
                                static_cast<std::size_t>(cols));
                   }
                 }
               });
  if (impl->requires_grad) {
    auto px = x.ptr();
    // Copy the shared handles (not the arrays) into the closure.
    auto t_off = plan.t_row_off;
    auto t_col = plan.t_col;
    auto t_w = plan.t_w;
    const std::int64_t in_rows = plan.in_rows;
    impl->op = "spmm_csr";
    impl->backward_fn = [px, t_off, t_col, t_w, in_rows,
                         cols](TensorImpl& self) {
      px->ensure_grad();
      const int* toff = t_off->data();
      const int* tcol = t_col->data();
      const float* tw = t_w->data();
      const std::int64_t t_avg_deg =
          in_rows > 0
              ? static_cast<std::int64_t>(t_col->size()) / in_rows + 1
              : 1;
      parallel_for(0, in_rows, row_grain(2 * t_avg_deg * cols),
                   [&](std::int64_t rb, std::int64_t re) {
                     for (std::int64_t r = rb; r < re; ++r) {
                       float* drow = px->grad.data() + r * cols;
                       for (int k = toff[r]; k < toff[r + 1]; ++k) {
                         kern::axpy(
                             drow, tw[k],
                             self.grad.data() +
                                 static_cast<std::int64_t>(tcol[k]) * cols,
                             static_cast<std::size_t>(cols));
                       }
                     }
                   });
    };
  }
  return Tensor(impl);
}

Tensor sum_all(const Tensor& a) {
  auto impl = make_result(1, 1, {&a});
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  impl->data[0] = acc;
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "sum_all";
    impl->backward_fn = [pa](TensorImpl& self) {
      pa->ensure_grad();
      for (float& g : pa->grad) g += self.grad[0];
    };
  }
  return Tensor(impl);
}

Tensor mean_all(const Tensor& a) {
  TG_CHECK(a.numel() > 0);
  return scale(sum_all(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  TG_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  const Tensor diff = sub(pred, target);
  return mean_all(mul(diff, diff));
}

Tensor mse_loss_rows(const Tensor& pred, SharedIndex rows,
                     const Tensor& target) {
  const IndexVec& rv = rows.get();
  TG_CHECK(rv != nullptr);
  TG_CHECK(static_cast<std::int64_t>(rv->size()) == target.rows());
  if (rv->empty()) return Tensor::zeros(1, 1);
  return mse_loss(gather_rows(pred, std::move(rows)), target);
}

Tensor mse_loss_rows(const Tensor& pred, std::vector<int> rows,
                     const Tensor& target) {
  return mse_loss_rows(pred, share_index(std::move(rows)), target);
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  const std::int64_t rows = x.rows(), cols = x.cols();
  TG_CHECK(gamma.rows() == 1 && gamma.cols() == cols);
  TG_CHECK(beta.rows() == 1 && beta.cols() == cols);
  auto impl = make_result(rows, cols, {&x, &gamma, &beta});

  // Cache per-row statistics and the normalized values for backward.
  auto xhat = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(rows * cols));
  auto inv_std = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data().data() + r * cols;
    float mean = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) mean += xr[c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float istd = 1.0f / std::sqrt(var + eps);
    (*inv_std)[static_cast<std::size_t>(r)] = istd;
    float* out = impl->data.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float h = (xr[c] - mean) * istd;
      (*xhat)[static_cast<std::size_t>(r * cols + c)] = h;
      out[c] = h * gamma.data()[static_cast<std::size_t>(c)] +
               beta.data()[static_cast<std::size_t>(c)];
    }
  }
  if (impl->requires_grad) {
    auto px = x.ptr();
    auto pg = gamma.ptr();
    auto pb = beta.ptr();
    impl->op = "layer_norm";
    impl->backward_fn = [px, pg, pb, xhat, inv_std, rows,
                         cols](TensorImpl& self) {
      if (pg->requires_grad) pg->ensure_grad();
      if (pb->requires_grad) pb->ensure_grad();
      if (px->requires_grad) px->ensure_grad();
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* g = self.grad.data() + r * cols;
        const float* h = xhat->data() + r * cols;
        // dgamma, dbeta.
        if (pg->requires_grad) {
          kern::mul_acc(pg->grad.data(), g, h,
                        static_cast<std::size_t>(cols));
        }
        if (pb->requires_grad) {
          kern::add_acc(pb->grad.data(), g, static_cast<std::size_t>(cols));
        }
        if (px->requires_grad) {
          // dx = (istd/D) · (D·gy − Σgy − h·Σ(gy·h)), gy = g·gamma.
          float sum_gy = 0.0f, sum_gyh = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) {
            const float gy = g[c] * pg->data[static_cast<std::size_t>(c)];
            sum_gy += gy;
            sum_gyh += gy * h[c];
          }
          const float istd = (*inv_std)[static_cast<std::size_t>(r)];
          float* dx = px->grad.data() + r * cols;
          const float inv_d = 1.0f / static_cast<float>(cols);
          for (std::int64_t c = 0; c < cols; ++c) {
            const float gy = g[c] * pg->data[static_cast<std::size_t>(c)];
            dx[c] += istd * (gy - inv_d * sum_gy - h[c] * inv_d * sum_gyh);
          }
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor softmax_groups(const Tensor& a, std::int64_t group) {
  TG_CHECK(group >= 1 && a.cols() % group == 0);
  auto impl = make_result(a.rows(), a.cols(), {&a});
  const std::int64_t cols = a.cols();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t g0 = 0; g0 < cols; g0 += group) {
      const float* in = a.data().data() + r * cols + g0;
      float* out = impl->data.data() + r * cols + g0;
      float mx = in[0];
      for (std::int64_t i = 1; i < group; ++i) mx = std::max(mx, in[i]);
      float denom = 0.0f;
      for (std::int64_t i = 0; i < group; ++i) {
        out[i] = std::exp(in[i] - mx);
        denom += out[i];
      }
      for (std::int64_t i = 0; i < group; ++i) out[i] /= denom;
    }
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    impl->op = "softmax_groups";
    impl->backward_fn = [pa, group](TensorImpl& self) {
      pa->ensure_grad();
      const std::int64_t scols = self.cols;
      for (std::int64_t r = 0; r < self.rows; ++r) {
        for (std::int64_t g0 = 0; g0 < scols; g0 += group) {
          const float* y = self.data.data() + r * scols + g0;
          const float* gy = self.grad.data() + r * scols + g0;
          float dot = 0.0f;
          for (std::int64_t i = 0; i < group; ++i) dot += y[i] * gy[i];
          float* gx = pa->grad.data() + r * scols + g0;
          for (std::int64_t i = 0; i < group; ++i) {
            gx[i] += y[i] * (gy[i] - dot);
          }
        }
      }
    };
  }
  return Tensor(impl);
}

Tensor lut_kron_dot(const Tensor& a, const Tensor& b, const Tensor& lut,
                    std::int64_t lut_dim) {
  TG_TRACE_SCOPE("nn/lut_kron_dot", obs::kSpanDetail);
  const std::int64_t rows = a.rows();
  TG_CHECK(b.rows() == rows && lut.rows() == rows);
  TG_CHECK(a.cols() == b.cols() && a.cols() % lut_dim == 0);
  const std::int64_t groups = a.cols() / lut_dim;
  TG_CHECK(lut.cols() == groups * lut_dim * lut_dim);

  auto impl = make_result(rows, groups, {&a, &b, &lut});
  const std::int64_t d = lut_dim;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t g = 0; g < groups; ++g) {
      const float* av = a.data().data() + r * a.cols() + g * d;
      const float* bv = b.data().data() + r * b.cols() + g * d;
      const float* lv = lut.data().data() + r * lut.cols() + g * d * d;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < d; ++i) {
        const float ai = av[i];
        if (ai == 0.0f) continue;
        const float* lrow = lv + i * d;
        float inner = 0.0f;
        for (std::int64_t j = 0; j < d; ++j) inner += bv[j] * lrow[j];
        acc += ai * inner;
      }
      impl->data[static_cast<std::size_t>(r * groups + g)] = acc;
    }
  }
  if (impl->requires_grad) {
    auto pa = a.ptr();
    auto pb = b.ptr();
    auto pl = lut.ptr();
    impl->op = "lut_kron_dot";
    impl->backward_fn = [pa, pb, pl, d, groups](TensorImpl& self) {
      const std::int64_t rows2 = self.rows;
      const std::int64_t acols = pa->cols;
      const std::int64_t lcols = pl->cols;
      if (pa->requires_grad) pa->ensure_grad();
      if (pb->requires_grad) pb->ensure_grad();
      if (pl->requires_grad) pl->ensure_grad();
      for (std::int64_t r = 0; r < rows2; ++r) {
        for (std::int64_t g = 0; g < groups; ++g) {
          const float go = self.grad[static_cast<std::size_t>(r * groups + g)];
          if (go == 0.0f) continue;
          const float* av = pa->data.data() + r * acols + g * d;
          const float* bv = pb->data.data() + r * acols + g * d;
          const float* lv = pl->data.data() + r * lcols + g * d * d;
          for (std::int64_t i = 0; i < d; ++i) {
            const float* lrow = lv + i * d;
            if (pa->requires_grad) {
              float inner = 0.0f;
              for (std::int64_t j = 0; j < d; ++j) inner += bv[j] * lrow[j];
              pa->grad[static_cast<std::size_t>(r * acols + g * d + i)] +=
                  go * inner;
            }
            if (pb->requires_grad) {
              const float ai = av[i];
              for (std::int64_t j = 0; j < d; ++j) {
                pb->grad[static_cast<std::size_t>(r * acols + g * d + j)] +=
                    go * ai * lrow[j];
              }
            }
            if (pl->requires_grad) {
              const float ai = av[i];
              for (std::int64_t j = 0; j < d; ++j) {
                pl->grad[static_cast<std::size_t>(r * lcols + g * d * d + i * d +
                                                  j)] += go * ai * bv[j];
              }
            }
          }
        }
      }
    };
  }
  return Tensor(impl);
}

}  // namespace tg::nn
