/// \file graph_pack_test.cpp
/// Disjoint-union graph packing (data/graph_pack.hpp): offset-table and
/// merged-LevelCsr invariants via validate_graph_pack, ragged K ∈ {1,2,5}
/// mixes across distinct designs, empty/singleton edge cases, and the
/// tentpole contract — a packed forward over K ≥ 2 designs matches the K
/// sequential per-design forwards within 1e-6.

#include "data/graph_pack.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/timing_gnn.hpp"
#include "data/dataset.hpp"
#include "liberty/library_builder.hpp"

namespace tg::data {
namespace {

constexpr double kScale = 1.0 / 32;

/// Three small distinct designs, built once for the whole file.
class GraphPackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(build_library());
    DatasetOptions options;
    options.scale = kScale;
    a_ = new DatasetGraph(
        build_design_graph(suite_entry("spm", kScale), *lib_, options));
    b_ = new DatasetGraph(
        build_design_graph(suite_entry("zipdiv", kScale), *lib_, options));
    c_ = new DatasetGraph(
        build_design_graph(suite_entry("xtea", kScale), *lib_, options));
  }
  static void TearDownTestSuite() {
    delete a_;
    delete b_;
    delete c_;
    delete lib_;
    a_ = b_ = c_ = nullptr;
    lib_ = nullptr;
  }

  static Library* lib_;
  static DatasetGraph* a_;
  static DatasetGraph* b_;
  static DatasetGraph* c_;
};

Library* GraphPackTest::lib_ = nullptr;
DatasetGraph* GraphPackTest::a_ = nullptr;
DatasetGraph* GraphPackTest::b_ = nullptr;
DatasetGraph* GraphPackTest::c_ = nullptr;

/// The merged CSR the packer attaches must equal a from-scratch rebuild —
/// the per-graph level alignment invariant.
void expect_csr_matches_rebuild(const GraphPack& pack) {
  ASSERT_NE(pack.g.level_csr, nullptr);
  const LevelCsr rebuilt = build_level_csr(pack.g);
  const LevelCsr& merged = *pack.g.level_csr;
  EXPECT_EQ(merged.num_levels, rebuilt.num_levels);
  EXPECT_EQ(merged.node_off, rebuilt.node_off);
  EXPECT_EQ(merged.node_perm, rebuilt.node_perm);
  EXPECT_EQ(merged.node_row, rebuilt.node_row);
  EXPECT_EQ(merged.net_off, rebuilt.net_off);
  EXPECT_EQ(merged.net_perm, rebuilt.net_perm);
  EXPECT_EQ(merged.cell_off, rebuilt.cell_off);
  EXPECT_EQ(merged.cell_perm, rebuilt.cell_perm);
}

TEST_F(GraphPackTest, EmptyPackIsWellFormed) {
  const GraphPack pack = pack_graphs({});
  EXPECT_EQ(pack.num_graphs, 0);
  EXPECT_EQ(pack.g.num_nodes, 0);
  EXPECT_EQ(pack.g.num_levels, 0);
  EXPECT_EQ(pack.node_base, std::vector<int>{0});
  EXPECT_TRUE(pack.graph_of_node.empty());
  EXPECT_GT(pack.g.clock_period, 0.0);
  DiagSink sink;
  validate_graph_pack(pack, sink, ValidateLevel::kFull);
  EXPECT_TRUE(sink.ok()) << sink.report_text();
}

TEST_F(GraphPackTest, SingletonPackIsIdentity) {
  const DatasetGraph& g = *a_;
  const GraphPack pack = pack_graphs({&g});
  EXPECT_EQ(pack.num_graphs, 1);
  EXPECT_EQ(pack.g.num_nodes, g.num_nodes);
  EXPECT_EQ(pack.g.num_levels, g.num_levels);
  EXPECT_EQ(pack.g.net_src, g.net_src);
  EXPECT_EQ(pack.g.cell_dst, g.cell_dst);
  EXPECT_EQ(pack.g.node_level, g.node_level);
  EXPECT_EQ(pack.g.endpoints, g.endpoints);
  EXPECT_EQ(pack.g.net_sinks, g.net_sinks);
  EXPECT_EQ(pack.g.clock_period, g.clock_period);
  ASSERT_EQ(pack.g.node_feat.numel(), g.node_feat.numel());
  const std::span<const float> packed = pack.g.node_feat.data();
  const std::span<const float> orig = g.node_feat.data();
  for (std::size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(packed[i], orig[i]) << "node_feat flat index " << i;
  }
  DiagSink sink;
  validate_graph_pack(pack, sink, ValidateLevel::kFull);
  EXPECT_TRUE(sink.ok()) << sink.report_text();
  expect_csr_matches_rebuild(pack);
}

TEST_F(GraphPackTest, TwoDesignPackOffsetsAndLevelAlignment) {
  const GraphPack pack = pack_graphs({a_, b_});
  ASSERT_EQ(pack.num_graphs, 2);
  const std::vector<int> expect_nodes{0, a_->num_nodes,
                                      a_->num_nodes + b_->num_nodes};
  EXPECT_EQ(pack.node_base, expect_nodes);
  EXPECT_EQ(pack.g.num_nodes, a_->num_nodes + b_->num_nodes);
  EXPECT_EQ(pack.g.num_levels, std::max(a_->num_levels, b_->num_levels));
  ASSERT_EQ(static_cast<int>(pack.graph_of_node.size()), pack.g.num_nodes);

  // Every node keeps its part's level; graph_of_node matches node_base.
  for (int v = 0; v < pack.g.num_nodes; ++v) {
    const int part = pack.graph_of_node[static_cast<std::size_t>(v)];
    const DatasetGraph& src = part == 0 ? *a_ : *b_;
    const int local = v - pack.node_base[static_cast<std::size_t>(part)];
    ASSERT_GE(local, 0);
    ASSERT_LT(local, src.num_nodes);
    ASSERT_EQ(pack.g.node_level[static_cast<std::size_t>(v)],
              src.node_level[static_cast<std::size_t>(local)]);
  }

  // Part b's edges are part a's offsets shifted by the node base.
  ASSERT_EQ(pack.net_base[1], static_cast<int>(a_->net_src.size()));
  const int nb = pack.node_base[1];
  const int eb = pack.net_base[1];
  for (std::size_t e = 0; e < b_->net_src.size(); ++e) {
    ASSERT_EQ(pack.g.net_src[static_cast<std::size_t>(eb) + e],
              b_->net_src[e] + nb);
    ASSERT_EQ(pack.g.net_dst[static_cast<std::size_t>(eb) + e],
              b_->net_dst[e] + nb);
  }

  DiagSink sink;
  validate_graph_pack(pack, sink, ValidateLevel::kFull);
  EXPECT_TRUE(sink.ok()) << sink.report_text();
  expect_csr_matches_rebuild(pack);
}

TEST_F(GraphPackTest, RaggedFivePartMixWithRepeatsValidates) {
  // K = 5 with repeated parts and wildly different depths — repetition is
  // legal (each occurrence becomes its own disjoint copy).
  const std::vector<const DatasetGraph*> parts{a_, b_, a_, c_, b_};
  const GraphPack pack = pack_graphs(parts);
  ASSERT_EQ(pack.num_graphs, 5);
  int total = 0;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    EXPECT_EQ(pack.node_base[k], total);
    total += parts[k]->num_nodes;
  }
  EXPECT_EQ(pack.node_base.back(), total);
  EXPECT_EQ(pack.g.num_nodes, total);
  EXPECT_EQ(pack.endpoint_base.back(),
            static_cast<int>(pack.g.endpoints.size()));

  DiagSink sink;
  validate_graph_pack(pack, sink, ValidateLevel::kFull);
  EXPECT_TRUE(sink.ok()) << sink.report_text();
  expect_csr_matches_rebuild(pack);
}

TEST_F(GraphPackTest, PackedForwardMatchesSequentialWithin1e6) {
  const std::vector<const DatasetGraph*> parts{a_, b_, c_};
  const GraphPack pack = pack_graphs(parts);
  const core::PropPlan packed_plan = core::build_prop_plan(pack.g);

  core::TimingGnnConfig config;
  config.net.hidden = 8;
  config.net.mlp_hidden = 8;
  config.prop.hidden = 8;
  config.prop.mlp_hidden = 8;
  const core::TimingGnn model(config);

  const core::TimingGnn::Prediction packed = model.forward(pack.g, packed_plan);
  const std::vector<core::GraphSlackSummary> summaries =
      core::packed_endpoint_slacks(pack, packed.atslew);
  ASSERT_EQ(summaries.size(), parts.size());

  for (std::size_t k = 0; k < parts.size(); ++k) {
    const DatasetGraph& g = *parts[k];
    const core::PropPlan plan = core::build_prop_plan(g);
    const core::TimingGnn::Prediction solo = model.forward(g, plan);

    // Per-node atslew rows: the packed rows of part k, shifted back.
    const int base = pack.node_base[k];
    for (int v = 0; v < g.num_nodes; ++v) {
      for (int c = 0; c < 8; ++c) {
        ASSERT_NEAR(packed.atslew.at(base + v, c), solo.atslew.at(v, c), 1e-6)
            << "part " << k << " node " << v << " col " << c;
      }
    }

    // Per-graph slack digest vs the sequential reference.
    const core::GraphSlackSummary& s = summaries[k];
    double wns = std::numeric_limits<double>::infinity();
    double tns = 0.0;
    ASSERT_EQ(s.endpoint_setup.size(), g.endpoints.size());
    for (std::size_t i = 0; i < g.endpoints.size(); ++i) {
      const core::EndpointSlack es =
          core::predicted_endpoint_slack(g, solo.atslew, g.endpoints[i]);
      ASSERT_NEAR(s.endpoint_setup[i], es.setup, 1e-6);
      wns = std::min(wns, es.setup);
      if (es.setup < 0.0) tns += es.setup;
    }
    if (!g.endpoints.empty()) {
      EXPECT_NEAR(s.wns_setup, wns, 1e-6);
      EXPECT_NEAR(s.tns_setup, tns, 1e-6);
    }
  }
}

}  // namespace
}  // namespace tg::data
