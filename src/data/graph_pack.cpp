#include "data/graph_pack.hpp"

#include <algorithm>
#include <cstddef>

#include "data/validate.hpp"
#include "util/check.hpp"

namespace tg::data {

namespace {

/// Copies `src` (rows × cols) into `dst` starting at row `row0`. Raw data
/// copy: packed tensors are detached leaves, never tape nodes.
void copy_rows(nn::Tensor& dst, std::int64_t row0, const nn::Tensor& src) {
  TG_CHECK(src.defined() && dst.defined() && src.cols() == dst.cols());
  TG_CHECK(row0 + src.rows() <= dst.rows());
  const std::span<const float> in = src.data();
  const std::span<float> out = dst.data();
  std::copy(in.begin(), in.end(),
            out.begin() + static_cast<std::ptrdiff_t>(row0 * dst.cols()));
}

/// Appends `ids` shifted by `base` to `out`.
void append_offset(std::vector<int>& out, const std::vector<int>& ids,
                   int base) {
  out.reserve(out.size() + ids.size());
  for (int id : ids) out.push_back(id + base);
}

/// Merges per-part level-packed permutations into the packed CSR: packed
/// level l holds part 0's level-l block, then part 1's, ... — exactly the
/// (level, packed id) order build_level_csr would produce from scratch,
/// because part k's packed ids all precede part k+1's.
void merge_perm(const std::vector<const LevelCsr*>& csrs,
                const std::vector<int>& bases, int num_levels,
                std::vector<int> LevelCsr::*off_field,
                std::vector<int> LevelCsr::*perm_field, LevelCsr& out) {
  std::vector<int>& off = out.*off_field;
  std::vector<int>& perm = out.*perm_field;
  off.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  std::size_t total = 0;
  for (const LevelCsr* c : csrs) total += (c->*perm_field).size();
  perm.reserve(total);
  for (int l = 0; l < num_levels; ++l) {
    for (std::size_t k = 0; k < csrs.size(); ++k) {
      const LevelCsr& c = *csrs[k];
      if (l >= c.num_levels) continue;  // shallow part: done contributing
      const std::vector<int>& part_off = c.*off_field;
      const std::vector<int>& part_perm = c.*perm_field;
      for (int s = part_off[static_cast<std::size_t>(l)];
           s < part_off[static_cast<std::size_t>(l) + 1]; ++s) {
        perm.push_back(part_perm[static_cast<std::size_t>(s)] + bases[k]);
      }
    }
    off[static_cast<std::size_t>(l) + 1] = static_cast<int>(perm.size());
  }
}

}  // namespace

GraphPack pack_graphs(const std::vector<const DatasetGraph*>& parts) {
  GraphPack pack;
  pack.num_graphs = static_cast<int>(parts.size());

  // ---- offset tables ----------------------------------------------------
  pack.node_base.assign(1, 0);
  pack.net_base.assign(1, 0);
  pack.cell_base.assign(1, 0);
  pack.endpoint_base.assign(1, 0);
  int levels = 0;
  for (const DatasetGraph* p : parts) {
    TG_CHECK(p != nullptr);
    pack.node_base.push_back(pack.node_base.back() + p->num_nodes);
    pack.net_base.push_back(pack.net_base.back() +
                            static_cast<int>(p->net_src.size()));
    pack.cell_base.push_back(pack.cell_base.back() +
                             static_cast<int>(p->cell_src.size()));
    pack.endpoint_base.push_back(pack.endpoint_base.back() +
                                 static_cast<int>(p->endpoints.size()));
    levels = std::max(levels, p->num_levels);
  }

  DatasetGraph& g = pack.g;
  const int n = pack.node_base.back();
  const int en = pack.net_base.back();
  const int ec = pack.cell_base.back();
  g.name = "pack[" + std::to_string(pack.num_graphs) + "]";
  g.num_nodes = n;
  g.num_levels = levels;

  // ---- concatenated tensors (detached leaves) ---------------------------
  g.node_feat = nn::Tensor::zeros(n, kNodeFeatureDim);
  g.net_edge_feat = nn::Tensor::zeros(en, kNetEdgeFeatureDim);
  g.cell_edge_feat = nn::Tensor::zeros(ec, kCellEdgeFeatureDim);
  g.net_delay = nn::Tensor::zeros(n, kNumCorners);
  g.arrival = nn::Tensor::zeros(n, kNumCorners);
  g.slew = nn::Tensor::zeros(n, kNumCorners);
  g.rat = nn::Tensor::zeros(n, kNumCorners);
  g.cell_delay = nn::Tensor::zeros(ec, kNumCorners);

  g.node_level.reserve(static_cast<std::size_t>(n));
  pack.graph_of_node.reserve(static_cast<std::size_t>(n));
  g.net_src.reserve(static_cast<std::size_t>(en));
  g.net_dst.reserve(static_cast<std::size_t>(en));
  g.cell_src.reserve(static_cast<std::size_t>(ec));
  g.cell_dst.reserve(static_cast<std::size_t>(ec));

  g.clock_period = 0.0;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const DatasetGraph& p = *parts[k];
    const int nb = pack.node_base[k];
    copy_rows(g.node_feat, nb, p.node_feat);
    copy_rows(g.net_edge_feat, pack.net_base[k], p.net_edge_feat);
    copy_rows(g.cell_edge_feat, pack.cell_base[k], p.cell_edge_feat);
    copy_rows(g.net_delay, nb, p.net_delay);
    copy_rows(g.arrival, nb, p.arrival);
    copy_rows(g.slew, nb, p.slew);
    copy_rows(g.rat, nb, p.rat);
    copy_rows(g.cell_delay, pack.cell_base[k], p.cell_delay);

    g.node_level.insert(g.node_level.end(), p.node_level.begin(),
                        p.node_level.end());
    pack.graph_of_node.insert(pack.graph_of_node.end(),
                              static_cast<std::size_t>(p.num_nodes),
                              static_cast<int>(k));
    append_offset(g.net_src, p.net_src, nb);
    append_offset(g.net_dst, p.net_dst, nb);
    append_offset(g.cell_src, p.cell_src, nb);
    append_offset(g.cell_dst, p.cell_dst, nb);
    append_offset(g.endpoints, p.endpoints, nb);
    append_offset(g.net_sinks, p.net_sinks, nb);
    g.endpoint_setup_slack.insert(g.endpoint_setup_slack.end(),
                                  p.endpoint_setup_slack.begin(),
                                  p.endpoint_setup_slack.end());
    g.endpoint_hold_slack.insert(g.endpoint_hold_slack.end(),
                                 p.endpoint_hold_slack.begin(),
                                 p.endpoint_hold_slack.end());

    // Slack reconstruction reads per-node RAT rows, never the period, so
    // the max keeps validation honest without affecting any answer.
    g.clock_period = std::max(g.clock_period, p.clock_period);
    g.stats.num_nodes += p.stats.num_nodes;
    g.stats.num_net_edges += p.stats.num_net_edges;
    g.stats.num_cell_edges += p.stats.num_cell_edges;
    g.stats.num_endpoints += p.stats.num_endpoints;
    g.stats.num_instances += p.stats.num_instances;
    g.stats.num_nets += p.stats.num_nets;
    g.stats.num_ffs += p.stats.num_ffs;
  }
  if (g.clock_period <= 0.0) g.clock_period = 1.0;  // K = 0: stay valid

  // ---- merged LevelCsr --------------------------------------------------
  // Concatenating per-part level blocks (parts in ascending packed-id
  // order) reproduces build_level_csr(g) exactly; merging reuses the
  // parts' cached CSRs instead of re-sorting the union.
  std::vector<const LevelCsr*> csrs;
  csrs.reserve(parts.size());
  for (const DatasetGraph* p : parts) csrs.push_back(&ensure_level_csr(*p));
  auto csr = std::make_shared<LevelCsr>();
  csr->num_levels = levels;
  merge_perm(csrs, pack.node_base, levels, &LevelCsr::node_off,
             &LevelCsr::node_perm, *csr);
  merge_perm(csrs, pack.net_base, levels, &LevelCsr::net_off,
             &LevelCsr::net_perm, *csr);
  merge_perm(csrs, pack.cell_base, levels, &LevelCsr::cell_off,
             &LevelCsr::cell_perm, *csr);
  csr->node_row.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < levels; ++l) {
    for (int s = csr->node_off[static_cast<std::size_t>(l)];
         s < csr->node_off[static_cast<std::size_t>(l) + 1]; ++s) {
      csr->node_row[static_cast<std::size_t>(
          csr->node_perm[static_cast<std::size_t>(s)])] =
          s - csr->node_off[static_cast<std::size_t>(l)];
    }
  }
  g.level_csr = std::move(csr);
  return pack;
}

void validate_graph_pack(const GraphPack& pack, DiagSink& sink,
                         ValidateLevel level) {
  if (level == ValidateLevel::kOff) return;
  const DatasetGraph& g = pack.g;
  const auto k = static_cast<std::size_t>(pack.num_graphs);

  auto check_base = [&](const std::vector<int>& base, int total,
                        const char* what) {
    if (base.size() != k + 1 || base.front() != 0 || base.back() != total ||
        !std::is_sorted(base.begin(), base.end())) {
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              what << " base table is not a [K+1] prefix sum ending at "
                   << total);
    }
  };
  check_base(pack.node_base, g.num_nodes, "node");
  check_base(pack.net_base, static_cast<int>(g.net_src.size()), "net");
  check_base(pack.cell_base, static_cast<int>(g.cell_src.size()), "cell");
  check_base(pack.endpoint_base, static_cast<int>(g.endpoints.size()),
             "endpoint");

  if (pack.graph_of_node.size() != static_cast<std::size_t>(g.num_nodes)) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            "graph_of_node holds " << pack.graph_of_node.size()
                                   << " entries for " << g.num_nodes
                                   << " nodes");
  } else if (pack.node_base.size() == k + 1) {
    for (int v = 0; v < g.num_nodes; ++v) {
      const int part = pack.graph_of_node[static_cast<std::size_t>(v)];
      if (part < 0 || part >= pack.num_graphs ||
          v < pack.node_base[static_cast<std::size_t>(part)] ||
          v >= pack.node_base[static_cast<std::size_t>(part) + 1]) {
        TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
                "graph_of_node[" << v << "] = " << part
                                 << " disagrees with node_base");
        break;
      }
    }
  }

  // No edge may cross a part boundary — the disjoint-union invariant that
  // makes the packed forward separable.
  for (std::size_t e = 0; e < g.net_src.size(); ++e) {
    const int s = g.net_src[e];
    const int d = g.net_dst[e];
    if (s >= 0 && s < g.num_nodes && d >= 0 && d < g.num_nodes &&
        pack.graph_of_node.size() == static_cast<std::size_t>(g.num_nodes) &&
        pack.graph_of_node[static_cast<std::size_t>(s)] !=
            pack.graph_of_node[static_cast<std::size_t>(d)]) {
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              "net edge " << e << " crosses the part boundary (" << s << " -> "
                          << d << ")");
      break;
    }
  }
  for (std::size_t e = 0; e < g.cell_src.size(); ++e) {
    const int s = g.cell_src[e];
    const int d = g.cell_dst[e];
    if (s >= 0 && s < g.num_nodes && d >= 0 && d < g.num_nodes &&
        pack.graph_of_node.size() == static_cast<std::size_t>(g.num_nodes) &&
        pack.graph_of_node[static_cast<std::size_t>(s)] !=
            pack.graph_of_node[static_cast<std::size_t>(d)]) {
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              "cell edge " << e << " crosses the part boundary (" << s
                           << " -> " << d << ")");
      break;
    }
  }

  validate_dataset_graph(g, sink, level);
}

}  // namespace tg::data
