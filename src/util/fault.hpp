#pragma once
/// \file fault.hpp
/// Deterministic fault injection, one domain per subsystem.
///
/// A *domain* is an independent (env var, op vocabulary) pair; each keeps
/// its own armed op, trigger window and match counter, so e.g. a serving
/// fault drill never perturbs I/O fault tests running in the same process.
///
/// ## io domain — persistence layer
/// The binary reader/writer (util/io) asks `should_fail_io(op)` before each
/// operation; when a fault is armed for that op, the Nth matching call
/// reports failure and the caller throws the same CheckError it would raise
/// on a real short read / full disk / failed rename. That makes every error
/// path in save/load/checkpoint code exercisable from ctest instead of only
/// in theory.
///
/// Two ways to arm a fault:
///   - environment: TG_FAULT_IO=<op>:<nth>  (e.g. TG_FAULT_IO=write:3),
///     parsed once on first use;
///   - programmatic: arm_io_fault("rename", 1) / clear_io_fault() from tests.
///
/// Recognised ops: open_read, read, open_write, write, fsync, rename.
///
/// ## serve domain — slack-prediction serving plane
/// `SlackServer` workers (src/serve) ask `should_fail_serve(op)` at the
/// matching points of request execution. Armed via
/// `TG_FAULT_SERVE=<op>:<nth>[:<count>]` or arm_serve_fault(). Recognised
/// ops:
///   worker — throw from a worker mid-request (exercises retry + capped
///            exponential backoff, and past the retry budget, per-session
///            quarantine)
///   slow   — inject a stall into one request (exercises deadline expiry
///            and the degradation ladder)
///   cache  — corrupt a session's stale-answer cache entry as it is
///            written (exercises the checksum check on the read side)
///
/// Serve faults carry a *count*: the fault trips on the Nth matching call
/// and on the `count - 1` matching calls after it (default 1 — a single
/// blip a retry recovers from; a large count models a persistently broken
/// dependency, which is what drives backoff into quarantine).
///
/// ## shard domain — sharded STA engine
/// The shard orchestrator (sta/shard.cpp) asks `should_fail_shard(op)` at
/// each shard attempt / boundary exchange. Armed via
/// `TG_FAULT_SHARD=<op>:<nth>[:<count>]` or arm_shard_fault(). Recognised
/// ops:
///   worker  — throw from inside a shard's sweep (exercises shard-scoped
///             re-execution with capped backoff)
///   slow    — stall one shard attempt (exercises the EMA straggler
///             deadline and speculative re-issue)
///   corrupt — flip bits in a shard's exported boundary buffer after its
///             checksum was taken (exercises checksum detection + owner
///             re-export on the import side)
///   stale   — publish a boundary buffer with an outdated sweep version
///             (exercises the version check on the import side)
/// Shard faults use the same [nth, nth + count) trigger window as serve
/// faults; a count larger than the retry budget drives the loud-failure
/// path (ShardSweepError naming shard, level range and offender pin).

#include <string>

namespace tg::fault {

// ---- io domain -----------------------------------------------------------

/// Arms a fault: the `nth` (1-based) subsequent I/O operation named `op`
/// fails. Resets the match counter. Overrides any TG_FAULT_IO setting.
void arm_io_fault(const std::string& op, long long nth);

/// Disarms any io fault (env- or API-armed) and resets the match counter.
void clear_io_fault();

/// Re-reads TG_FAULT_IO now (normally parsed once, lazily). Lets tests
/// exercise the environment path after the process has already done I/O.
void reparse_io_fault_env();

/// Called by the I/O layer before each operation. Returns true exactly when
/// this call is the Nth matching `op` since arming; the caller must then
/// fail the operation. Thread-safe; counts only matching ops.
[[nodiscard]] bool should_fail_io(const char* op);

/// Number of operations that matched the armed op so far (test diagnostics).
[[nodiscard]] long long matched_io_ops();

// ---- serve domain --------------------------------------------------------

/// Arms a serving fault: matching serve operations number `nth` through
/// `nth + count - 1` (1-based) trip. Resets the match counter; overrides
/// TG_FAULT_SERVE.
void arm_serve_fault(const std::string& op, long long nth,
                     long long count = 1);

/// Disarms any serve fault (env- or API-armed), resets the match counter.
void clear_serve_fault();

/// Re-reads TG_FAULT_SERVE now (normally parsed once, lazily).
void reparse_serve_fault_env();

/// Called by the serving plane at each fault point. True when this call's
/// match ordinal falls inside the armed [nth, nth + count) window.
[[nodiscard]] bool should_fail_serve(const char* op);

/// Serve operations that matched the armed op so far (test diagnostics).
[[nodiscard]] long long matched_serve_ops();

// ---- shard domain --------------------------------------------------------

/// Arms a shard fault: matching shard operations number `nth` through
/// `nth + count - 1` (1-based) trip. Resets the match counter; overrides
/// TG_FAULT_SHARD.
void arm_shard_fault(const std::string& op, long long nth,
                     long long count = 1);

/// Disarms any shard fault (env- or API-armed), resets the match counter.
void clear_shard_fault();

/// Re-reads TG_FAULT_SHARD now (normally parsed once, lazily).
void reparse_shard_fault_env();

/// Called by the shard engine at each fault point. True when this call's
/// match ordinal falls inside the armed [nth, nth + count) window.
[[nodiscard]] bool should_fail_shard(const char* op);

/// Shard operations that matched the armed op so far (test diagnostics).
[[nodiscard]] long long matched_shard_ops();

}  // namespace tg::fault
