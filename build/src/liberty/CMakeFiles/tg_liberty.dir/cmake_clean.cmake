file(REMOVE_RECURSE
  "CMakeFiles/tg_liberty.dir/cell_type.cpp.o"
  "CMakeFiles/tg_liberty.dir/cell_type.cpp.o.d"
  "CMakeFiles/tg_liberty.dir/corner.cpp.o"
  "CMakeFiles/tg_liberty.dir/corner.cpp.o.d"
  "CMakeFiles/tg_liberty.dir/liberty_io.cpp.o"
  "CMakeFiles/tg_liberty.dir/liberty_io.cpp.o.d"
  "CMakeFiles/tg_liberty.dir/library.cpp.o"
  "CMakeFiles/tg_liberty.dir/library.cpp.o.d"
  "CMakeFiles/tg_liberty.dir/library_builder.cpp.o"
  "CMakeFiles/tg_liberty.dir/library_builder.cpp.o.d"
  "CMakeFiles/tg_liberty.dir/nldm_lut.cpp.o"
  "CMakeFiles/tg_liberty.dir/nldm_lut.cpp.o.d"
  "libtg_liberty.a"
  "libtg_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
