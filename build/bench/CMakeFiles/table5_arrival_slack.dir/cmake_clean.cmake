file(REMOVE_RECURSE
  "CMakeFiles/table5_arrival_slack.dir/table5_arrival_slack.cpp.o"
  "CMakeFiles/table5_arrival_slack.dir/table5_arrival_slack.cpp.o.d"
  "table5_arrival_slack"
  "table5_arrival_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_arrival_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
