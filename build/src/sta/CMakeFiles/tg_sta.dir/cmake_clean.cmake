file(REMOVE_RECURSE
  "CMakeFiles/tg_sta.dir/incremental.cpp.o"
  "CMakeFiles/tg_sta.dir/incremental.cpp.o.d"
  "CMakeFiles/tg_sta.dir/paths.cpp.o"
  "CMakeFiles/tg_sta.dir/paths.cpp.o.d"
  "CMakeFiles/tg_sta.dir/report.cpp.o"
  "CMakeFiles/tg_sta.dir/report.cpp.o.d"
  "CMakeFiles/tg_sta.dir/timer.cpp.o"
  "CMakeFiles/tg_sta.dir/timer.cpp.o.d"
  "CMakeFiles/tg_sta.dir/timing_graph.cpp.o"
  "CMakeFiles/tg_sta.dir/timing_graph.cpp.o.d"
  "libtg_sta.a"
  "libtg_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
