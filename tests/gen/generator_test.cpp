#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include "liberty/library_builder.hpp"
#include "util/check.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "sta/timer.hpp"

namespace tg {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();

  DesignSpec small_spec() {
    DesignSpec spec;
    spec.name = "gen_t";
    spec.seed = 77;
    spec.target_nodes = 2000;
    spec.target_endpoints = 120;
    spec.num_inputs = 32;
    spec.depth = 10;
    return spec;
  }
};

TEST_F(GeneratorTest, HitsNodeBudgetApproximately) {
  const Design d = generate_design(small_spec(), lib_);
  EXPECT_GT(d.num_pins(), 1400);
  EXPECT_LT(d.num_pins(), 2700);
}

TEST_F(GeneratorTest, HitsEndpointBudgetApproximately) {
  const Design d = generate_design(small_spec(), lib_);
  const DesignStats s = d.stats();
  EXPECT_GE(s.num_endpoints, 110);
  EXPECT_LE(s.num_endpoints, 160);
}

TEST_F(GeneratorTest, DeterministicInSeed) {
  const Design a = generate_design(small_spec(), lib_);
  const Design b = generate_design(small_spec(), lib_);
  EXPECT_EQ(a.num_pins(), b.num_pins());
  EXPECT_EQ(a.num_nets(), b.num_nets());
  // Spot-check structure equality.
  for (NetId n = 0; n < a.num_nets(); n += 37) {
    EXPECT_EQ(a.net(n).driver, b.net(n).driver);
    EXPECT_EQ(a.net(n).sinks, b.net(n).sinks);
  }
}

TEST_F(GeneratorTest, SeedChangesStructure) {
  DesignSpec s2 = small_spec();
  s2.seed = 78;
  const Design a = generate_design(small_spec(), lib_);
  const Design b = generate_design(s2, lib_);
  EXPECT_NE(a.num_pins(), b.num_pins());
}

TEST_F(GeneratorTest, FanoutCapRespected) {
  DesignSpec spec = small_spec();
  spec.max_fanout = 8;
  const Design d = generate_design(spec, lib_);
  for (const Net& net : d.nets()) {
    if (net.is_clock) continue;
    // The cap applies to generator sampling; the dangle collector can add
    // one extra sink beyond it.
    EXPECT_LE(net.sinks.size(), 10u) << net.name;
  }
}

TEST_F(GeneratorTest, ValidatesAndHasClock) {
  const Design d = generate_design(small_spec(), lib_);
  EXPECT_NO_THROW(d.validate());
  EXPECT_NE(d.clock_net(), kInvalidId);
  EXPECT_GT(d.stats().num_ffs, 0);
}

TEST_F(GeneratorTest, DepthKnobControlsLevels) {
  DesignSpec shallow = small_spec();
  shallow.depth = 6;
  DesignSpec deep = small_spec();
  deep.depth = 24;
  Design ds = generate_design(shallow, lib_);
  Design dd = generate_design(deep, lib_);
  // Compare max combinational level through quick topological analysis.
  const TimingGraph gs(ds);
  const TimingGraph gd(dd);
  EXPECT_LT(gs.num_levels(), gd.num_levels());
}

TEST_F(GeneratorTest, CalibratedPeriodScalesWithFactor) {
  Design d = generate_design(small_spec(), lib_);
  place_design(d);
  RoutingOptions opts;
  opts.mode = RouteMode::kSteiner;
  const DesignRouting routing = route_design(d, opts);
  const TimingGraph g(d);
  const StaResult sta = run_sta(g, routing);
  const double p1 = calibrated_period(d, sta.arrival, 1.0);
  const double p2 = calibrated_period(d, sta.arrival, 1.2);
  EXPECT_NEAR(p2 / p1, 1.2, 1e-9);
  EXPECT_GT(p1, 0.0);
}

TEST_F(GeneratorTest, RejectsAbsurdSpecs) {
  DesignSpec spec = small_spec();
  spec.target_nodes = 10;  // below the minimum
  EXPECT_THROW(generate_design(spec, lib_), CheckError);
}

}  // namespace
}  // namespace tg
