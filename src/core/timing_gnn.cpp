#include "core/timing_gnn.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/obs/trace.hpp"

namespace tg::core {

using nn::Tensor;

TimingGnn::TimingGnn(const TimingGnnConfig& config)
    : config_(config),
      rng_(config.seed),
      net_embed_(config.net, rng_),
      prop_(config.net.hidden, config.prop, rng_),
      atslew_head_(config.prop.hidden + config.net.hidden, 2 * kNumCorners,
                   config.prop.mlp_hidden, config.prop.mlp_layers, &rng_,
                   "atslew_head") {
  register_module("net_embed", net_embed_);
  register_module("prop", prop_);
  register_module("atslew_head", atslew_head_);
}

TimingGnn::Prediction TimingGnn::forward(const data::DatasetGraph& g,
                                         const PropPlan& plan) const {
  TG_TRACE_SCOPE("core/gnn_forward", obs::kSpanCoarse);
  Prediction pred;
  Tensor emb = net_embed_.forward(g);
  pred.net_delay = net_embed_.predict_net_delay(g, emb);

  DelayProp::Output prop_out = prop_.forward(g, plan, emb);
  pred.cell_delay = prop_out.cell_delay;

  const Tensor head_in[] = {prop_out.state, emb};
  pred.atslew = atslew_head_.forward(nn::concat_cols(head_in));
  return pred;
}

Tensor TimingGnn::embed(const data::DatasetGraph& g) const {
  return net_embed_.forward(g);
}

Tensor TimingGnn::forward_atslew(const data::DatasetGraph& g,
                                 const PropPlan& plan,
                                 const Tensor& embedding) const {
  TG_TRACE_SCOPE("core/gnn_forward_atslew", obs::kSpanCoarse);
  const DelayProp::Output prop_out =
      prop_.forward(g, plan, embedding, /*want_aux=*/false);
  const Tensor head_in[] = {prop_out.state, embedding};
  return atslew_head_.forward(nn::concat_cols(head_in));
}

Tensor TimingGnn::loss(const data::DatasetGraph& g, const PropPlan& plan,
                       const Prediction& pred) const {
  // Eq. 4: arrival/slew over all pins.
  const Tensor atslew_target_parts[] = {g.arrival, g.slew};
  Tensor total =
      nn::mse_loss(pred.atslew, nn::concat_cols(atslew_target_parts));

  // Eq. 5: cell-arc delay (plan order).
  if (config_.use_cell_aux && pred.cell_delay.rows() > 0) {
    Tensor cell_target = nn::gather_rows(g.cell_delay, plan.cell_order);
    total = nn::add(total, nn::mse_loss(pred.cell_delay, cell_target));
  }

  // Eq. 6: net delay at fan-in (net sink) pins.
  if (config_.use_net_aux && !g.net_sinks.empty()) {
    const nn::IndexVec& sinks = data::shared_net_sinks(g);
    Tensor target = nn::gather_rows(g.net_delay, sinks);
    total = nn::add(total, nn::mse_loss_rows(pred.net_delay, sinks, target));
  }
  return total;
}

EndpointSlack predicted_endpoint_slack(const data::DatasetGraph& g,
                                       const Tensor& atslew,
                                       int endpoint_node) {
  EndpointSlack out;
  const auto node = static_cast<std::int64_t>(endpoint_node);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  const int lf = corner_index(Mode::kLate, Trans::kFall);
  const int er = corner_index(Mode::kEarly, Trans::kRise);
  const int ef = corner_index(Mode::kEarly, Trans::kFall);

  const double rat_lr = g.rat.at(node, lr);
  const double rat_lf = g.rat.at(node, lf);
  const double rat_er = g.rat.at(node, er);
  const double rat_ef = g.rat.at(node, ef);
  const double at_lr = atslew.at(node, lr);
  const double at_lf = atslew.at(node, lf);
  const double at_er = atslew.at(node, er);
  const double at_ef = atslew.at(node, ef);

  out.setup = std::min(rat_lr - at_lr, rat_lf - at_lf);
  out.hold = std::min(at_er - rat_er, at_ef - rat_ef);
  return out;
}

std::vector<GraphSlackSummary> packed_endpoint_slacks(
    const data::GraphPack& pack, const Tensor& atslew) {
  TG_CHECK(atslew.rows() == pack.g.num_nodes);
  std::vector<GraphSlackSummary> out(
      static_cast<std::size_t>(pack.num_graphs));
  for (int k = 0; k < pack.num_graphs; ++k) {
    GraphSlackSummary& s = out[static_cast<std::size_t>(k)];
    const int lo = pack.endpoint_base[static_cast<std::size_t>(k)];
    const int hi = pack.endpoint_base[static_cast<std::size_t>(k) + 1];
    if (lo == hi) continue;  // endpoint-free part: all-zero digest
    s.wns_setup = std::numeric_limits<double>::infinity();
    s.wns_hold = std::numeric_limits<double>::infinity();
    s.endpoint_setup.reserve(static_cast<std::size_t>(hi - lo));
    for (int i = lo; i < hi; ++i) {
      const EndpointSlack es = predicted_endpoint_slack(
          pack.g, atslew, pack.g.endpoints[static_cast<std::size_t>(i)]);
      s.endpoint_setup.push_back(es.setup);
      s.wns_setup = std::min(s.wns_setup, es.setup);
      s.wns_hold = std::min(s.wns_hold, es.hold);
      if (es.setup < 0.0) s.tns_setup += es.setup;
    }
  }
  return out;
}

}  // namespace tg::core
