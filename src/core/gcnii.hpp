#pragma once
/// \file gcnii.hpp
/// The vanilla deep-GNN baseline of the paper's Section 2.2: GCNII
/// (Chen et al., ICML'20) with residual connections to the initial
/// projection and identity mapping, Eq. 3, α = β = 0.1, evaluated at
/// 4/8/16 layers on the *undirected* pin graph with symmetric-normalized
/// adjacency (Eq. 2). Predicts arrival/slew at pins directly.

#include "data/hetero_graph.hpp"
#include "nn/module.hpp"

namespace tg::core {

struct GcniiConfig {
  int num_layers = 16;
  int hidden = 32;
  float alpha = 0.1f;  ///< residual weight (paper hyperparameter)
  float beta = 0.1f;   ///< identity-mapping weight
  /// Per-layer LayerNorm — one of the deeper-GNN tricks of Chen et al.
  /// 2021 (cited by the paper's §2.2); off in the paper's baseline.
  bool use_layer_norm = false;
  std::uint64_t seed = 2;
};

/// Normalized undirected adjacency (net + cell arcs, both directions,
/// plus self loops): P of Eq. 2. Build once per graph. The COO triple is
/// kept for inspection/tests; forward runs off the prebuilt CSR plan so
/// each layer's propagation is a row-parallel gather with no per-call
/// index marshalling.
struct GcniiAdjacency {
  std::vector<int> src, dst;
  std::vector<float> w;
  nn::SpmmCsr csr;  ///< destination-sorted CSR + transpose of (src,dst,w)
};
[[nodiscard]] GcniiAdjacency build_gcnii_adjacency(const data::DatasetGraph& g);

class Gcnii : public nn::Module {
 public:
  explicit Gcnii(const GcniiConfig& config);

  /// Predicted arrival/slew [N, 8].
  [[nodiscard]] nn::Tensor forward(const data::DatasetGraph& g,
                                   const GcniiAdjacency& adj) const;

  /// Plain MSE to the arrival/slew labels over all pins.
  [[nodiscard]] nn::Tensor loss(const data::DatasetGraph& g,
                                const nn::Tensor& atslew_pred) const;

  [[nodiscard]] const GcniiConfig& config() const { return config_; }

 private:
  GcniiConfig config_;
  Rng rng_;
  nn::Linear input_proj_;
  std::vector<nn::Linear> layers_;
  std::vector<nn::Tensor> ln_gamma_, ln_beta_;  ///< used when use_layer_norm
  nn::Linear head_;
};

}  // namespace tg::core
