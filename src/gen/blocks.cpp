#include "gen/blocks.hpp"

#include "util/check.hpp"

namespace tg {

SigId block_xor_tree(CircuitBuilder& cb, std::vector<SigId> inputs) {
  TG_CHECK(!inputs.empty());
  while (inputs.size() > 1) {
    std::vector<SigId> next;
    for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
      next.push_back(cb.gate("XOR2", {inputs[i], inputs[i + 1]}));
    }
    if (inputs.size() % 2 == 1) next.push_back(inputs.back());
    inputs = std::move(next);
  }
  return inputs[0];
}

std::vector<SigId> block_ripple_adder(CircuitBuilder& cb,
                                      const std::vector<SigId>& a,
                                      const std::vector<SigId>& b) {
  TG_CHECK(!a.empty() && a.size() == b.size());
  std::vector<SigId> out;
  SigId carry = kInvalidId;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SigId x = cb.gate("XOR2", {a[i], b[i]});
    if (carry == kInvalidId) {
      // Half adder for the LSB.
      out.push_back(x);
      carry = cb.gate("AND2", {a[i], b[i]});
    } else {
      out.push_back(cb.gate("XOR2", {x, carry}));
      const SigId c1 = cb.gate("AND2", {a[i], b[i]});
      const SigId c2 = cb.gate("AND2", {x, carry});
      carry = cb.gate("OR2", {c1, c2});
    }
  }
  out.push_back(carry);
  return out;
}

SigId block_mux_tree(CircuitBuilder& cb, std::vector<SigId> data,
                     const std::vector<SigId>& sel) {
  TG_CHECK(!data.empty());
  TG_CHECK((data.size() & (data.size() - 1)) == 0);
  std::size_t level = 0;
  while (data.size() > 1) {
    TG_CHECK(level < sel.size());
    std::vector<SigId> next;
    for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
      next.push_back(cb.gate("MUX2", {data[i], data[i + 1], sel[level]}));
    }
    data = std::move(next);
    ++level;
  }
  return data[0];
}

std::vector<SigId> block_sbox_cone(CircuitBuilder& cb,
                                   const std::vector<SigId>& inputs,
                                   int depth, int num_outputs) {
  TG_CHECK(inputs.size() >= 2 && depth >= 1 && num_outputs >= 1);
  Rng& rng = cb.rng();
  std::vector<SigId> layer = inputs;
  static const char* kTwoIn[] = {"NAND2", "NOR2", "XOR2", "XNOR2", "AND2", "OR2"};
  for (int d = 0; d < depth; ++d) {
    std::vector<SigId> next;
    const std::size_t width = std::max<std::size_t>(
        2, layer.size() - (d + 1 == depth ? layer.size() - static_cast<std::size_t>(num_outputs) : 0));
    for (std::size_t i = 0; i < width; ++i) {
      const SigId u = layer[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(layer.size()) - 1))];
      SigId v = layer[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(layer.size()) - 1))];
      if (v == u) v = layer[(static_cast<std::size_t>(u) + 1) % layer.size()];
      const char* fn = kTwoIn[rng.uniform_int(0, 5)];
      next.push_back(cb.gate(fn, {u, v}));
    }
    layer = std::move(next);
  }
  if (static_cast<int>(layer.size()) > num_outputs) {
    layer.resize(static_cast<std::size_t>(num_outputs));
  }
  return layer;
}

std::vector<SigId> block_decoder(CircuitBuilder& cb,
                                 const std::vector<SigId>& sel) {
  TG_CHECK(!sel.empty() && sel.size() <= 6);
  // Complemented selects once, then AND trees.
  std::vector<SigId> sel_n;
  sel_n.reserve(sel.size());
  for (SigId s : sel) sel_n.push_back(cb.gate("INV", {s}));

  std::vector<SigId> outs;
  const std::size_t count = std::size_t{1} << sel.size();
  for (std::size_t code = 0; code < count; ++code) {
    SigId acc = (code & 1) ? sel[0] : sel_n[0];
    for (std::size_t b = 1; b < sel.size(); ++b) {
      const SigId term = (code >> b & 1) ? sel[b] : sel_n[b];
      acc = cb.gate("AND2", {acc, term});
    }
    outs.push_back(acc);
  }
  return outs;
}

}  // namespace tg
