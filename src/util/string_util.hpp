#pragma once
/// \file string_util.hpp
/// Small string helpers shared by the CLI parser, table printer and CSV
/// writer.

#include <string>
#include <string_view>
#include <vector>

namespace tg {

/// Split on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Trim ASCII whitespace on both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-precision float formatting ("%.*f").
[[nodiscard]] std::string format_fixed(double value, int precision);

/// Human-readable count with thousands separators (1234567 -> "1,234,567").
[[nodiscard]] std::string with_commas(long long value);

}  // namespace tg
