#include "data/hetero_graph.hpp"

#include <algorithm>
#include <mutex>

#include "util/check.hpp"

namespace tg::data {

static_assert(kCellEdgeFeatureDim == 512,
              "cell edge feature layout must match the paper's Table 3");
static_assert(kNodeFeatureDim + 4 + 4 + 4 + 1 + 4 == 27,
              "node feature+task total must match the paper's Table 2");

namespace {

/// Packs `dst`-indexed edge ids into per-level slices, sorted by
/// (level(dst), dst, edge id). Counting sort over levels keeps the build
/// linear; the within-level order comes from a stable sort by dst (edge
/// ids stay ascending within equal destinations).
void pack_edges(const std::vector<int>& dst, const std::vector<int>& node_level,
                int num_levels, std::vector<int>& off, std::vector<int>& perm) {
  const auto ne = static_cast<int>(dst.size());
  off.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (int e = 0; e < ne; ++e) {
    const int lvl =
        node_level[static_cast<std::size_t>(dst[static_cast<std::size_t>(e)])];
    TG_CHECK(lvl >= 0 && lvl < num_levels);
    ++off[static_cast<std::size_t>(lvl) + 1];
  }
  for (int l = 0; l < num_levels; ++l) {
    off[static_cast<std::size_t>(l) + 1] += off[static_cast<std::size_t>(l)];
  }
  perm.resize(static_cast<std::size_t>(ne));
  std::vector<int> cursor(off.begin(), off.end() - 1);
  for (int e = 0; e < ne; ++e) {
    const int lvl =
        node_level[static_cast<std::size_t>(dst[static_cast<std::size_t>(e)])];
    perm[static_cast<std::size_t>(cursor[static_cast<std::size_t>(lvl)]++)] = e;
  }
  for (int l = 0; l < num_levels; ++l) {
    const auto begin = perm.begin() + off[static_cast<std::size_t>(l)];
    const auto end = perm.begin() + off[static_cast<std::size_t>(l) + 1];
    std::stable_sort(begin, end, [&](int a, int b) {
      return dst[static_cast<std::size_t>(a)] < dst[static_cast<std::size_t>(b)];
    });
  }
}

}  // namespace

LevelCsr build_level_csr(const DatasetGraph& g) {
  TG_CHECK(static_cast<int>(g.node_level.size()) == g.num_nodes);
  LevelCsr csr;
  csr.num_levels = g.num_levels;

  // Nodes sorted by (level, id): counting sort over levels; the ascending
  // node-id scan makes the within-level order ascending ids.
  csr.node_off.assign(static_cast<std::size_t>(g.num_levels) + 1, 0);
  for (int v = 0; v < g.num_nodes; ++v) {
    const int lvl = g.node_level[static_cast<std::size_t>(v)];
    TG_CHECK(lvl >= 0 && lvl < g.num_levels);
    ++csr.node_off[static_cast<std::size_t>(lvl) + 1];
  }
  for (int l = 0; l < g.num_levels; ++l) {
    csr.node_off[static_cast<std::size_t>(l) + 1] +=
        csr.node_off[static_cast<std::size_t>(l)];
  }
  csr.node_perm.resize(static_cast<std::size_t>(g.num_nodes));
  csr.node_row.resize(static_cast<std::size_t>(g.num_nodes));
  std::vector<int> cursor(csr.node_off.begin(), csr.node_off.end() - 1);
  for (int v = 0; v < g.num_nodes; ++v) {
    const int lvl = g.node_level[static_cast<std::size_t>(v)];
    const int slot = cursor[static_cast<std::size_t>(lvl)]++;
    csr.node_perm[static_cast<std::size_t>(slot)] = v;
    csr.node_row[static_cast<std::size_t>(v)] =
        slot - csr.node_off[static_cast<std::size_t>(lvl)];
  }

  pack_edges(g.net_dst, g.node_level, g.num_levels, csr.net_off, csr.net_perm);
  pack_edges(g.cell_dst, g.node_level, g.num_levels, csr.cell_off,
             csr.cell_perm);
  return csr;
}

namespace {

/// Guards the lazy caches below. A const DatasetGraph is shared
/// read-only across serving workers (serve/session.hpp), so first-use
/// publication must be a proper release/acquire handoff; one process-wide
/// mutex suffices because each cache is touched a handful of times per
/// forward, and the builds run outside the lock so concurrent first-use
/// on *different* graphs never serializes the expensive part.
std::mutex& graph_cache_mutex() {
  static std::mutex mu;
  return mu;
}

/// Publishes `build()`'s result into the cached field `slot` exactly
/// once; losers of the build race drop their copy and adopt the winner's.
template <typename T, typename Build>
const std::shared_ptr<T>& publish_once(std::shared_ptr<T>& slot,
                                       const Build& build) {
  {
    const std::lock_guard<std::mutex> lock(graph_cache_mutex());
    if (slot) return slot;
  }
  std::shared_ptr<T> built = build();
  const std::lock_guard<std::mutex> lock(graph_cache_mutex());
  if (!slot) slot = std::move(built);
  return slot;
}

}  // namespace

const LevelCsr& ensure_level_csr(const DatasetGraph& g) {
  return *publish_once(g.level_csr, [&g] {
    return std::make_shared<const LevelCsr>(build_level_csr(g));
  });
}

const std::shared_ptr<const std::vector<int>>& shared_net_src(
    const DatasetGraph& g) {
  return publish_once(g.net_src_sh, [&g] {
    return std::make_shared<const std::vector<int>>(g.net_src);
  });
}

const std::shared_ptr<const std::vector<int>>& shared_net_dst(
    const DatasetGraph& g) {
  return publish_once(g.net_dst_sh, [&g] {
    return std::make_shared<const std::vector<int>>(g.net_dst);
  });
}

const std::shared_ptr<const std::vector<int>>& shared_net_sinks(
    const DatasetGraph& g) {
  return publish_once(g.net_sinks_sh, [&g] {
    return std::make_shared<const std::vector<int>>(g.net_sinks);
  });
}

}  // namespace tg::data
