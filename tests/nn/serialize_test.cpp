#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/ops.hpp"
#include "util/check.hpp"

namespace tg::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tg_model.bin";
};

TEST_F(SerializeTest, RoundTripPreservesWeights) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);

  Rng rng2(999);  // different init
  Mlp b(4, 2, 8, 2, &rng2, "m");
  load_parameters(b, path_);

  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    const auto av = a.parameters()[i].data();
    const auto bv = b.parameters()[i].data();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t j = 0; j < av.size(); ++j) EXPECT_EQ(av[j], bv[j]);
  }

  // Same input → same output after loading.
  Tensor x = Tensor::rand_uniform(3, 4, 1.0f, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.data().size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST_F(SerializeTest, ShapeMismatchRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);
  Mlp wrong(4, 2, 16, 2, &rng, "m");  // different hidden width
  EXPECT_THROW(load_parameters(wrong, path_), CheckError);
}

TEST_F(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);
  Mlp wrong(4, 2, 8, 3, &rng, "m");  // extra layer: missing names
  EXPECT_THROW(load_parameters(wrong, path_), CheckError);
}

TEST_F(SerializeTest, MissingFileRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  EXPECT_THROW(load_parameters(a, "/nonexistent/abc.bin"), CheckError);
}

TEST_F(SerializeTest, CorruptMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "garbage data here";
  }
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  EXPECT_THROW(load_parameters(a, path_), CheckError);
}

}  // namespace
}  // namespace tg::nn
