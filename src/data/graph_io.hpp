#pragma once
/// \file graph_io.hpp
/// Binary (de)serialization of extracted DatasetGraphs, mirroring the
/// paper's "all data open-sourced" release: a dataset generated once can
/// be shipped and re-trained on without the generator, placer, router or
/// timer. Format: magic/version header, then length-prefixed tensors and
/// index arrays. Slim graphs only (the Design/DesignRouting handles are
/// not serialized).

#include <string>

#include "data/hetero_graph.hpp"

namespace tg::data {

/// Writes one graph. Throws CheckError on I/O failure.
void save_graph(const DatasetGraph& graph, const std::string& path);

/// Reads a graph previously written by save_graph. The result is slim
/// (design/truth_routing are null).
[[nodiscard]] DatasetGraph load_graph(const std::string& path);

}  // namespace tg::data
