/// \file quickstart.cpp
/// Five-minute tour of the substrate: generate a benchmark circuit, place
/// it, route it (both the Steiner estimate and the ground-truth maze
/// route), run the golden 4-corner STA, print the worst setup path, and
/// finish with a pre-routing GNN inference preview.
///
///   ./quickstart [--design=spm] [--scale=0.0625]
///
/// Profiling: set TG_TRACE=trace.json (Perfetto timeline) and/or
/// TG_METRICS=metrics.json (counter/histogram snapshot), then inspect
/// either file with tools/tg_top. See README "Profiling a run".

#include <cstdio>

#include "core/timing_gnn.hpp"
#include "data/extract.hpp"
#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "sta/paths.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  opts.require_known({"design", "scale"});
  const std::string name = opts.get("design", "spm");
  const double scale = opts.get_double("scale", kDefaultSuiteScale);

  // 1. Library + design generation (stand-ins for SkyWater130 + OpenCores).
  const Library library = build_library();
  const SuiteEntry entry = suite_entry(name, scale);
  Design design = generate_design(entry.spec, library);
  const DesignStats stats = design.stats();
  std::printf("design %s: %lld pins, %lld net edges, %lld cell edges, %lld endpoints\n",
              design.name().c_str(), stats.num_nodes, stats.num_net_edges,
              stats.num_cell_edges, stats.num_endpoints);

  // 2. Placement.
  const PlacementReport placed = place_design(design);
  std::printf("placed: die %.0f x %.0f um, HPWL %.0f um\n", placed.die_width,
              placed.die_height, placed.total_hpwl);

  // 3. Routing: ground truth (maze) vs pre-routing estimate (Steiner).
  double maze_seconds = 0.0;
  RoutingOptions maze_opts;
  maze_opts.mode = RouteMode::kMaze;
  DesignRouting routed;
  {
    ScopedTimer t(&maze_seconds);
    routed = route_design(design, maze_opts);
  }
  std::printf("maze route: %.0f um wire, %d overflows, %.2f s\n",
              routed.total_wirelength, routed.overflow_edges, maze_seconds);

  RoutingOptions est_opts;
  est_opts.mode = RouteMode::kSteiner;
  const DesignRouting estimate = route_design(design, est_opts);
  std::printf("steiner estimate: %.0f um wire, %.3f s\n",
              estimate.total_wirelength, estimate.route_seconds);

  // 4. Golden STA on the routed design; calibrate the clock period the way
  //    the dataset pipeline does.
  TimingGraph graph(design);
  std::printf("timing graph: %zu net arcs, %zu cell arcs, %d levels\n",
              graph.net_arcs().size(), graph.cell_arcs().size(),
              graph.num_levels());
  StaResult sta = run_sta(graph, routed);
  design.set_period(calibrated_period(design, sta.arrival, entry.clock_factor));
  sta = run_sta(graph, routed);
  std::printf("STA: period %.3f ns, WNS(setup) %.4f ns, TNS %.4f, WNS(hold) %.4f, %.3f s\n",
              design.clock_period(), sta.wns_setup, sta.tns_setup,
              sta.wns_hold, sta.sta_seconds);

  // 5. Report the worst setup path.
  const auto paths = worst_paths(graph, sta, 1, /*setup=*/true);
  if (!paths.empty()) {
    std::fputs(format_path(design, sta, paths[0]).c_str(), stdout);
  }

  // 6. Pre-routing GNN preview: extract the dataset graph and run one
  //    (untrained) forward pass of the paper's model, so a single
  //    quickstart run exercises the full gen→place→route→sta→data→nn→core
  //    pipeline — and a TG_TRACE of it shows spans from every layer.
  const data::DatasetGraph g = data::extract_graph(design, graph, routed, sta);
  core::TimingGnnConfig gnn_config;
  gnn_config.net.hidden = 8;
  gnn_config.net.mlp_hidden = 8;
  gnn_config.prop.hidden = 8;
  gnn_config.prop.mlp_hidden = 8;
  core::TimingGnn gnn(gnn_config);
  const core::PropPlan plan = core::build_prop_plan(g);
  double infer_seconds = 0.0;
  core::TimingGnn::Prediction pred;
  {
    ScopedTimer t(&infer_seconds);
    pred = gnn.forward(g, plan);
  }
  std::printf(
      "GNN preview (untrained): %lld nodes -> atslew %lldx%lld in %.3f s\n",
      g.num_nodes, pred.atslew.rows(), pred.atslew.cols(), infer_seconds);
  return 0;
}
