/// \file fuzz_partition_test.cpp
/// Structured fuzz driver for the shard partitioner and its validator
/// (DESIGN.md §13): TG_FUZZ_ITERS seeded iterations, each building a real
/// partition of a generated design for a random K (including K=1 and
/// K > #pins), asserting it validates clean, then corrupting it —
/// dangling ghost refs, duplicated/dropped ownership, shard_of rewrites,
/// emptied shards, ghost-list damage — and asserting validate_partition
/// either accepts or reports a structured diagnostic. Never crashes.

#include <gtest/gtest.h>

#include <vector>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "sta/partition.hpp"
#include "sta/validate.hpp"
#include "testing/fixtures.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

/// One random structural corruption of `part`. Some edits can no-op (e.g.
/// swapping a pin with itself); the driver treats a clean validation of a
/// mutated partition as success, not failure.
void mutate_partition(Partition& part, int num_pins, Rng& rng) {
  const int k = part.num_shards;
  auto pick_shard = [&] { return static_cast<int>(rng.uniform_int(0, k - 1)); };
  switch (rng.uniform_int(0, 6)) {
    case 0: {  // dangling ghost ref (possibly far out of range)
      auto& ghosts = part.ghosts[static_cast<std::size_t>(pick_shard())];
      ghosts.push_back(
          static_cast<PinId>(num_pins + rng.uniform_int(0, 99)));
      break;
    }
    case 1: {  // drop a ghost entry
      auto& ghosts = part.ghosts[static_cast<std::size_t>(pick_shard())];
      if (!ghosts.empty()) {
        ghosts.erase(ghosts.begin() +
                     rng.uniform_int(0, static_cast<std::int64_t>(
                                            ghosts.size()) - 1));
      }
      break;
    }
    case 2: {  // rewrite shard_of of one pin
      if (num_pins > 0) {
        const auto p = static_cast<std::size_t>(
            rng.uniform_int(0, num_pins - 1));
        part.shard_of[p] = pick_shard();
      }
      break;
    }
    case 3: {  // duplicate an owned pin into another shard
      const int s = pick_shard();
      auto& own = part.owned[static_cast<std::size_t>(s)];
      if (!own.empty()) {
        const PinId p = own[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(own.size()) - 1))];
        part.owned[static_cast<std::size_t>(pick_shard())].push_back(p);
      }
      break;
    }
    case 4: {  // drop an owned pin (pin owned by no shard)
      auto& own = part.owned[static_cast<std::size_t>(pick_shard())];
      if (!own.empty()) {
        own.erase(own.begin() +
                  rng.uniform_int(0, static_cast<std::int64_t>(own.size()) -
                                         1));
      }
      break;
    }
    case 5: {  // empty out a whole shard, leaving shard_of stale
      part.owned[static_cast<std::size_t>(pick_shard())].clear();
      break;
    }
    default: {  // list an owned pin as this shard's own ghost
      const int s = pick_shard();
      auto& own = part.owned[static_cast<std::size_t>(s)];
      if (!own.empty()) {
        part.ghosts[static_cast<std::size_t>(s)].push_back(
            own[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(own.size()) - 1))]);
      }
      break;
    }
  }
}

TEST(FuzzPartition, MutatedPartitionsNeverCrashValidator) {
  const Library lib = build_library();
  Design design = generate_design(suite_entry("spm", 1.0 / 64).spec, lib);
  const TimingGraph graph(design);
  const int n = graph.num_nodes();
  ASSERT_GT(n, 0);

  const int iters = tg::testing::fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Rng rng(0x5AADULL * 1000003ULL + static_cast<std::uint64_t>(i));
    // Random K spanning the degenerate ends: K=1 (no exchange at all) and
    // K > #pins (trailing empty shards).
    const std::int64_t pick = rng.uniform_int(0, 9);
    const int k =
        pick == 0 ? 1
        : pick == 9
            ? n + 1 + static_cast<int>(rng.uniform_int(0, 15))
            : 1 + static_cast<int>(rng.uniform_int(0, 15));

    Partition part = partition_timing_graph(graph, k);
    {
      DiagSink sink;
      validate_partition(graph, part, sink, ValidateLevel::kFull);
      ASSERT_TRUE(sink.ok())
          << "iteration " << i << " K=" << k << "\n" << sink.report_text();
    }

    const int edits = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int e = 0; e < edits; ++e) mutate_partition(part, n, rng);
    // Must terminate with either a clean bill or structured diagnostics —
    // any crash/UB here is the bug this driver hunts.
    DiagSink sink;
    validate_partition(graph, part, sink, ValidateLevel::kFull);
  }
}

}  // namespace
}  // namespace tg
