/// \file micro_sta.cpp
/// Microbenchmarks for the golden STA substrate: timing-graph build,
/// levelization, and full 4-corner propagation — the denominators of the
/// paper's Table-5 runtime comparison. Every propagation bench exists in a
/// levelized, an async-worklist, and a fault-isolated sharded flavor (see
/// util/task_graph.hpp and sta/shard.hpp); the `--sweep` matrix crosses
/// design × engine × threads (plus a shard-count K sweep at the largest
/// thread count) so the async/shard-vs-level speedups on deep-level
/// designs are recorded in BENCH_micro_sta.json.
///
///   micro_sta --scale=0.125      # design scale (default 1/16 of Table 1)
///
/// `--json` additionally embeds an "occupancy" section: per design, the
/// level count and a log2 histogram of nodes-per-level — the structural
/// quantity that decides how much a barrier-free engine can win (many
/// narrow levels → the level engine serializes, the worklist engine
/// doesn't) — and a "shard_ghosts" section: per design × K, the ghost
/// population and the exchange traffic (exports, bytes, verifies) of one
/// full sharded sweep, the cost model of the partition boundary.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "micro_common.hpp"
#include "place/placer.hpp"
#include "sta/incremental.hpp"
#include "sta/paths.hpp"
#include "sta/shard.hpp"
#include "util/parallel.hpp"
#include "util/task_graph.hpp"

namespace tg {
namespace {

/// Design scale shared by every bench in this file (--scale=X).
double g_scale = 1.0 / 16;

/// Sets the propagation engine for one benchmark body and restores the
/// previous choice afterwards, so bench ordering cannot leak state.
struct EngineScope {
  explicit EngineScope(StaEngine engine) { set_sta_engine(engine); }
  ~EngineScope() { set_sta_engine(saved_); }
  StaEngine saved_ = sta_engine();
};

/// Same idea for the sharded engine's K knob.
struct ShardScope {
  explicit ShardScope(int k) { set_sta_shards(k); }
  ~ShardScope() { set_sta_shards(saved_); }
  int saved_ = sta_shards();
};

/// A deep-narrow stress design that is NOT in the Table-1 suite: long
/// adder/xor chains, tiny fanout, register-to-register depth ~8× the suite
/// designs. Its level profile (hundreds of levels a handful of nodes wide)
/// is the worst case for per-level barriers and the best case for the
/// async worklist — the design the ≥1.3x acceptance number is measured on.
DesignSpec deepchain_spec(double scale) {
  DesignSpec spec;
  spec.name = "deepchain";
  spec.seed = 97;
  spec.target_nodes = static_cast<int>(128000 * scale);
  spec.target_endpoints = static_cast<int>(3200 * scale);
  spec.num_inputs = 32;
  spec.depth = 96;
  spec.max_fanout = 4;
  spec.w_random = 0.2;
  spec.w_adder = 2.0;
  spec.w_xor = 1.0;
  spec.w_mux = 0.2;
  spec.w_sbox = 0.1;
  spec.w_decoder = 0.0;
  return spec;
}

struct Prepared {
  Library lib;
  std::unique_ptr<Design> design;
  DesignRouting routing;
};

const Prepared& prepared(const char* name, double scale) {
  static std::map<std::string, std::unique_ptr<Prepared>> cache;
  const std::string key = std::string(name) + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto p = std::make_unique<Prepared>();
    p->lib = build_library();
    const DesignSpec spec = std::string(name) == "deepchain"
                                ? deepchain_spec(scale)
                                : suite_entry(name, scale).spec;
    p->design = std::make_unique<Design>(generate_design(spec, p->lib));
    place_design(*p->design);
    RoutingOptions opts;
    opts.mode = RouteMode::kSteiner;
    p->routing = route_design(*p->design, opts);
    it = cache.emplace(key, std::move(p)).first;
  }
  return *it->second;
}

void BM_TimingGraphBuild(benchmark::State& state) {
  const Prepared& p = prepared("picorv32a", g_scale);
  for (auto _ : state) {
    TimingGraph graph(*p.design);
    benchmark::DoNotOptimize(graph.num_levels());
  }
  state.SetItemsProcessed(state.iterations() * p.design->num_pins());
}
BENCHMARK(BM_TimingGraphBuild);

/// Full 4-corner propagation under a given engine; shared body of the
/// BM_StaPropagation* family.
void run_propagation(benchmark::State& state, const char* design,
                     StaEngine engine) {
  const EngineScope scope(engine);
  const Prepared& p = prepared(design, g_scale);
  const TimingGraph graph(*p.design);
  for (auto _ : state) {
    const StaResult sta = run_sta(graph, p.routing);
    benchmark::DoNotOptimize(sta.wns_setup);
  }
  state.SetItemsProcessed(state.iterations() * p.design->num_pins());
}

void BM_StaPropagation(benchmark::State& state) {
  run_propagation(state, "picorv32a", StaEngine::kLevel);
}
BENCHMARK(BM_StaPropagation);

void BM_StaPropagationAsync(benchmark::State& state) {
  run_propagation(state, "picorv32a", StaEngine::kAsync);
}
BENCHMARK(BM_StaPropagationAsync);

void BM_StaPropagationShard(benchmark::State& state) {
  run_propagation(state, "picorv32a", StaEngine::kShard);
}
BENCHMARK(BM_StaPropagationShard);

void BM_StaPropagationLarge(benchmark::State& state) {
  run_propagation(state, "aes256", StaEngine::kLevel);
}
BENCHMARK(BM_StaPropagationLarge);

void BM_StaPropagationDeep(benchmark::State& state) {
  run_propagation(state, "deepchain", StaEngine::kLevel);
}
BENCHMARK(BM_StaPropagationDeep);

void BM_StaPropagationDeepAsync(benchmark::State& state) {
  run_propagation(state, "deepchain", StaEngine::kAsync);
}
BENCHMARK(BM_StaPropagationDeepAsync);

void BM_StaPropagationDeepShard(benchmark::State& state) {
  run_propagation(state, "deepchain", StaEngine::kShard);
}
BENCHMARK(BM_StaPropagationDeepShard);

void BM_WorstPaths(benchmark::State& state) {
  const Prepared& p = prepared("picorv32a", g_scale);
  const TimingGraph graph(*p.design);
  const StaResult sta = run_sta(graph, p.routing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(worst_paths(graph, sta, 10).size());
  }
}
BENCHMARK(BM_WorstPaths);

/// Cost of re-timing after a single-net ECO, vs BM_StaPropagation's full
/// run on the same design. The async flavor exercises the dirty-cone
/// worklist seeding instead of the serial priority-queue walk.
void run_incremental(benchmark::State& state, StaEngine engine) {
  const EngineScope scope(engine);
  Prepared& p = const_cast<Prepared&>(prepared("picorv32a", g_scale));
  const TimingGraph graph(*p.design);
  IncrementalTimer inc(graph, &p.routing);
  NetId net = 0;
  for (NetId n = 0; n < p.design->num_nets(); ++n) {
    if (!p.design->net(n).is_clock) {
      net = n;
      break;
    }
  }
  double factor = 1.1;
  for (auto _ : state) {
    for (auto& d : p.routing.nets[static_cast<std::size_t>(net)].sink_delay) {
      for (double& v : d) v *= factor;
    }
    // Exact inverse so the routing oscillates between two fixed states:
    // every iteration changes values, but no drift accumulates across
    // iterations (a drifting cone makes the measured work non-stationary
    // and the CI baseline comparison meaningless).
    factor = 1.0 / factor;
    inc.invalidate_net(net);
    benchmark::DoNotOptimize(inc.update());
  }
  state.SetItemsProcessed(state.iterations() * inc.last_update_visited());
}

void BM_IncrementalOneNet(benchmark::State& state) {
  run_incremental(state, StaEngine::kLevel);
}
BENCHMARK(BM_IncrementalOneNet);

void BM_IncrementalOneNetAsync(benchmark::State& state) {
  run_incremental(state, StaEngine::kAsync);
}
BENCHMARK(BM_IncrementalOneNetAsync);

void BM_IncrementalOneNetShard(benchmark::State& state) {
  run_incremental(state, StaEngine::kShard);
}
BENCHMARK(BM_IncrementalOneNetShard);

void BM_NldmLookup(benchmark::State& state) {
  const Library lib = build_library();
  const CellType& cell = lib.cell(lib.find_cell("NAND2_X1"));
  const NldmLut& lut = cell.arcs[0].delay[corner_index(Mode::kLate, Trans::kRise)];
  Rng rng(1);
  std::vector<std::pair<double, double>> queries(1024);
  for (auto& [s, l] : queries) {
    s = rng.uniform(0.005, 0.7);
    l = rng.uniform(0.0005, 0.3);
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& [s, l] : queries) acc += lut.lookup(s, l);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NldmLookup);

/// The designs the sweep and the occupancy section cover: the two suite
/// anchors plus the deep-narrow stress case.
constexpr const char* kSweepDesigns[] = {"picorv32a", "aes256", "deepchain"};

/// --sweep: full-timer update across thread counts × designs × engines —
/// the parallel-scaling regression matrix (see micro_common.hpp). Names
/// are `SWEEP_StaPropagation/<design>/<engine>/threads:<t>`, so the sweep
/// summary prints one speedup line per design/engine pair and the JSON
/// records level-vs-async-vs-shard at every thread count. The sharded
/// engine additionally gets a K column at the largest thread count
/// (`SWEEP_StaPropagationShardK/<design>/K:<k>/threads:<t>`) — the
/// boundary-exchange overhead as a function of shard count.
void register_sweep(const std::vector<int>& thread_counts) {
  constexpr StaEngine kEngines[] = {StaEngine::kLevel, StaEngine::kAsync,
                                    StaEngine::kShard};
  for (const char* design : kSweepDesigns) {
    for (const StaEngine engine : kEngines) {
      for (const int t : thread_counts) {
        const std::string name = std::string("SWEEP_StaPropagation/") +
                                 design + "/" + sta_engine_name(engine) +
                                 "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(
            name.c_str(), [design, engine, t](benchmark::State& state) {
              set_num_threads(t);
              const EngineScope scope(engine);
              const Prepared& p = prepared(design, g_scale);
              const TimingGraph graph(*p.design);
              for (auto _ : state) {
                const StaResult sta = run_sta(graph, p.routing);
                benchmark::DoNotOptimize(sta.wns_setup);
              }
              state.SetItemsProcessed(state.iterations() *
                                      p.design->num_pins());
            });
      }
    }
    const int tmax = *std::max_element(thread_counts.begin(),
                                       thread_counts.end());
    for (const int k : {1, 2, 4, 8}) {
      const std::string name = std::string("SWEEP_StaPropagationShardK/") +
                               design + "/K:" + std::to_string(k) +
                               "/threads:" + std::to_string(tmax);
      benchmark::RegisterBenchmark(
          name.c_str(), [design, k, tmax](benchmark::State& state) {
            set_num_threads(tmax);
            const EngineScope scope(StaEngine::kShard);
            const ShardScope shards(k);
            const Prepared& p = prepared(design, g_scale);
            const TimingGraph graph(*p.design);
            for (auto _ : state) {
              const StaResult sta = run_sta(graph, p.routing);
              benchmark::DoNotOptimize(sta.wns_setup);
            }
            state.SetItemsProcessed(state.iterations() *
                                    p.design->num_pins());
          });
    }
  }
}

/// Per-design level-occupancy section for --json: level count plus a log2
/// nodes-per-level histogram (`width_hist[k]` = number of levels whose
/// width is in [2^k, 2^(k+1))). Deep designs put most levels in the low
/// buckets — exactly where per-level barriers stop scaling.
std::string occupancy_json() {
  std::string out = "\"occupancy\": {";
  bool first_design = true;
  for (const char* design : kSweepDesigns) {
    const Prepared& p = prepared(design, g_scale);
    const TimingGraph graph(*p.design);
    std::vector<long long> hist;
    long long max_width = 0;
    for (int l = 0; l < graph.num_levels(); ++l) {
      const auto width = static_cast<long long>(graph.level_pins(l).size());
      max_width = std::max(max_width, width);
      std::size_t bucket = 0;
      while ((1LL << (bucket + 1)) <= width) ++bucket;
      if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
      ++hist[bucket];
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\": {\"pins\": %d, \"levels\": %d, "
                  "\"max_width\": %lld, \"mean_width\": %.1f, "
                  "\"width_hist_log2\": [",
                  first_design ? "" : ", ", design, graph.num_nodes(),
                  graph.num_levels(),
                  max_width,
                  graph.num_levels() > 0
                      ? static_cast<double>(graph.num_nodes()) /
                            static_cast<double>(graph.num_levels())
                      : 0.0);
    out += buf;
    for (std::size_t k = 0; k < hist.size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(hist[k]);
    }
    out += "]}";
    first_design = false;
  }
  out += "}";
  return out;
}

/// Ghost-traffic extras for --json: one full sharded sweep per design × K,
/// reporting the partition's ghost population and the exchange counters
/// from sta/shard.hpp — how much boundary state a K-way split moves.
std::string shard_ghosts_json() {
  std::string out = "\"shard_ghosts\": {";
  bool first_design = true;
  for (const char* design : kSweepDesigns) {
    const Prepared& p = prepared(design, g_scale);
    const TimingGraph graph(*p.design);
    out += std::string(first_design ? "" : ", ") + "\"" + design + "\": {";
    bool first_k = true;
    for (const int k : {1, 2, 4, 8}) {
      const EngineScope scope(StaEngine::kShard);
      const ShardScope shards(k);
      reset_shard_stats();
      const StaResult sta = run_sta(graph, p.routing);
      benchmark::DoNotOptimize(sta.wns_setup);
      const ShardPlan& plan = graph.shard_plan(k);
      std::size_t ghost_pins = 0;
      for (const auto& g : plan.part.ghosts) ghost_pins += g.size();
      const ShardStats s = shard_stats();
      char buf[224];
      std::snprintf(buf, sizeof(buf),
                    "%s\"%d\": {\"ghost_pins\": %zu, "
                    "\"ghost_exports\": %llu, \"ghost_bytes\": %llu, "
                    "\"ghost_verifies\": %llu, \"ghost_mismatches\": %llu}",
                    first_k ? "" : ", ", k, ghost_pins,
                    static_cast<unsigned long long>(s.ghost_exports),
                    static_cast<unsigned long long>(s.ghost_bytes),
                    static_cast<unsigned long long>(s.ghost_verifies),
                    static_cast<unsigned long long>(s.ghost_mismatches));
      out += buf;
      first_k = false;
    }
    out += "}";
    first_design = false;
  }
  out += "}";
  return out;
}

/// The --json extras section: occupancy + ghost traffic, two top-level
/// members.
std::string extras_json() {
  return occupancy_json() + ", " + shard_ghosts_json();
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  // Strip the micro_sta-specific --scale flag before the shared driver
  // (and google-benchmark) see argv.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      const double s = std::atof(arg.c_str() + 8);
      if (s > 0.0) tg::g_scale = s;
      continue;
    }
    args.push_back(argv[i]);
  }
  return tg::bench_micro::run_micro_main(static_cast<int>(args.size()),
                                         args.data(), tg::register_sweep,
                                         tg::extras_json);
}
