#pragma once
/// \file metrics.hpp
/// Regression quality metrics. R² is the paper's headline metric
/// (Tables 4 and 5): 1 − SS_res/SS_tot, which can go negative for
/// predictors worse than the mean — exactly how the paper reports the
/// failing deep-GCNII configurations.

#include <span>

namespace tg {

/// Coefficient of determination. Returns 1 for a perfect fit, 0 for a
/// mean predictor, negative for worse. Constant targets with nonzero
/// residual yield -inf-free large negatives (guarded denominator).
[[nodiscard]] double r2_score(std::span<const double> y_true,
                              std::span<const double> y_pred);
[[nodiscard]] double r2_score(std::span<const float> y_true,
                              std::span<const float> y_pred);

[[nodiscard]] double mae(std::span<const double> y_true,
                         std::span<const double> y_pred);
[[nodiscard]] double rmse(std::span<const double> y_true,
                          std::span<const double> y_pred);
[[nodiscard]] double pearson_r(std::span<const double> y_true,
                               std::span<const double> y_pred);

}  // namespace tg
