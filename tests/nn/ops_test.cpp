#include "nn/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace tg::nn {
namespace {

TEST(Ops, AddSameShape) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::from_vector({10, 20, 30, 40}, 2, 2);
  Tensor c = add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 44.0f);
}

TEST(Ops, AddRowBroadcast) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::from_vector({100, 200}, 1, 2);
  Tensor c = add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 101.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 204.0f);
}

TEST(Ops, AddShapeMismatchThrows) {
  Tensor a = Tensor::zeros(2, 2);
  Tensor b = Tensor::zeros(3, 2);
  EXPECT_THROW(add(a, b), CheckError);
}

TEST(Ops, SubAndScale) {
  Tensor a = Tensor::from_vector({5, 7}, 2, 1);
  Tensor b = Tensor::from_vector({1, 2}, 2, 1);
  Tensor c = sub(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1), 5.0f);
  Tensor d = scale(a, -2.0f);
  EXPECT_FLOAT_EQ(d.at(1), -14.0f);
}

TEST(Ops, MatmulKnownValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::from_vector({5, 6, 7, 8}, 2, 2);
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulShapes) {
  Tensor a = Tensor::zeros(3, 4);
  Tensor b = Tensor::zeros(4, 5);
  EXPECT_EQ(matmul(a, b).rows(), 3);
  EXPECT_EQ(matmul(a, b).cols(), 5);
  EXPECT_THROW(matmul(b, a), CheckError);
}

TEST(Ops, Activations) {
  Tensor x = Tensor::from_vector({-2, 0, 3}, 3, 1);
  Tensor r = relu(x);
  EXPECT_FLOAT_EQ(r.at(0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(2), 3.0f);
  Tensor s = sigmoid(x);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6);
  EXPECT_GT(s.at(2), 0.95f);
  Tensor t = tanh_op(x);
  EXPECT_NEAR(t.at(1), 0.0f, 1e-6);
  Tensor sp = softplus(x);
  EXPECT_GT(sp.at(0), 0.0f);
  EXPECT_NEAR(sp.at(2), 3.0f + std::log1p(std::exp(-3.0f)), 1e-5);
  Tensor lr = leaky_relu(x, 0.1f);
  EXPECT_FLOAT_EQ(lr.at(0), -0.2f);
}

TEST(Ops, SoftplusLargeInputStable) {
  Tensor x = Tensor::from_vector({100.0f}, 1, 1);
  EXPECT_FLOAT_EQ(softplus(x).at(0), 100.0f);
}

TEST(Ops, ConcatAndSliceCols) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::from_vector({9, 8}, 2, 1);
  const Tensor parts[] = {a, b};
  Tensor c = concat_cols(parts);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
  Tensor s = slice_cols(c, 1, 3);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(0, 1), 9.0f);
}

TEST(Ops, ConcatRows) {
  Tensor a = Tensor::from_vector({1, 2}, 1, 2);
  Tensor b = Tensor::from_vector({3, 4, 5, 6}, 2, 2);
  const Tensor parts[] = {a, b};
  Tensor c = concat_rows(parts);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(Ops, GatherRows) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, 3, 2);
  Tensor g = gather_rows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(Ops, MultiGather) {
  Tensor a = Tensor::from_vector({1, 2}, 1, 2);
  Tensor b = Tensor::from_vector({3, 4, 5, 6}, 2, 2);
  const Tensor sources[] = {a, b};
  Tensor g = multi_gather(sources, {1, 0, 1}, {1, 0, 0});
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 4.0f);
}

TEST(Ops, SegmentSum) {
  Tensor a = Tensor::from_vector({1, 10, 2, 20, 3, 30}, 3, 2);
  Tensor s = segment_sum(a, {1, 1, 0}, 3);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_FLOAT_EQ(s.at(0, 0), 3.0f);   // row 2
  EXPECT_FLOAT_EQ(s.at(1, 0), 3.0f);   // rows 0+1
  EXPECT_FLOAT_EQ(s.at(1, 1), 30.0f);  // 10+20
  EXPECT_FLOAT_EQ(s.at(2, 0), 0.0f);   // empty
}

TEST(Ops, SegmentMax) {
  Tensor a = Tensor::from_vector({1, 10, 5, 2, 3, 30}, 3, 2);
  Tensor m = segment_max(a, {0, 0, 1}, 2);
  EXPECT_FLOAT_EQ(m.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 30.0f);
}

TEST(Ops, SegmentMaxNegativeValues) {
  Tensor a = Tensor::from_vector({-5, -2}, 2, 1);
  Tensor m = segment_max(a, {0, 0}, 2);
  EXPECT_FLOAT_EQ(m.at(0), -2.0f);  // max of negatives, not zero
  EXPECT_FLOAT_EQ(m.at(1), 0.0f);   // empty segment = 0
}

TEST(Ops, Spmm) {
  // Y[dst] += w * X[src]: two edges into row 0.
  Tensor x = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  Tensor y = spmm({0, 1}, {0, 0}, {0.5f, 2.0f}, x, 3);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.5f * 1 + 2.0f * 3);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.5f * 2 + 2.0f * 4);
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.0f);
}

TEST(Ops, SumMeanAll) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, 2, 2);
  EXPECT_FLOAT_EQ(sum_all(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(mean_all(a).item(), 2.5f);
}

TEST(Ops, MseLoss) {
  Tensor p = Tensor::from_vector({1, 2}, 2, 1);
  Tensor t = Tensor::from_vector({0, 4}, 2, 1);
  EXPECT_FLOAT_EQ(mse_loss(p, t).item(), (1.0f + 4.0f) / 2.0f);
}

TEST(Ops, MseLossRowsSubset) {
  Tensor p = Tensor::from_vector({1, 2, 3}, 3, 1);
  Tensor t = Tensor::from_vector({0, 5}, 2, 1);
  // rows {0, 2} vs targets {0, 5}: ((1-0)² + (3-5)²)/2.
  EXPECT_FLOAT_EQ(mse_loss_rows(p, {0, 2}, t).item(), 2.5f);
}

TEST(Ops, SoftmaxGroupsNormalizes) {
  Tensor a = Tensor::from_vector({0, 0, 1, 3}, 1, 4);
  Tensor s = softmax_groups(a, 2);
  EXPECT_NEAR(s.at(0, 0) + s.at(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(s.at(0, 2) + s.at(0, 3), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(s.at(0, 0), s.at(0, 1));  // equal logits
  EXPECT_GT(s.at(0, 3), s.at(0, 2));
}

TEST(Ops, SoftmaxGroupsLargeLogitsStable) {
  Tensor a = Tensor::from_vector({1000, 1000}, 1, 2);
  Tensor s = softmax_groups(a, 2);
  EXPECT_NEAR(s.at(0, 0), 0.5f, 1e-6);
}

TEST(Ops, LutKronDotBilinearEquivalence) {
  // With one-hot coefficient vectors, lut_kron_dot must read the exact
  // LUT cell: a=e_i, b=e_j → out = lut[i*d+j].
  const std::int64_t d = 3;
  std::vector<float> lut_vals(9);
  for (int i = 0; i < 9; ++i) lut_vals[static_cast<std::size_t>(i)] = static_cast<float>(i);
  Tensor lut = Tensor::from_vector(lut_vals, 1, 9);
  Tensor a = Tensor::from_vector({0, 1, 0}, 1, 3);  // e_1
  Tensor b = Tensor::from_vector({0, 0, 1}, 1, 3);  // e_2
  Tensor out = lut_kron_dot(a, b, lut, d);
  EXPECT_EQ(out.cols(), 1);
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);  // row 1, col 2
}

TEST(Ops, LutKronDotMultipleGroups) {
  const std::int64_t d = 2;
  // Two groups of 2×2 LUTs.
  Tensor lut = Tensor::from_vector({1, 2, 3, 4, 10, 20, 30, 40}, 1, 8);
  Tensor a = Tensor::from_vector({1, 0, 0, 1}, 1, 4);
  Tensor b = Tensor::from_vector({0, 1, 1, 0}, 1, 4);
  Tensor out = lut_kron_dot(a, b, lut, d);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);   // group 0: row 0 col 1
  EXPECT_FLOAT_EQ(out.at(0, 1), 30.0f);  // group 1: row 1 col 0
}

TEST(Ops, LutKronDotConvexCombination) {
  // Uniform coefficients = average of all LUT cells.
  const std::int64_t d = 2;
  Tensor lut = Tensor::from_vector({1, 2, 3, 4}, 1, 4);
  Tensor a = Tensor::from_vector({0.5f, 0.5f}, 1, 2);
  Tensor b = Tensor::from_vector({0.5f, 0.5f}, 1, 2);
  EXPECT_FLOAT_EQ(lut_kron_dot(a, b, lut, d).at(0, 0), 2.5f);
}

}  // namespace
}  // namespace tg::nn
