#pragma once
/// \file table.hpp
/// Console table formatter used by the bench harnesses so their output
/// mirrors the paper's tables (aligned columns, group separators, footer
/// average rows).

#include <string>
#include <vector>

namespace tg {

enum class Align { kLeft, kRight };

/// A simple monospace table. Columns are sized to content; numeric cells
/// should be pre-formatted by the caller (format_fixed).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a data row; must match the header arity.
  void add_row(std::vector<std::string> cells);
  /// Append a horizontal separator (e.g. between train and test groups).
  void add_separator();

  /// Column alignment (default: first column left, rest right).
  void set_align(std::size_t col, Align align);

  /// Render to a string, including header and borders.
  [[nodiscard]] std::string to_string() const;

  /// Render and write to stdout.
  void print() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
};

}  // namespace tg
