/// Unit coverage for the invariant checkers themselves: a healthy design
/// passes at every level, and each targeted corruption produces the
/// expected diagnostic (not an abort).

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/validate.hpp"
#include "sta/timing_graph.hpp"
#include "sta/validate.hpp"
#include "testing/fixtures.hpp"

namespace tg {
namespace {

class ValidateDesign : public ::testing::Test {
 protected:
  Library lib_ = tg::testing::small_library();
  Design design_ = tg::testing::small_design(lib_);
};

TEST_F(ValidateDesign, HealthyDesignPassesAllLevels) {
  for (ValidateLevel level :
       {ValidateLevel::kFast, ValidateLevel::kFull}) {
    DiagSink sink;
    validate_design(design_, sink, level);
    EXPECT_TRUE(sink.ok()) << sink.report_text();
  }
  DiagSink psink;
  validate_placement(design_, psink);
  EXPECT_TRUE(psink.ok()) << psink.report_text();
}

TEST_F(ValidateDesign, OutOfRangeNetIdIsReported) {
  design_.pin(0).net = 12345;
  DiagSink sink;
  validate_design(design_, sink, ValidateLevel::kFast);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("net"));
}

TEST_F(ValidateDesign, FlippedDriverFlagIsReported) {
  // Flipping a driver flag either leaves a net driverless or doubles a
  // driver — both must surface.
  for (PinId p = 0; p < design_.num_pins(); ++p) {
    if (design_.pin(p).drives_net) {
      design_.pin(p).drives_net = false;
      break;
    }
  }
  DiagSink sink;
  validate_design(design_, sink, ValidateLevel::kFast);
  EXPECT_FALSE(sink.ok());
}

TEST_F(ValidateDesign, NonFinitePositionIsReportedAtFullLevel) {
  design_.pin(0).pos.x = std::nan("");
  DiagSink sink;
  validate_design(design_, sink, ValidateLevel::kFull);
  EXPECT_FALSE(sink.ok());
  EXPECT_TRUE(sink.contains("finite"));
}

TEST_F(ValidateDesign, OffLevelIsANoOp) {
  design_.pin(0).net = 12345;
  DiagSink sink;
  validate_design(design_, sink, ValidateLevel::kOff);
  EXPECT_TRUE(sink.ok());
  EXPECT_TRUE(sink.empty());
}

TEST_F(ValidateDesign, ValidateMethodThrowsAggregatedDiagError) {
  design_.pin(0).net = 12345;
  EXPECT_THROW(design_.validate(), CheckError);
}

TEST_F(ValidateDesign, TimingGraphOfHealthyDesignValidates) {
  const TimingGraph graph(design_);
  DiagSink sink;
  validate_timing_graph(graph, sink, ValidateLevel::kFull);
  EXPECT_TRUE(sink.ok()) << sink.report_text();
}

}  // namespace
}  // namespace tg
