#include "liberty/liberty_io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace tg {

namespace {

const char* kCornerTag[kNumCorners] = {"early_rise", "early_fall",
                                       "late_rise", "late_fall"};

const char* sense_name(Sense s) {
  switch (s) {
    case Sense::kPositive: return "positive_unate";
    case Sense::kNegative: return "negative_unate";
    case Sense::kNonUnate: return "non_unate";
  }
  return "non_unate";
}

void write_axis(std::ostream& out, const char* name,
                const std::array<double, kLutDim>& axis, int indent) {
  out << std::string(static_cast<std::size_t>(indent), ' ') << name << " (\"";
  for (int i = 0; i < kLutDim; ++i) {
    if (i) out << ", ";
    out << format_fixed(axis[static_cast<std::size_t>(i)], 9);
  }
  out << "\");\n";
}

void write_lut(std::ostream& out, const char* group, const char* tag,
               const NldmLut& lut, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << group << " (" << tag << ") {\n";
  write_axis(out, "index_1", lut.slew_axis(), indent + 2);
  write_axis(out, "index_2", lut.load_axis(), indent + 2);
  out << pad << "  values ( \\\n";
  for (int i = 0; i < kLutDim; ++i) {
    out << pad << "    \"";
    for (int j = 0; j < kLutDim; ++j) {
      if (j) out << ", ";
      out << format_fixed(lut.at(i, j), 9);
    }
    out << (i + 1 < kLutDim ? "\", \\\n" : "\" \\\n");
  }
  out << pad << "  );\n" << pad << "}\n";
}

void write_per_corner(std::ostream& out, const char* name, const PerCorner& v,
                      int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (int c = 0; c < kNumCorners; ++c) {
    out << pad << name << '_' << kCornerTag[c] << " : "
        << format_fixed(v[c], 9) << ";\n";
  }
}

// ---------------------------------------------------------------------
// Tokenizer for the parser.
struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

/// Thrown inside the parser to unwind to the nearest recovery point (the
/// enclosing cell group); never escapes read_liberty.
struct ParseBail {};

class Lexer {
 public:
  Lexer(std::istream& in, DiagSink& sink, const std::string& path)
      : in_(in), sink_(sink), path_(path) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    const int c = in_.peek();
    if (c == EOF) return t;
    if (std::isalpha(c) || c == '_') {
      t.kind = Token::kIdent;
      while (std::isalnum(in_.peek()) || in_.peek() == '_') {
        t.text.push_back(static_cast<char>(in_.get()));
      }
      return t;
    }
    const bool sign_start = (c == '-' || c == '+' || c == '.');
    if (std::isdigit(c) || sign_start) {
      if (sign_start) {
        // Only a number if a digit follows ("->" must stay punctuation).
        const char first = static_cast<char>(in_.get());
        const int peeked = in_.peek();
        in_.unget();
        (void)first;
        if (!std::isdigit(peeked) && peeked != '.') {
          t.kind = Token::kPunct;
          t.text.push_back(static_cast<char>(in_.get()));
          return t;
        }
      }
      t.kind = Token::kNumber;
      while (std::isdigit(in_.peek()) || in_.peek() == '-' ||
             in_.peek() == '+' || in_.peek() == '.' || in_.peek() == 'e' ||
             in_.peek() == 'E') {
        t.text.push_back(static_cast<char>(in_.get()));
      }
      return t;
    }
    if (c == '"') {
      in_.get();
      t.kind = Token::kString;
      while (in_.peek() != '"' && in_.peek() != EOF) {
        const char ch = static_cast<char>(in_.get());
        if (ch == '\n') ++line_;
        t.text.push_back(ch);
      }
      if (in_.get() != '"') {
        sink_.error(Stage::kParse, "unterminated string",
                    SrcLoc{path_, line_});
      }
      return t;
    }
    t.kind = Token::kPunct;
    t.text.push_back(static_cast<char>(in_.get()));
    return t;
  }

 private:
  void skip_ws_and_comments() {
    for (;;) {
      int c = in_.peek();
      if (c == '\n') ++line_;
      if (std::isspace(c)) {
        in_.get();
        continue;
      }
      if (c == '\\') {  // line continuation
        in_.get();
        continue;
      }
      if (c == '/') {
        in_.get();
        if (in_.peek() == '/') {
          while (in_.peek() != '\n' && in_.peek() != EOF) in_.get();
          continue;
        }
        sink_.error(Stage::kParse, "stray '/' (not a comment)",
                    SrcLoc{path_, line_});
        continue;  // skip the character and keep lexing
      }
      return;
    }
  }

  std::istream& in_;
  DiagSink& sink_;
  std::string path_;
  int line_ = 1;
};

/// Recovering recursive-descent parser over group(args) { statements }
/// syntax. Errors inside a cell group unwind via ParseBail; the library
/// loop drops the broken cell and resynchronizes at the next `cell`
/// keyword, so every malformed cell yields its diagnostics while the rest
/// of the library still loads.
class Parser {
 public:
  Parser(std::istream& in, DiagSink& sink, const std::string& path)
      : lex_(in, sink, path), sink_(sink), path_(path) {
    advance();
  }

  Library parse_library() {
    Library lib;
    try {
      expect_ident("library");
      skip_args();
      expect_punct("{");
    } catch (const ParseBail&) {
      sync_to_cell();
    }
    while (!at_punct("}")) {
      if (at_end()) {
        error("unexpected end of file (missing closing '}' of library)");
        return lib;
      }
      if (cur_.kind != Token::kIdent) {
        error("expected a statement keyword");
        advance();
        continue;
      }
      const std::string head = cur_.text;
      if (head == "cell") {
        const int cell_line = cur_.line;
        advance();
        try {
          CellType cell = parse_cell();
          try {
            lib.add_cell(std::move(cell));
          } catch (const CheckError& e) {
            TG_DIAG(sink_, Severity::kError, Stage::kParse,
                    (SrcLoc{path_, cell_line}), "",
                    "cell rejected: " << e.what());
          }
        } catch (const ParseBail&) {
          // Drop the malformed cell and resync; diagnostics were already
          // reported at the failure point.
          sync_to_cell();
        }
      } else {
        advance();
        try {
          skip_statement();
        } catch (const ParseBail&) {
          sync_to_cell();
        }
      }
    }
    return lib;
  }

 private:
  CellType parse_cell() {
    CellType cell;
    expect_punct("(");
    cell.name = take_name();
    expect_punct(")");
    expect_punct("{");
    while (!at_punct("}")) {
      check_not_end("cell group");
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      if (head == "pin") {
        cell.pins.push_back(parse_pin(cell));
      } else if (head == "timing") {
        cell.arcs.push_back(parse_timing(cell));
      } else if (head == "function_class") {
        cell.function = take_attr_value();
      } else if (head == "drive_strength") {
        cell.drive = static_cast<int>(take_attr_number("drive_strength"));
      } else if (head == "is_sequential") {
        cell.is_sequential = take_attr_value() == "true";
      } else if (starts_with(head, "setup_")) {
        // Resolve the corner before consuming the attribute so a bad tag
        // is diagnosed at the tag's own line.
        const int corner = corner_from_tag(head.substr(6));
        cell.setup[corner] = take_attr_number(head.c_str());
      } else if (starts_with(head, "hold_")) {
        const int corner = corner_from_tag(head.substr(5));
        cell.hold[corner] = take_attr_number(head.c_str());
      } else {
        skip_statement();
      }
    }
    expect_punct("}");
    // Reconstruct sequential pin roles from pin flags.
    if (cell.is_sequential) {
      for (std::size_t i = 0; i < cell.pins.size(); ++i) {
        const CellPin& p = cell.pins[i];
        if (p.is_clock) cell.clock_pin = static_cast<int>(i);
        else if (p.dir == PinDir::kInput) cell.data_pin = static_cast<int>(i);
        else cell.output_pin = static_cast<int>(i);
      }
    }
    return cell;
  }

  CellPin parse_pin(const CellType&) {
    CellPin pin;
    expect_punct("(");
    pin.name = take_name();
    expect_punct(")");
    expect_punct("{");
    while (!at_punct("}")) {
      check_not_end("pin group");
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      if (head == "direction") {
        pin.dir = take_attr_value() == "output" ? PinDir::kOutput
                                                : PinDir::kInput;
      } else if (head == "clock") {
        pin.is_clock = take_attr_value() == "true";
      } else if (starts_with(head, "capacitance_")) {
        const int corner = corner_from_tag(head.substr(12));
        pin.cap[corner] = take_attr_number(head.c_str());
      } else {
        skip_statement();
      }
    }
    expect_punct("}");
    return pin;
  }

  TimingArc parse_timing(const CellType& cell) {
    TimingArc arc;
    expect_punct("(");
    const std::string from = take_name();
    // "->" rendered as two puncts
    expect_punct("-");
    expect_punct(">");
    const std::string to = take_name();
    expect_punct(")");
    arc.from_pin = find_pin_index(cell, from);
    arc.to_pin = find_pin_index(cell, to);
    expect_punct("{");
    while (!at_punct("}")) {
      check_not_end("timing group");
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      if (head == "timing_sense") {
        arc.sense = sense_from_name(take_attr_value());
      } else if (head == "cell_delay" || head == "output_slew") {
        expect_punct("(");
        const int corner = corner_from_tag(take_name());
        expect_punct(")");
        const NldmLut lut = parse_lut();
        (head == "cell_delay" ? arc.delay : arc.out_slew)[corner] = lut;
      } else {
        skip_statement();
      }
    }
    expect_punct("}");
    return arc;
  }

  NldmLut parse_lut() {
    std::array<double, kLutDim> slew{}, load{};
    std::array<double, kLutCells> values{};
    expect_punct("{");
    while (!at_punct("}")) {
      check_not_end("LUT group");
      expect_kind(Token::kIdent);
      const std::string head = cur_.text;
      advance();
      expect_punct("(");
      if (head == "index_1" || head == "index_2") {
        auto& axis = head == "index_1" ? slew : load;
        const std::vector<double> vals = take_number_string(head.c_str());
        if (vals.size() != kLutDim) {
          error(head + " axis holds " + std::to_string(vals.size()) +
                " values, expected " + std::to_string(kLutDim));
          throw ParseBail{};
        }
        std::copy(vals.begin(), vals.end(), axis.begin());
        expect_punct(")");
        expect_punct(";");
      } else if (head == "values") {
        int row = 0;
        while (!at_punct(")")) {
          check_not_end("LUT values");
          const std::vector<double> vals = take_number_string("values");
          if (vals.size() != kLutDim) {
            error("LUT row holds " + std::to_string(vals.size()) +
                  " values, expected " + std::to_string(kLutDim));
            throw ParseBail{};
          }
          if (row >= kLutDim) {
            error("too many LUT value rows");
            throw ParseBail{};
          }
          std::copy(vals.begin(), vals.end(), values.begin() + row * kLutDim);
          ++row;
          if (at_punct(",")) advance();
        }
        if (row != kLutDim) {
          error("LUT holds " + std::to_string(row) + " value rows, expected " +
                std::to_string(kLutDim));
          throw ParseBail{};
        }
        expect_punct(")");
        expect_punct(";");
      } else {
        TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), head,
                "unknown LUT field");
        throw ParseBail{};
      }
    }
    expect_punct("}");
    // The LUT constructor enforces strictly-increasing finite axes; a
    // mutated axis must become a diagnostic, not an escaping CheckError.
    try {
      return NldmLut(slew, load, values);
    } catch (const CheckError& e) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), "",
              "invalid LUT: " << e.what());
      throw ParseBail{};
    }
  }

  int find_pin_index(const CellType& cell, const std::string& name) {
    for (std::size_t i = 0; i < cell.pins.size(); ++i) {
      if (cell.pins[i].name == name) return static_cast<int>(i);
    }
    TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), name,
            "timing arc references unknown pin");
    throw ParseBail{};
  }

  int corner_from_tag(const std::string& tag) {
    for (int c = 0; c < kNumCorners; ++c) {
      if (tag == kCornerTag[c]) return c;
    }
    TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), tag,
            "unknown corner tag");
    throw ParseBail{};
  }

  Sense sense_from_name(const std::string& s) {
    if (s == "positive_unate") return Sense::kPositive;
    if (s == "negative_unate") return Sense::kNegative;
    if (s == "non_unate") return Sense::kNonUnate;
    TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), s,
            "unknown timing_sense");
    throw ParseBail{};
  }

  // ---- token helpers ------------------------------------------------
  void advance() { cur_ = lex_.next(); }
  [[nodiscard]] bool at_end() const { return cur_.kind == Token::kEnd; }
  [[nodiscard]] bool at_punct(const char* p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }
  [[nodiscard]] SrcLoc loc() const { return SrcLoc{path_, cur_.line}; }

  void error(const std::string& msg) {
    TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), "",
            msg << (at_end() ? std::string(" (at end of file)")
                             : ", got '" + cur_.text + "'"));
  }

  void check_not_end(const char* where) {
    if (at_end()) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), "",
              "unexpected end of file in " << where);
      throw ParseBail{};
    }
  }

  void expect_kind(Token::Kind k) {
    if (cur_.kind != k) {
      error("unexpected token");
      throw ParseBail{};
    }
  }
  void expect_punct(const char* p) {
    if (!at_punct(p)) {
      error(std::string("expected '") + p + "'");
      throw ParseBail{};
    }
    advance();
  }
  void expect_ident(const char* name) {
    if (!(cur_.kind == Token::kIdent && cur_.text == name)) {
      error(std::string("expected '") + name + "'");
      throw ParseBail{};
    }
    advance();
  }
  std::string take_name() {
    expect_kind(Token::kIdent);
    std::string s = cur_.text;
    advance();
    return s;
  }
  std::string take_attr_value() {
    expect_punct(":");
    std::string s = cur_.text;
    advance();
    expect_punct(";");
    return s;
  }
  double take_attr_number(const char* what) {
    expect_punct(":");
    expect_kind(Token::kNumber);
    const double v = checked_number(cur_.text, what);
    advance();
    expect_punct(";");
    return v;
  }
  /// strtod that must consume the whole token; garbage is a diagnostic,
  /// not a silent zero.
  double checked_number(const std::string& text, const char* what) {
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()) {
      TG_DIAG(sink_, Severity::kError, Stage::kParse, loc(), text,
              "non-numeric " << what << " entry");
      throw ParseBail{};
    }
    return v;
  }
  /// A quoted, comma-separated number list: "0.1, 0.2, ...".
  std::vector<double> take_number_string(const char* what) {
    expect_kind(Token::kString);
    std::vector<double> out;
    for (const std::string& field : split(cur_.text, ',')) {
      out.push_back(checked_number(std::string(trim(field)), what));
    }
    advance();
    return out;
  }
  /// Skips the rest of an unrecognized statement (attribute or group).
  void skip_statement() {
    if (at_punct(":")) {
      while (!at_punct(";")) {
        check_not_end("attribute");
        advance();
      }
      advance();
      return;
    }
    if (at_punct("(")) {
      int depth = 0;
      do {
        check_not_end("argument list");
        if (at_punct("(")) ++depth;
        if (at_punct(")")) --depth;
        advance();
      } while (depth > 0);
    }
    if (at_punct("{")) {
      int depth = 0;
      do {
        check_not_end("group");
        if (at_punct("{")) ++depth;
        if (at_punct("}")) --depth;
        advance();
      } while (depth > 0);
      return;
    }
    if (at_punct(";")) advance();
  }
  void skip_args() {
    expect_punct("(");
    while (!at_punct(")")) {
      check_not_end("argument list");
      advance();
    }
    advance();
  }
  /// Recovery: skip to the next top-level `cell` keyword (or EOF). Brace
  /// depth is ignored on purpose — after a malformed cell the depth is
  /// unknowable, and the `cell` keyword only appears at statement heads in
  /// the subset we emit.
  void sync_to_cell() {
    while (!at_end() && !(cur_.kind == Token::kIdent && cur_.text == "cell")) {
      advance();
    }
  }

  Lexer lex_;
  DiagSink& sink_;
  std::string path_;
  Token cur_;
};

}  // namespace

void write_liberty(const Library& library, std::ostream& out,
                   const std::string& library_name) {
  out << "library (" << library_name << ") {\n";
  out << "  time_unit : ns;\n";
  out << "  capacitance_unit : pf;\n";
  for (const CellType& cell : library.cells()) {
    out << "  cell (" << cell.name << ") {\n";
    out << "    function_class : " << cell.function << ";\n";
    out << "    drive_strength : " << cell.drive << ";\n";
    out << "    is_sequential : " << (cell.is_sequential ? "true" : "false")
        << ";\n";
    if (cell.is_sequential) {
      write_per_corner(out, "setup", cell.setup, 4);
      write_per_corner(out, "hold", cell.hold, 4);
    }
    for (const CellPin& pin : cell.pins) {
      out << "    pin (" << pin.name << ") {\n";
      out << "      direction : "
          << (pin.dir == PinDir::kOutput ? "output" : "input") << ";\n";
      out << "      clock : " << (pin.is_clock ? "true" : "false") << ";\n";
      if (pin.dir == PinDir::kInput) {
        write_per_corner(out, "capacitance", pin.cap, 6);
      }
      out << "    }\n";
    }
    for (const TimingArc& arc : cell.arcs) {
      out << "    timing ("
          << cell.pins[static_cast<std::size_t>(arc.from_pin)].name << " -> "
          << cell.pins[static_cast<std::size_t>(arc.to_pin)].name << ") {\n";
      out << "      timing_sense : " << sense_name(arc.sense) << ";\n";
      for (int c = 0; c < kNumCorners; ++c) {
        write_lut(out, "cell_delay", kCornerTag[c], arc.delay[c], 6);
        write_lut(out, "output_slew", kCornerTag[c], arc.out_slew[c], 6);
      }
      out << "    }\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

void write_liberty_file(const Library& library, const std::string& path,
                        const std::string& library_name) {
  std::ofstream out(path);
  TG_CHECK_MSG(out.is_open(), "cannot write " << path);
  write_liberty(library, out, library_name);
  TG_CHECK_MSG(out.good(), "write failure on " << path);
}

Library read_liberty(std::istream& in, DiagSink& sink,
                     const std::string& path) {
  Parser parser(in, sink, path);
  return parser.parse_library();
}

Library read_liberty_file(const std::string& path, DiagSink& sink) {
  std::ifstream in(path);
  if (!in.is_open()) {
    sink.error(Stage::kParse, "cannot read file", SrcLoc{path, 0});
    return Library{};
  }
  return read_liberty(in, sink, path);
}

Library read_liberty(std::istream& in) {
  DiagSink sink;
  Library lib = read_liberty(in, sink, "<liberty>");
  sink.throw_if_errors("read_liberty");
  return lib;
}

Library read_liberty_file(const std::string& path) {
  DiagSink sink;
  Library lib = read_liberty_file(path, sink);
  sink.throw_if_errors("read_liberty " + path);
  return lib;
}

}  // namespace tg
