
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/maze_router.cpp" "src/route/CMakeFiles/tg_route.dir/maze_router.cpp.o" "gcc" "src/route/CMakeFiles/tg_route.dir/maze_router.cpp.o.d"
  "/root/repo/src/route/rc_tree.cpp" "src/route/CMakeFiles/tg_route.dir/rc_tree.cpp.o" "gcc" "src/route/CMakeFiles/tg_route.dir/rc_tree.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/route/CMakeFiles/tg_route.dir/router.cpp.o" "gcc" "src/route/CMakeFiles/tg_route.dir/router.cpp.o.d"
  "/root/repo/src/route/steiner.cpp" "src/route/CMakeFiles/tg_route.dir/steiner.cpp.o" "gcc" "src/route/CMakeFiles/tg_route.dir/steiner.cpp.o.d"
  "/root/repo/src/route/topology.cpp" "src/route/CMakeFiles/tg_route.dir/topology.cpp.o" "gcc" "src/route/CMakeFiles/tg_route.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tg_place.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tg_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
