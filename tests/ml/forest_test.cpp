#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace tg::ml {
namespace {

struct Toy {
  std::vector<float> x;
  std::vector<float> y;
  std::size_t rows = 0;
  std::size_t cols = 3;
  Matrix matrix() const { return Matrix{x.data(), rows, cols}; }
};

Toy nonlinear_data(int n, Rng& rng) {
  Toy t;
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    const float c = static_cast<float>(rng.uniform());
    t.x.insert(t.x.end(), {a, b, c});
    t.y.push_back(a * b + 0.5f * std::sin(6.28f * c));
    ++t.rows;
  }
  return t;
}

TEST(RandomForest, FitsNonlinearFunction) {
  Rng rng(1);
  const Toy train = nonlinear_data(800, rng);
  const Toy test = nonlinear_data(200, rng);
  RandomForest forest;
  ForestConfig cfg;
  cfg.num_trees = 40;
  forest.fit(train.matrix(), train.y, cfg);
  EXPECT_EQ(forest.num_trees(), 40);

  std::vector<float> pred(test.rows);
  forest.predict_batch(test.matrix(), pred);
  double err = 0.0;
  for (std::size_t i = 0; i < test.rows; ++i) {
    err += std::abs(pred[i] - test.y[i]);
  }
  EXPECT_LT(err / static_cast<double>(test.rows), 0.08);
}

TEST(RandomForest, MoreTreesMoreStable) {
  Rng rng(2);
  const Toy train = nonlinear_data(400, rng);
  const Toy test = nonlinear_data(100, rng);
  auto mae_of = [&](int trees, std::uint64_t seed) {
    RandomForest f;
    ForestConfig cfg;
    cfg.num_trees = trees;
    cfg.seed = seed;
    f.fit(train.matrix(), train.y, cfg);
    std::vector<float> pred(test.rows);
    f.predict_batch(test.matrix(), pred);
    double err = 0.0;
    for (std::size_t i = 0; i < test.rows; ++i) err += std::abs(pred[i] - test.y[i]);
    return err / static_cast<double>(test.rows);
  };
  // Averaged over seeds, 32 trees should beat 1 tree.
  double err1 = 0.0, err32 = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    err1 += mae_of(1, s);
    err32 += mae_of(32, s);
  }
  EXPECT_LT(err32, err1);
}

TEST(RandomForest, DeterministicInSeed) {
  Rng rng(3);
  const Toy train = nonlinear_data(200, rng);
  RandomForest a, b;
  ForestConfig cfg;
  cfg.num_trees = 10;
  cfg.seed = 77;
  a.fit(train.matrix(), train.y, cfg);
  b.fit(train.matrix(), train.y, cfg);
  const float probe[3] = {0.3f, 0.7f, 0.1f};
  EXPECT_FLOAT_EQ(a.predict(probe), b.predict(probe));
}

TEST(RandomForest, PredictBatchMatchesSingle) {
  Rng rng(4);
  const Toy train = nonlinear_data(200, rng);
  const Toy test = nonlinear_data(20, rng);
  RandomForest f;
  f.fit(train.matrix(), train.y, ForestConfig{.num_trees = 8});
  std::vector<float> batch(test.rows);
  f.predict_batch(test.matrix(), batch);
  for (std::size_t i = 0; i < test.rows; ++i) {
    EXPECT_FLOAT_EQ(batch[i],
                    f.predict({test.x.data() + i * test.cols, test.cols}));
  }
}

TEST(RandomForest, RejectsEmptyTraining) {
  RandomForest f;
  Matrix empty{nullptr, 0, 3};
  std::vector<float> y;
  EXPECT_THROW(f.fit(empty, y, ForestConfig{}), tg::CheckError);
}

}  // namespace
}  // namespace tg::ml
