#include "sta/timing_graph.hpp"

#include <queue>

#include "util/check.hpp"

namespace tg {

namespace {

/// Builds CSR arrays from (node, item) pairs.
void build_csr(int num_nodes, const std::vector<std::pair<int, int>>& pairs,
               std::vector<int>& start, std::vector<int>& list) {
  start.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [node, item] : pairs) {
    (void)item;
    ++start[static_cast<std::size_t>(node) + 1];
  }
  for (std::size_t i = 1; i < start.size(); ++i) start[i] += start[i - 1];
  list.resize(pairs.size());
  std::vector<int> cursor(start.begin(), start.end() - 1);
  for (const auto& [node, item] : pairs) {
    list[static_cast<std::size_t>(cursor[static_cast<std::size_t>(node)]++)] = item;
  }
}

}  // namespace

TimingGraph::TimingGraph(const Design& design) : design_(&design) {
  build_arcs();
  levelize();
}

void TimingGraph::build_arcs() {
  const Design& d = *design_;

  in_net_arc_.assign(static_cast<std::size_t>(d.num_pins()), -1);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.is_clock) continue;  // ideal clock: no propagated clock arcs
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const int arc_id = static_cast<int>(net_arcs_.size());
      net_arcs_.push_back(NetArc{net.driver, net.sinks[s], n, static_cast<int>(s)});
      TG_CHECK_MSG(in_net_arc_[static_cast<std::size_t>(net.sinks[s])] == -1,
                   "pin with two incoming net arcs");
      in_net_arc_[static_cast<std::size_t>(net.sinks[s])] = arc_id;
    }
  }

  for (InstId i = 0; i < d.num_instances(); ++i) {
    const Instance& inst = d.instance(i);
    const CellType& cell = d.library().cell(inst.cell_id);
    for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
      const TimingArc& arc = cell.arcs[a];
      cell_arcs_.push_back(CellArc{
          inst.pins[static_cast<std::size_t>(arc.from_pin)],
          inst.pins[static_cast<std::size_t>(arc.to_pin)], i, static_cast<int>(a)});
    }
  }

  std::vector<std::pair<int, int>> in_cell, out_net, out_cell;
  for (std::size_t a = 0; a < cell_arcs_.size(); ++a) {
    in_cell.emplace_back(cell_arcs_[a].to, static_cast<int>(a));
    out_cell.emplace_back(cell_arcs_[a].from, static_cast<int>(a));
  }
  for (std::size_t a = 0; a < net_arcs_.size(); ++a) {
    out_net.emplace_back(net_arcs_[a].from, static_cast<int>(a));
  }
  build_csr(design_->num_pins(), in_cell, in_cell_start_, in_cell_list_);
  build_csr(design_->num_pins(), out_net, out_net_start_, out_net_list_);
  build_csr(design_->num_pins(), out_cell, out_cell_start_, out_cell_list_);
}

std::span<const int> TimingGraph::in_cell_arcs(PinId pin) const {
  const auto b = static_cast<std::size_t>(in_cell_start_[static_cast<std::size_t>(pin)]);
  const auto e = static_cast<std::size_t>(in_cell_start_[static_cast<std::size_t>(pin) + 1]);
  return {in_cell_list_.data() + b, e - b};
}
std::span<const int> TimingGraph::out_net_arcs(PinId pin) const {
  const auto b = static_cast<std::size_t>(out_net_start_[static_cast<std::size_t>(pin)]);
  const auto e = static_cast<std::size_t>(out_net_start_[static_cast<std::size_t>(pin) + 1]);
  return {out_net_list_.data() + b, e - b};
}
std::span<const int> TimingGraph::out_cell_arcs(PinId pin) const {
  const auto b = static_cast<std::size_t>(out_cell_start_[static_cast<std::size_t>(pin)]);
  const auto e = static_cast<std::size_t>(out_cell_start_[static_cast<std::size_t>(pin) + 1]);
  return {out_cell_list_.data() + b, e - b};
}

const TimingArc& TimingGraph::lib_arc(const CellArc& arc) const {
  const Instance& inst = design_->instance(arc.inst);
  const CellType& cell = design_->library().cell(inst.cell_id);
  return cell.arcs[static_cast<std::size_t>(arc.arc_index)];
}

const TaskDag& TimingGraph::forward_dag() const {
  std::call_once(fwd_dag_once_, [this] {
    std::vector<std::pair<int, int>> edges;
    edges.reserve(net_arcs_.size() + cell_arcs_.size());
    for (const NetArc& a : net_arcs_) edges.emplace_back(a.from, a.to);
    for (const CellArc& a : cell_arcs_) edges.emplace_back(a.from, a.to);
    fwd_dag_ = TaskDag::from_edges(design_->num_pins(), edges);
  });
  return fwd_dag_;
}

const TaskDag& TimingGraph::backward_dag() const {
  std::call_once(bwd_dag_once_, [this] {
    std::vector<std::pair<int, int>> edges;
    edges.reserve(net_arcs_.size() + cell_arcs_.size());
    for (const NetArc& a : net_arcs_) edges.emplace_back(a.to, a.from);
    for (const CellArc& a : cell_arcs_) edges.emplace_back(a.to, a.from);
    bwd_dag_ = TaskDag::from_edges(design_->num_pins(), edges);
  });
  return bwd_dag_;
}

void TimingGraph::levelize() {
  const int n = design_->num_pins();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const NetArc& a : net_arcs_) ++indeg[static_cast<std::size_t>(a.to)];
  for (const CellArc& a : cell_arcs_) ++indeg[static_cast<std::size_t>(a.to)];

  level_.assign(static_cast<std::size_t>(n), 0);
  topo_order_.clear();
  topo_order_.reserve(static_cast<std::size_t>(n));
  std::queue<PinId> ready;
  for (PinId p = 0; p < n; ++p) {
    if (indeg[static_cast<std::size_t>(p)] == 0) ready.push(p);
  }
  while (!ready.empty()) {
    const PinId p = ready.front();
    ready.pop();
    topo_order_.push_back(p);
    const int next_level = level_[static_cast<std::size_t>(p)] + 1;
    auto relax = [&](PinId q) {
      level_[static_cast<std::size_t>(q)] =
          std::max(level_[static_cast<std::size_t>(q)], next_level);
      if (--indeg[static_cast<std::size_t>(q)] == 0) ready.push(q);
    };
    for (int a : out_net_arcs(p)) relax(net_arcs_[static_cast<std::size_t>(a)].to);
    for (int a : out_cell_arcs(p)) relax(cell_arcs_[static_cast<std::size_t>(a)].to);
  }
  TG_CHECK_MSG(static_cast<int>(topo_order_.size()) == n,
               "timing graph has a cycle");

  num_levels_ = 0;
  for (int l : level_) num_levels_ = std::max(num_levels_, l + 1);
  by_level_.assign(static_cast<std::size_t>(num_levels_), {});
  for (PinId p : topo_order_) {
    by_level_[static_cast<std::size_t>(level_[static_cast<std::size_t>(p)])].push_back(p);
  }

  // Flat level packing (same per-level order): the sweeps walk one
  // contiguous array via level_pins() instead of chasing ragged vectors.
  level_offsets_.assign(static_cast<std::size_t>(num_levels_) + 1, 0);
  level_pins_.clear();
  level_pins_.reserve(static_cast<std::size_t>(n));
  for (int l = 0; l < num_levels_; ++l) {
    for (PinId p : by_level_[static_cast<std::size_t>(l)]) {
      level_pins_.push_back(p);
    }
    level_offsets_[static_cast<std::size_t>(l) + 1] =
        static_cast<int>(level_pins_.size());
  }
}

}  // namespace tg
