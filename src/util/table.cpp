#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace tg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TG_CHECK(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  TG_CHECK_MSG(cells.size() == headers_.size(),
               "row arity " << cells.size() << " != header arity "
                            << headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::set_align(std::size_t col, Align align) {
  TG_CHECK(col < aligns_.size());
  aligns_[col] = align;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& s,
                       std::size_t c) {
    const std::size_t pad = widths[c] - s.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << s;
    else os << s << std::string(pad, ' ');
  };
  auto emit_sep = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_sep(os);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    emit_cell(os, headers_[c], c);
    os << " |";
  }
  os << '\n';
  emit_sep(os);
  for (const Row& r : rows_) {
    if (r.separator) {
      emit_sep(os);
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      os << ' ';
      emit_cell(os, r.cells[c], c);
      os << " |";
    }
    os << '\n';
  }
  emit_sep(os);
  return os.str();
}

void Table::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace tg
