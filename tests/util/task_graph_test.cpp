/// \file task_graph_test.cpp
/// Unit contract of the dependency-counter worklist engine
/// (util/task_graph.hpp): CSR construction, exactly-once execution in
/// dependency order at any thread count, batched stealing, exception
/// propagation, and the cone runner's seed/pruning semantics. Runs inside
/// parallel_test, so the `tsan` label covers it too.

#include "util/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace tg {
namespace {

class TaskGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Force the worker count to follow the thread count: the scheduling
    // contracts under test must hold at true multi-worker concurrency
    // even when the machine has fewer cores.
    set_task_dag_workers(8);
  }
  void TearDown() override {
    set_num_threads(saved_threads_);
    set_sta_engine(saved_engine_);
    set_task_dag_workers(saved_workers_);
  }
  int saved_threads_ = num_threads();
  StaEngine saved_engine_ = sta_engine();
  int saved_workers_ = task_dag_workers();
};

TaskDag diamond() {
  // Diamond: 0 -> {1, 2}, {1, 2} -> 3.
  const std::pair<int, int> edges[] = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  return TaskDag::from_edges(4, edges);
}

TEST_F(TaskGraphTest, FromEdgesBuildsCsrIndegreeAndRoots) {
  const TaskDag dag = diamond();
  EXPECT_EQ(dag.num_nodes, 4);
  EXPECT_EQ(dag.indegree, (std::vector<int>{0, 1, 1, 2}));
  EXPECT_EQ(dag.roots, (std::vector<int>{0}));
  EXPECT_EQ(dag.successors(0).size(), 2u);
  EXPECT_EQ(dag.successors(3).size(), 0u);
}

TEST_F(TaskGraphTest, ParallelEdgesCountedWithMultiplicity) {
  const std::pair<int, int> edges[] = {{0, 1}, {0, 1}};
  const TaskDag dag = TaskDag::from_edges(2, edges);
  EXPECT_EQ(dag.indegree[1], 2);

  std::atomic<int> fired{0};
  run_task_dag(dag, [&](int) { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 2);  // node 1 still fires exactly once
}

/// Every node runs exactly once, and only after all its predecessors —
/// checked via per-node completion timestamps, at 1 and at 8 threads.
void check_dependency_order(int threads) {
  set_num_threads(threads);
  // A layered DAG with cross-level skips and a fan-in sink.
  std::vector<std::pair<int, int>> edges;
  const int n = 400;
  for (int v = 1; v < n; ++v) {
    edges.emplace_back(v - 1, v);
    if (v >= 7) edges.emplace_back(v - 7, v);  // skip edge
  }
  const TaskDag dag = TaskDag::from_edges(n, edges);

  std::atomic<int> clock{0};
  std::vector<int> done_at(static_cast<std::size_t>(n), -1);
  std::vector<std::atomic<int>> runs(static_cast<std::size_t>(n));
  const TaskDagStats stats = run_task_dag(dag, [&](int v) {
    runs[static_cast<std::size_t>(v)].fetch_add(1);
    done_at[static_cast<std::size_t>(v)] = clock.fetch_add(1);
  });

  EXPECT_EQ(stats.tasks_fired, static_cast<std::uint64_t>(n));
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(runs[static_cast<std::size_t>(v)].load(), 1) << "node " << v;
  }
  for (const auto& [from, to] : edges) {
    EXPECT_LT(done_at[static_cast<std::size_t>(from)],
              done_at[static_cast<std::size_t>(to)])
        << from << " -> " << to;
  }
}

TEST_F(TaskGraphTest, DependencyOrderSerial) { check_dependency_order(1); }
TEST_F(TaskGraphTest, DependencyOrderParallel) { check_dependency_order(8); }

TEST_F(TaskGraphTest, WideDagUsesMultipleWorkersAndSteals) {
  set_num_threads(8);
  // 8 independent chains hanging off one root: plenty to steal.
  std::vector<std::pair<int, int>> edges;
  const int chains = 8, len = 200;
  for (int c = 0; c < chains; ++c) {
    edges.emplace_back(0, 1 + c * len);
    for (int i = 1; i < len; ++i) {
      edges.emplace_back(c * len + i, c * len + i + 1);
    }
  }
  const TaskDag dag = TaskDag::from_edges(1 + chains * len, edges);
  std::atomic<int> fired{0};
  const TaskDagStats stats = run_task_dag(dag, [&](int) { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 1 + chains * len);
  EXPECT_GT(stats.workers, 1);
  EXPECT_GT(stats.max_ready_depth, 0u);
}

TEST_F(TaskGraphTest, EmptyDagIsANoOp) {
  const TaskDag dag;
  const TaskDagStats stats = run_task_dag(dag, [](int) { FAIL(); });
  EXPECT_EQ(stats.tasks_fired, 0u);
}

TEST_F(TaskGraphTest, TaskExceptionIsRethrownAfterDraining) {
  set_num_threads(4);
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < 100; ++v) edges.emplace_back(0, v);
  const TaskDag dag = TaskDag::from_edges(100, edges);
  EXPECT_THROW(
      run_task_dag(dag,
                   [&](int v) {
                     if (v == 0) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST_F(TaskGraphTest, ConeRunsOnlyReachableNodes) {
  set_num_threads(4);
  // Chain 0→1→2→3→4 plus a disjoint chain 5→6.
  const std::pair<int, int> edges[] = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}};
  const TaskDag dag = TaskDag::from_edges(7, edges);

  std::set<int> ran;
  std::mutex mu;
  const int seeds[] = {2};
  const ConeStats cone = run_task_dag_cone(dag, seeds, [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    ran.insert(v);
    return true;  // everything keeps changing
  });
  EXPECT_EQ(cone.cone_nodes, 3);  // {2, 3, 4}
  EXPECT_EQ(cone.evaluated, 3);
  EXPECT_EQ(ran, (std::set<int>{2, 3, 4}));
}

TEST_F(TaskGraphTest, ConePrunesBelowUnchangedNodes) {
  set_num_threads(1);
  const std::pair<int, int> edges[] = {{0, 1}, {1, 2}, {2, 3}};
  const TaskDag dag = TaskDag::from_edges(4, edges);

  std::set<int> ran;
  const int seeds[] = {0};
  const ConeStats cone = run_task_dag_cone(dag, seeds, [&](int v) {
    ran.insert(v);
    return v == 0;  // the seed changes, node 1 absorbs it
  });
  // Seed 0 evaluates and changes → 1 evaluates but reports unchanged →
  // 2 and 3 are skipped (their bookkeeping still runs).
  EXPECT_EQ(cone.cone_nodes, 4);
  EXPECT_EQ(cone.evaluated, 2);
  EXPECT_EQ(ran, (std::set<int>{0, 1}));
}

TEST_F(TaskGraphTest, ConeSeedsAlwaysEvaluate) {
  set_num_threads(1);
  const std::pair<int, int> edges[] = {{0, 1}};
  const TaskDag dag = TaskDag::from_edges(2, edges);
  std::set<int> ran;
  const int seeds[] = {0, 1, 1};  // duplicates allowed
  const ConeStats cone = run_task_dag_cone(dag, seeds, [&](int v) {
    ran.insert(v);
    return false;  // nothing changes — seeds still evaluate
  });
  EXPECT_EQ(cone.evaluated, 2);
  EXPECT_EQ(ran, (std::set<int>{0, 1}));
}

TEST_F(TaskGraphTest, EngineSwitchRoundTrips) {
  set_sta_engine(StaEngine::kAsync);
  EXPECT_EQ(sta_engine(), StaEngine::kAsync);
  EXPECT_STREQ(sta_engine_name(StaEngine::kAsync), "async");
  set_sta_engine(StaEngine::kLevel);
  EXPECT_EQ(sta_engine(), StaEngine::kLevel);
  EXPECT_STREQ(sta_engine_name(StaEngine::kLevel), "level");
}

}  // namespace
}  // namespace tg
