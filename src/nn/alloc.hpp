#pragma once
/// \file alloc.hpp
/// The memory plane under the tensor library (DESIGN.md §10): a
/// size-bucketed caching arena for tensor storage plus the `Buffer` value
/// type `TensorImpl` holds its data and grad in.
///
/// Training allocates the same tensor shapes every step — forward
/// activations, gradients, Adam scratch — so instead of hitting the heap
/// per op, freed blocks park on per-bucket free lists and the next
/// same-bucket acquire reuses them. After a warm-up step the steady-state
/// epoch performs (near) zero mallocs; the `alloc/miss` counter proves it.
///
/// Buckets are byte sizes rounded up to a power of two (min 64 B) below
/// 1 MiB and to the next 1 MiB multiple above, bounding slack at 2× small /
/// ~1 MiB large. All blocks are 64-byte aligned so the SIMD kernels
/// (nn/kernels.hpp) can use aligned loads on any tensor.
///
/// `TG_ALLOC=cache|malloc` picks the mode at process start (default
/// cache); `set_alloc_mode()` flips it programmatically (tests, tools).
/// The arena is thread-safe (one mutex around the free lists — acquire /
/// release are per-tensor, not per-element) and feeds both an always-on
/// internal `AllocStats` (selfcheck assertions) and, when metrics are
/// enabled, the obs registry (`alloc/hit`, `alloc/miss`, `alloc/release`,
/// `alloc/bytes_high_water`, `alloc/bytes_cached`).

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace tg::nn::alloc {

enum class Mode {
  kCache,   ///< bucketed free-list reuse (default)
  kMalloc,  ///< pass-through to the heap (baseline / debugging)
};

/// Current mode; first call resolves TG_ALLOC.
[[nodiscard]] Mode alloc_mode();
/// Switches modes; leaving kCache trims the cache first.
void set_alloc_mode(Mode m);

/// Always-on allocator counters (relaxed atomics — cheap enough to keep
/// unconditional, unlike the gated obs metrics).
struct AllocStats {
  std::uint64_t hits = 0;      ///< acquires served from a free list
  std::uint64_t misses = 0;    ///< acquires that had to call the heap
  std::uint64_t releases = 0;  ///< blocks returned (cached or freed)
  std::uint64_t bytes_live = 0;        ///< currently acquired bucket bytes
  std::uint64_t bytes_high_water = 0;  ///< peak of bytes_live
  std::uint64_t bytes_cached = 0;      ///< bytes parked on free lists
};
[[nodiscard]] AllocStats alloc_stats();
/// Zeroes hit/miss/release counters and re-bases the high-water mark to
/// the current live bytes. Cached blocks stay cached.
void reset_alloc_stats();

/// Frees every cached block; returns the number of bytes released to the
/// heap. Tests and long-lived tools call this between phases.
std::size_t trim_alloc_cache();

/// Bucket-rounded byte size for a request of `bytes` (exposed for tests).
[[nodiscard]] std::size_t bucket_bytes(std::size_t bytes);

/// Acquires storage for `count` floats (64-byte aligned). `*cap` receives
/// the bucket capacity in floats (>= count) so callers can grow in place
/// within the slack. count == 0 returns nullptr with *cap = 0.
[[nodiscard]] float* acquire(std::size_t count, std::size_t* cap);
/// Returns a block previously acquired with capacity `cap` floats.
void release(float* p, std::size_t cap);

/// Arena-backed float array: the storage type behind TensorImpl::data and
/// ::grad. Vector-like surface (data/size/index/iterate/assign) without
/// vector's value-initialization — `resize_discard` leaves contents
/// undefined so ops that overwrite every output element skip the memset.
class Buffer {
 public:
  Buffer() = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept
      : ptr_(std::exchange(other.ptr_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cap_(std::exchange(other.cap_, 0)) {}
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      reset();
      ptr_ = std::exchange(other.ptr_, nullptr);
      size_ = std::exchange(other.size_, 0);
      cap_ = std::exchange(other.cap_, 0);
    }
    return *this;
  }
  ~Buffer() { reset(); }

  [[nodiscard]] float* data() { return ptr_; }
  [[nodiscard]] const float* data() const { return ptr_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] float& operator[](std::size_t i) { return ptr_[i]; }
  [[nodiscard]] const float& operator[](std::size_t i) const {
    return ptr_[i];
  }
  [[nodiscard]] float* begin() { return ptr_; }
  [[nodiscard]] float* end() { return ptr_ + size_; }
  [[nodiscard]] const float* begin() const { return ptr_; }
  [[nodiscard]] const float* end() const { return ptr_ + size_; }
  [[nodiscard]] operator std::span<float>() { return {ptr_, size_}; }
  [[nodiscard]] operator std::span<const float>() const {
    return {ptr_, size_};
  }

  /// Sizes to `n` floats with undefined contents. Reuses the current block
  /// when the bucket capacity covers `n`.
  void resize_discard(std::size_t n);
  /// Sizes to `n` floats, all set to `v`.
  void assign(std::size_t n, float v);
  /// Sizes to `n` floats copied from `src` (must hold >= n values).
  void assign_copy(const float* src, std::size_t n);
  /// Returns the storage to the arena and becomes empty.
  void reset();

 private:
  float* ptr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;  ///< bucket capacity in floats
};

}  // namespace tg::nn::alloc
