/// Structured fuzz driver for the Verilog reader: mutate a valid netlist
/// 10,000 seeded ways and push every variant through parse → validate. The
/// contract under test: the recovering parser never crashes, never hangs,
/// and either yields a sink error or a design the validator can inspect.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/validate.hpp"
#include "netlist/verilog_io.hpp"
#include "testing/fixtures.hpp"
#include "testing/fuzz.hpp"

namespace tg {
namespace {

TEST(FuzzVerilog, MutatedNetlistsNeverCrashParserOrValidator) {
  const Library lib = tg::testing::small_library();
  const Design base = tg::testing::small_design(lib);
  std::ostringstream os;
  write_verilog(base, os);
  const std::string text = os.str();

  const int iters = tg::testing::fuzz_iters();
  int clean_parses = 0;
  for (int i = 0; i < iters; ++i) {
    Rng rng(0xF00DULL * 1000003ULL + static_cast<std::uint64_t>(i));
    const std::string mutated = tg::testing::mutate_text(text, rng);
    std::istringstream in(mutated);
    DiagSink sink;
    const Design d = read_verilog(in, &lib, sink, "fuzz.v");
    if (sink.ok()) {
      ++clean_parses;
      // A mutated file that still parses may be structurally incomplete;
      // the validator must report that calmly, not crash.
      DiagSink vsink;
      validate_design(d, vsink, ValidateLevel::kFull);
    }
  }
  // The corpus is heavily mutated, so a parse succeeding every time would
  // mean the parser stopped noticing damage.
  EXPECT_LT(clean_parses, iters);
}

}  // namespace
}  // namespace tg
