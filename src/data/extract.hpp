#pragma once
/// \file extract.hpp
/// Builds a DatasetGraph from a placed design, its ground-truth routing,
/// and a golden STA run. Features contain ONLY placement-time information
/// (pin positions/caps, cell LUTs); all time-valued labels come from the
/// routed design — the exact pre-routing prediction setup of the paper.

#include "data/hetero_graph.hpp"
#include "sta/timing_graph.hpp"

namespace tg::data {

[[nodiscard]] DatasetGraph extract_graph(const Design& design,
                                         const TimingGraph& graph,
                                         const DesignRouting& truth,
                                         const StaResult& sta);

}  // namespace tg::data
