#pragma once
/// \file validate.hpp
/// DatasetGraph (extracted hetero-graph) invariant checker (DESIGN.md §8).
/// Fast level covers shape consistency (feature matrix dimensions vs. the
/// paper's 10/2/512 layout), edge-index bounds, level monotonicity along
/// every edge and index-list bounds; full adds the finiteness sweep over
/// every feature/label tensor with first-offender row/column reporting.

#include "data/hetero_graph.hpp"
#include "util/diag.hpp"

namespace tg::data {

/// Checks one extracted graph. No-op at ValidateLevel::kOff. `sink`
/// diagnostics carry object = graph name.
void validate_dataset_graph(const DatasetGraph& graph, DiagSink& sink,
                            ValidateLevel level = validate_level());

}  // namespace tg::data
