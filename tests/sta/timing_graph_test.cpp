#include "sta/timing_graph.hpp"

#include <gtest/gtest.h>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "testing/builders.hpp"

namespace tg {
namespace {

class TimingGraphTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();
};

TEST_F(TimingGraphTest, ArcCountsMatchStats) {
  Design d("t", &lib_);
  testing::build_seq_chain(d, lib_);
  const TimingGraph g(d);
  const DesignStats s = d.stats();
  EXPECT_EQ(static_cast<long long>(g.net_arcs().size()), s.num_net_edges);
  EXPECT_EQ(static_cast<long long>(g.cell_arcs().size()), s.num_cell_edges);
}

TEST_F(TimingGraphTest, ClockNetExcluded) {
  Design d("t", &lib_);
  const auto s = testing::build_seq_chain(d, lib_);
  const TimingGraph g(d);
  for (const NetArc& arc : g.net_arcs()) {
    EXPECT_NE(arc.net, s.clock_net);
  }
  // CK pin has no incoming arcs: it is a root.
  EXPECT_EQ(g.in_net_arc(s.ff_ck), -1);
  EXPECT_TRUE(g.in_cell_arcs(s.ff_ck).empty());
}

TEST_F(TimingGraphTest, LevelsRespectTopology) {
  Design d("t", &lib_);
  const auto c = testing::build_comb_chain(d, lib_);
  const TimingGraph g(d);
  // in0 (L0) -> nand/A (L1) -> nand/Y (L2) -> inv/A (L3) -> inv/Y (L4) -> out (L5)
  EXPECT_EQ(g.level(c.in0), 0);
  const Instance& nand = d.instance(c.nand_inst);
  const Instance& inv = d.instance(c.inv_inst);
  EXPECT_EQ(g.level(nand.pins[0]), 1);
  EXPECT_EQ(g.level(nand.pins[2]), 2);
  EXPECT_EQ(g.level(inv.pins[0]), 3);
  EXPECT_EQ(g.level(inv.pins[1]), 4);
  EXPECT_EQ(g.level(c.out), 5);
  EXPECT_EQ(g.num_levels(), 6);
}

TEST_F(TimingGraphTest, EveryArcAdvancesLevel) {
  Design d = generate_design(suite_entry("spm", 1.0 / 32).spec, lib_);
  place_design(d);
  const TimingGraph g(d);
  for (const NetArc& a : g.net_arcs()) {
    EXPECT_LT(g.level(a.from), g.level(a.to));
  }
  for (const CellArc& a : g.cell_arcs()) {
    EXPECT_LT(g.level(a.from), g.level(a.to));
  }
}

TEST_F(TimingGraphTest, TopoOrderIsComplete) {
  Design d = generate_design(suite_entry("usb", 1.0 / 32).spec, lib_);
  const TimingGraph g(d);
  EXPECT_EQ(static_cast<int>(g.topo_order().size()), d.num_pins());
  // Levels partition the nodes.
  std::size_t total = 0;
  for (const auto& level : g.levels()) total += level.size();
  EXPECT_EQ(static_cast<int>(total), d.num_pins());
}

TEST_F(TimingGraphTest, InOutAdjacencyConsistent) {
  Design d("t", &lib_);
  const auto s = testing::build_seq_chain(d, lib_);
  const TimingGraph g(d);
  // FF Q drives q_net with 1 sink; its out_net_arcs must have size 1.
  EXPECT_EQ(g.out_net_arcs(s.ff_q).size(), 1u);
  // The nand output pin has exactly 2 incoming cell arcs (2-input NAND).
  const Instance& nand = d.instance(s.comb.nand_inst);
  EXPECT_EQ(g.in_cell_arcs(nand.pins[2]).size(), 2u);
  // The inv input pin has 1 outgoing cell arc.
  const Instance& inv = d.instance(s.comb.inv_inst);
  EXPECT_EQ(g.out_cell_arcs(inv.pins[0]).size(), 1u);
}

TEST_F(TimingGraphTest, LibArcLookup) {
  Design d("t", &lib_);
  testing::build_comb_chain(d, lib_);
  const TimingGraph g(d);
  for (const CellArc& a : g.cell_arcs()) {
    const TimingArc& lib_arc = g.lib_arc(a);
    EXPECT_GE(lib_arc.from_pin, 0);
    EXPECT_GE(lib_arc.to_pin, 0);
  }
}

}  // namespace
}  // namespace tg
