#include "ml/net_features.hpp"

#include <gtest/gtest.h>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "util/check.hpp"

namespace tg::ml {
namespace {

class NetFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    design_ = std::make_unique<Design>(
        generate_design(suite_entry("spm", 1.0 / 32).spec, lib_));
    place_design(*design_);
    RoutingOptions opts;
    opts.mode = RouteMode::kMaze;
    routing_ = route_design(*design_, opts);
  }

  Library lib_ = build_library();
  std::unique_ptr<Design> design_;
  DesignRouting routing_;
};

TEST_F(NetFeaturesTest, OneRowPerNetSink) {
  const NetFeatureSet fs = extract_net_features(*design_, routing_);
  long long expected = design_->stats().num_net_edges;
  EXPECT_EQ(static_cast<long long>(fs.rows), expected);
  EXPECT_EQ(fs.features.size(), fs.rows * kNetFeatureCount);
  EXPECT_EQ(fs.target.size(), fs.rows);
  EXPECT_EQ(fs.sample.size(), fs.rows);
}

TEST_F(NetFeaturesTest, TargetsMatchRoutingParasitics) {
  const NetFeatureSet fs = extract_net_features(*design_, routing_);
  for (std::size_t i = 0; i < fs.rows; i += 17) {
    const auto [net, sink_idx] = fs.sample[i];
    for (int c = 0; c < kNumCorners; ++c) {
      EXPECT_DOUBLE_EQ(
          fs.target[i][c],
          routing_.nets[static_cast<std::size_t>(net)]
              .sink_delay[static_cast<std::size_t>(sink_idx)][c]);
    }
  }
}

TEST_F(NetFeaturesTest, FeaturesFiniteAndPlausible) {
  const NetFeatureSet fs = extract_net_features(*design_, routing_);
  const Matrix m = fs.matrix();
  for (std::size_t r = 0; r < m.rows; ++r) {
    EXPECT_GE(m.at(r, 0), 1.0f);  // fanout ≥ 1
    EXPECT_GE(m.at(r, 1), 0.0f);  // HPWL
    for (std::size_t c = 0; c < m.cols; ++c) {
      EXPECT_TRUE(std::isfinite(m.at(r, c)));
    }
  }
}

TEST_F(NetFeaturesTest, ClockNetsExcluded) {
  const NetFeatureSet fs = extract_net_features(*design_, routing_);
  for (const auto& [net, sink] : fs.sample) {
    EXPECT_FALSE(design_->net(net).is_clock);
    (void)sink;
  }
}

TEST_F(NetFeaturesTest, TargetCornerColumn) {
  const NetFeatureSet fs = extract_net_features(*design_, routing_);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  const auto col = fs.target_corner(lr);
  ASSERT_EQ(col.size(), fs.rows);
  for (std::size_t i = 0; i < fs.rows; i += 23) {
    EXPECT_FLOAT_EQ(col[i], static_cast<float>(fs.target[i][lr]));
  }
}

TEST_F(NetFeaturesTest, DistanceFeatureCorrelatesWithDelay) {
  // Sanity on learnability: Manhattan distance (feature 5) should
  // positively correlate with routed delay.
  const NetFeatureSet fs = extract_net_features(*design_, routing_);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  double mx = 0, my = 0;
  const Matrix m = fs.matrix();
  for (std::size_t i = 0; i < fs.rows; ++i) {
    mx += m.at(i, 5);
    my += fs.target[i][lr];
  }
  mx /= static_cast<double>(fs.rows);
  my /= static_cast<double>(fs.rows);
  double cov = 0;
  for (std::size_t i = 0; i < fs.rows; ++i) {
    cov += (m.at(i, 5) - mx) * (fs.target[i][lr] - my);
  }
  EXPECT_GT(cov, 0.0);
}

}  // namespace
}  // namespace tg::ml
