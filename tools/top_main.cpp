/// \file top_main.cpp
/// tg_top: terminal profile viewer for the observability layer
/// (DESIGN.md §9). Reads either artifact the obs layer writes and prints a
/// sorted profile:
///
///   tg_top --trace=trace.json            # Perfetto trace -> span tree
///   tg_top --metrics=metrics.json        # metrics snapshot -> tables
///   tg_top --trace=trace.json --sort=total --top=10
///
/// Trace mode reconstructs the span nesting per thread from the "X" events
/// (using ts/dur containment), aggregates identical name-paths, and prints
/// a hierarchical table (total/self wall time, call count) followed by a
/// flat self-time ranking — self time is total minus time spent in child
/// spans, so the flat table points at the code actually burning CPU.
/// Metrics mode prints counters, gauges and histograms; `span/...`
/// histograms are shown in milliseconds.
///
/// Exits non-zero when the input cannot be parsed.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace tg {
namespace {

// ---- trace mode ----------------------------------------------------------

struct XEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
};

/// Aggregated span-tree node, keyed by the span's name-path from the root.
struct TreeNode {
  std::string name;
  double total_us = 0.0;
  double child_us = 0.0;
  long long count = 0;
  std::map<std::string, std::unique_ptr<TreeNode>> children;

  [[nodiscard]] double self_us() const { return total_us - child_us; }
};

struct FlatRow {
  std::string name;
  double total_us = 0.0;
  double self_us = 0.0;
  long long count = 0;
};

void collect_events(const json::Value& root, std::vector<XEvent>* out) {
  const json::Value& events = root.at("traceEvents");
  for (const json::Value& ev : events.as_array()) {
    if (!ev.is_object() || !ev.contains("ph")) continue;
    if (ev.at("ph").as_string() != "X") continue;
    XEvent x;
    x.name = ev.at("name").as_string();
    x.ts_us = ev.at("ts").as_number();
    x.dur_us = ev.at("dur").as_number();
    x.tid = static_cast<int>(ev.at("tid").as_number());
    out->push_back(std::move(x));
  }
}

/// Builds the aggregated tree for one thread's events, which must be sorted
/// by (ts, deeper-first at equal ts). A running stack of (end_ts, node)
/// pairs tracks the open spans; an event nests under the innermost open
/// span that contains it.
void build_thread_tree(const std::vector<const XEvent*>& events,
                       TreeNode* root) {
  std::vector<std::pair<double, TreeNode*>> stack;  // (end ts, node)
  for (const XEvent* ev : events) {
    while (!stack.empty() && ev->ts_us >= stack.back().first - 1e-9) {
      stack.pop_back();
    }
    TreeNode* parent = stack.empty() ? root : stack.back().second;
    std::unique_ptr<TreeNode>& slot = parent->children[ev->name];
    if (!slot) {
      slot = std::make_unique<TreeNode>();
      slot->name = ev->name;
    }
    slot->total_us += ev->dur_us;
    slot->count += 1;
    if (parent != root) parent->child_us += ev->dur_us;
    stack.emplace_back(ev->ts_us + ev->dur_us, slot.get());
  }
}

void sorted_children(const TreeNode& node, bool by_total,
                     std::vector<const TreeNode*>* out) {
  out->clear();
  for (const auto& [name, child] : node.children) out->push_back(child.get());
  std::sort(out->begin(), out->end(),
            [by_total](const TreeNode* a, const TreeNode* b) {
              const double ka = by_total ? a->total_us : a->self_us();
              const double kb = by_total ? b->total_us : b->self_us();
              return ka > kb;
            });
}

void print_tree(const TreeNode& node, int depth, bool by_total, int max_rows,
                int* rows_left) {
  std::vector<const TreeNode*> kids;
  sorted_children(node, by_total, &kids);
  for (const TreeNode* child : kids) {
    if (*rows_left <= 0) {
      std::printf("%*s... (--top=%d reached)\n", 2 * depth + 2, "", max_rows);
      return;
    }
    --*rows_left;
    std::printf("%10.3f %10.3f %8lld  %*s%s\n", child->total_us / 1e3,
                child->self_us() / 1e3, child->count, 2 * depth, "",
                child->name.c_str());
    print_tree(*child, depth + 1, by_total, max_rows, rows_left);
  }
}

void flatten(const TreeNode& node, std::map<std::string, FlatRow>* flat) {
  for (const auto& [name, child] : node.children) {
    FlatRow& row = (*flat)[name];
    row.name = name;
    row.total_us += child->total_us;
    row.self_us += child->self_us();
    row.count += child->count;
    flatten(*child, flat);
  }
}

int run_trace_mode(const std::string& path, bool by_total, int top) {
  const json::Value root = json::parse_file(path);
  std::vector<XEvent> events;
  collect_events(root, &events);
  if (events.empty()) {
    std::printf("no spans in %s (was TG_TRACE set when the program ran?)\n",
                path.c_str());
    return 0;
  }

  // Per-thread, sorted so parents precede children (longer span first when
  // start times tie).
  std::map<int, std::vector<const XEvent*>> by_tid;
  for (const XEvent& ev : events) by_tid[ev.tid].push_back(&ev);
  TreeNode root_node;
  root_node.name = "(root)";
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(), [](const XEvent* a, const XEvent* b) {
      if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
      return a->dur_us > b->dur_us;
    });
    build_thread_tree(list, &root_node);
  }

  std::printf("# %zu spans, %zu threads from %s\n", events.size(),
              by_tid.size(), path.c_str());
  std::printf("\n%10s %10s %8s  span tree (sorted by %s time)\n", "total ms",
              "self ms", "count", by_total ? "total" : "self");
  int rows_left = top;
  print_tree(root_node, 0, by_total, top, &rows_left);

  std::map<std::string, FlatRow> flat_map;
  flatten(root_node, &flat_map);
  std::vector<FlatRow> flat;
  for (auto& [name, row] : flat_map) flat.push_back(row);
  std::sort(flat.begin(), flat.end(), [](const FlatRow& a, const FlatRow& b) {
    return a.self_us > b.self_us;
  });
  std::printf("\n%10s %10s %8s  top self time\n", "self ms", "total ms",
              "count");
  const int limit = std::min<int>(top, static_cast<int>(flat.size()));
  for (int i = 0; i < limit; ++i) {
    std::printf("%10.3f %10.3f %8lld  %s\n", flat[static_cast<std::size_t>(i)].self_us / 1e3,
                flat[static_cast<std::size_t>(i)].total_us / 1e3,
                flat[static_cast<std::size_t>(i)].count,
                flat[static_cast<std::size_t>(i)].name.c_str());
  }
  return 0;
}

// ---- metrics mode --------------------------------------------------------

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Memory-plane digest (DESIGN.md §10): condenses the alloc/* counters and
/// gauges into the two numbers that matter — steady-state hit rate (misses
/// should be ~0 after warm-up) and peak live bytes.
void print_alloc_summary(const json::Value& root) {
  auto num = [&root](const char* section, const char* name) -> double {
    if (!root.contains(section)) return 0.0;
    const json::Object& obj = root.at(section).as_object();
    const auto it = obj.find(name);
    return it == obj.end() ? 0.0 : it->second.as_number();
  };
  const double hits = num("counters", "alloc/hit");
  const double misses = num("counters", "alloc/miss");
  const double total = hits + misses;
  if (total <= 0.0) return;  // run predates the arena or never allocated
  constexpr double kMiB = 1024.0 * 1024.0;
  std::printf("memory plane (TG_ALLOC arena)\n");
  std::printf("  %12.0f acquires   %10.0f hits   %8.0f misses  (hit rate %.4f)\n",
              total, hits, misses, hits / total);
  std::printf("  %12.0f releases   %10.1f MiB acquired lifetime\n",
              num("counters", "alloc/release"),
              num("counters", "alloc/bytes_acquired") / kMiB);
  std::printf("  %12.1f MiB high water   %7.1f MiB cached now\n",
              num("gauges", "alloc/bytes_high_water") / kMiB,
              num("gauges", "alloc/bytes_cached") / kMiB);
}

/// Async-engine digest (DESIGN.md §11): condenses the sta/async/* metrics
/// into the scheduler numbers worth eyeballing — tasks fired per run,
/// steal traffic (batches moved and their average size) and the peak
/// ready-queue depth/worker count seen across runs.
void print_task_dag_summary(const json::Value& root) {
  auto num = [&root](const char* section, const char* name) -> double {
    if (!root.contains(section)) return 0.0;
    const json::Object& obj = root.at(section).as_object();
    const auto it = obj.find(name);
    return it == obj.end() ? 0.0 : it->second.as_number();
  };
  const double runs = num("counters", "sta/async/runs");
  if (runs <= 0.0) return;  // levelized engine or no STA in this run
  const double tasks = num("counters", "sta/async/tasks");
  const double batches = num("counters", "sta/async/steal_batches");
  const double stolen = num("counters", "sta/async/stolen_tasks");
  std::printf("async STA scheduler (TG_STA_ENGINE=async)\n");
  std::printf("  %12.0f runs   %12.0f tasks fired  (%.0f per run)\n", runs,
              tasks, tasks / runs);
  std::printf("  %12.0f steal batches   %9.0f tasks stolen  (%.1f%% of fired",
              batches, stolen, tasks > 0.0 ? 100.0 * stolen / tasks : 0.0);
  if (batches > 0.0) std::printf(", avg batch %.1f", stolen / batches);
  std::printf(")\n");
  std::printf("  %12.0f peak ready-queue depth   %4.0f peak workers\n",
              num("gauges", "sta/async/max_ready_depth"),
              num("gauges", "sta/async/workers"));
}

/// Serving-plane digest (DESIGN.md §12): the health-check numbers for a
/// SlackServer run — admission outcome mix, ladder tier mix, request
/// latency percentiles and the fault/retry/quarantine tallies.
void print_serve_summary(const json::Value& root) {
  auto num = [&root](const char* section, const char* name) -> double {
    if (!root.contains(section)) return 0.0;
    const json::Object& obj = root.at(section).as_object();
    const auto it = obj.find(name);
    return it == obj.end() ? 0.0 : it->second.as_number();
  };
  const double completed = num("counters", "serve/completed");
  if (completed <= 0.0) return;  // no serving plane in this run
  const double pct = 100.0 / completed;
  std::printf("serving plane (SlackServer)\n");
  std::printf("  %12.0f completed   %8.0f ok (%.1f%%)   %6.0f degraded "
              "(%.1f%%)   %6.0f shed (%.1f%%)\n",
              completed, num("counters", "serve/ok"),
              num("counters", "serve/ok") * pct,
              num("counters", "serve/degraded"),
              num("counters", "serve/degraded") * pct,
              num("counters", "serve/shed"),
              num("counters", "serve/shed") * pct);
  std::printf("  %12.0f full tier   %8.0f cone tier   %8.0f stale tier   "
              "%6.0f batched\n",
              num("counters", "serve/tier_full"),
              num("counters", "serve/tier_cone"),
              num("counters", "serve/tier_stale"),
              num("counters", "serve/batched"));
  std::printf("  %12.0f faults   %8.0f retries   %6.0f quarantines   "
              "%6.0f cancelled   %6.0f deadline-expired\n",
              num("counters", "serve/faults"),
              num("counters", "serve/retries"),
              num("counters", "serve/quarantines"),
              num("counters", "serve/cancelled"),
              num("counters", "serve/deadline_expired"));
  // Cross-design packed batching (graph packing): only printed when the
  // run ever reached the packed path.
  const double cross = num("counters", "serve/cross_batched");
  const double pack_hits = num("counters", "serve/pack_hits");
  const double pack_misses = num("counters", "serve/pack_misses");
  if (cross + pack_hits + pack_misses > 0.0) {
    std::printf("  %12.0f cross-batched   %6.0f pack hits   %6.0f pack "
                "misses (%.1f%% hit)\n",
                cross, pack_hits, pack_misses,
                pack_hits + pack_misses > 0.0
                    ? 100.0 * pack_hits / (pack_hits + pack_misses)
                    : 0.0);
  }
  if (root.contains("histograms")) {
    const json::Object& hists = root.at("histograms").as_object();
    const auto it = hists.find("serve/latency_ns");
    if (it != hists.end()) {
      const json::Value& h = it->second;
      std::printf("  %12.3f ms latency p50   %.3f ms p90   %.3f ms p99\n",
                  h.at("p50").as_number() / 1e6,
                  h.at("p90").as_number() / 1e6,
                  h.at("p99").as_number() / 1e6);
    }
    const auto ps = hists.find("serve/packed_batch_size");
    if (ps != hists.end()) {
      const json::Value& h = ps->second;
      std::printf("  %12.0f packed batches   %.1f graphs/pack mean   "
                  "%.0f p50   %.0f p99\n",
                  h.at("count").as_number(), h.at("mean").as_number(),
                  h.at("p50").as_number(), h.at("p99").as_number());
    }
  }
}

int run_metrics_mode(const std::string& path, int top) {
  const json::Value root = json::parse_file(path);

  print_alloc_summary(root);
  print_task_dag_summary(root);
  print_serve_summary(root);
  if (root.contains("counters")) {
    const json::Object& counters = root.at("counters").as_object();
    if (!counters.empty()) {
      std::printf("\n%14s  counters\n", "value");
      for (const auto& [name, v] : counters) {
        std::printf("%14.0f  %s\n", v.as_number(), name.c_str());
      }
    }
  }
  if (root.contains("gauges")) {
    const json::Object& gauges = root.at("gauges").as_object();
    if (!gauges.empty()) {
      std::printf("\n%14s  gauges\n", "value");
      for (const auto& [name, v] : gauges) {
        std::printf("%14.3f  %s\n", v.as_number(), name.c_str());
      }
    }
  }
  if (root.contains("histograms")) {
    const json::Object& hists = root.at("histograms").as_object();
    // Span histograms double as the profile: rank them by total time.
    struct Row {
      std::string name;
      double count, sum, mean, p50, p90, p99;
      bool is_span;
    };
    std::vector<Row> rows;
    for (const auto& [name, h] : hists) {
      Row r;
      r.name = name;
      r.count = h.at("count").as_number();
      r.sum = h.at("sum").as_number();
      r.mean = h.at("mean").as_number();
      r.p50 = h.at("p50").as_number();
      r.p90 = h.at("p90").as_number();
      r.p99 = h.at("p99").as_number();
      // span/* and bwd/* (backward-tape attribution) both record ns.
      r.is_span = starts_with(name, "span/") || starts_with(name, "bwd/");
      rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.sum > b.sum; });
    if (!rows.empty()) {
      std::printf("\n%10s %8s %10s %10s %10s %10s  histograms (span/*, bwd/* in ms)\n",
                  "total", "count", "mean", "p50", "p90", "p99");
      int printed = 0;
      for (const Row& r : rows) {
        if (printed++ >= top) {
          std::printf("... (--top=%d reached)\n", top);
          break;
        }
        // Span histograms record nanoseconds; print milliseconds.
        const double unit = r.is_span ? 1e6 : 1.0;
        std::printf("%10.3f %8.0f %10.3f %10.3f %10.3f %10.3f  %s\n",
                    r.sum / unit, r.count, r.mean / unit, r.p50 / unit,
                    r.p90 / unit, r.p99 / unit, r.name.c_str());
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  try {
    opts.require_known({"trace", "metrics", "top", "sort"});
    const int top = static_cast<int>(opts.get_int("top", 30));
    const std::string sort = opts.get("sort", "self");
    TG_CHECK_MSG(sort == "self" || sort == "total",
                 "--sort must be self or total, got " << sort);
    const bool has_trace = opts.has("trace");
    const bool has_metrics = opts.has("metrics");
    TG_CHECK_MSG(has_trace || has_metrics,
                 "usage: tg_top --trace=trace.json | --metrics=metrics.json "
                 "[--top=N] [--sort=self|total]");
    int rc = 0;
    if (has_trace) {
      rc |= run_trace_mode(opts.get("trace", ""), sort == "total", top);
    }
    if (has_metrics) {
      if (has_trace) std::printf("\n");
      rc |= run_metrics_mode(opts.get("metrics", ""), top);
    }
    return rc;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "tg_top: %s\n", e.what());
    return 1;
  }
}
