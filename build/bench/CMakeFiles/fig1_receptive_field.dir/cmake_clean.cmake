file(REMOVE_RECURSE
  "CMakeFiles/fig1_receptive_field.dir/fig1_receptive_field.cpp.o"
  "CMakeFiles/fig1_receptive_field.dir/fig1_receptive_field.cpp.o.d"
  "fig1_receptive_field"
  "fig1_receptive_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_receptive_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
