/// \file sta_explorer.cpp
/// Domain example: use the substrate as a standalone timing sign-off tool.
/// Generates (or reuses) a benchmark, routes it, runs the golden 4-corner
/// STA and prints a full timing report: WNS/TNS, the K worst setup and
/// hold paths, a slack histogram, and the most congested routing regions.
///
///   ./sta_explorer [--design=picorv32a] [--scale=0.0625] [--paths=3]
///                  [--period=<ns>] [--util=0.65]

#include <cstdio>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "place/placer.hpp"
#include "sta/paths.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  opts.require_known({"design", "scale", "paths", "util", "period"});
  const std::string name = opts.get("design", "picorv32a");
  const double scale = opts.get_double("scale", 1.0 / 16);
  const int k_paths = static_cast<int>(opts.get_int("paths", 3));

  // Total wall time for the whole sign-off flow, reported at exit.
  ScopedTimer total_timer("sta_explorer total");

  const Library library = build_library();
  const SuiteEntry entry = suite_entry(name, scale);
  Design design = generate_design(entry.spec, library);

  PlacerConfig placer;
  placer.utilization = opts.get_double("util", placer.utilization);
  const PlacementReport placement = place_design(design, placer);
  std::printf("design %s: %d pins, die %.0fx%.0f um, HPWL %.0f um\n",
              design.name().c_str(), design.num_pins(), placement.die_width,
              placement.die_height, placement.total_hpwl);

  RoutingOptions route_opts;
  route_opts.mode = RouteMode::kMaze;
  const DesignRouting routing = route_design(design, route_opts);
  std::printf("routed: %.0f um wire, %d overflowed gcell edges, %.2f s\n",
              routing.total_wirelength, routing.overflow_edges,
              routing.route_seconds);

  const TimingGraph graph(design);
  StaResult sta = run_sta(graph, routing);
  if (opts.has("period")) {
    design.set_period(opts.get_double("period", 1.0));
  } else {
    design.set_period(calibrated_period(design, sta.arrival, entry.clock_factor));
  }
  sta = run_sta(graph, routing);

  std::printf("\n=== timing summary (period %.3f ns) ===\n",
              design.clock_period());
  std::printf("setup: WNS %+.4f ns, TNS %+.4f ns\n", sta.wns_setup,
              sta.tns_setup);
  std::printf("hold : WNS %+.4f ns, TNS %+.4f ns\n", sta.wns_hold,
              sta.tns_hold);

  std::printf("\n=== %d worst setup paths ===\n", k_paths);
  for (const CriticalPath& path : worst_paths(graph, sta, k_paths, true)) {
    // Print head + tail of long paths.
    const std::string full = format_path(design, sta, path);
    const auto lines = split(full, '\n');
    if (lines.size() <= 14) {
      std::fputs(full.c_str(), stdout);
    } else {
      for (std::size_t i = 0; i < 7; ++i) std::printf("%s\n", lines[i].c_str());
      std::printf("  ... (%zu intermediate pins) ...\n", lines.size() - 13);
      for (std::size_t i = lines.size() - 6; i < lines.size(); ++i) {
        if (!lines[i].empty()) std::printf("%s\n", lines[i].c_str());
      }
    }
  }

  std::printf("\n=== worst hold path ===\n");
  for (const CriticalPath& path : worst_paths(graph, sta, 1, false)) {
    std::printf("endpoint %s slack %+.4f ns (%zu pins)\n",
                design.pin_name(path.endpoint).c_str(), path.slack,
                path.steps.size());
  }

  std::printf("\n=== endpoint setup-slack histogram ===\n");
  const auto hist = slack_histogram(design, sta, 12, true);
  int max_count = 1;
  for (const auto& [edge, count] : hist) max_count = std::max(max_count, count);
  for (const auto& [edge, count] : hist) {
    const int bar = 50 * count / max_count;
    std::printf("<= %+8.4f ns | %-50s %d\n", edge,
                std::string(static_cast<std::size_t>(bar), '#').c_str(), count);
  }
  return 0;
}
