#pragma once
/// \file nldm_lut.hpp
/// Non-linear delay model (NLDM) lookup table: a 7×7 grid of values indexed
/// by input slew (axis 1) and output capacitive load (axis 2), exactly the
/// table shape the paper's Table 3 describes for the SkyWater130 library
/// (8 such LUTs per cell arc: {delay, slew} × 4 EL/RF corners).

#include <array>
#include <cstddef>
#include <span>

namespace tg {

inline constexpr int kLutDim = 7;
inline constexpr int kLutCells = kLutDim * kLutDim;

class NldmLut {
 public:
  NldmLut() = default;
  /// Axes must be strictly increasing.
  NldmLut(const std::array<double, kLutDim>& slew_axis,
          const std::array<double, kLutDim>& load_axis,
          const std::array<double, kLutCells>& values);

  /// Bilinear interpolation; queries outside the axis range use the
  /// boundary segment's slope (linear extrapolation), which is how
  /// production timers (e.g. OpenSTA) extend NLDM tables.
  [[nodiscard]] double lookup(double slew, double load) const;

  [[nodiscard]] const std::array<double, kLutDim>& slew_axis() const {
    return slew_axis_;
  }
  [[nodiscard]] const std::array<double, kLutDim>& load_axis() const {
    return load_axis_;
  }
  /// Row-major [slew][load] values.
  [[nodiscard]] const std::array<double, kLutCells>& values() const {
    return values_;
  }
  [[nodiscard]] double at(int slew_idx, int load_idx) const {
    return values_[static_cast<std::size_t>(slew_idx * kLutDim + load_idx)];
  }

 private:
  std::array<double, kLutDim> slew_axis_{};
  std::array<double, kLutDim> load_axis_{};
  std::array<double, kLutCells> values_{};
};

/// Shared helper: find the interpolation segment for `q` on a sorted axis.
/// Returns the lower index i in [0, kLutDim-2] and the (possibly <0 or >1,
/// for extrapolation) fractional position t within [axis[i], axis[i+1]].
struct AxisPos {
  int lo = 0;
  double t = 0.0;
};
[[nodiscard]] AxisPos axis_position(std::span<const double> axis, double q);

}  // namespace tg
