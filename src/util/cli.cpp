#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace tg {

CliOptions::CliOptions(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positionals_.push_back(arg);
    }
  }
}

void CliOptions::require_known(
    std::initializer_list<std::string_view> known) const {
  for (const auto& [key, value] : values_) {
    bool ok = false;
    for (std::string_view k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string valid;
      for (std::string_view k : known) {
        if (!valid.empty()) valid += ", ";
        valid += "--";
        valid += k;
      }
      TG_CHECK_MSG(false, program_ << ": unknown option --" << key
                                   << " (valid options: " << valid << ")");
    }
  }
}

bool CliOptions::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string CliOptions::get(const std::string& key,
                            const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CliOptions::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

long long CliOptions::get_int(const std::string& key, long long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool CliOptions::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace tg
