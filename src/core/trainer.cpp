#include "core/trainer.hpp"

#include <cmath>

#include "metrics/metrics.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace tg::core {

using nn::Tensor;

namespace {

/// Pools tensor rows `rows` (all columns) of pred/target into flat vectors
/// and returns R².
double pooled_r2(const Tensor& truth, const Tensor& pred,
                 const std::vector<int>& rows) {
  std::vector<double> t, p;
  t.reserve(rows.size() * static_cast<std::size_t>(truth.cols()));
  p.reserve(t.capacity());
  for (int r : rows) {
    for (std::int64_t c = 0; c < truth.cols(); ++c) {
      t.push_back(truth.at(r, c));
      p.push_back(pred.at(r, c));
    }
  }
  return r2_score(std::span<const double>(t), std::span<const double>(p));
}

std::vector<int> all_rows(std::int64_t n) {
  std::vector<int> rows(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) rows[static_cast<std::size_t>(i)] = static_cast<int>(i);
  return rows;
}

}  // namespace

double mean_of(const std::vector<DesignEval>& evals,
               double DesignEval::* field) {
  if (evals.empty()) return 0.0;
  double acc = 0.0;
  for (const DesignEval& e : evals) acc += e.*field;
  return acc / static_cast<double>(evals.size());
}

// ---- TimingGnnTrainer ----------------------------------------------------

TimingGnnTrainer::TimingGnnTrainer(const TimingGnnConfig& config,
                                   const TrainOptions& options)
    : model_(config),
      options_(options),
      adam_(model_.parameters(),
            nn::AdamConfig{.lr = options.lr, .grad_clip = options.grad_clip}) {}

const PropPlan& TimingGnnTrainer::plan_for(const data::DatasetGraph& g) {
  // Keyed by address, not name: the same benchmark can exist at several
  // scales within one process.
  auto it = plans_.find(&g);
  if (it == plans_.end()) {
    it = plans_.emplace(&g, build_prop_plan(g)).first;
  }
  return it->second;
}

namespace {
/// Geometric decay from options.lr to options.lr_final across the run.
float scheduled_lr(const TrainOptions& options, int epoch) {
  if (options.lr_final <= 0.0f || options.epochs <= 1 ||
      options.lr_final >= options.lr) {
    return options.lr;
  }
  const float t = static_cast<float>(epoch) /
                  static_cast<float>(options.epochs - 1);
  return options.lr * std::pow(options.lr_final / options.lr, t);
}
}  // namespace

double TimingGnnTrainer::fit(const data::SuiteDataset& dataset) {
  double mean_loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    adam_.set_lr(scheduled_lr(options_, epoch));
    double epoch_loss = 0.0;
    for (int id : dataset.train_ids) {
      const data::DatasetGraph& g = dataset.graphs[static_cast<std::size_t>(id)];
      const PropPlan& plan = plan_for(g);
      adam_.zero_grad();
      const TimingGnn::Prediction pred = model_.forward(g, plan);
      Tensor loss = model_.loss(g, plan, pred);
      loss.backward();
      adam_.step();
      epoch_loss += loss.item();
    }
    mean_loss = epoch_loss / static_cast<double>(dataset.train_ids.size());
    if (options_.verbose) {
      TG_INFO("timing-gnn epoch " << epoch + 1 << "/" << options_.epochs
                                  << " loss=" << mean_loss);
    }
  }
  return mean_loss;
}

DesignEval TimingGnnTrainer::evaluate(const data::DatasetGraph& g) {
  const PropPlan& plan = plan_for(g);
  WallTimer timer;
  const TimingGnn::Prediction pred = model_.forward(g, plan);
  DesignEval eval;
  eval.infer_seconds = timer.seconds();
  eval.name = g.name;
  eval.is_test = g.is_test;

  const Tensor truth_parts[] = {g.arrival, g.slew};
  const Tensor atslew_truth = nn::concat_cols(truth_parts);
  eval.r2_atslew_all =
      pooled_r2(atslew_truth, pred.atslew, all_rows(g.num_nodes));

  // Arrival R² at endpoints (Table 5): arrival columns only.
  {
    std::vector<double> t, p;
    for (int ep : g.endpoints) {
      for (int c = 0; c < kNumCorners; ++c) {
        t.push_back(g.arrival.at(ep, c));
        p.push_back(pred.atslew.at(ep, c));
      }
    }
    eval.r2_arrival_endpoints =
        r2_score(std::span<const double>(t), std::span<const double>(p));
  }

  eval.r2_net_delay = pooled_r2(g.net_delay, pred.net_delay, g.net_sinks);
  {
    const Tensor cell_truth = nn::gather_rows(g.cell_delay, plan.cell_edge_order);
    eval.r2_cell_delay = pooled_r2(cell_truth, pred.cell_delay,
                                   all_rows(cell_truth.rows()));
  }

  const SlackScatter scatter = slack_scatter(g);
  eval.r2_slack_setup = r2_score(std::span<const double>(scatter.true_setup),
                                 std::span<const double>(scatter.pred_setup));
  eval.r2_slack_hold = r2_score(std::span<const double>(scatter.true_hold),
                                std::span<const double>(scatter.pred_hold));
  eval.pearson_setup = pearson_r(std::span<const double>(scatter.true_setup),
                                 std::span<const double>(scatter.pred_setup));
  eval.pearson_hold = pearson_r(std::span<const double>(scatter.true_hold),
                                std::span<const double>(scatter.pred_hold));
  return eval;
}

TimingGnnTrainer::SlackScatter TimingGnnTrainer::slack_scatter(
    const data::DatasetGraph& g) {
  const PropPlan& plan = plan_for(g);
  const TimingGnn::Prediction pred = model_.forward(g, plan);
  SlackScatter s;
  for (std::size_t i = 0; i < g.endpoints.size(); ++i) {
    const int ep = g.endpoints[i];
    const EndpointSlack ps = predicted_endpoint_slack(g, pred.atslew, ep);
    s.pred_setup.push_back(ps.setup);
    s.pred_hold.push_back(ps.hold);
    s.true_setup.push_back(g.endpoint_setup_slack[i]);
    s.true_hold.push_back(g.endpoint_hold_slack[i]);
  }
  return s;
}

// ---- NetEmbedTrainer ------------------------------------------------------

NetEmbedTrainer::NetEmbedTrainer(const NetEmbedConfig& config,
                                 const TrainOptions& options,
                                 std::uint64_t seed)
    : rng_(seed),
      model_(config, rng_),
      options_(options),
      adam_(model_.parameters(),
            nn::AdamConfig{.lr = options.lr, .grad_clip = options.grad_clip}) {}

double NetEmbedTrainer::fit(const data::SuiteDataset& dataset) {
  double mean_loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    adam_.set_lr(scheduled_lr(options_, epoch));
    double epoch_loss = 0.0;
    for (int id : dataset.train_ids) {
      const data::DatasetGraph& g = dataset.graphs[static_cast<std::size_t>(id)];
      adam_.zero_grad();
      Tensor emb = model_.forward(g);
      Tensor pred = model_.predict_net_delay(g, emb);
      Tensor target = nn::gather_rows(g.net_delay, g.net_sinks);
      Tensor loss = nn::mse_loss_rows(pred, g.net_sinks, target);
      loss.backward();
      adam_.step();
      epoch_loss += loss.item();
    }
    mean_loss = epoch_loss / static_cast<double>(dataset.train_ids.size());
    if (options_.verbose) {
      TG_INFO("net-embed epoch " << epoch + 1 << "/" << options_.epochs
                                 << " loss=" << mean_loss);
    }
  }
  return mean_loss;
}

double NetEmbedTrainer::evaluate_r2(const data::DatasetGraph& g) const {
  Tensor pred = model_.predict_net_delay(g, model_.forward(g));
  std::vector<double> t, p;
  for (int r : g.net_sinks) {
    for (int c = 0; c < kNumCorners; ++c) {
      t.push_back(g.net_delay.at(r, c));
      p.push_back(pred.at(r, c));
    }
  }
  return r2_score(std::span<const double>(t), std::span<const double>(p));
}

// ---- GcniiTrainer ---------------------------------------------------------

GcniiTrainer::GcniiTrainer(const GcniiConfig& config,
                           const TrainOptions& options)
    : model_(config),
      options_(options),
      adam_(model_.parameters(),
            nn::AdamConfig{.lr = options.lr, .grad_clip = options.grad_clip}) {}

const GcniiAdjacency& GcniiTrainer::adjacency_for(const data::DatasetGraph& g) {
  auto it = adjacencies_.find(&g);
  if (it == adjacencies_.end()) {
    it = adjacencies_.emplace(&g, build_gcnii_adjacency(g)).first;
  }
  return it->second;
}

double GcniiTrainer::fit(const data::SuiteDataset& dataset) {
  double mean_loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    adam_.set_lr(scheduled_lr(options_, epoch));
    double epoch_loss = 0.0;
    for (int id : dataset.train_ids) {
      const data::DatasetGraph& g = dataset.graphs[static_cast<std::size_t>(id)];
      adam_.zero_grad();
      Tensor pred = model_.forward(g, adjacency_for(g));
      Tensor loss = model_.loss(g, pred);
      loss.backward();
      adam_.step();
      epoch_loss += loss.item();
    }
    mean_loss = epoch_loss / static_cast<double>(dataset.train_ids.size());
    if (options_.verbose) {
      TG_INFO("gcnii-" << model_.config().num_layers << " epoch " << epoch + 1
                       << "/" << options_.epochs << " loss=" << mean_loss);
    }
  }
  return mean_loss;
}

DesignEval GcniiTrainer::evaluate(const data::DatasetGraph& g) {
  const GcniiAdjacency& adj = adjacency_for(g);
  WallTimer timer;
  Tensor pred = model_.forward(g, adj);
  DesignEval eval;
  eval.infer_seconds = timer.seconds();
  eval.name = g.name;
  eval.is_test = g.is_test;

  const Tensor truth_parts[] = {g.arrival, g.slew};
  eval.r2_atslew_all =
      pooled_r2(nn::concat_cols(truth_parts), pred, all_rows(g.num_nodes));
  std::vector<double> t, p;
  for (int ep : g.endpoints) {
    for (int c = 0; c < kNumCorners; ++c) {
      t.push_back(g.arrival.at(ep, c));
      p.push_back(pred.at(ep, c));
    }
  }
  eval.r2_arrival_endpoints =
      r2_score(std::span<const double>(t), std::span<const double>(p));
  return eval;
}

}  // namespace tg::core
