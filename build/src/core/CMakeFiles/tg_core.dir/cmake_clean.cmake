file(REMOVE_RECURSE
  "CMakeFiles/tg_core.dir/delay_prop.cpp.o"
  "CMakeFiles/tg_core.dir/delay_prop.cpp.o.d"
  "CMakeFiles/tg_core.dir/gcnii.cpp.o"
  "CMakeFiles/tg_core.dir/gcnii.cpp.o.d"
  "CMakeFiles/tg_core.dir/lut_interp.cpp.o"
  "CMakeFiles/tg_core.dir/lut_interp.cpp.o.d"
  "CMakeFiles/tg_core.dir/net_embed.cpp.o"
  "CMakeFiles/tg_core.dir/net_embed.cpp.o.d"
  "CMakeFiles/tg_core.dir/timing_gnn.cpp.o"
  "CMakeFiles/tg_core.dir/timing_gnn.cpp.o.d"
  "CMakeFiles/tg_core.dir/trainer.cpp.o"
  "CMakeFiles/tg_core.dir/trainer.cpp.o.d"
  "libtg_core.a"
  "libtg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
