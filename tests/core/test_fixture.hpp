#pragma once
/// Shared tiny dataset for core-model tests: built once per test binary.

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "liberty/library_builder.hpp"

namespace tg::core::testing {

/// Lazily-built singleton dataset (spm test design + zipdiv train design at
/// 1/32 scale) shared across all core test suites in the binary.
inline const data::SuiteDataset& tiny_dataset() {
  static const Library* lib = new Library(build_library());
  static const data::SuiteDataset* ds = [] {
    data::DatasetOptions options;
    options.scale = 1.0 / 32;
    return new data::SuiteDataset(
        data::build_suite_dataset(*lib, options, {"zipdiv", "spm"}));
  }();
  return *ds;
}

inline const data::DatasetGraph& train_graph() {
  const auto& ds = tiny_dataset();
  return ds.graphs[static_cast<std::size_t>(ds.train_ids.at(0))];
}

inline const data::DatasetGraph& test_graph() {
  const auto& ds = tiny_dataset();
  return ds.graphs[static_cast<std::size_t>(ds.test_ids.at(0))];
}

}  // namespace tg::core::testing
