/// \file kernel_equiv_test.cpp
/// Bit-identity contract of the SIMD kernel backends (nn/kernels.hpp):
/// whatever table dispatch resolves on this machine must produce results
/// that match the portable backend *bit for bit* — same rounding, same
/// reduction tree, same zero-skip policy. On a machine without AVX2/NEON
/// the dispatched table IS the portable table and the tests pass
/// trivially; on SIMD hardware they are the real cross-backend check.

#include "nn/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace tg::nn::kern {
namespace {

/// Restores normal dispatch even when an assertion aborts the test body.
struct ForcePortableGuard {
  ForcePortableGuard() { set_force_portable(false); }
  ~ForcePortableGuard() { set_force_portable(false); }
};

std::vector<float> rand_vec(std::size_t n, Rng& rng, double zero_frac = 0.0) {
  std::vector<float> v(n);
  for (float& x : v) {
    if (zero_frac > 0.0 && rng.uniform(0.0, 1.0) < zero_frac) {
      x = 0.0f;
    } else {
      x = static_cast<float>(rng.normal());
    }
  }
  return v;
}

void expect_bits_equal(const std::vector<float>& portable,
                       const std::vector<float>& simd,
                       const std::string& what) {
  ASSERT_EQ(portable.size(), simd.size()) << what;
  for (std::size_t i = 0; i < portable.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(portable[i]),
              std::bit_cast<std::uint32_t>(simd[i]))
        << what << " diverges at index " << i << ": portable=" << portable[i]
        << " simd=" << simd[i];
  }
}

/// Sizes chosen to hit the empty case, sub-vector-width cases, exact
/// multiples of 8, and ragged tails around every blocking boundary.
const std::size_t kSizes[] = {0,  1,  2,  3,  7,   8,   9,  15, 16,
                              17, 23, 31, 32, 33,  63,  64, 65, 100,
                              129, 257};

/// Runs `op` once forced-portable and once dispatched, bit-comparing the
/// output vector it fills.
template <typename Op>
void check_out_kernel(const std::string& what, std::size_t n, Op op) {
  ForcePortableGuard guard;
  Rng rng(static_cast<std::uint64_t>(n * 7919 + 13));
  const std::vector<float> init = rand_vec(n, rng);
  std::vector<float> portable = init;
  std::vector<float> simd = init;
  set_force_portable(true);
  op(portable);
  set_force_portable(false);
  op(simd);
  expect_bits_equal(portable, simd, what + " n=" + std::to_string(n));
}

TEST(KernelEquiv, Elementwise) {
  for (std::size_t n : kSizes) {
    Rng rng(n + 1);
    const std::vector<float> a = rand_vec(n, rng);
    const std::vector<float> b = rand_vec(n, rng);
    check_out_kernel("add", n, [&](std::vector<float>& out) {
      add(out.data(), a.data(), b.data(), n);
    });
    check_out_kernel("add_acc", n, [&](std::vector<float>& out) {
      add_acc(out.data(), a.data(), n);
    });
    check_out_kernel("mul", n, [&](std::vector<float>& out) {
      mul(out.data(), a.data(), b.data(), n);
    });
    check_out_kernel("mul_acc", n, [&](std::vector<float>& out) {
      mul_acc(out.data(), a.data(), b.data(), n);
    });
    check_out_kernel("scale", n, [&](std::vector<float>& out) {
      scale(out.data(), a.data(), 1.7f, n);
    });
    check_out_kernel("axpy", n, [&](std::vector<float>& out) {
      axpy(out.data(), -0.3f, a.data(), n);
    });
  }
}

TEST(KernelEquiv, ReluFamily) {
  for (std::size_t n : kSizes) {
    Rng rng(n + 101);
    // Mix exact zeros in so the mask kernels see all three sign cases.
    const std::vector<float> a = rand_vec(n, rng, 0.25);
    const std::vector<float> b = rand_vec(n, rng, 0.25);
    const std::vector<float> g = rand_vec(n, rng);
    check_out_kernel("relu", n, [&](std::vector<float>& out) {
      relu(out.data(), a.data(), n);
    });
    check_out_kernel("add_relu", n, [&](std::vector<float>& out) {
      add_relu(out.data(), a.data(), b.data(), n);
    });
    std::vector<float> y(n);
    add_relu(y.data(), a.data(), b.data(), n);
    check_out_kernel("relu_mask_acc", n, [&](std::vector<float>& out) {
      relu_mask_acc(out.data(), y.data(), g.data(), n);
    });
  }
}

TEST(KernelEquiv, DotMatchesPortableAndContractTree) {
  ForcePortableGuard guard;
  for (std::size_t n : kSizes) {
    Rng rng(n + 211);
    const std::vector<float> a = rand_vec(n, rng);
    const std::vector<float> b = rand_vec(n, rng);
    set_force_portable(true);
    const float portable = dot(a.data(), b.data(), n);
    set_force_portable(false);
    const float simd = dot(a.data(), b.data(), n);
    ASSERT_EQ(std::bit_cast<std::uint32_t>(portable),
              std::bit_cast<std::uint32_t>(simd))
        << "dot n=" << n;
    // Independently rebuild the documented reduction: 8 striped lanes over
    // the n&~7 prefix, ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), serial tail.
    float lane[8] = {};
    const std::size_t n8 = n & ~std::size_t{7};
    for (std::size_t i = 0; i < n8; i += 8) {
      for (std::size_t l = 0; l < 8; ++l) lane[l] += a[i + l] * b[i + l];
    }
    float ref = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    for (std::size_t i = n8; i < n; ++i) ref += a[i] * b[i];
    ASSERT_EQ(std::bit_cast<std::uint32_t>(ref),
              std::bit_cast<std::uint32_t>(portable))
        << "dot contract tree n=" << n;
  }
}

TEST(KernelEquiv, MatmulRow) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {3, 5}, {4, 8}, {7, 9}, {8, 16}, {16, 16},
      {17, 33}, {64, 64}, {5, 257}};
  for (const auto& [k, m] : shapes) {
    Rng rng(k * 1000 + m);
    const std::vector<float> a = rand_vec(k, rng);
    const std::vector<float> b = rand_vec(k * m, rng);
    check_out_kernel("matmul_row k=" + std::to_string(k), m,
                     [&](std::vector<float>& out) {
                       matmul_row(out.data(), a.data(), b.data(), k, m);
                     });
  }
}

TEST(KernelEquiv, MatmulNtRow) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {3, 5}, {4, 8}, {5, 7}, {7, 9}, {8, 16}, {9, 16},
      {16, 16}, {17, 33}, {64, 64}, {3, 257}};
  for (const auto& [k, m] : shapes) {
    Rng rng(k * 2000 + m);
    const std::vector<float> g = rand_vec(m, rng);
    const std::vector<float> b = rand_vec(k * m, rng);
    // matmul_nt_row accumulates: both runs start from the same random out.
    check_out_kernel("matmul_nt_row m=" + std::to_string(m), k,
                     [&](std::vector<float>& out) {
                       matmul_nt_row(out.data(), g.data(), b.data(), k, m);
                     });
  }
}

TEST(KernelEquiv, AtbAcc) {
  struct Shape {
    std::size_t n, k, width, pad;
  };
  // n around multiples of the 4-row blocking, ragged widths, and a strided
  // destination (stride = width + pad, mimicking a column-slice of dB).
  const Shape shapes[] = {{1, 3, 5, 0},  {3, 4, 8, 0},  {4, 4, 8, 3},
                          {5, 7, 9, 0},  {8, 8, 16, 0}, {9, 5, 7, 2},
                          {16, 16, 16, 0}, {33, 8, 20, 4}, {100, 6, 11, 1}};
  for (const auto& s : shapes) {
    const std::size_t stride = s.width + s.pad;
    Rng rng(s.n * 31 + s.k * 7 + s.width);
    // Half the activations exactly zero: exercises both the all-zero block
    // skip and zeros inside live blocks (which must be multiplied, not
    // branched on, identically in every backend).
    std::vector<float> a = rand_vec(s.n * s.k, rng, 0.5);
    if (s.n >= 8) {
      // Force at least one fully-zero 4-row block per column.
      for (std::size_t i = 4; i < 8; ++i) {
        for (std::size_t kk = 0; kk < s.k; ++kk) a[i * s.k + kk] = 0.0f;
      }
    }
    const std::vector<float> g = rand_vec(s.n * stride, rng);
    check_out_kernel(
        "atb_acc n=" + std::to_string(s.n) + " k=" + std::to_string(s.k),
        s.k * stride, [&](std::vector<float>& out) {
          atb_acc(out.data(), a.data(), g.data(), s.n, s.k, stride, s.width);
        });
  }
}

TEST(KernelEquiv, AdamStep) {
  ForcePortableGuard guard;
  for (std::size_t n : kSizes) {
    Rng rng(n + 401);
    const std::vector<float> data0 = rand_vec(n, rng);
    const std::vector<float> grad = rand_vec(n, rng, 0.2);
    const std::vector<float> m0 = rand_vec(n, rng, 0.2);
    std::vector<float> v0 = rand_vec(n, rng);
    for (float& x : v0) x = x * x;  // v must stay non-negative
    AdamConsts c{.lr = 1e-3f,
                 .beta1 = 0.9f,
                 .beta2 = 0.999f,
                 .eps = 1e-8f,
                 .weight_decay = 0.01f,
                 .clip_scale = 0.5f,
                 .bc1 = 0.19f,
                 .bc2 = 0.002f};
    std::vector<float> dp = data0, mp = m0, vp = v0;
    std::vector<float> ds = data0, ms = m0, vs = v0;
    set_force_portable(true);
    adam_step(dp.data(), grad.data(), mp.data(), vp.data(), n, c);
    set_force_portable(false);
    adam_step(ds.data(), grad.data(), ms.data(), vs.data(), n, c);
    expect_bits_equal(dp, ds, "adam data n=" + std::to_string(n));
    expect_bits_equal(mp, ms, "adam m n=" + std::to_string(n));
    expect_bits_equal(vp, vs, "adam v n=" + std::to_string(n));
  }
}

TEST(KernelEquiv, DispatchReportsBackend) {
  ForcePortableGuard guard;
  set_force_portable(true);
  EXPECT_STREQ(simd_name(), "portable");
  set_force_portable(false);
  const std::string name = simd_name();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "portable") << name;
  // On x86 builds with the AVX2 TU compiled in, the table must be present
  // even if this CPU cannot run it.
#if defined(TG_HAVE_AVX2_TU)
  EXPECT_NE(detail::avx2_table(), nullptr);
#endif
}

}  // namespace
}  // namespace tg::nn::kern
