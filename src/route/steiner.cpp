#include "route/steiner.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace tg {

namespace {

/// Closest point to `q` on the axis-aligned segment [a, b].
Point closest_on_segment(const Point& a, const Point& b, const Point& q) {
  const double xmin = std::min(a.x, b.x), xmax = std::max(a.x, b.x);
  const double ymin = std::min(a.y, b.y), ymax = std::max(a.y, b.y);
  return Point{std::clamp(q.x, xmin, xmax), std::clamp(q.y, ymin, ymax)};
}

constexpr double kSamePoint = 1e-9;

bool same_point(const Point& a, const Point& b) {
  return manhattan(a, b) < kSamePoint;
}

}  // namespace

RouteTopology build_steiner(Point driver_pos, PinId driver_pin,
                            std::span<const SteinerSink> sinks) {
  RouteTopology topo(driver_pos, driver_pin);
  std::vector<char> connected(sinks.size(), 0);

  for (std::size_t round = 0; round < sinks.size(); ++round) {
    // Find the unconnected sink with the smallest distance to the current
    // tree, and where it attaches.
    double best_dist = std::numeric_limits<double>::infinity();
    std::size_t best_sink = 0;
    Point best_attach{};
    int best_edge_child = -1;  // attach point lies on edge (child, parent)
    int best_node = -1;        // or exactly at an existing node

    for (std::size_t s = 0; s < sinks.size(); ++s) {
      if (connected[s]) continue;
      const Point q = sinks[s].pos;
      // Against every node.
      for (int i = 0; i < topo.size(); ++i) {
        const double dist = manhattan(topo.node(i).pos, q);
        if (dist < best_dist) {
          best_dist = dist;
          best_sink = s;
          best_attach = topo.node(i).pos;
          best_node = i;
          best_edge_child = -1;
        }
      }
      // Against the interior of every straight edge.
      for (int i = 1; i < topo.size(); ++i) {
        const TopoNode& child = topo.node(i);
        const Point& a = child.pos;
        const Point& b = topo.node(child.parent).pos;
        const Point cp = closest_on_segment(a, b, q);
        const double dist = manhattan(cp, q);
        if (dist < best_dist) {
          best_dist = dist;
          best_sink = s;
          best_attach = cp;
          best_node = -1;
          best_edge_child = i;
        }
      }
    }

    // Materialize the attach point as a node.
    int attach_node;
    if (best_node >= 0) {
      attach_node = best_node;
    } else {
      TG_CHECK(best_edge_child >= 0);
      const TopoNode child_copy = topo.node(best_edge_child);
      const int parent = child_copy.parent;
      if (same_point(best_attach, child_copy.pos)) {
        attach_node = best_edge_child;
      } else if (same_point(best_attach, topo.node(parent).pos)) {
        attach_node = parent;
      } else {
        // Split the edge: parent -- S -- child.
        const int steiner = topo.add_node(best_attach, parent);
        topo.set_parent(best_edge_child, steiner,
                        manhattan(child_copy.pos, best_attach));
        attach_node = steiner;
      }
    }

    // Connect the sink via an L-shape (corner node when not aligned).
    const Point q = sinks[best_sink].pos;
    const Point a = topo.node(attach_node).pos;
    int hook = attach_node;
    if (std::abs(a.x - q.x) > kSamePoint && std::abs(a.y - q.y) > kSamePoint) {
      hook = topo.add_node(Point{q.x, a.y}, attach_node);
    }
    if (same_point(q, topo.node(hook).pos)) {
      // Sink coincides with the hook point (stacked pins): attach directly
      // unless the hook already carries a pin, then add a zero-length node.
      if (topo.node(hook).pin == kInvalidId && hook != 0) {
        topo.attach_pin(hook, sinks[best_sink].pin);
      } else {
        topo.add_node(q, hook, sinks[best_sink].pin, 0.0);
      }
    } else {
      topo.add_node(q, hook, sinks[best_sink].pin);
    }
    connected[best_sink] = 1;
  }

  topo.validate();
  return topo;
}

RouteTopology build_net_steiner(const Design& design, NetId net_id) {
  const Net& net = design.net(net_id);
  TG_CHECK(net.driver != kInvalidId);
  std::vector<SteinerSink> sinks;
  sinks.reserve(net.sinks.size());
  for (PinId s : net.sinks) {
    sinks.push_back(SteinerSink{design.pin(s).pos, s});
  }
  return build_steiner(design.pin(net.driver).pos, net.driver, sinks);
}

}  // namespace tg
