#pragma once
/// \file net_embed.hpp
/// The paper's net embedding model (§3.3.1, Fig. 2): three net-convolution
/// layers over the bidirectional net-edge graph. Each layer performs
///  - graph broadcast: driver + sink + edge features → MLP → sink update;
///  - graph reduction: sink messages → sum & max channels → driver update.
/// The final embedding predicts net delay standalone (Table 4) and feeds
/// the delay-propagation stage; free embedding dimensions carry load/slew
/// statistics for propagation, as in the paper.

#include "data/hetero_graph.hpp"
#include "nn/module.hpp"

namespace tg::core {

struct NetEmbedConfig {
  int hidden = 32;      ///< embedding width (paper uses 64)
  int mlp_hidden = 32;  ///< hidden width inside each MLP
  int mlp_layers = 2;   ///< hidden layers per MLP (paper uses 3)
  int num_layers = 3;   ///< net convolution layers (paper: 3)
};

class NetEmbed : public nn::Module {
 public:
  NetEmbed(const NetEmbedConfig& config, Rng& rng);

  /// Per-pin embedding [N, hidden].
  [[nodiscard]] nn::Tensor forward(const data::DatasetGraph& g) const;

  /// Net-delay head (linear): per net edge, delay is predicted
  /// from the (driver, sink) embedding pair and scattered to the sink row;
  /// returns [N, 4] with zeros at non-sink rows.
  [[nodiscard]] nn::Tensor predict_net_delay(const data::DatasetGraph& g,
                                             const nn::Tensor& embedding) const;

  [[nodiscard]] const NetEmbedConfig& config() const { return config_; }

 private:
  struct Layer {
    nn::Mlp broadcast;   ///< [h_u, h_v, e] → sink update
    nn::Mlp reduce_msg;  ///< [h_v', e] → per-edge reduction message
    nn::Mlp merge;       ///< [h_u', Σ, max] → driver update
  };

  NetEmbedConfig config_;
  nn::Linear input_proj_;
  std::vector<Layer> layers_;
  nn::Mlp delay_head_;
};

}  // namespace tg::core
