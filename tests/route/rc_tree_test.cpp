#include "route/rc_tree.hpp"

#include "route/steiner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "liberty/library_builder.hpp"
#include "testing/builders.hpp"

namespace tg {
namespace {

class RcTreeTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();
};

TEST_F(RcTreeTest, TwoPinElmoreMatchesHandComputation) {
  Design d("t", &lib_);
  const auto c = testing::build_comb_chain(d, lib_);
  // n_in0: in0 (0,30) -> u_nand/A at (30,45); Manhattan length 45.
  const RouteTopology topo = build_net_steiner(d, c.n_in0);
  WireModel wire;
  const NetParasitics para = extract_parasitics(d, c.n_in0, topo, wire);

  const int lr = corner_index(Mode::kLate, Trans::kRise);
  const double len = topo.total_wirelength();
  EXPECT_NEAR(len, 45.0, 1e-9);

  const double rw = wire.res_kohm_per_um * len;
  const double cw = wire.cap_pf_per_um * len;
  const double cpin = d.pin_cap(d.net(c.n_in0).sinks[0], lr);
  // Two-segment L-shape: Elmore from root to sink over segments s1, s2.
  // For a single path, elmore = Σ_seg R_seg · C_downstream(seg); with
  // distributed wire cap this collapses to R(total)·(C_pin) + Σ partial
  // wire terms; validate against a direct per-segment computation instead.
  double expected = 0.0;
  {
    // Rebuild by walking the topology path.
    const int sink_node = topo.node_of_pin(d.net(c.n_in0).sinks[0]);
    // Collect path root->sink.
    std::vector<int> path;
    for (int cur = sink_node; cur != -1; cur = topo.node(cur).parent) {
      path.push_back(cur);
    }
    // Downstream cap of each segment = caps at/below its child node.
    // With a single path, downstream of segment to node i = wire cap below
    // plus pin cap plus half of this segment's wire cap.
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      const int child = path[k];
      const double seg_len = topo.node(child).wire_to_parent;
      const double r = wire.res_kohm_per_um * seg_len;
      // Downstream: half this segment's cap + all wire cap strictly below
      // + sink pin cap.
      double down = 0.5 * wire.cap_pf_per_um * seg_len + cpin;
      for (std::size_t m = 0; m < k; ++m) {
        down += wire.cap_pf_per_um * topo.node(path[m]).wire_to_parent;
      }
      expected += r * down;
    }
  }
  EXPECT_NEAR(para.sink_delay[0][lr], expected, 1e-12);
  // Total load = all wire + pin cap.
  EXPECT_NEAR(para.load[lr], cw + cpin, 1e-12);
  (void)rw;
}

TEST_F(RcTreeTest, EarlyCornerLighterThanLate) {
  Design d("t", &lib_);
  const auto c = testing::build_comb_chain(d, lib_);
  const RouteTopology topo = build_net_steiner(d, c.n_mid);
  const NetParasitics para = extract_parasitics(d, c.n_mid, topo);
  const int er = corner_index(Mode::kEarly, Trans::kRise);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  EXPECT_LT(para.sink_delay[0][er], para.sink_delay[0][lr]);
  EXPECT_LT(para.load[er], para.load[lr]);
}

TEST_F(RcTreeTest, SlewImpulseIsLn9TimesElmore) {
  Design d("t", &lib_);
  const auto c = testing::build_comb_chain(d, lib_);
  const RouteTopology topo = build_net_steiner(d, c.n_out);
  const NetParasitics para = extract_parasitics(d, c.n_out, topo);
  for (int corner = 0; corner < kNumCorners; ++corner) {
    EXPECT_NEAR(para.sink_slew_impulse[0][corner],
                std::log(9.0) * para.sink_delay[0][corner], 1e-12);
  }
}

TEST_F(RcTreeTest, LongerRouteMoreDelay) {
  Design d("t", &lib_);
  const auto c = testing::build_comb_chain(d, lib_);
  const RouteTopology short_topo = build_net_steiner(d, c.n_in0);
  // Detoured route to the same sink: driver -> far point -> sink.
  RouteTopology long_topo(d.pin(c.in0).pos, c.in0);
  const int detour = long_topo.add_node({0, 100}, 0);
  const int corner2 = long_topo.add_node({30, 100}, detour);
  long_topo.add_node(d.pin(d.net(c.n_in0).sinks[0]).pos, corner2,
                     d.net(c.n_in0).sinks[0]);
  const NetParasitics p_short = extract_parasitics(d, c.n_in0, short_topo);
  const NetParasitics p_long = extract_parasitics(d, c.n_in0, long_topo);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  EXPECT_GT(p_long.sink_delay[0][lr], 2.0 * p_short.sink_delay[0][lr]);
  EXPECT_GT(p_long.load[lr], p_short.load[lr]);
}

TEST_F(RcTreeTest, MultiSinkSharedTrunkOrdersDelays) {
  Design d("t", &lib_);
  const auto s = testing::build_seq_chain(d, lib_);
  // n_out drives both the PO (far) and the FF D pin; extract and check the
  // nearer sink has the smaller delay.
  const RouteTopology topo = build_net_steiner(d, s.comb.n_out);
  const NetParasitics para = extract_parasitics(d, s.comb.n_out, topo);
  const Net& net = d.net(s.comb.n_out);
  ASSERT_EQ(net.sinks.size(), 2u);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  const Point dp = d.pin(net.driver).pos;
  const double dist0 = manhattan(dp, d.pin(net.sinks[0]).pos);
  const double dist1 = manhattan(dp, d.pin(net.sinks[1]).pos);
  if (dist0 < dist1) {
    EXPECT_LE(para.sink_delay[0][lr], para.sink_delay[1][lr] + 1e-12);
  } else {
    EXPECT_GE(para.sink_delay[0][lr] + 1e-12, para.sink_delay[1][lr]);
  }
}

TEST_F(RcTreeTest, ZeroLengthRouteHasPinCapOnlyLoad) {
  Design d("t", &lib_);
  const auto c = testing::build_comb_chain(d, lib_);
  // Degenerate topology: sink stacked on the driver.
  RouteTopology topo(d.pin(c.in0).pos, c.in0);
  topo.add_node(d.pin(c.in0).pos, 0, d.net(c.n_in0).sinks[0], 0.0);
  const NetParasitics para = extract_parasitics(d, c.n_in0, topo);
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  EXPECT_DOUBLE_EQ(para.sink_delay[0][lr], 0.0);
  EXPECT_NEAR(para.load[lr], d.pin_cap(d.net(c.n_in0).sinks[0], lr), 1e-15);
}

}  // namespace
}  // namespace tg
