#pragma once
/// \file circuit_builder.hpp
/// Incremental gate-level construction helper used by the block library
/// and the design generator: owns the pool of live signals, tracks their
/// topological level and fanout, and wires instances into the Design.

#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "util/rng.hpp"

namespace tg {

/// Index into the builder's signal pool.
using SigId = int;

/// A signal produced during construction.
struct Signal {
  NetId net = kInvalidId;
  int level = 0;   ///< approximate logic depth of the producing pin
  int fanout = 0;  ///< sinks connected so far
};

class CircuitBuilder {
 public:
  CircuitBuilder(Design* design, Rng* rng);

  /// Adds a primary input port and its net; returns the new signal.
  SigId add_input(const std::string& name);

  /// Instantiates one gate of `function` (drive sampled from fanout-biased
  /// weights), connects its inputs, creates the output net. The output
  /// signal sits at level max(inputs)+1. Input arity must match the cell.
  SigId gate(const std::string& function, const std::vector<SigId>& inputs);

  /// Registers `d` through a DFF; returns the Q signal at level 0.
  SigId register_signal(SigId d);

  /// Terminates `s` at a fresh primary output port.
  void add_output(SigId s, const std::string& name);

  [[nodiscard]] const Signal& sig(SigId id) const;
  [[nodiscard]] int num_signals() const { return static_cast<int>(signals_.size()); }
  [[nodiscard]] Design& design() { return *design_; }
  [[nodiscard]] Rng& rng() { return *rng_; }
  [[nodiscard]] int num_ffs() const { return num_ffs_; }

  /// Sample a drive strength for a new gate (×1 biased).
  [[nodiscard]] int sample_drive();

 private:
  /// Creates the clock port + net on first use.
  void ensure_clock();
  [[nodiscard]] int cell_id(const std::string& function, int drive) const;
  /// Connect pin `cell_pin_idx` of instance to the signal's net (fanout++).
  void connect_input(InstId inst, int cell_pin_idx, SigId s);

  Design* design_;
  Rng* rng_;
  std::vector<Signal> signals_;
  NetId clock_net_ = kInvalidId;
  int gate_counter_ = 0;
  int num_ffs_ = 0;
};

}  // namespace tg
