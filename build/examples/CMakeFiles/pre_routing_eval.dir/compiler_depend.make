# Empty compiler generated dependencies file for pre_routing_eval.
# This may be replaced when dependencies are built.
