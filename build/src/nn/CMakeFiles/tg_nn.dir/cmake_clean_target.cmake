file(REMOVE_RECURSE
  "libtg_nn.a"
)
