#include "data/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/dataset.hpp"
#include "liberty/library_builder.hpp"
#include "util/check.hpp"

namespace tg::data {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tg_graph.bin";
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const DatasetGraph a =
      build_design_graph(suite_entry("usb", options.scale), lib, options);
  save_graph(a, path_);
  const DatasetGraph b = load_graph(path_);

  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.is_test, a.is_test);
  EXPECT_EQ(b.num_nodes, a.num_nodes);
  EXPECT_EQ(b.num_levels, a.num_levels);
  EXPECT_DOUBLE_EQ(b.clock_period, a.clock_period);
  EXPECT_EQ(b.net_src, a.net_src);
  EXPECT_EQ(b.cell_dst, a.cell_dst);
  EXPECT_EQ(b.node_level, a.node_level);
  EXPECT_EQ(b.endpoints, a.endpoints);
  EXPECT_EQ(b.net_sinks, a.net_sinks);
  EXPECT_EQ(b.endpoint_setup_slack, a.endpoint_setup_slack);
  EXPECT_EQ(b.stats.num_cell_edges, a.stats.num_cell_edges);

  auto tensors_equal = [](const nn::Tensor& x, const nn::Tensor& y) {
    ASSERT_EQ(x.rows(), y.rows());
    ASSERT_EQ(x.cols(), y.cols());
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      ASSERT_EQ(x.data()[static_cast<std::size_t>(i)],
                y.data()[static_cast<std::size_t>(i)]);
    }
  };
  tensors_equal(a.node_feat, b.node_feat);
  tensors_equal(a.cell_edge_feat, b.cell_edge_feat);
  tensors_equal(a.arrival, b.arrival);
  tensors_equal(a.net_delay, b.net_delay);
  tensors_equal(a.rat, b.rat);
  tensors_equal(a.cell_delay, b.cell_delay);
}

TEST_F(GraphIoTest, LoadedGraphIsTrainable) {
  // A reloaded graph must drive the model pipeline identically.
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const DatasetGraph orig =
      build_design_graph(suite_entry("zipdiv", options.scale), lib, options);
  save_graph(orig, path_);
  const DatasetGraph loaded = load_graph(path_);
  EXPECT_EQ(loaded.design, nullptr);  // slim by definition
  // Spot check model-facing invariants.
  for (std::size_t e = 0; e < loaded.net_src.size(); ++e) {
    EXPECT_LT(loaded.node_level[static_cast<std::size_t>(loaded.net_src[e])],
              loaded.node_level[static_cast<std::size_t>(loaded.net_dst[e])]);
  }
}

TEST_F(GraphIoTest, RoundTripPreservesLevelCsr) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const DatasetGraph a =
      build_design_graph(suite_entry("usb", options.scale), lib, options);
  ASSERT_NE(a.level_csr, nullptr) << "dataset build must attach the CSR";
  save_graph(a, path_);
  const DatasetGraph b = load_graph(path_);
  // TGD2 v3 persists the CSR: loading must not fall back to a rebuild.
  ASSERT_NE(b.level_csr, nullptr);
  EXPECT_EQ(b.level_csr->num_levels, a.level_csr->num_levels);
  EXPECT_EQ(b.level_csr->node_off, a.level_csr->node_off);
  EXPECT_EQ(b.level_csr->node_perm, a.level_csr->node_perm);
  EXPECT_EQ(b.level_csr->node_row, a.level_csr->node_row);
  EXPECT_EQ(b.level_csr->net_off, a.level_csr->net_off);
  EXPECT_EQ(b.level_csr->net_perm, a.level_csr->net_perm);
  EXPECT_EQ(b.level_csr->cell_off, a.level_csr->cell_off);
  EXPECT_EQ(b.level_csr->cell_perm, a.level_csr->cell_perm);
  // And the persisted CSR must be exactly what a fresh build produces.
  const LevelCsr rebuilt = build_level_csr(b);
  EXPECT_EQ(b.level_csr->node_perm, rebuilt.node_perm);
  EXPECT_EQ(b.level_csr->net_perm, rebuilt.net_perm);
  EXPECT_EQ(b.level_csr->cell_perm, rebuilt.cell_perm);
}

TEST_F(GraphIoTest, EnsureLevelCsrRebuildsWhenAbsent) {
  // Graphs from pre-v3 files (or hand-built ones) have no cached CSR;
  // ensure_level_csr must build, attach, and then reuse one instance.
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  DatasetGraph g =
      build_design_graph(suite_entry("zipdiv", options.scale), lib, options);
  const LevelCsr expected = build_level_csr(g);
  g.level_csr = nullptr;  // simulate a legacy load
  const LevelCsr& rebuilt = ensure_level_csr(g);
  ASSERT_NE(g.level_csr, nullptr);
  EXPECT_EQ(&rebuilt, g.level_csr.get());
  EXPECT_EQ(rebuilt.node_perm, expected.node_perm);
  EXPECT_EQ(rebuilt.net_perm, expected.net_perm);
  EXPECT_EQ(rebuilt.cell_perm, expected.cell_perm);
  // Second call returns the cached instance, not a rebuild.
  EXPECT_EQ(&ensure_level_csr(g), &rebuilt);
}

TEST_F(GraphIoTest, CorruptFileRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a dataset graph";
  }
  EXPECT_THROW(load_graph(path_), CheckError);
}

TEST_F(GraphIoTest, MissingFileRejected) {
  EXPECT_THROW(load_graph("/nonexistent/x.bin"), CheckError);
}

}  // namespace
}  // namespace tg::data
