#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.hpp"

namespace tg {

namespace {

/// BFS ordering of instances from the primary inputs through net
/// connectivity; unreachable instances are appended. Gives a 1-D order in
/// which logically-adjacent instances are index-adjacent.
std::vector<InstId> connectivity_order(const Design& d) {
  const int n = d.num_instances();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<InstId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::queue<InstId> frontier;

  auto visit_net_sinks = [&](NetId net_id) {
    const Net& net = d.net(net_id);
    if (net.is_clock) return;
    for (PinId s : net.sinks) {
      const Pin& p = d.pin(s);
      if (p.inst != kInvalidId && !seen[static_cast<std::size_t>(p.inst)]) {
        seen[static_cast<std::size_t>(p.inst)] = 1;
        frontier.push(p.inst);
      }
    }
  };

  for (PinId pi : d.primary_inputs()) {
    if (d.pin(pi).net != kInvalidId) visit_net_sinks(d.pin(pi).net);
  }
  while (!frontier.empty()) {
    const InstId i = frontier.front();
    frontier.pop();
    order.push_back(i);
    const Instance& inst = d.instance(i);
    for (PinId pid : inst.pins) {
      const Pin& p = d.pin(pid);
      if (p.drives_net && p.net != kInvalidId) visit_net_sinks(p.net);
    }
  }
  for (InstId i = 0; i < n; ++i) {
    if (!seen[static_cast<std::size_t>(i)]) order.push_back(i);
  }
  return order;
}

/// Per-pin geometric offset inside the cell footprint, so pins of one
/// instance do not coincide exactly.
Point pin_offset(int cell_pin, double row_height) {
  const double step = row_height * 0.25;
  return Point{step * (1 + cell_pin % 3), step * (1 + cell_pin / 3 % 3)};
}

}  // namespace

PlacementReport place_design(Design& design, const PlacerConfig& config) {
  TG_CHECK(design.num_instances() > 0);
  TG_CHECK(config.utilization > 0.05 && config.utilization <= 1.0);
  Rng rng(config.seed);

  const int n = design.num_instances();
  const double total_area =
      static_cast<double>(n) * config.site_area_um2 / config.utilization;
  const double side = std::sqrt(total_area);
  const double row_h = config.row_height_um;
  const int num_rows = std::max(1, static_cast<int>(side / row_h));
  const int per_row = (n + num_rows - 1) / num_rows;
  const double col_w = side / std::max(1, per_row);

  BBox die;
  die.xmin = 0.0;
  die.ymin = 0.0;
  die.xmax = side;
  die.ymax = static_cast<double>(num_rows) * row_h;
  design.set_die(die);

  std::vector<InstId> order = connectivity_order(design);
  TG_CHECK(static_cast<int>(order.size()) == n);

  // Quality knob: swap a fraction of positions at random to degrade
  // locality; quality=1 keeps BFS order, quality=0 is a full shuffle.
  const int swaps =
      static_cast<int>((1.0 - config.quality) * static_cast<double>(n));
  for (int s = 0; s < swaps; ++s) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    std::swap(order[a], order[b]);
  }

  for (int k = 0; k < n; ++k) {
    const int row = k / per_row;
    int col = k % per_row;
    if (row % 2 == 1) col = per_row - 1 - col;  // serpentine scan
    double x = (static_cast<double>(col) + 0.5) * col_w;
    double y = (static_cast<double>(row) + 0.5) * row_h;
    x += rng.normal(0.0, config.jitter * row_h);
    y += rng.normal(0.0, config.jitter * row_h);
    x = std::clamp(x, die.xmin, die.xmax);
    y = std::clamp(y, die.ymin, die.ymax);
    Instance& inst = design.instance(order[static_cast<std::size_t>(k)]);
    inst.pos = Point{x, y};
    for (PinId pid : inst.pins) {
      const Pin& p = design.pin(pid);
      const Point off = pin_offset(p.cell_pin, row_h);
      design.pin(pid).pos =
          Point{std::clamp(x + off.x, die.xmin, die.xmax),
                std::clamp(y + off.y, die.ymin, die.ymax)};
    }
  }

  // Ports on the boundary: inputs spread along the left edge, outputs along
  // the right edge (clock at the bottom-left corner if present).
  const auto& pis = design.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(pis.size());
    design.pin(pis[i]).pos = Point{die.xmin, die.ymin + t * die.height()};
  }
  const auto& pos_ = design.primary_outputs();
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(pos_.size());
    design.pin(pos_[i]).pos = Point{die.xmax, die.ymin + t * die.height()};
  }

  PlacementReport report;
  report.die_width = die.width();
  report.die_height = die.height();
  report.total_hpwl = total_hpwl(design);
  return report;
}

double total_hpwl(const Design& design) {
  double sum = 0.0;
  std::vector<Point> pts;
  for (const Net& net : design.nets()) {
    if (net.is_clock) continue;
    pts.clear();
    pts.push_back(design.pin(net.driver).pos);
    for (PinId s : net.sinks) pts.push_back(design.pin(s).pos);
    sum += hpwl(pts);
  }
  return sum;
}

}  // namespace tg
