#pragma once
/// \file validate.hpp
/// TimingGraph invariant checker plus STA numerical tripwires
/// (DESIGN.md §8). Fast level covers arc-endpoint bounds, levelization
/// consistency (every arc strictly increases the level) and acyclicity
/// (the topological order covers every node); full adds the CSR/adjacency
/// cross-checks. check_sta_finite sweeps an StaResult for NaN/Inf and
/// reports the first-offender pin by name, level and corner.

#include "sta/partition.hpp"
#include "sta/timer.hpp"
#include "sta/timing_graph.hpp"
#include "util/diag.hpp"

namespace tg {

/// Checks the levelized timing graph. No-op at ValidateLevel::kOff.
void validate_timing_graph(const TimingGraph& graph, DiagSink& sink,
                           ValidateLevel level = validate_level());

/// Shard-partition invariants (DESIGN.md §13): every pin owned by exactly
/// one shard (and `shard_of` agrees with the owned lists), every ghost
/// entry backed by an owner on a *different* shard and actually read by
/// the listing shard (no dangling refs), no cross-shard level inversion
/// (`shard_of` monotone along every timing arc — the property that keeps
/// the shard dependency DAG acyclic), and no shard missing a cross-shard
/// fanin from its ghost list. No-op at ValidateLevel::kOff.
void validate_partition(const TimingGraph& graph, const Partition& part,
                        DiagSink& sink,
                        ValidateLevel level = validate_level());

/// Numerical tripwire: reports every pin whose arrival/slew holds a NaN or
/// Inf after propagation (and, at full level, NaN net delays, slacks and
/// cell-arc delays — RAT legitimately holds ±Inf at unconstrained pins).
void check_sta_finite(const TimingGraph& graph, const StaResult& result,
                      DiagSink& sink,
                      ValidateLevel level = validate_level());

}  // namespace tg
