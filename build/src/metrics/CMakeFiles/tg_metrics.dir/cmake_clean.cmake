file(REMOVE_RECURSE
  "CMakeFiles/tg_metrics.dir/metrics.cpp.o"
  "CMakeFiles/tg_metrics.dir/metrics.cpp.o.d"
  "libtg_metrics.a"
  "libtg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
