# Empty dependencies file for tg_place.
# This may be replaced when dependencies are built.
