#include "core/net_embed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/test_fixture.hpp"
#include "nn/optim.hpp"

namespace tg::core {
namespace {

NetEmbedConfig tiny_config() {
  NetEmbedConfig cfg;
  cfg.hidden = 8;
  cfg.mlp_hidden = 8;
  cfg.mlp_layers = 1;
  cfg.num_layers = 2;
  return cfg;
}

TEST(NetEmbed, ForwardShapes) {
  Rng rng(1);
  const NetEmbed model(tiny_config(), rng);
  const auto& g = testing::train_graph();
  const nn::Tensor emb = model.forward(g);
  EXPECT_EQ(emb.rows(), g.num_nodes);
  EXPECT_EQ(emb.cols(), 8);
  const nn::Tensor delay = model.predict_net_delay(g, emb);
  EXPECT_EQ(delay.rows(), g.num_nodes);
  EXPECT_EQ(delay.cols(), kNumCorners);
}

TEST(NetEmbed, PredictionsFiniteAndZeroAtNonSinks) {
  Rng rng(2);
  const NetEmbed model(tiny_config(), rng);
  const auto& g = testing::train_graph();
  const nn::Tensor delay = model.predict_net_delay(g, model.forward(g));
  for (float v : delay.data()) EXPECT_TRUE(std::isfinite(v));
  // Rows without an incoming net edge stay exactly zero.
  std::vector<char> is_sink(static_cast<std::size_t>(g.num_nodes), 0);
  for (int s : g.net_sinks) is_sink[static_cast<std::size_t>(s)] = 1;
  for (int v = 0; v < g.num_nodes; ++v) {
    if (is_sink[static_cast<std::size_t>(v)]) continue;
    for (int c = 0; c < kNumCorners; ++c) EXPECT_FLOAT_EQ(delay.at(v, c), 0.0f);
  }
}

TEST(NetEmbed, DeterministicForward) {
  Rng rng(3);
  const NetEmbed model(tiny_config(), rng);
  const auto& g = testing::train_graph();
  const nn::Tensor a = model.forward(g);
  const nn::Tensor b = model.forward(g);
  for (std::int64_t i = 0; i < a.numel(); i += 31) {
    EXPECT_EQ(a.data()[static_cast<std::size_t>(i)], b.data()[static_cast<std::size_t>(i)]);
  }
}

TEST(NetEmbed, GradientsReachAllParameters) {
  Rng rng(4);
  NetEmbed model(tiny_config(), rng);
  const auto& g = testing::train_graph();
  nn::Tensor pred = model.predict_net_delay(g, model.forward(g));
  nn::Tensor target = nn::gather_rows(g.net_delay, g.net_sinks);
  nn::Tensor loss = nn::mse_loss_rows(pred, g.net_sinks, target);
  loss.backward();
  int nonzero_params = 0;
  for (const nn::Tensor& p : model.parameters()) {
    nn::Tensor copy = p;
    double norm = 0.0;
    for (float v : copy.grad()) norm += std::abs(v);
    if (norm > 0.0) ++nonzero_params;
  }
  // All parameter tensors participate (broadcast, reduce, merge, heads).
  EXPECT_EQ(nonzero_params, static_cast<int>(model.parameters().size()));
}

TEST(NetEmbed, FewStepsReduceLoss) {
  Rng rng(5);
  NetEmbed model(tiny_config(), rng);
  const auto& g = testing::train_graph();
  nn::Adam adam(model.parameters(), nn::AdamConfig{.lr = 3e-3f, .grad_clip = 5.0f});
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    adam.zero_grad();
    nn::Tensor pred = model.predict_net_delay(g, model.forward(g));
    nn::Tensor target = nn::gather_rows(g.net_delay, g.net_sinks);
    nn::Tensor loss = nn::mse_loss_rows(pred, g.net_sinks, target);
    loss.backward();
    adam.step();
    if (step == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, 0.8 * first);
}

TEST(NetEmbed, EmbeddingDependsOnPlacementFeatures) {
  // Perturbing a pin's position must change its embedding (the model reads
  // the placement).
  Rng rng(6);
  const NetEmbed model(tiny_config(), rng);
  const auto& g = testing::train_graph();
  const nn::Tensor base = model.forward(g);

  data::DatasetGraph perturbed = g;
  std::vector<float> feat(perturbed.node_feat.data().begin(),
                          perturbed.node_feat.data().end());
  feat[2] += 1.0f;  // move node 0 in x
  perturbed.node_feat = nn::Tensor::from_vector(
      std::move(feat), g.node_feat.rows(), g.node_feat.cols());
  const nn::Tensor moved = model.forward(perturbed);

  double diff = 0.0;
  for (std::int64_t c = 0; c < base.cols(); ++c) {
    diff += std::abs(base.at(0, c) - moved.at(0, c));
  }
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace tg::core
