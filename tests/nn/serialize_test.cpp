#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "nn/ops.hpp"
#include "util/check.hpp"

namespace tg::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tg_model.bin";
};

TEST_F(SerializeTest, RoundTripPreservesWeights) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);

  Rng rng2(999);  // different init
  Mlp b(4, 2, 8, 2, &rng2, "m");
  load_parameters(b, path_);

  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    const auto av = a.parameters()[i].data();
    const auto bv = b.parameters()[i].data();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t j = 0; j < av.size(); ++j) EXPECT_EQ(av[j], bv[j]);
  }

  // Same input → same output after loading.
  Tensor x = Tensor::rand_uniform(3, 4, 1.0f, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.data().size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST_F(SerializeTest, ShapeMismatchRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);
  Mlp wrong(4, 2, 16, 2, &rng, "m");  // different hidden width
  EXPECT_THROW(load_parameters(wrong, path_), CheckError);
}

TEST_F(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);
  Mlp wrong(4, 2, 8, 3, &rng, "m");  // extra layer: missing names
  EXPECT_THROW(load_parameters(wrong, path_), CheckError);
}

TEST_F(SerializeTest, MissingFileRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  EXPECT_THROW(load_parameters(a, "/nonexistent/abc.bin"), CheckError);
}

TEST_F(SerializeTest, CorruptMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "garbage data here";
  }
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  EXPECT_THROW(load_parameters(a, path_), CheckError);
}

// ---- legacy v0 ("TGNN") compatibility -------------------------------------

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Writes `m` in the pre-CRC v0 layout: u32 magic "TGNN", u32 count, then
/// per parameter {u32 name_len, bytes, u32 rows, u32 cols, raw f32 data}.
void write_v0_file(const Module& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  auto put_u32 = [&](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(0x54474E4Eu);  // "TGNN"
  put_u32(static_cast<std::uint32_t>(m.parameters().size()));
  for (std::size_t i = 0; i < m.parameters().size(); ++i) {
    const std::string& name = m.parameter_names()[i];
    const Tensor& t = m.parameters()[i];
    put_u32(static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_u32(static_cast<std::uint32_t>(t.rows()));
    put_u32(static_cast<std::uint32_t>(t.cols()));
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  }
}

TEST_F(SerializeTest, LegacyV0FileStillLoads) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  write_v0_file(a, path_);

  Rng rng2(999);
  Mlp b(4, 2, 8, 2, &rng2, "m");
  load_parameters(b, path_);
  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    const auto av = a.parameters()[i].data();
    const auto bv = b.parameters()[i].data();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t j = 0; j < av.size(); ++j) EXPECT_EQ(av[j], bv[j]);
  }
}

TEST_F(SerializeTest, TruncatedLegacyV0FileRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  write_v0_file(a, path_);
  const std::vector<unsigned char> full = slurp(path_);
  ASSERT_GT(full.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const std::size_t n = full.size() * static_cast<std::size_t>(i) / 8;
    if (n < 4) continue;  // below a magic it is CorruptMagicRejected territory
    spit(path_, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(load_parameters(a, path_), CheckError) << "truncated to " << n;
  }
}

TEST_F(SerializeTest, HugeNameLengthInV0Rejected) {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  auto put_u32 = [&](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(0x54474E4Eu);  // "TGNN"
  put_u32(1);            // one parameter...
  put_u32(0xFFFFFFFFu);  // ...whose name claims 4 GiB
  out.close();
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  EXPECT_THROW(load_parameters(a, path_), CheckError);
}

TEST_F(SerializeTest, CorruptedV1FileAlwaysRejected) {
  Rng rng(1);
  Mlp a(4, 2, 8, 2, &rng, "m");
  save_parameters(a, path_);
  const std::vector<unsigned char> full = slurp(path_);
  for (int i = 0; i < 8; ++i) {
    const std::size_t n = full.size() * static_cast<std::size_t>(i) / 8;
    spit(path_, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(load_parameters(a, path_), CheckError) << "truncated to " << n;
  }
  for (std::size_t i = 0; i < full.size(); i += 64) {
    std::vector<unsigned char> bad = full;
    bad[i] ^= 0x5A;
    spit(path_, bad);
    EXPECT_THROW(load_parameters(a, path_), CheckError) << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace tg::nn
