/// \file export_main.cpp
/// `timgnn_export` — one-shot artifact exporter for interoperability:
/// generates (or regenerates) a suite benchmark and writes every
/// interchange artifact the repository supports:
///   <out>/<design>.v       structural Verilog netlist
///   <out>/<design>.pl      placement (die + instance/port positions)
///   <out>/<design>.lib     the synthetic library, Liberty-style text
///   <out>/<design>.rpt     sign-off-style timing report (routed, golden STA)
///   <out>/<design>.tgdg    extracted dataset graph (features + labels)
///
///   timgnn_export --design=picorv32a --scale=0.0625 --out=export_dir

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/graph_io.hpp"
#include "liberty/liberty_io.hpp"
#include "liberty/library_builder.hpp"
#include "netlist/verilog_io.hpp"
#include "sta/report.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace tg;
  const CliOptions opts(argc, argv);
  opts.require_known({"design", "scale", "out", "threads"});
  set_log_level(LogLevel::kWarn);
  configure_threads(opts);
  const std::string name = opts.get("design", "spm");
  const double scale = opts.get_double("scale", 1.0 / 20);
  const std::filesystem::path out_dir = opts.get("out", "export");

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.string().c_str(),
                 ec.message().c_str());
    return 1;
  }

  const Library library = build_library();
  const SuiteEntry entry = suite_entry(name, scale);

  data::DatasetOptions options;
  options.scale = scale;
  const data::DatasetGraph g =
      data::build_design_graph(entry, library, options);

  const auto path = [&](const char* ext) {
    return (out_dir / (name + ext)).string();
  };

  write_verilog_file(*g.design, path(".v"));
  write_placement_file(*g.design, path(".pl"));
  write_liberty_file(library, path(".lib"));
  data::save_graph(g, path(".tgdg"));
  {
    const TimingGraph graph(*g.design);
    const StaResult sta = run_sta(graph, *g.truth_routing);
    std::ofstream rpt(path(".rpt"));
    write_timing_report(rpt, graph, sta);
  }

  std::printf("exported %s (%d pins, %zu endpoints) to %s/\n", name.c_str(),
              g.num_nodes, g.endpoints.size(), out_dir.string().c_str());
  std::printf("  %s.v     netlist (structural Verilog)\n", name.c_str());
  std::printf("  %s.pl    placement\n", name.c_str());
  std::printf("  %s.lib   library (Liberty-style)\n", name.c_str());
  std::printf("  %s.rpt   golden timing report\n", name.c_str());
  std::printf("  %s.tgdg  dataset graph (features + labels)\n", name.c_str());
  return 0;
}
