#pragma once
/// \file corner.hpp
/// The four STA corner combinations the paper calls "EL/RF": analysis mode
/// (early = min / late = max) × signal transition (rise / fall). All
/// per-corner quantities in the repository (pin caps, delays, slews,
/// arrivals, slacks) are stored as 4-element arrays indexed by
/// corner_index(mode, trans).

#include <array>
#include <string>

namespace tg {

enum class Mode : int { kEarly = 0, kLate = 1 };
enum class Trans : int { kRise = 0, kFall = 1 };

inline constexpr int kNumModes = 2;
inline constexpr int kNumTrans = 2;
/// EL/RF — 4 corner combinations.
inline constexpr int kNumCorners = kNumModes * kNumTrans;

[[nodiscard]] constexpr int corner_index(Mode m, Trans t) {
  return static_cast<int>(m) * kNumTrans + static_cast<int>(t);
}

[[nodiscard]] constexpr Mode corner_mode(int corner) {
  return static_cast<Mode>(corner / kNumTrans);
}

[[nodiscard]] constexpr Trans corner_trans(int corner) {
  return static_cast<Trans>(corner % kNumTrans);
}

[[nodiscard]] constexpr Trans flip(Trans t) {
  return t == Trans::kRise ? Trans::kFall : Trans::kRise;
}

/// Display name, e.g. "early/rise".
[[nodiscard]] std::string corner_name(int corner);

/// Per-corner value bundle. Arithmetic is element-wise.
using PerCorner = std::array<double, kNumCorners>;

[[nodiscard]] constexpr PerCorner per_corner_fill(double v) {
  return {v, v, v, v};
}

}  // namespace tg
