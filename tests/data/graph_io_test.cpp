#include "data/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/dataset.hpp"
#include "liberty/library_builder.hpp"
#include "util/check.hpp"

namespace tg::data {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tg_graph.bin";
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const DatasetGraph a =
      build_design_graph(suite_entry("usb", options.scale), lib, options);
  save_graph(a, path_);
  const DatasetGraph b = load_graph(path_);

  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.is_test, a.is_test);
  EXPECT_EQ(b.num_nodes, a.num_nodes);
  EXPECT_EQ(b.num_levels, a.num_levels);
  EXPECT_DOUBLE_EQ(b.clock_period, a.clock_period);
  EXPECT_EQ(b.net_src, a.net_src);
  EXPECT_EQ(b.cell_dst, a.cell_dst);
  EXPECT_EQ(b.node_level, a.node_level);
  EXPECT_EQ(b.endpoints, a.endpoints);
  EXPECT_EQ(b.net_sinks, a.net_sinks);
  EXPECT_EQ(b.endpoint_setup_slack, a.endpoint_setup_slack);
  EXPECT_EQ(b.stats.num_cell_edges, a.stats.num_cell_edges);

  auto tensors_equal = [](const nn::Tensor& x, const nn::Tensor& y) {
    ASSERT_EQ(x.rows(), y.rows());
    ASSERT_EQ(x.cols(), y.cols());
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      ASSERT_EQ(x.data()[static_cast<std::size_t>(i)],
                y.data()[static_cast<std::size_t>(i)]);
    }
  };
  tensors_equal(a.node_feat, b.node_feat);
  tensors_equal(a.cell_edge_feat, b.cell_edge_feat);
  tensors_equal(a.arrival, b.arrival);
  tensors_equal(a.net_delay, b.net_delay);
  tensors_equal(a.rat, b.rat);
  tensors_equal(a.cell_delay, b.cell_delay);
}

TEST_F(GraphIoTest, LoadedGraphIsTrainable) {
  // A reloaded graph must drive the model pipeline identically.
  const Library lib = build_library();
  DatasetOptions options;
  options.scale = 1.0 / 32;
  options.slim = true;
  const DatasetGraph orig =
      build_design_graph(suite_entry("zipdiv", options.scale), lib, options);
  save_graph(orig, path_);
  const DatasetGraph loaded = load_graph(path_);
  EXPECT_EQ(loaded.design, nullptr);  // slim by definition
  // Spot check model-facing invariants.
  for (std::size_t e = 0; e < loaded.net_src.size(); ++e) {
    EXPECT_LT(loaded.node_level[static_cast<std::size_t>(loaded.net_src[e])],
              loaded.node_level[static_cast<std::size_t>(loaded.net_dst[e])]);
  }
}

TEST_F(GraphIoTest, CorruptFileRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a dataset graph";
  }
  EXPECT_THROW(load_graph(path_), CheckError);
}

TEST_F(GraphIoTest, MissingFileRejected) {
  EXPECT_THROW(load_graph("/nonexistent/x.bin"), CheckError);
}

}  // namespace
}  // namespace tg::data
