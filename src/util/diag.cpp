#include "util/diag.hpp"

#include <atomic>
#include <cstdlib>
#include <ostream>

namespace tg {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kParse: return "parse";
    case Stage::kLibrary: return "library";
    case Stage::kNetlist: return "netlist";
    case Stage::kGenerate: return "gen";
    case Stage::kPlace: return "place";
    case Stage::kRoute: return "route";
    case Stage::kSta: return "sta";
    case Stage::kExtract: return "extract";
    case Stage::kTrain: return "train";
    case Stage::kTool: return "tool";
  }
  return "tool";
}

std::string Diag::format() const {
  std::ostringstream os;
  os << severity_name(severity) << '[' << stage_name(stage) << ']';
  if (!loc.file.empty()) {
    os << ' ' << loc.file;
    if (loc.line > 0) os << ':' << loc.line;
    os << ':';
  }
  if (!object.empty()) os << ' ' << object << ':';
  os << ' ' << message;
  return os.str();
}

DiagError::DiagError(const std::string& what, std::vector<Diag> diags)
    : CheckError(what), diags_(std::move(diags)) {}

void DiagSink::report(Diag d) {
  switch (d.severity) {
    case Severity::kNote: ++num_notes_; break;
    case Severity::kWarning: ++num_warnings_; break;
    case Severity::kError: ++num_errors_; break;
  }
  if (diags_.size() >= max_diags_) {
    ++dropped_;
    return;
  }
  diags_.push_back(std::move(d));
}

void DiagSink::error(Stage stage, std::string message, SrcLoc loc,
                     std::string object) {
  report(Diag{Severity::kError, stage, std::move(loc), std::move(object),
              std::move(message)});
}

void DiagSink::warning(Stage stage, std::string message, SrcLoc loc,
                       std::string object) {
  report(Diag{Severity::kWarning, stage, std::move(loc), std::move(object),
              std::move(message)});
}

void DiagSink::note(Stage stage, std::string message, SrcLoc loc,
                    std::string object) {
  report(Diag{Severity::kNote, stage, std::move(loc), std::move(object),
              std::move(message)});
}

bool DiagSink::contains(const std::string& needle) const {
  for (const Diag& d : diags_) {
    if (d.message.find(needle) != std::string::npos) return true;
    if (d.object.find(needle) != std::string::npos) return true;
  }
  return false;
}

void DiagSink::clear() {
  diags_.clear();
  num_errors_ = num_warnings_ = num_notes_ = dropped_ = 0;
}

std::string DiagSink::report_text() const {
  std::ostringstream os;
  for (const Diag& d : diags_) os << d.format() << '\n';
  if (dropped_ > 0) {
    os << "... " << dropped_ << " further diagnostics dropped (sink full)\n";
  }
  os << num_errors_ << " error" << (num_errors_ == 1 ? "" : "s") << ", "
     << num_warnings_ << " warning" << (num_warnings_ == 1 ? "" : "s");
  if (num_notes_ > 0) {
    os << ", " << num_notes_ << " note" << (num_notes_ == 1 ? "" : "s");
  }
  return os.str();
}

void DiagSink::print(std::ostream& out) const { out << report_text() << '\n'; }

void DiagSink::throw_if_errors(const std::string& context) const {
  if (ok()) return;
  std::ostringstream os;
  os << context << ": " << num_errors_ << " error"
     << (num_errors_ == 1 ? "" : "s") << '\n'
     << report_text();
  throw DiagError(os.str(), diags_);
}

// ---- TG_VALIDATE level ---------------------------------------------------

const char* validate_level_name(ValidateLevel level) {
  switch (level) {
    case ValidateLevel::kOff: return "off";
    case ValidateLevel::kFast: return "fast";
    case ValidateLevel::kFull: return "full";
  }
  return "fast";
}

ValidateLevel parse_validate_level(const std::string& name) {
  if (name == "off") return ValidateLevel::kOff;
  if (name == "fast") return ValidateLevel::kFast;
  if (name == "full") return ValidateLevel::kFull;
  TG_CHECK_MSG(false, "TG_VALIDATE must be off, fast or full, got '" << name
                                                                     << "'");
  return ValidateLevel::kFast;
}

namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_validate_level{-1};

int level_from_env() {
  const char* env = std::getenv("TG_VALIDATE");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(ValidateLevel::kFast);
  }
  return static_cast<int>(parse_validate_level(env));
}

}  // namespace

ValidateLevel validate_level() {
  int v = g_validate_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = level_from_env();
    g_validate_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<ValidateLevel>(v);
}

void set_validate_level(ValidateLevel level) {
  g_validate_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace tg
