file(REMOVE_RECURSE
  "CMakeFiles/tg_data.dir/dataset.cpp.o"
  "CMakeFiles/tg_data.dir/dataset.cpp.o.d"
  "CMakeFiles/tg_data.dir/extract.cpp.o"
  "CMakeFiles/tg_data.dir/extract.cpp.o.d"
  "CMakeFiles/tg_data.dir/graph_io.cpp.o"
  "CMakeFiles/tg_data.dir/graph_io.cpp.o.d"
  "CMakeFiles/tg_data.dir/hetero_graph.cpp.o"
  "CMakeFiles/tg_data.dir/hetero_graph.cpp.o.d"
  "libtg_data.a"
  "libtg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
