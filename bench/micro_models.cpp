/// \file micro_models.cpp
/// Microbenchmarks for learned-model inference and training steps: the
/// net-embedding stage, the levelized delay propagation, a full TimingGnn
/// forward (the "Our GNN" runtime of Table 5), one training step, GCNII
/// forward, and random-forest batch prediction.
///
///   micro_models --selfcheck   # CI mode: runs warm-up train steps, then
///                              # hard-fails unless the steady-state
///                              # allocator miss rate is ~0 (alloc/miss)
///   micro_models --json        # BENCH_micro_models.json for perf diffs

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "core/trainer.hpp"
#include "liberty/library_builder.hpp"
#include "micro_common.hpp"
#include "ml/net_features.hpp"
#include "ml/random_forest.hpp"
#include "nn/alloc.hpp"

namespace tg {
namespace {

core::TimingGnnConfig bench_cfg() {
  core::TimingGnnConfig cfg;
  cfg.net.hidden = 16;
  cfg.net.mlp_hidden = 16;
  cfg.prop.hidden = 16;
  cfg.prop.mlp_hidden = 16;
  return cfg;
}

struct Fixture {
  Library lib = build_library();
  data::SuiteDataset ds;
  core::PropPlan plan;

  Fixture() {
    data::DatasetOptions options;
    options.scale = 1.0 / 16;
    ds = data::build_suite_dataset(lib, options, {"picorv32a"});
    plan = core::build_prop_plan(ds.graphs[0]);
  }
  [[nodiscard]] const data::DatasetGraph& g() const { return ds.graphs[0]; }
};

const Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_NetEmbedForward(benchmark::State& state) {
  const Fixture& f = fixture();
  Rng rng(1);
  const core::NetEmbed model(
      core::NetEmbedConfig{.hidden = 16, .mlp_hidden = 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(f.g()).data().data());
  }
  state.SetItemsProcessed(state.iterations() * f.g().num_nodes);
}
BENCHMARK(BM_NetEmbedForward);

void BM_TimingGnnForward(benchmark::State& state) {
  const Fixture& f = fixture();
  const core::TimingGnn model(bench_cfg());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(f.g(), f.plan).atslew.data().data());
  }
  state.SetItemsProcessed(state.iterations() * f.g().num_nodes);
}
BENCHMARK(BM_TimingGnnForward);

void BM_TimingGnnTrainStep(benchmark::State& state) {
  const Fixture& f = fixture();
  core::TimingGnn model(bench_cfg());
  nn::Adam adam(model.parameters(), nn::AdamConfig{.lr = 1e-3f});
  for (auto _ : state) {
    adam.zero_grad();
    const auto pred = model.forward(f.g(), f.plan);
    nn::Tensor loss = model.loss(f.g(), f.plan, pred);
    loss.backward();
    adam.step();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TimingGnnTrainStep);

void BM_GcniiForward(benchmark::State& state) {
  const Fixture& f = fixture();
  core::GcniiConfig cfg;
  cfg.num_layers = static_cast<int>(state.range(0));
  cfg.hidden = 16;
  const core::Gcnii model(cfg);
  const core::GcniiAdjacency adj = core::build_gcnii_adjacency(f.g());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(f.g(), adj).data().data());
  }
}
BENCHMARK(BM_GcniiForward)->Arg(4)->Arg(16);

void BM_ForestPredict(benchmark::State& state) {
  const Fixture& f = fixture();
  const ml::NetFeatureSet fs =
      ml::extract_net_features(*f.g().design, *f.g().truth_routing);
  ml::RandomForest forest;
  ml::ForestConfig cfg;
  cfg.num_trees = 40;
  const int lr = corner_index(Mode::kLate, Trans::kRise);
  const auto y = fs.target_corner(lr);
  forest.fit(fs.matrix(), y, cfg);
  std::vector<float> out(fs.rows);
  for (auto _ : state) {
    forest.predict_batch(fs.matrix(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * fs.rows);
}
BENCHMARK(BM_ForestPredict);

// ---- --selfcheck ---------------------------------------------------------

/// Acceptable steady-state allocator miss rate. After the warm-up steps
/// every per-step tensor acquire should be a free-list hit; the budget
/// tolerates a handful of one-off stragglers without letting wholesale
/// malloc traffic pass.
constexpr double kMissRateBudget = 0.005;

/// CI mode (bypasses google-benchmark): proves the steady-state claim of
/// the caching arena (DESIGN.md §10) on the real training loop — after a
/// few warm-up steps, further TimingGnn train steps run with alloc/miss
/// ≈ 0 because every tensor buffer is reused from the free lists.
int run_selfcheck() {
  nn::alloc::set_alloc_mode(nn::alloc::Mode::kCache);
  const Fixture& f = fixture();
  core::TimingGnn model(bench_cfg());
  nn::Adam adam(model.parameters(), nn::AdamConfig{.lr = 1e-3f});
  auto step = [&] {
    adam.zero_grad();
    const auto pred = model.forward(f.g(), f.plan);
    nn::Tensor loss = model.loss(f.g(), f.plan, pred);
    loss.backward();
    adam.step();
    return loss.item();
  };
  for (int i = 0; i < 3; ++i) step();  // warm-up: populates the arena
  nn::alloc::reset_alloc_stats();
  constexpr int kSteps = 8;
  for (int i = 0; i < kSteps; ++i) step();
  const nn::alloc::AllocStats s = nn::alloc::alloc_stats();
  const std::uint64_t total = s.hits + s.misses;
  const double miss_rate =
      total > 0 ? static_cast<double>(s.misses) / static_cast<double>(total)
                : 0.0;
  std::printf(
      "# models selfcheck: %d steady-state train steps, %llu acquires, "
      "%llu hits, %llu misses (rate %.5f, budget %.3f), high water %.1f MiB\n",
      kSteps, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses), miss_rate, kMissRateBudget,
      static_cast<double>(s.bytes_high_water) / (1024.0 * 1024.0));
  if (total == 0) {
    std::fprintf(stderr,
                 "# models selfcheck FAILED: no allocator traffic recorded "
                 "(arena not wired through Tensor?)\n");
    return 1;
  }
  if (miss_rate > kMissRateBudget) {
    std::fprintf(stderr,
                 "# models selfcheck FAILED: steady-state miss rate %.5f "
                 "exceeds %.3f — training is hitting the heap per step\n",
                 miss_rate, kMissRateBudget);
    return 1;
  }
  std::printf("# models selfcheck OK\n");
  return 0;
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) return tg::run_selfcheck();
  }
  return tg::bench_micro::run_micro_main(argc, argv,
                                         [](const std::vector<int>&) {});
}
