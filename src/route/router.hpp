#pragma once
/// \file router.hpp
/// Whole-design routing orchestration. Two modes:
///  - kSteiner: pre-routing estimate (Steiner trees straight from
///    placement) — what a placer could afford to call in its inner loop;
///  - kMaze: ground-truth routing (congestion-aware maze router) — the
///    repository's stand-in for OpenROAD's route step that produces the
///    training labels.

#include <vector>

#include "route/maze_router.hpp"
#include "route/rc_tree.hpp"
#include "route/steiner.hpp"

namespace tg {

enum class RouteMode { kSteiner, kMaze };

struct RoutingOptions {
  RouteMode mode = RouteMode::kMaze;
  WireModel wire;
  MazeConfig maze;
};

struct DesignRouting {
  /// Indexed by NetId; clock nets carry empty parasitics.
  std::vector<NetParasitics> nets;
  double total_wirelength = 0.0;
  int overflow_edges = 0;
  /// Wall-clock seconds spent routing (Table 5 runtime column).
  double route_seconds = 0.0;
};

/// Routes every non-clock net and extracts its parasitics.
[[nodiscard]] DesignRouting route_design(const Design& design,
                                         const RoutingOptions& options = {});

}  // namespace tg
