#include "util/obs/telemetry.hpp"

#include <sys/resource.h>

#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

namespace tg::obs {

bool JsonlWriter::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (!file_) {
    TG_WARN("telemetry: cannot open " << path << " for writing");
    return false;
  }
  return true;
}

void JsonlWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void JsonlWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

std::uint64_t peak_rss_bytes() {
  // VmHWM ("high water mark") is the peak resident set in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        std::fclose(f);
        return static_cast<std::uint64_t>(
                   std::strtoull(line + 6, nullptr, 10)) *
               1024;
      }
    }
    std::fclose(f);
  }
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB on Linux
  }
  return 0;
}

}  // namespace tg::obs
