#!/usr/bin/env bash
# Local CI driver — the same matrix as .github/workflows/ci.yml, runnable
# offline. Three jobs:
#   tier1  plain build + full ctest (the correctness gate)
#   asan   ASan build running the `fuzz` label (parsers + validators
#          under 10k seeded mutations each)
#   ubsan  UBSan build running the `fault` + `fuzz` labels
# Usage: ci/run.sh [tier1|asan|ubsan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_tier1() {
  echo "==> tier1: build + ctest"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "$jobs"
  ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_asan() {
  echo "==> asan: fuzz label under AddressSanitizer"
  cmake -B build-asan -S . -DTG_SANITIZE=address
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L fuzz
}

run_ubsan() {
  echo "==> ubsan: fault + fuzz labels under UBSan"
  cmake -B build-ubsan -S . -DTG_SANITIZE=undefined
  cmake --build build-ubsan -j "$jobs"
  ctest --test-dir build-ubsan --output-on-failure -L 'fault|fuzz'
}

case "$job" in
  tier1) run_tier1 ;;
  asan)  run_asan ;;
  ubsan) run_ubsan ;;
  all)   run_tier1; run_asan; run_ubsan ;;
  *) echo "usage: $0 [tier1|asan|ubsan|all]" >&2; exit 2 ;;
esac
echo "==> $job: OK"
