/// \file micro_sta.cpp
/// Microbenchmarks for the golden STA substrate: timing-graph build,
/// levelization, and full 4-corner propagation — the denominators of the
/// paper's Table-5 runtime comparison.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "gen/suite.hpp"
#include "liberty/library_builder.hpp"
#include "micro_common.hpp"
#include "place/placer.hpp"
#include "sta/incremental.hpp"
#include "sta/paths.hpp"
#include "util/parallel.hpp"

namespace tg {
namespace {

struct Prepared {
  Library lib;
  std::unique_ptr<Design> design;
  DesignRouting routing;
};

const Prepared& prepared(const char* name, double scale) {
  static std::map<std::string, std::unique_ptr<Prepared>> cache;
  const std::string key = std::string(name) + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto p = std::make_unique<Prepared>();
    p->lib = build_library();
    p->design = std::make_unique<Design>(
        generate_design(suite_entry(name, scale).spec, p->lib));
    place_design(*p->design);
    RoutingOptions opts;
    opts.mode = RouteMode::kSteiner;
    p->routing = route_design(*p->design, opts);
    it = cache.emplace(key, std::move(p)).first;
  }
  return *it->second;
}

void BM_TimingGraphBuild(benchmark::State& state) {
  const Prepared& p = prepared("picorv32a", 1.0 / 16);
  for (auto _ : state) {
    TimingGraph graph(*p.design);
    benchmark::DoNotOptimize(graph.num_levels());
  }
  state.SetItemsProcessed(state.iterations() * p.design->num_pins());
}
BENCHMARK(BM_TimingGraphBuild);

void BM_StaPropagation(benchmark::State& state) {
  const Prepared& p = prepared("picorv32a", 1.0 / 16);
  const TimingGraph graph(*p.design);
  for (auto _ : state) {
    const StaResult sta = run_sta(graph, p.routing);
    benchmark::DoNotOptimize(sta.wns_setup);
  }
  state.SetItemsProcessed(state.iterations() * p.design->num_pins());
}
BENCHMARK(BM_StaPropagation);

void BM_StaPropagationLarge(benchmark::State& state) {
  const Prepared& p = prepared("aes256", 1.0 / 16);
  const TimingGraph graph(*p.design);
  for (auto _ : state) {
    const StaResult sta = run_sta(graph, p.routing);
    benchmark::DoNotOptimize(sta.wns_setup);
  }
  state.SetItemsProcessed(state.iterations() * p.design->num_pins());
}
BENCHMARK(BM_StaPropagationLarge);

void BM_WorstPaths(benchmark::State& state) {
  const Prepared& p = prepared("picorv32a", 1.0 / 16);
  const TimingGraph graph(*p.design);
  const StaResult sta = run_sta(graph, p.routing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(worst_paths(graph, sta, 10).size());
  }
}
BENCHMARK(BM_WorstPaths);

void BM_IncrementalOneNet(benchmark::State& state) {
  // Cost of re-timing after a single-net ECO, vs BM_StaPropagation's full
  // run on the same design.
  Prepared& p = const_cast<Prepared&>(prepared("picorv32a", 1.0 / 16));
  const TimingGraph graph(*p.design);
  IncrementalTimer inc(graph, &p.routing);
  NetId net = 0;
  for (NetId n = 0; n < p.design->num_nets(); ++n) {
    if (!p.design->net(n).is_clock) {
      net = n;
      break;
    }
  }
  double factor = 1.1;
  for (auto _ : state) {
    for (auto& d : p.routing.nets[static_cast<std::size_t>(net)].sink_delay) {
      for (double& v : d) v *= factor;
    }
    factor = factor > 1.0 ? 0.9 : 1.1;  // oscillate so it always changes
    inc.invalidate_net(net);
    benchmark::DoNotOptimize(inc.update());
  }
  state.SetItemsProcessed(state.iterations() * inc.last_update_visited());
}
BENCHMARK(BM_IncrementalOneNet);

void BM_NldmLookup(benchmark::State& state) {
  const Library lib = build_library();
  const CellType& cell = lib.cell(lib.find_cell("NAND2_X1"));
  const NldmLut& lut = cell.arcs[0].delay[corner_index(Mode::kLate, Trans::kRise)];
  Rng rng(1);
  std::vector<std::pair<double, double>> queries(1024);
  for (auto& [s, l] : queries) {
    s = rng.uniform(0.005, 0.7);
    l = rng.uniform(0.0005, 0.3);
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& [s, l] : queries) acc += lut.lookup(s, l);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NldmLookup);

/// --sweep: full-timer update across thread counts × design sizes, the
/// parallel-scaling regression matrix (see micro_common.hpp).
void register_sweep(const std::vector<int>& thread_counts) {
  static const char* kDesigns[] = {"picorv32a", "aes256"};
  for (const char* design : kDesigns) {
    for (const int t : thread_counts) {
      const std::string name =
          std::string("SWEEP_StaPropagation/") + design + "/threads:" +
          std::to_string(t);
      benchmark::RegisterBenchmark(
          name.c_str(), [design, t](benchmark::State& state) {
            set_num_threads(t);
            const Prepared& p = prepared(design, 1.0 / 16);
            const TimingGraph graph(*p.design);
            for (auto _ : state) {
              const StaResult sta = run_sta(graph, p.routing);
              benchmark::DoNotOptimize(sta.wns_setup);
            }
            state.SetItemsProcessed(state.iterations() * p.design->num_pins());
          });
    }
  }
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  return tg::bench_micro::run_micro_main(argc, argv, tg::register_sweep);
}
