#pragma once
/// \file telemetry.hpp
/// Small helpers for the trainer telemetry stream (DESIGN.md §9): a
/// mutex-guarded JSONL writer (one JSON object per line, flushed per line
/// so a crash loses at most the line being written) and a peak-RSS probe.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace tg::obs {

/// Line-oriented JSON writer. Opens `path` truncating; each write_line
/// appends one line and flushes. All methods are thread-safe.
class JsonlWriter {
 public:
  JsonlWriter() = default;
  explicit JsonlWriter(const std::string& path) { open(path); }
  ~JsonlWriter() { close(); }
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Returns false (after TG_WARN) if the file cannot be opened.
  bool open(const std::string& path);
  void close();
  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  /// Writes `line` (without trailing newline) + '\n', then flushes.
  void write_line(const std::string& line);

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Peak resident-set size of this process in bytes (VmHWM from
/// /proc/self/status, getrusage fallback); 0 if unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace tg::obs
