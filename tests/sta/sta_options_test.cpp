/// Sensitivity of the golden timer to its boundary-condition options.

#include <gtest/gtest.h>

#include "liberty/library_builder.hpp"
#include "route/router.hpp"
#include "sta/timer.hpp"
#include "testing/builders.hpp"

namespace tg {
namespace {

class StaOptionsTest : public ::testing::Test {
 protected:
  Library lib_ = build_library();

  struct Prepared {
    std::unique_ptr<Design> design;
    std::unique_ptr<TimingGraph> graph;
    DesignRouting routing;
  };

  Prepared prepare() {
    Prepared p;
    p.design = std::make_unique<Design>("t", &lib_);
    testing::build_seq_chain(*p.design, lib_);
    RoutingOptions opts;
    opts.mode = RouteMode::kSteiner;
    p.routing = route_design(*p.design, opts);
    p.graph = std::make_unique<TimingGraph>(*p.design);
    return p;
  }
};

TEST_F(StaOptionsTest, InputSlewPropagatesToRoots) {
  auto p = prepare();
  StaOptions o;
  o.input_slew_ns = 0.123;
  const StaResult sta = run_sta(*p.graph, p.routing, o);
  for (PinId pin : p.design->primary_inputs()) {
    if (p.design->pin(pin).net == p.design->clock_net()) continue;
    for (int c = 0; c < kNumCorners; ++c) {
      EXPECT_DOUBLE_EQ(sta.slew[static_cast<std::size_t>(pin)][c], 0.123);
    }
  }
}

TEST_F(StaOptionsTest, ClockSlewDistinctFromInputSlew) {
  auto p = prepare();
  StaOptions o;
  o.input_slew_ns = 0.2;
  o.clock_slew_ns = 0.04;
  const StaResult sta = run_sta(*p.graph, p.routing, o);
  for (PinId pin = 0; pin < p.design->num_pins(); ++pin) {
    if (p.design->is_clock_pin(pin)) {
      EXPECT_DOUBLE_EQ(sta.slew[static_cast<std::size_t>(pin)][0], 0.04);
    }
  }
}

TEST_F(StaOptionsTest, PoMarginTightensPoSlackOnly) {
  auto p = prepare();
  p.design->set_period(5.0);
  StaOptions base;
  StaOptions tight;
  tight.po_setup_margin_ns = 0.5;
  const StaResult a = run_sta(*p.graph, p.routing, base);
  const StaResult b = run_sta(*p.graph, p.routing, tight);
  for (PinId po : p.design->primary_outputs()) {
    const double da = endpoint_setup_slack(a, po);
    const double db = endpoint_setup_slack(b, po);
    EXPECT_NEAR(da - db, 0.5, 1e-9) << p.design->pin_name(po);
  }
}

TEST_F(StaOptionsTest, PoHoldMarginTightensHold) {
  auto p = prepare();
  StaOptions base;
  StaOptions tight;
  tight.po_hold_margin_ns = 0.2;
  const StaResult a = run_sta(*p.graph, p.routing, base);
  const StaResult b = run_sta(*p.graph, p.routing, tight);
  for (PinId po : p.design->primary_outputs()) {
    EXPECT_NEAR(endpoint_hold_slack(a, po) - endpoint_hold_slack(b, po), 0.2,
                1e-9);
  }
}

}  // namespace
}  // namespace tg
