#pragma once
/// \file trainer.hpp
/// Training / evaluation drivers for the three learned models of the
/// paper's evaluation:
///  - TimingGnnTrainer: the full two-stage model (Table 5, Fig. 4),
///  - NetEmbedTrainer: the net-embedding stage standalone (Table 4),
///  - GcniiTrainer: the vanilla deep-GNN baseline (Table 5).
/// All trainers run full-graph gradient steps over the training designs
/// (the paper's setup: one graph per design, no mini-batching).

#include <atomic>
#include <map>

#include "core/gcnii.hpp"
#include "core/timing_gnn.hpp"
#include "data/dataset.hpp"
#include "nn/optim.hpp"

namespace tg::core {

struct TrainOptions {
  int epochs = 12;
  float lr = 1e-3f;
  /// Final learning rate: lr decays geometrically to this across the run
  /// (improves final calibration). <= 0 keeps lr constant.
  float lr_final = 0.0f;
  float grad_clip = 5.0f;
  bool verbose = true;
  /// Crash-safe checkpointing: when non-empty, fit() atomically writes
  /// {params, Adam moments, epoch, RNG state} here after every
  /// `checkpoint_every`-th epoch (and after the final one). Restoring via
  /// load_checkpoint and re-running fit() reproduces the uninterrupted
  /// run bit-identically.
  std::string checkpoint_path;
  int checkpoint_every = 1;
  /// Training telemetry: when non-empty, fit() appends one JSON object per
  /// epoch here (JSONL) with loss, mean global gradient L2 norm, learning
  /// rate, epoch wall time, peak RSS, and the non-finite-step count. See
  /// DESIGN.md §9 "Observability".
  std::string telemetry_path;
  /// Cooperative graceful shutdown: when non-null and flipped true (e.g.
  /// by a SIGINT/SIGTERM handler), fit() stops at the next epoch boundary
  /// — after writing a checkpoint if checkpoint_path is set — and returns
  /// normally. Resuming from that checkpoint reproduces the uninterrupted
  /// run bit-identically (the stop never lands mid-step).
  const std::atomic<bool>* stop_requested = nullptr;
  /// Deterministic stand-in for a mid-run signal (tests): when > 0, fit()
  /// behaves as if stop_requested flipped after this many completed
  /// epochs.
  int stop_after_epochs = 0;
};

/// Per-design evaluation record; R² definitions follow the paper
/// (pooled over the 4 EL/RF corners).
struct DesignEval {
  std::string name;
  bool is_test = false;
  double r2_arrival_endpoints = 0.0;  ///< Table 5 headline metric
  double r2_atslew_all = 0.0;         ///< arrival+slew over all pins
  double r2_net_delay = 0.0;          ///< Table 4 metric (net sinks)
  double r2_cell_delay = 0.0;
  double r2_slack_setup = 0.0;        ///< Fig. 4 (setup)
  double r2_slack_hold = 0.0;         ///< Fig. 4 (hold)
  double pearson_setup = 0.0;
  double pearson_hold = 0.0;
  double infer_seconds = 0.0;         ///< Table 5 "Our GNN" runtime
};

/// Averages a metric over evals.
[[nodiscard]] double mean_of(const std::vector<DesignEval>& evals,
                             double DesignEval::* field);

class TimingGnnTrainer {
 public:
  TimingGnnTrainer(const TimingGnnConfig& config, const TrainOptions& options);

  /// Trains on dataset.train_ids; returns final mean training loss.
  double fit(const data::SuiteDataset& dataset);

  [[nodiscard]] DesignEval evaluate(const data::DatasetGraph& g);

  /// Predicted and true endpoint slacks for scatter plots (Fig. 4).
  struct SlackScatter {
    std::vector<double> true_setup, pred_setup, true_hold, pred_hold;
  };
  [[nodiscard]] SlackScatter slack_scatter(const data::DatasetGraph& g);

  [[nodiscard]] TimingGnn& model() { return model_; }
  [[nodiscard]] const PropPlan& plan_for(const data::DatasetGraph& g);

  /// Atomic, checksummed checkpoint (same format rules as graph_io/serialize;
  /// see DESIGN.md "Failure model & persistence"). Throws CheckError on any
  /// I/O failure, leaving a previous checkpoint at `path` intact.
  void save_checkpoint(const std::string& path) const;
  /// Restores params + Adam state + epoch counter; the next fit() continues
  /// from the stored epoch.
  void load_checkpoint(const std::string& path);
  /// Epochs completed so far (nonzero after load_checkpoint or fit()).
  [[nodiscard]] int completed_epochs() const { return epoch_; }
  /// Training steps skipped by the non-finite-loss guard.
  [[nodiscard]] long long non_finite_steps() const { return non_finite_steps_; }

 private:
  TimingGnn model_;
  TrainOptions options_;
  nn::Adam adam_;
  int epoch_ = 0;
  long long non_finite_steps_ = 0;
  std::map<const data::DatasetGraph*, PropPlan> plans_;
};

class NetEmbedTrainer {
 public:
  NetEmbedTrainer(const NetEmbedConfig& config, const TrainOptions& options,
                  std::uint64_t seed = 11);

  double fit(const data::SuiteDataset& dataset);
  /// R² of net-delay prediction at net sinks, pooled over corners.
  [[nodiscard]] double evaluate_r2(const data::DatasetGraph& g) const;

  [[nodiscard]] NetEmbed& model() { return model_; }

  /// Checkpoint / resume; includes the trainer's RNG stream state.
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);
  [[nodiscard]] int completed_epochs() const { return epoch_; }
  [[nodiscard]] long long non_finite_steps() const { return non_finite_steps_; }

 private:
  Rng rng_;
  NetEmbed model_;
  TrainOptions options_;
  nn::Adam adam_;
  int epoch_ = 0;
  long long non_finite_steps_ = 0;
};

class GcniiTrainer {
 public:
  GcniiTrainer(const GcniiConfig& config, const TrainOptions& options);

  double fit(const data::SuiteDataset& dataset);
  [[nodiscard]] DesignEval evaluate(const data::DatasetGraph& g);

  [[nodiscard]] Gcnii& model() { return model_; }

  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);
  [[nodiscard]] int completed_epochs() const { return epoch_; }
  [[nodiscard]] long long non_finite_steps() const { return non_finite_steps_; }

 private:
  Gcnii model_;
  TrainOptions options_;
  nn::Adam adam_;
  int epoch_ = 0;
  long long non_finite_steps_ = 0;
  std::map<const data::DatasetGraph*, GcniiAdjacency> adjacencies_;
  const GcniiAdjacency& adjacency_for(const data::DatasetGraph& g);
};

}  // namespace tg::core
