#include "sta/shard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"
#include "util/parallel.hpp"

namespace tg {

namespace {

constexpr double kEps = 1e-12;  ///< same "changed" threshold as incremental

// ---- process-wide counters and knobs -------------------------------------

struct StatCounters {
  std::atomic<std::uint64_t> sweeps{0};
  std::atomic<std::uint64_t> shard_runs{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> speculations{0};
  std::atomic<std::uint64_t> ghost_exports{0};
  std::atomic<std::uint64_t> ghost_bytes{0};
  std::atomic<std::uint64_t> ghost_verifies{0};
  std::atomic<std::uint64_t> ghost_mismatches{0};
  std::atomic<std::uint64_t> ghost_reexports{0};
  std::atomic<std::uint64_t> failures{0};
};

StatCounters& counters() {
  static StatCounters c;
  return c;
}

std::atomic<int> g_retries{-1};           // -1 unresolved
std::atomic<double> g_straggler_ms{-1.0};  // < 0 unresolved
std::atomic<int> g_straggler_explicit{-1};
std::atomic<std::uint64_t> g_sweep_seq{0};

/// Grace deadline while no EMA sample exists and no explicit straggler
/// floor was configured — generous so a cold first shard on a loaded
/// machine is not immediately re-issued.
constexpr double kNoEmaGraceMs = 500.0;

bool straggler_explicit() {
  (void)shard_straggler_ms();  // force resolution
  return g_straggler_explicit.load(std::memory_order_acquire) > 0;
}

// ---- FNV-1a ---------------------------------------------------------------

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---- boundary-buffer exchange ---------------------------------------------

/// One direction's boundary buffer of one exporter shard. The payload is
/// the exporter's boundary pins' lanes in export order (forward: arrival
/// then slew per pin; backward: RAT per pin); `version` is the sweep id
/// the payload belongs to and `checksum` its FNV-1a. Guarded by `mu` —
/// several importers may verify (and, on mismatch, re-export) the same
/// buffer concurrently.
struct Buffer {
  std::mutex mu;
  std::uint64_t version = 0;
  std::uint64_t checksum = 0;
  std::vector<double> payload;
};

/// Per-sweep exchange state: one buffer per shard, plus the sweep id every
/// published version must carry. Allocated per orchestrated sweep, so
/// concurrent sweeps over the same plan never alias buffers.
struct Exchange {
  explicit Exchange(int num_shards)
      : sweep_id(g_sweep_seq.fetch_add(1, std::memory_order_relaxed) + 1),
        bufs(static_cast<std::size_t>(num_shards)) {}
  std::uint64_t sweep_id;
  std::vector<Buffer> bufs;
};

/// Everything one orchestrated sweep touches. `routing`/`options` are null
/// for backward sweeps.
struct SweepCtx {
  const TimingGraph* graph = nullptr;
  const ShardPlan* plan = nullptr;
  StaResult* r = nullptr;
  const DesignRouting* routing = nullptr;
  const StaOptions* options = nullptr;
  bool forward = true;
  Exchange* ex = nullptr;
};

int lanes_of(const SweepCtx& ctx) { return ctx.forward ? 8 : 4; }

const std::vector<PinId>& exports_of(const SweepCtx& ctx, int shard) {
  const ShardPlan::Shard& sh =
      ctx.plan->shards[static_cast<std::size_t>(shard)];
  return ctx.forward ? sh.fwd_exports : sh.bwd_exports;
}

const std::vector<int>& deps_of(const SweepCtx& ctx, int shard) {
  const ShardPlan::Shard& sh =
      ctx.plan->shards[static_cast<std::size_t>(shard)];
  return ctx.forward ? sh.fwd_deps : sh.bwd_deps;
}

/// Forward dependents of s are exactly its backward deps (cross edges read
/// both ways) and vice versa.
const std::vector<int>& dependents_of(const SweepCtx& ctx, int shard) {
  const ShardPlan::Shard& sh =
      ctx.plan->shards[static_cast<std::size_t>(shard)];
  return ctx.forward ? sh.bwd_deps : sh.fwd_deps;
}

void fill_payload(const SweepCtx& ctx, const std::vector<PinId>& pins,
                  std::vector<double>& payload) {
  const int lanes = lanes_of(ctx);
  payload.resize(pins.size() * static_cast<std::size_t>(lanes));
  std::size_t at = 0;
  for (PinId p : pins) {
    const auto pi = static_cast<std::size_t>(p);
    if (ctx.forward) {
      for (int c = 0; c < kNumCorners; ++c) payload[at++] = ctx.r->arrival[pi][c];
      for (int c = 0; c < kNumCorners; ++c) payload[at++] = ctx.r->slew[pi][c];
    } else {
      for (int c = 0; c < kNumCorners; ++c) payload[at++] = ctx.r->rat[pi][c];
    }
  }
}

/// Publishes shard `s`'s boundary buffer from the (final) result rows,
/// then applies any armed corrupt/stale injection — *after* the checksum,
/// so the importer's verification is what detects it. Caller holds buf.mu.
void publish_locked(const SweepCtx& ctx, int s, Buffer& buf) {
  fill_payload(ctx, exports_of(ctx, s), buf.payload);
  buf.checksum = fnv1a64(buf.payload.data(), buf.payload.size() * sizeof(double));
  buf.version = ctx.ex->sweep_id;
  counters().ghost_exports.fetch_add(1, std::memory_order_relaxed);
  counters().ghost_bytes.fetch_add(buf.payload.size() * sizeof(double),
                                   std::memory_order_relaxed);
  if (!buf.payload.empty() && fault::should_fail_shard("corrupt")) {
    std::uint64_t bits;
    std::memcpy(&bits, buf.payload.data(), sizeof(bits));
    bits ^= 0x4000000000000000ull;
    std::memcpy(buf.payload.data(), &bits, sizeof(bits));
  }
  if (fault::should_fail_shard("stale")) buf.version = ctx.ex->sweep_id - 1;
}

void publish(const SweepCtx& ctx, int s) {
  if (exports_of(ctx, s).empty()) return;
  Buffer& buf = ctx.ex->bufs[static_cast<std::size_t>(s)];
  const std::lock_guard<std::mutex> lock(buf.mu);
  publish_locked(ctx, s, buf);
}

/// Importer-side verification of exporter `from`'s buffer: version must be
/// this sweep's id, the checksum must cover the payload, and the payload
/// must match the owner's result rows bit for bit. A stale or corrupt
/// exchange is detected here and *recovered* by re-exporting from the
/// owner's still-valid results; past the retry budget it escalates to a
/// loud ShardSweepError naming the exporter shard, its level range and
/// the first-offender pin.
void verify_exchange(const SweepCtx& ctx, int importer, int from) {
  const std::vector<PinId>& pins = exports_of(ctx, from);
  if (pins.empty()) return;
  Buffer& buf = ctx.ex->bufs[static_cast<std::size_t>(from)];
  const int lanes = lanes_of(ctx);
  const std::lock_guard<std::mutex> lock(buf.mu);
  const int max_tries = shard_retries() + 1;
  std::string why;
  for (int attempt = 1; attempt <= max_tries; ++attempt) {
    std::vector<double> expect;
    fill_payload(ctx, pins, expect);
    if (buf.version != ctx.ex->sweep_id) {
      std::ostringstream os;
      os << "stale version " << buf.version << " (sweep " << ctx.ex->sweep_id
         << ")";
      why = os.str();
    } else if (buf.checksum !=
               fnv1a64(buf.payload.data(),
                       buf.payload.size() * sizeof(double))) {
      why = "checksum mismatch";
    } else if (buf.payload.size() != expect.size() ||
               std::memcmp(buf.payload.data(), expect.data(),
                           expect.size() * sizeof(double)) != 0) {
      why = "payload disagrees with owner results";
    } else {
      counters().ghost_verifies.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    counters().ghost_mismatches.fetch_add(1, std::memory_order_relaxed);
    TG_METRIC_COUNT("sta/shard/ghost_mismatches", 1);
    if (attempt == max_tries) break;
    // Recovery: the owner's result rows are still valid (they are the
    // authoritative publication) — re-derive the exchange from them.
    publish_locked(ctx, from, buf);
    counters().ghost_reexports.fetch_add(1, std::memory_order_relaxed);
  }

  // First-offender pin: the first boundary pin whose lanes differ from the
  // owner's rows (falls back to the first boundary pin for pure
  // version/size damage).
  PinId offender = pins.front();
  {
    std::vector<double> expect;
    fill_payload(ctx, pins, expect);
    if (buf.payload.size() == expect.size()) {
      for (std::size_t i = 0; i < expect.size(); ++i) {
        if (std::memcmp(&buf.payload[i], &expect[i], sizeof(double)) != 0) {
          offender = pins[i / static_cast<std::size_t>(lanes)];
          break;
        }
      }
    }
  }
  counters().failures.fetch_add(1, std::memory_order_relaxed);
  TG_METRIC_COUNT("sta/shard/failures", 1);
  const Partition& part = ctx.plan->part;
  std::ostringstream os;
  os << (ctx.forward ? "forward" : "backward") << " boundary exchange from shard "
     << from << " (levels " << part.level_lo[static_cast<std::size_t>(from)]
     << ".." << part.level_hi[static_cast<std::size_t>(from)] << ") into shard "
     << importer << " invalid after " << max_tries << " verifies: " << why
     << "; first-offender pin "
     << ctx.graph->design().pin_name(offender);
  std::vector<Diag> diags;
  diags.push_back(Diag{Severity::kError, Stage::kSta, SrcLoc{},
                       ctx.graph->design().pin_name(offender), os.str()});
  throw ShardSweepError(os.str(), std::move(diags), from);
}

// ---- per-shard execution ---------------------------------------------------

/// Injected slow-shard stall: sleeps in short slices, polling the ambient
/// (attempt) token, so a straggler cancel or request deadline interrupts
/// it promptly.
void maybe_stall() {
  if (!fault::should_fail_shard("slow")) return;
  const CancelToken tok = current_cancel_token();
  for (int i = 0; i < 60; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    tok.throw_if_cancelled();
  }
}

/// One shard attempt: fault points, ghost import verification, the local
/// sweep (serial walk of the shard's precomputed topo order — inter-shard
/// concurrency is the engine's parallelism), boundary export. Cancel
/// polls at the shard boundary (entry) and every 64 pins.
void execute_shard_once(const SweepCtx& ctx, int s) {
  counters().shard_runs.fetch_add(1, std::memory_order_relaxed);
  TG_METRIC_COUNT("sta/shard/shard_runs", 1);
  const CancelToken tok = current_cancel_token();
  tok.throw_if_cancelled();
  if (fault::should_fail_shard("worker")) {
    std::ostringstream os;
    os << "injected shard worker fault (shard " << s << ")";
    throw std::runtime_error(os.str());
  }
  maybe_stall();
  for (int dep : deps_of(ctx, s)) verify_exchange(ctx, s, dep);

  const ShardPlan::Shard& sh = ctx.plan->shards[static_cast<std::size_t>(s)];
  const std::vector<PinId>& owned =
      ctx.plan->part.owned[static_cast<std::size_t>(s)];
  const TaskDag& dag = ctx.forward ? sh.fwd : sh.bwd;
  std::size_t fired = 0;
  for (int local : dag.topo) {
    if ((fired++ & 63u) == 0) tok.throw_if_cancelled();
    const PinId p = owned[static_cast<std::size_t>(local)];
    if (ctx.forward) {
      sta_detail::propagate_pin(*ctx.graph, *ctx.routing, *ctx.options,
                                *ctx.r, p);
    } else {
      sta_detail::relax_required_pin(*ctx.graph, *ctx.r, p);
    }
  }
  publish(ctx, s);
}

[[noreturn]] void throw_shard_failure(const SweepCtx& ctx, int s,
                                      int attempts, const std::string& why) {
  counters().failures.fetch_add(1, std::memory_order_relaxed);
  TG_METRIC_COUNT("sta/shard/failures", 1);
  const Partition& part = ctx.plan->part;
  const std::vector<PinId>& owned = part.owned[static_cast<std::size_t>(s)];
  std::ostringstream os;
  os << "shard " << s << " (levels "
     << part.level_lo[static_cast<std::size_t>(s)] << ".."
     << part.level_hi[static_cast<std::size_t>(s)] << ", "
     << owned.size() << " pins) failed " << attempts << " attempts: " << why;
  std::string object;
  if (!owned.empty()) {
    object = ctx.graph->design().pin_name(owned.front());
    os << "; first owned pin " << object;
  }
  std::vector<Diag> diags;
  diags.push_back(
      Diag{Severity::kError, Stage::kSta, SrcLoc{}, object, os.str()});
  throw ShardSweepError(os.str(), std::move(diags), s);
}

std::chrono::milliseconds backoff_delay(int attempt) {
  const int ms = std::min(8, 1 << (attempt > 0 ? attempt - 1 : 0));
  return std::chrono::milliseconds(ms);
}

/// Inline retry loop shared by the serial orchestrator and the cone
/// updater: re-executes `body` up to the retry budget with capped backoff,
/// escalating to a loud ShardSweepError. Straggler speculation needs
/// concurrency and lives in the parallel orchestrator instead.
template <typename Body>
void run_with_retries(const SweepCtx& ctx, int s, Body&& body) {
  const int max_attempts = shard_retries() + 1;
  for (int attempt = 1;; ++attempt) {
    try {
      body(attempt);
      return;
    } catch (const CancelError&) {
      throw;  // request cancel/deadline: not a shard fault
    } catch (const ShardSweepError&) {
      throw;  // already escalated (exchange verification)
    } catch (const std::exception& e) {
      if (attempt >= max_attempts) {
        throw_shard_failure(ctx, s, attempt, e.what());
      }
      counters().retries.fetch_add(1, std::memory_order_relaxed);
      TG_METRIC_COUNT("sta/shard/retries", 1);
      std::this_thread::sleep_for(backoff_delay(attempt));
    }
  }
}

// ---- orchestrator ----------------------------------------------------------

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct OrchState {
  SweepCtx ctx;
  CancelToken outer;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> pending;  ///< unfinished upstream shards, per shard
  std::deque<int> ready;
  int inflight = 0;
  int completed = 0;
  bool aborted = false;
  std::exception_ptr error;

  struct Attempt {
    CancelSource src;
    Clock::time_point start{};
    double deadline_ms = 0.0;
    bool active = false;
  };
  std::vector<Attempt> attempts;

  double ema_ms = 0.0;
  bool have_ema = false;

  double next_deadline_ms_locked() const {
    const double floor_ms = shard_straggler_ms();
    if (have_ema) return std::max(floor_ms, 8.0 * ema_ms);
    return straggler_explicit() ? floor_ms
                                : std::max(floor_ms, kNoEmaGraceMs);
  }

  void note_duration_locked(double ms) {
    ema_ms = have_ema ? 0.7 * ema_ms + 0.3 * ms : ms;
    have_ema = true;
  }

  void record_error_locked(std::exception_ptr e) {
    if (!error) error = std::move(e);
    aborted = true;
    // Stop in-flight attempts fast — a stalled shard must not outlive the
    // sweep that already failed.
    for (Attempt& a : attempts) {
      if (a.active) a.src.cancel();
    }
  }

  void finish_shard_locked(int s) {
    ++completed;
    --inflight;
    for (int d : dependents_of(ctx, s)) {
      if (--pending[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
    cv.notify_all();
  }
};

/// Pool-worker body for one shard: attempt loop with fault retries and
/// straggler-cancel re-issue. Every exit path decrements `inflight` and
/// notifies the coordinator.
void shard_worker(const std::shared_ptr<OrchState>& st, int s) {
  const int max_attempts = shard_retries() + 1;
  for (int attempt = 1;; ++attempt) {
    CancelToken attempt_token;
    {
      const std::lock_guard<std::mutex> lock(st->mu);
      if (st->aborted) break;
      OrchState::Attempt& a = st->attempts[static_cast<std::size_t>(s)];
      a.src = CancelSource::with_parent(st->outer);
      a.start = Clock::now();
      a.deadline_ms = st->next_deadline_ms_locked();
      a.active = true;
      attempt_token = a.src.token();
    }
    const Clock::time_point t0 = Clock::now();
    try {
      const ScopedCancel scope(attempt_token);
      execute_shard_once(st->ctx, s);
      const std::lock_guard<std::mutex> lock(st->mu);
      st->attempts[static_cast<std::size_t>(s)].active = false;
      st->note_duration_locked(ms_since(t0));
      st->finish_shard_locked(s);
      return;
    } catch (const CancelError&) {
      const std::lock_guard<std::mutex> lock(st->mu);
      st->attempts[static_cast<std::size_t>(s)].active = false;
      if (st->outer.cancelled()) {
        st->record_error_locked(
            std::make_exception_ptr(CancelError(st->outer.reason())));
        break;
      }
      if (st->aborted) break;
      // Straggler speculation: the watchdog cancelled this attempt; write
      // exclusivity is preserved by re-running on this same worker.
      if (attempt >= max_attempts) {
        try {
          throw_shard_failure(st->ctx, s, attempt,
                              "straggler deadline exceeded repeatedly");
        } catch (...) {
          st->record_error_locked(std::current_exception());
        }
        break;
      }
    } catch (const ShardSweepError&) {
      const std::lock_guard<std::mutex> lock(st->mu);
      st->attempts[static_cast<std::size_t>(s)].active = false;
      st->record_error_locked(std::current_exception());
      break;
    } catch (const std::exception& e) {
      {
        const std::lock_guard<std::mutex> lock(st->mu);
        st->attempts[static_cast<std::size_t>(s)].active = false;
        if (st->aborted) break;
        if (attempt >= max_attempts) {
          try {
            throw_shard_failure(st->ctx, s, attempt, e.what());
          } catch (...) {
            st->record_error_locked(std::current_exception());
          }
          break;
        }
      }
      counters().retries.fetch_add(1, std::memory_order_relaxed);
      TG_METRIC_COUNT("sta/shard/retries", 1);
      std::this_thread::sleep_for(backoff_delay(attempt));
    }
  }
  const std::lock_guard<std::mutex> lock(st->mu);
  --st->inflight;
  st->cv.notify_all();
}

/// Runs one full sweep over every shard of `ctx.plan` in dependency order.
/// Serial (one thread: shards inline, ascending/descending id — a valid
/// topological order because the partition is monotone) or parallel
/// (dependency-counter dispatch onto the shared pool, with the calling
/// thread as coordinator + straggler watchdog).
void orchestrate(SweepCtx& ctx) {
  const int k = static_cast<int>(ctx.plan->shards.size());
  counters().sweeps.fetch_add(1, std::memory_order_relaxed);
  TG_METRIC_COUNT("sta/shard/sweeps", 1);
  const CancelToken outer = current_cancel_token();
  outer.throw_if_cancelled();

  if (num_threads() <= 1 || k == 1) {
    // Inline serial drain. Shard ids are a topological order of the shard
    // DAG (ascending forward, descending backward).
    for (int i = 0; i < k; ++i) {
      const int s = ctx.forward ? i : k - 1 - i;
      outer.throw_if_cancelled();
      run_with_retries(ctx, s,
                       [&](int) { execute_shard_once(ctx, s); });
    }
    return;
  }

  auto st = std::make_shared<OrchState>();
  st->ctx = ctx;
  st->outer = outer;
  st->pending.assign(static_cast<std::size_t>(k), 0);
  st->attempts = std::vector<OrchState::Attempt>(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const int s = ctx.forward ? i : k - 1 - i;
    st->pending[static_cast<std::size_t>(s)] =
        static_cast<int>(deps_of(ctx, s).size());
    if (st->pending[static_cast<std::size_t>(s)] == 0) st->ready.push_back(s);
  }

  const int max_inflight = std::max(1, num_threads() - 1);
  std::unique_lock<std::mutex> lock(st->mu);
  for (;;) {
    if (!st->aborted && st->outer.cancelled()) {
      st->record_error_locked(
          std::make_exception_ptr(CancelError(st->outer.reason())));
    }
    while (!st->aborted && !st->ready.empty() &&
           st->inflight < max_inflight) {
      const int s = st->ready.front();
      st->ready.pop_front();
      ++st->inflight;
      parallel_detail::pool_submit([st, s] { shard_worker(st, s); });
    }
    if (st->completed == k) break;
    if (st->aborted && st->inflight == 0) break;

    // Wait until a completion/abort, or the nearest straggler deadline.
    bool have_deadline = false;
    Clock::time_point nearest{};
    for (const OrchState::Attempt& a : st->attempts) {
      if (!a.active) continue;
      const Clock::time_point dl =
          a.start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            a.deadline_ms));
      if (!have_deadline || dl < nearest) {
        nearest = dl;
        have_deadline = true;
      }
    }
    if (have_deadline) {
      st->cv.wait_until(lock, nearest);
    } else {
      // Heartbeat so an outer cancel is noticed even while every task is
      // still queued behind busy pool workers.
      st->cv.wait_for(lock, std::chrono::milliseconds(50));
    }

    // Watchdog: cancel (speculatively re-issue) any attempt past its
    // deadline. The worker catches the CancelError and re-runs the shard
    // on the same thread, so result rows keep a single writer.
    const Clock::time_point now = Clock::now();
    for (int s = 0; s < k; ++s) {
      OrchState::Attempt& a = st->attempts[static_cast<std::size_t>(s)];
      if (!a.active) continue;
      if (ms_since(a.start) >= a.deadline_ms && a.start <= now) {
        a.src.cancel();
        a.active = false;
        counters().speculations.fetch_add(1, std::memory_order_relaxed);
        TG_METRIC_COUNT("sta/shard/speculations", 1);
      }
    }
  }
  st->cv.wait(lock, [&] { return st->inflight == 0; });
  if (st->error) std::rethrow_exception(st->error);
  TG_CHECK_MSG(st->completed == k,
               "shard orchestrator drained " << st->completed << " of " << k
                                             << " shards without an error");
}

}  // namespace

// ---- ShardSweepError -------------------------------------------------------

ShardSweepError::ShardSweepError(const std::string& what,
                                 std::vector<Diag> diags, int shard)
    : DiagError(what, std::move(diags)), shard_(shard) {}

// ---- plan building ---------------------------------------------------------

ShardPlan build_shard_plan(const TimingGraph& graph, int num_shards) {
  ShardPlan plan;
  plan.part = partition_timing_graph(graph, num_shards);
  const Partition& part = plan.part;
  const int k = part.num_shards;
  const int n = graph.num_nodes();
  plan.shards.resize(static_cast<std::size_t>(k));
  plan.local_id.assign(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < k; ++s) {
    const auto& owned = part.owned[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < owned.size(); ++i) {
      plan.local_id[static_cast<std::size_t>(owned[i])] = static_cast<int>(i);
    }
  }

  // One pass over all timing arcs: in-shard arcs become local DAG edges;
  // cross-shard arcs define deps, export sets and ghost→sink seeds.
  std::vector<std::vector<std::pair<int, int>>> local_edges(
      static_cast<std::size_t>(k));
  std::vector<std::vector<std::pair<PinId, PinId>>> cross(
      static_cast<std::size_t>(k));  // keyed by *importing* shard: (from, to)
  auto add_arc = [&](PinId from, PinId to) {
    const int sf = part.shard_of[static_cast<std::size_t>(from)];
    const int st = part.shard_of[static_cast<std::size_t>(to)];
    if (sf == st) {
      local_edges[static_cast<std::size_t>(sf)].emplace_back(
          plan.local_id[static_cast<std::size_t>(from)],
          plan.local_id[static_cast<std::size_t>(to)]);
    } else {
      cross[static_cast<std::size_t>(st)].emplace_back(from, to);
    }
  };
  for (const NetArc& a : graph.net_arcs()) add_arc(a.from, a.to);
  for (const CellArc& a : graph.cell_arcs()) add_arc(a.from, a.to);

  for (int s = 0; s < k; ++s) {
    ShardPlan::Shard& sh = plan.shards[static_cast<std::size_t>(s)];
    const auto& owned = part.owned[static_cast<std::size_t>(s)];
    const auto nn = static_cast<int>(owned.size());
    auto& edges = local_edges[static_cast<std::size_t>(s)];
    sh.fwd = TaskDag::from_edges(nn, edges);
    for (auto& [f, t] : edges) std::swap(f, t);
    sh.bwd = TaskDag::from_edges(nn, edges);
  }

  // Cross-edge bookkeeping. `cross[s]` holds the arcs *into* shard s.
  const std::vector<PinId> empty;
  std::vector<std::vector<std::pair<int, int>>> ghost_sinks(
      static_cast<std::size_t>(k));  // (ghost index, local sink id)
  for (int s = 0; s < k; ++s) {
    ShardPlan::Shard& sh = plan.shards[static_cast<std::size_t>(s)];
    const auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    for (const auto& [from, to] : cross[static_cast<std::size_t>(s)]) {
      const int sf = part.shard_of[static_cast<std::size_t>(from)];
      sh.fwd_deps.push_back(sf);
      sh.bwd_exports.push_back(to);
      plan.shards[static_cast<std::size_t>(sf)].bwd_deps.push_back(s);
      plan.shards[static_cast<std::size_t>(sf)].fwd_exports.push_back(from);
      plan.shards[static_cast<std::size_t>(sf)].bwd_ghosts.push_back(to);
      const auto git = std::lower_bound(ghosts.begin(), ghosts.end(), from);
      TG_DCHECK(git != ghosts.end() && *git == from);
      ghost_sinks[static_cast<std::size_t>(s)].emplace_back(
          static_cast<int>(git - ghosts.begin()),
          plan.local_id[static_cast<std::size_t>(to)]);
    }
  }
  auto dedupe_int = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (int s = 0; s < k; ++s) {
    ShardPlan::Shard& sh = plan.shards[static_cast<std::size_t>(s)];
    dedupe_int(sh.fwd_deps);
    dedupe_int(sh.bwd_deps);
    dedupe_int(sh.fwd_exports);
    dedupe_int(sh.bwd_exports);
    dedupe_int(sh.bwd_ghosts);
    // Ghost→local-sink CSR, aligned with part.ghosts[s].
    const auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    auto& pairs = ghost_sinks[static_cast<std::size_t>(s)];
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    sh.ghost_sink_off.assign(ghosts.size() + 1, 0);
    for (const auto& [g, local] : pairs) {
      (void)local;
      ++sh.ghost_sink_off[static_cast<std::size_t>(g) + 1];
    }
    for (std::size_t i = 1; i < sh.ghost_sink_off.size(); ++i) {
      sh.ghost_sink_off[i] += sh.ghost_sink_off[i - 1];
    }
    sh.ghost_sink.reserve(pairs.size());
    for (const auto& [g, local] : pairs) {
      (void)g;
      sh.ghost_sink.push_back(local);
    }
  }
  return plan;
}

// ---- cached plan on the graph ---------------------------------------------

const ShardPlan& TimingGraph::shard_plan(int num_shards) const {
  const int k = std::max(1, num_shards);
  const std::lock_guard<std::mutex> lock(shard_plan_mu_);
  auto it = shard_plans_.find(k);
  if (it == shard_plans_.end()) {
    it = shard_plans_
             .emplace(k, std::make_shared<const ShardPlan>(
                             build_shard_plan(*this, k)))
             .first;
  }
  return *it->second;
}

// ---- stats / knobs ---------------------------------------------------------

ShardStats shard_stats() {
  const StatCounters& c = counters();
  ShardStats s;
  s.sweeps = c.sweeps.load(std::memory_order_relaxed);
  s.shard_runs = c.shard_runs.load(std::memory_order_relaxed);
  s.retries = c.retries.load(std::memory_order_relaxed);
  s.speculations = c.speculations.load(std::memory_order_relaxed);
  s.ghost_exports = c.ghost_exports.load(std::memory_order_relaxed);
  s.ghost_bytes = c.ghost_bytes.load(std::memory_order_relaxed);
  s.ghost_verifies = c.ghost_verifies.load(std::memory_order_relaxed);
  s.ghost_mismatches = c.ghost_mismatches.load(std::memory_order_relaxed);
  s.ghost_reexports = c.ghost_reexports.load(std::memory_order_relaxed);
  s.failures = c.failures.load(std::memory_order_relaxed);
  return s;
}

void reset_shard_stats() {
  StatCounters& c = counters();
  c.sweeps.store(0, std::memory_order_relaxed);
  c.shard_runs.store(0, std::memory_order_relaxed);
  c.retries.store(0, std::memory_order_relaxed);
  c.speculations.store(0, std::memory_order_relaxed);
  c.ghost_exports.store(0, std::memory_order_relaxed);
  c.ghost_bytes.store(0, std::memory_order_relaxed);
  c.ghost_verifies.store(0, std::memory_order_relaxed);
  c.ghost_mismatches.store(0, std::memory_order_relaxed);
  c.ghost_reexports.store(0, std::memory_order_relaxed);
  c.failures.store(0, std::memory_order_relaxed);
}

int shard_retries() {
  int n = g_retries.load(std::memory_order_acquire);
  if (n < 0) {
    n = 2;
    if (const char* env = std::getenv("TG_SHARD_RETRIES")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 0) n = static_cast<int>(v);
    }
    int expected = -1;
    if (!g_retries.compare_exchange_strong(expected, n,
                                           std::memory_order_acq_rel)) {
      n = expected;
    }
  }
  return n;
}

void set_shard_retries(int n) {
  g_retries.store(n < 0 ? -1 : n, std::memory_order_release);
}

double shard_straggler_ms() {
  double ms = g_straggler_ms.load(std::memory_order_acquire);
  if (ms < 0.0) {
    ms = 50.0;
    int explicit_flag = 0;
    if (const char* env = std::getenv("TG_SHARD_STRAGGLER_MS")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) {
        ms = v;
        explicit_flag = 1;
      }
    }
    g_straggler_explicit.store(explicit_flag, std::memory_order_release);
    double expected = -1.0;
    if (!g_straggler_ms.compare_exchange_strong(expected, ms,
                                                std::memory_order_acq_rel)) {
      ms = expected;
    }
  }
  return ms;
}

void set_shard_straggler_ms(double ms) {
  if (ms <= 0.0) {
    g_straggler_explicit.store(-1, std::memory_order_release);
    g_straggler_ms.store(-1.0, std::memory_order_release);
    return;
  }
  g_straggler_explicit.store(1, std::memory_order_release);
  g_straggler_ms.store(ms, std::memory_order_release);
}

// ---- sweep entry points ----------------------------------------------------

void run_sta_forward_sharded(const TimingGraph& graph,
                             const DesignRouting& routing,
                             const StaOptions& options, StaResult& r) {
  TG_TRACE_SCOPE("sta/forward/shard", obs::kSpanDetail);
  const ShardPlan& plan = graph.shard_plan(sta_shards());
  Exchange ex(plan.part.num_shards);
  SweepCtx ctx;
  ctx.graph = &graph;
  ctx.plan = &plan;
  ctx.r = &r;
  ctx.routing = &routing;
  ctx.options = &options;
  ctx.forward = true;
  ctx.ex = &ex;
  orchestrate(ctx);
}

void run_sta_backward_sharded(const TimingGraph& graph, StaResult& r) {
  TG_TRACE_SCOPE("sta/backward/shard", obs::kSpanDetail);
  const ShardPlan& plan = graph.shard_plan(sta_shards());
  Exchange ex(plan.part.num_shards);
  SweepCtx ctx;
  ctx.graph = &graph;
  ctx.plan = &plan;
  ctx.r = &r;
  ctx.forward = false;
  ctx.ex = &ex;
  orchestrate(ctx);
}

// ---- incremental (dirty cone) ----------------------------------------------

ShardConeStats update_cone_sharded(const TimingGraph& graph,
                                   const DesignRouting& routing,
                                   const StaOptions& options, StaResult& r,
                                   std::span<const PinId> seeds) {
  TG_TRACE_SCOPE("sta/incremental/shard", obs::kSpanDetail);
  ShardConeStats out;
  if (seeds.empty()) return out;
  const CancelToken outer = current_cancel_token();
  outer.throw_if_cancelled();

  const ShardPlan& plan = graph.shard_plan(sta_shards());
  const Partition& part = plan.part;
  const int k = part.num_shards;
  Exchange ex(k);
  SweepCtx ctx;
  ctx.graph = &graph;
  ctx.plan = &plan;
  ctx.r = &r;
  ctx.routing = &routing;
  ctx.options = &options;
  ctx.forward = true;
  ctx.ex = &ex;
  counters().sweeps.fetch_add(1, std::memory_order_relaxed);

  // Per-pin "value moved" marks, the cross-shard dirtiness channel: a
  // later shard seeds the local sinks of every ghost marked here.
  std::vector<unsigned char> changed(static_cast<std::size_t>(graph.num_nodes()),
                                     0);
  // Shards that re-published their boundary this update; importers only
  // verify refreshed buffers (untouched upstream values were never
  // re-exchanged).
  std::vector<unsigned char> refreshed(static_cast<std::size_t>(k), 0);

  // Shards ascending = dependency order (monotone partition): every ghost
  // of shard s is owned by an earlier shard, so all cross-shard changes
  // are final before s collects its seeds — the cone is clipped to the
  // shards actually touched.
  std::vector<int> lseeds;
  std::vector<unsigned char> in_cone, dirty;
  std::vector<int> cone;
  for (int s = 0; s < k; ++s) {
    outer.throw_if_cancelled();  // shard boundary checkpoint
    const ShardPlan::Shard& sh = plan.shards[static_cast<std::size_t>(s)];
    const std::vector<PinId>& owned = part.owned[static_cast<std::size_t>(s)];
    const std::vector<PinId>& ghosts = part.ghosts[static_cast<std::size_t>(s)];

    lseeds.clear();
    for (PinId p : seeds) {
      if (part.shard_of[static_cast<std::size_t>(p)] == s) {
        lseeds.push_back(plan.local_id[static_cast<std::size_t>(p)]);
      }
    }
    for (std::size_t g = 0; g < ghosts.size(); ++g) {
      if (!changed[static_cast<std::size_t>(ghosts[g])]) continue;
      for (int i = sh.ghost_sink_off[g]; i < sh.ghost_sink_off[g + 1]; ++i) {
        lseeds.push_back(sh.ghost_sink[static_cast<std::size_t>(i)]);
      }
    }
    if (lseeds.empty()) continue;
    ++out.shards_touched;

    // Local cone BFS (membership + seed dirtiness); the walk itself runs
    // over the precomputed local topo order restricted to the cone.
    in_cone.assign(owned.size(), 0);
    dirty.assign(owned.size(), 0);
    cone.clear();
    for (int l : lseeds) {
      if (in_cone[static_cast<std::size_t>(l)]) continue;
      in_cone[static_cast<std::size_t>(l)] = 1;
      dirty[static_cast<std::size_t>(l)] = 1;
      cone.push_back(l);
    }
    for (std::size_t head = 0; head < cone.size(); ++head) {
      for (int succ : sh.fwd.successors(cone[head])) {
        if (!in_cone[static_cast<std::size_t>(succ)]) {
          in_cone[static_cast<std::size_t>(succ)] = 1;
          cone.push_back(succ);
        }
      }
    }
    out.cone_nodes += static_cast<long long>(cone.size());

    long long evaluated_this = 0;
    run_with_retries(ctx, s, [&](int attempt) {
      counters().shard_runs.fetch_add(1, std::memory_order_relaxed);
      const CancelToken tok = current_cancel_token();
      tok.throw_if_cancelled();
      if (fault::should_fail_shard("worker")) {
        std::ostringstream os;
        os << "injected shard worker fault (cone, shard " << s << ")";
        throw std::runtime_error(os.str());
      }
      maybe_stall();
      for (int dep : sh.fwd_deps) {
        if (refreshed[static_cast<std::size_t>(dep)]) {
          verify_exchange(ctx, s, dep);
        }
      }
      evaluated_this = 0;
      std::size_t fired = 0;
      for (int local : sh.fwd.topo) {
        if (!in_cone[static_cast<std::size_t>(local)]) continue;
        // A retry re-evaluates the *whole* cone: the first attempt may
        // have updated pins whose re-run would now report "unchanged",
        // which would starve their successors of dirty marks.
        if (attempt == 1 && !dirty[static_cast<std::size_t>(local)]) continue;
        if ((fired++ & 63u) == 0) tok.throw_if_cancelled();
        const PinId p = owned[static_cast<std::size_t>(local)];
        const double delta =
            sta_detail::propagate_pin(graph, routing, options, r, p);
        ++evaluated_this;
        const bool moved = delta > kEps;
        if (moved) {
          if (!changed[static_cast<std::size_t>(p)]) {
            changed[static_cast<std::size_t>(p)] = 1;
            ++out.changed_pins;
          }
          for (int succ : sh.fwd.successors(local)) {
            dirty[static_cast<std::size_t>(succ)] = 1;
          }
        }
      }
    });
    out.evaluated += evaluated_this;

    // Refresh the boundary only when an exported value actually moved —
    // downstream shards seed from `changed`, so an unchanged boundary
    // needs no re-exchange.
    bool boundary_moved = false;
    for (PinId p : sh.fwd_exports) {
      if (changed[static_cast<std::size_t>(p)]) {
        boundary_moved = true;
        break;
      }
    }
    if (boundary_moved) {
      publish(ctx, s);
      refreshed[static_cast<std::size_t>(s)] = 1;
    }
  }
  return out;
}

}  // namespace tg
