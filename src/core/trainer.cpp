#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <sstream>
#include <utility>

#include "metrics/metrics.hpp"
#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "util/diag.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/obs/telemetry.hpp"
#include "util/obs/trace.hpp"
#include "util/timer.hpp"

namespace tg::core {

using nn::Tensor;

namespace {

/// Pools tensor rows `rows` (all columns) of pred/target into flat vectors
/// and returns R².
double pooled_r2(const Tensor& truth, const Tensor& pred,
                 const std::vector<int>& rows) {
  std::vector<double> t, p;
  t.reserve(rows.size() * static_cast<std::size_t>(truth.cols()));
  p.reserve(t.capacity());
  for (int r : rows) {
    for (std::int64_t c = 0; c < truth.cols(); ++c) {
      t.push_back(truth.at(r, c));
      p.push_back(pred.at(r, c));
    }
  }
  return r2_score(std::span<const double>(t), std::span<const double>(p));
}

std::vector<int> all_rows(std::int64_t n) {
  std::vector<int> rows(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) rows[static_cast<std::size_t>(i)] = static_cast<int>(i);
  return rows;
}

// ---- crash-safe checkpointing --------------------------------------------

constexpr std::uint32_t kCheckpointMagic = 0x4B434754;  // "TGCK" (LE bytes)
constexpr std::uint32_t kCheckpointVersion = 1;

/// Checkpoint = {tag, completed epochs, optional RNG stream, parameter
/// block, Adam state}, checksummed and committed atomically (util/io), so a
/// save killed at any point leaves the previous checkpoint loadable.
void write_checkpoint(const std::string& path, const char* tag,
                      const nn::Module& model, const nn::Adam& adam,
                      int epoch, const Rng* rng) {
  io::BinaryWriter out(path);
  out.write_u32(kCheckpointMagic);
  out.write_u32(kCheckpointVersion);
  out.write_string(tag);
  out.write_u32(static_cast<std::uint32_t>(epoch));
  out.write_u8(rng != nullptr ? 1 : 0);
  if (rng != nullptr) {
    const RngState st = rng->state();
    for (std::uint64_t word : st.s) out.write_u64(word);
    out.write_u8(st.has_cached_normal ? 1 : 0);
    out.write_f64(st.cached_normal);
  }
  nn::write_parameter_block(model, out);
  adam.save_state(out);
  out.commit();
}

int read_checkpoint(const std::string& path, const char* tag,
                    nn::Module& model, nn::Adam& adam, Rng* rng) {
  io::BinaryReader in(path);
  in.verify_crc();
  TG_CHECK_MSG(in.read_u32("magic") == kCheckpointMagic,
               "not a training checkpoint: " << path);
  TG_CHECK_MSG(in.read_u32("format version") == kCheckpointVersion,
               path << ": unsupported checkpoint version");
  const std::string file_tag = in.read_string("trainer tag");
  TG_CHECK_MSG(file_tag == tag, path << " is a '" << file_tag
                                     << "' checkpoint, expected '" << tag
                                     << "'");
  const int epoch = static_cast<int>(in.read_u32("epoch"));
  if (in.read_u8("rng flag") != 0) {
    RngState st;
    for (std::uint64_t& word : st.s) word = in.read_u64("rng state word");
    st.has_cached_normal = in.read_u8("rng cached-normal flag") != 0;
    st.cached_normal = in.read_f64("rng cached normal");
    if (rng != nullptr) rng->set_state(st);
  }
  nn::read_parameter_block(model, in);
  adam.load_state(in);
  in.expect_eof();
  return epoch;
}

/// True after the `completed`-th epoch when a periodic checkpoint is due.
bool checkpoint_due(const TrainOptions& options, int completed) {
  if (options.checkpoint_path.empty()) return false;
  const int every = std::max(1, options.checkpoint_every);
  return completed % every == 0 || completed == options.epochs;
}

/// Graceful-shutdown poll, evaluated only at epoch boundaries so a stop
/// never lands mid-step (which is what makes resume bit-identical).
bool stop_requested(const TrainOptions& options, int completed) {
  if (options.stop_after_epochs > 0 && completed >= options.stop_after_epochs) {
    return true;
  }
  return options.stop_requested != nullptr &&
         options.stop_requested->load(std::memory_order_relaxed);
}

/// In-memory rollback target for the non-finite-loss guard: the state after
/// the most recent successful step. Capturing is plain copies, so the guard
/// never perturbs the numerics of a healthy run.
class GoodState {
 public:
  void capture(const nn::Module& model, const nn::Adam& adam) {
    const auto& params = model.parameters();
    params_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto data = params[i].data();
      params_[i].assign(data.begin(), data.end());
    }
    adam_ = adam.state();
  }

  void restore(const nn::Module& model, nn::Adam& adam) const {
    for (std::size_t i = 0; i < params_.size(); ++i) {
      nn::Tensor t = model.parameters()[i];
      std::copy(params_[i].begin(), params_[i].end(), t.data().begin());
    }
    adam.set_state(adam_);
  }

 private:
  std::vector<std::vector<float>> params_;
  nn::Adam::State adam_;
};

/// Full-level gradient tripwire (DESIGN.md §8): sweeps every parameter
/// gradient after backward and names the first non-finite entry, so the
/// weight that diverged is identified at the step that produced it.
/// Returns "" when clean or when TG_VALIDATE is below "full" (the
/// non-finite-loss guard alone covers the fast level).
template <typename Model>
std::string first_nonfinite_grad(const Model& model) {
  if (validate_level() != ValidateLevel::kFull) return {};
  const std::vector<Tensor>& params = model.parameters();
  const std::vector<std::string>& names = model.parameter_names();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = params[i];
    if (!t.requires_grad()) continue;
    const std::span<const float> g = std::as_const(t).grad();
    for (std::size_t j = 0; j < g.size(); ++j) {
      if (!std::isfinite(g[j])) {
        std::ostringstream os;
        os << (i < names.size() ? names[i] : "param#" + std::to_string(i))
           << '[' << j << "]=" << g[j];
        return os.str();
      }
    }
  }
  return {};
}

/// Global L2 norm over all parameter gradients. Only evaluated when the
/// telemetry stream is active — it touches every gradient entry.
template <typename Model>
double global_grad_norm(const Model& model) {
  double acc = 0.0;
  for (const Tensor& t : model.parameters()) {
    if (!t.requires_grad()) continue;
    for (float gv : std::as_const(t).grad()) {
      acc += static_cast<double>(gv) * static_cast<double>(gv);
    }
  }
  return std::sqrt(acc);
}

/// Per-epoch JSONL telemetry (TrainOptions::telemetry_path): one JSON
/// object per epoch, flushed per line so a crashed run keeps every
/// completed epoch.
class TelemetryStream {
 public:
  TelemetryStream(const std::string& path, const char* trainer)
      : trainer_(trainer) {
    if (!path.empty()) writer_.open(path);
  }

  /// Whether per-step extras (gradient norms) are worth computing.
  [[nodiscard]] bool active() const { return writer_.ok(); }

  void emit_epoch(const TrainOptions& options, int epoch, double loss,
                  double grad_norm, float lr, double epoch_seconds,
                  long long non_finite_steps) {
    if (!writer_.ok()) return;
    std::ostringstream os;
    os.precision(10);
    os << "{\"trainer\":\"" << trainer_ << "\",\"epoch\":" << epoch
       << ",\"epochs\":" << options.epochs << ",\"loss\":" << loss
       << ",\"grad_norm\":" << grad_norm << ",\"lr\":" << lr
       << ",\"epoch_seconds\":" << epoch_seconds << ",\"peak_rss_mb\":"
       << static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0)
       << ",\"non_finite_steps\":" << non_finite_steps << "}";
    writer_.write_line(os.str());
  }

 private:
  const char* trainer_;
  obs::JsonlWriter writer_;
};

}  // namespace

double mean_of(const std::vector<DesignEval>& evals,
               double DesignEval::* field) {
  if (evals.empty()) return 0.0;
  double acc = 0.0;
  for (const DesignEval& e : evals) acc += e.*field;
  return acc / static_cast<double>(evals.size());
}

// ---- TimingGnnTrainer ----------------------------------------------------

TimingGnnTrainer::TimingGnnTrainer(const TimingGnnConfig& config,
                                   const TrainOptions& options)
    : model_(config),
      options_(options),
      adam_(model_.parameters(),
            nn::AdamConfig{.lr = options.lr, .grad_clip = options.grad_clip}) {}

const PropPlan& TimingGnnTrainer::plan_for(const data::DatasetGraph& g) {
  // Keyed by address, not name: the same benchmark can exist at several
  // scales within one process.
  auto it = plans_.find(&g);
  if (it == plans_.end()) {
    it = plans_.emplace(&g, build_prop_plan(g)).first;
  }
  return it->second;
}

namespace {
/// Geometric decay from options.lr to options.lr_final across the run.
float scheduled_lr(const TrainOptions& options, int epoch) {
  if (options.lr_final <= 0.0f || options.epochs <= 1 ||
      options.lr_final >= options.lr) {
    return options.lr;
  }
  const float t = static_cast<float>(epoch) /
                  static_cast<float>(options.epochs - 1);
  return options.lr * std::pow(options.lr_final / options.lr, t);
}
}  // namespace

double TimingGnnTrainer::fit(const data::SuiteDataset& dataset) {
  TG_TRACE_SCOPE("core/train", obs::kSpanCoarse);
  TelemetryStream telemetry(options_.telemetry_path, "timing-gnn");
  double mean_loss = 0.0;
  GoodState good;
  good.capture(model_, adam_);
  for (int epoch = epoch_; epoch < options_.epochs; ++epoch) {
    TG_TRACE_SCOPE("core/train_epoch", obs::kSpanDetail);
    WallTimer epoch_timer;
    const float lr = scheduled_lr(options_, epoch);
    adam_.set_lr(lr);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    int good_steps = 0;
    for (int id : dataset.train_ids) {
      TG_TRACE_SCOPE("core/train_step", obs::kSpanVerbose);
      const data::DatasetGraph& g = dataset.graphs[static_cast<std::size_t>(id)];
      const PropPlan& plan = plan_for(g);
      adam_.zero_grad();
      const TimingGnn::Prediction pred = model_.forward(g, plan);
      Tensor loss = model_.loss(g, plan, pred);
      const double loss_value = loss.item();
      if (!std::isfinite(loss_value)) {
        ++non_finite_steps_;
        TG_WARN("non-finite-loss trainer=timing-gnn design=" << g.name
                << " epoch=" << epoch + 1 << " loss=" << loss_value
                << " action=restore-last-good-state,skip-step");
        good.restore(model_, adam_);
        continue;
      }
      loss.backward();
      if (const std::string bad = first_nonfinite_grad(model_); !bad.empty()) {
        ++non_finite_steps_;
        TG_WARN("non-finite-gradient trainer=timing-gnn design=" << g.name
                << " epoch=" << epoch + 1 << " first-offender=" << bad
                << " action=restore-last-good-state,skip-step");
        good.restore(model_, adam_);
        continue;
      }
      if (telemetry.active()) grad_norm_sum += global_grad_norm(model_);
      adam_.step();
      good.capture(model_, adam_);
      epoch_loss += loss_value;
      ++good_steps;
    }
    mean_loss = epoch_loss / static_cast<double>(dataset.train_ids.size());
    epoch_ = epoch + 1;
    telemetry.emit_epoch(
        options_, epoch_, mean_loss,
        good_steps > 0 ? grad_norm_sum / good_steps : 0.0, lr,
        epoch_timer.seconds(), non_finite_steps_);
    if (options_.verbose) {
      TG_INFO("timing-gnn epoch " << epoch + 1 << "/" << options_.epochs
                                  << " loss=" << mean_loss);
    }
    bool due = checkpoint_due(options_, epoch_);
    if (stop_requested(options_, epoch_)) {
      TG_WARN("graceful-stop trainer=timing-gnn epoch=" << epoch_ << "/"
              << options_.epochs << " action=checkpoint-and-return");
      due = !options_.checkpoint_path.empty();
      if (due) save_checkpoint(options_.checkpoint_path);
      break;
    }
    if (due) save_checkpoint(options_.checkpoint_path);
  }
  return mean_loss;
}

void TimingGnnTrainer::save_checkpoint(const std::string& path) const {
  write_checkpoint(path, "timing-gnn", model_, adam_, epoch_, nullptr);
}

void TimingGnnTrainer::load_checkpoint(const std::string& path) {
  epoch_ = read_checkpoint(path, "timing-gnn", model_, adam_, nullptr);
}

DesignEval TimingGnnTrainer::evaluate(const data::DatasetGraph& g) {
  TG_TRACE_SCOPE("core/evaluate", obs::kSpanCoarse);
  const PropPlan& plan = plan_for(g);
  WallTimer timer;
  const TimingGnn::Prediction pred = model_.forward(g, plan);
  DesignEval eval;
  eval.infer_seconds = timer.seconds();
  eval.name = g.name;
  eval.is_test = g.is_test;

  const Tensor truth_parts[] = {g.arrival, g.slew};
  const Tensor atslew_truth = nn::concat_cols(truth_parts);
  eval.r2_atslew_all =
      pooled_r2(atslew_truth, pred.atslew, all_rows(g.num_nodes));

  // Arrival R² at endpoints (Table 5): arrival columns only.
  {
    std::vector<double> t, p;
    for (int ep : g.endpoints) {
      for (int c = 0; c < kNumCorners; ++c) {
        t.push_back(g.arrival.at(ep, c));
        p.push_back(pred.atslew.at(ep, c));
      }
    }
    eval.r2_arrival_endpoints =
        r2_score(std::span<const double>(t), std::span<const double>(p));
  }

  eval.r2_net_delay = pooled_r2(g.net_delay, pred.net_delay, g.net_sinks);
  {
    const Tensor cell_truth = nn::gather_rows(g.cell_delay, plan.cell_order);
    eval.r2_cell_delay = pooled_r2(cell_truth, pred.cell_delay,
                                   all_rows(cell_truth.rows()));
  }

  const SlackScatter scatter = slack_scatter(g);
  eval.r2_slack_setup = r2_score(std::span<const double>(scatter.true_setup),
                                 std::span<const double>(scatter.pred_setup));
  eval.r2_slack_hold = r2_score(std::span<const double>(scatter.true_hold),
                                std::span<const double>(scatter.pred_hold));
  eval.pearson_setup = pearson_r(std::span<const double>(scatter.true_setup),
                                 std::span<const double>(scatter.pred_setup));
  eval.pearson_hold = pearson_r(std::span<const double>(scatter.true_hold),
                                std::span<const double>(scatter.pred_hold));
  return eval;
}

TimingGnnTrainer::SlackScatter TimingGnnTrainer::slack_scatter(
    const data::DatasetGraph& g) {
  const PropPlan& plan = plan_for(g);
  const TimingGnn::Prediction pred = model_.forward(g, plan);
  SlackScatter s;
  for (std::size_t i = 0; i < g.endpoints.size(); ++i) {
    const int ep = g.endpoints[i];
    const EndpointSlack ps = predicted_endpoint_slack(g, pred.atslew, ep);
    s.pred_setup.push_back(ps.setup);
    s.pred_hold.push_back(ps.hold);
    s.true_setup.push_back(g.endpoint_setup_slack[i]);
    s.true_hold.push_back(g.endpoint_hold_slack[i]);
  }
  return s;
}

// ---- NetEmbedTrainer ------------------------------------------------------

NetEmbedTrainer::NetEmbedTrainer(const NetEmbedConfig& config,
                                 const TrainOptions& options,
                                 std::uint64_t seed)
    : rng_(seed),
      model_(config, rng_),
      options_(options),
      adam_(model_.parameters(),
            nn::AdamConfig{.lr = options.lr, .grad_clip = options.grad_clip}) {}

double NetEmbedTrainer::fit(const data::SuiteDataset& dataset) {
  TG_TRACE_SCOPE("core/train", obs::kSpanCoarse);
  TelemetryStream telemetry(options_.telemetry_path, "net-embed");
  double mean_loss = 0.0;
  GoodState good;
  good.capture(model_, adam_);
  for (int epoch = epoch_; epoch < options_.epochs; ++epoch) {
    TG_TRACE_SCOPE("core/train_epoch", obs::kSpanDetail);
    WallTimer epoch_timer;
    const float lr = scheduled_lr(options_, epoch);
    adam_.set_lr(lr);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    int good_steps = 0;
    for (int id : dataset.train_ids) {
      TG_TRACE_SCOPE("core/train_step", obs::kSpanVerbose);
      const data::DatasetGraph& g = dataset.graphs[static_cast<std::size_t>(id)];
      adam_.zero_grad();
      Tensor emb = model_.forward(g);
      Tensor pred = model_.predict_net_delay(g, emb);
      const nn::IndexVec& sinks = data::shared_net_sinks(g);
      Tensor target = nn::gather_rows(g.net_delay, sinks);
      Tensor loss = nn::mse_loss_rows(pred, sinks, target);
      const double loss_value = loss.item();
      if (!std::isfinite(loss_value)) {
        ++non_finite_steps_;
        TG_WARN("non-finite-loss trainer=net-embed design=" << g.name
                << " epoch=" << epoch + 1 << " loss=" << loss_value
                << " action=restore-last-good-state,skip-step");
        good.restore(model_, adam_);
        continue;
      }
      loss.backward();
      if (const std::string bad = first_nonfinite_grad(model_); !bad.empty()) {
        ++non_finite_steps_;
        TG_WARN("non-finite-gradient trainer=net-embed design=" << g.name
                << " epoch=" << epoch + 1 << " first-offender=" << bad
                << " action=restore-last-good-state,skip-step");
        good.restore(model_, adam_);
        continue;
      }
      if (telemetry.active()) grad_norm_sum += global_grad_norm(model_);
      adam_.step();
      good.capture(model_, adam_);
      epoch_loss += loss_value;
      ++good_steps;
    }
    mean_loss = epoch_loss / static_cast<double>(dataset.train_ids.size());
    epoch_ = epoch + 1;
    telemetry.emit_epoch(
        options_, epoch_, mean_loss,
        good_steps > 0 ? grad_norm_sum / good_steps : 0.0, lr,
        epoch_timer.seconds(), non_finite_steps_);
    if (options_.verbose) {
      TG_INFO("net-embed epoch " << epoch + 1 << "/" << options_.epochs
                                 << " loss=" << mean_loss);
    }
    bool due = checkpoint_due(options_, epoch_);
    if (stop_requested(options_, epoch_)) {
      TG_WARN("graceful-stop trainer=net-embed epoch=" << epoch_ << "/"
              << options_.epochs << " action=checkpoint-and-return");
      due = !options_.checkpoint_path.empty();
      if (due) save_checkpoint(options_.checkpoint_path);
      break;
    }
    if (due) save_checkpoint(options_.checkpoint_path);
  }
  return mean_loss;
}

void NetEmbedTrainer::save_checkpoint(const std::string& path) const {
  write_checkpoint(path, "net-embed", model_, adam_, epoch_, &rng_);
}

void NetEmbedTrainer::load_checkpoint(const std::string& path) {
  epoch_ = read_checkpoint(path, "net-embed", model_, adam_, &rng_);
}

double NetEmbedTrainer::evaluate_r2(const data::DatasetGraph& g) const {
  Tensor pred = model_.predict_net_delay(g, model_.forward(g));
  std::vector<double> t, p;
  for (int r : g.net_sinks) {
    for (int c = 0; c < kNumCorners; ++c) {
      t.push_back(g.net_delay.at(r, c));
      p.push_back(pred.at(r, c));
    }
  }
  return r2_score(std::span<const double>(t), std::span<const double>(p));
}

// ---- GcniiTrainer ---------------------------------------------------------

GcniiTrainer::GcniiTrainer(const GcniiConfig& config,
                           const TrainOptions& options)
    : model_(config),
      options_(options),
      adam_(model_.parameters(),
            nn::AdamConfig{.lr = options.lr, .grad_clip = options.grad_clip}) {}

const GcniiAdjacency& GcniiTrainer::adjacency_for(const data::DatasetGraph& g) {
  auto it = adjacencies_.find(&g);
  if (it == adjacencies_.end()) {
    it = adjacencies_.emplace(&g, build_gcnii_adjacency(g)).first;
  }
  return it->second;
}

double GcniiTrainer::fit(const data::SuiteDataset& dataset) {
  TG_TRACE_SCOPE("core/train", obs::kSpanCoarse);
  TelemetryStream telemetry(options_.telemetry_path, "gcnii");
  double mean_loss = 0.0;
  GoodState good;
  good.capture(model_, adam_);
  for (int epoch = epoch_; epoch < options_.epochs; ++epoch) {
    TG_TRACE_SCOPE("core/train_epoch", obs::kSpanDetail);
    WallTimer epoch_timer;
    const float lr = scheduled_lr(options_, epoch);
    adam_.set_lr(lr);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    int good_steps = 0;
    for (int id : dataset.train_ids) {
      TG_TRACE_SCOPE("core/train_step", obs::kSpanVerbose);
      const data::DatasetGraph& g = dataset.graphs[static_cast<std::size_t>(id)];
      adam_.zero_grad();
      Tensor pred = model_.forward(g, adjacency_for(g));
      Tensor loss = model_.loss(g, pred);
      const double loss_value = loss.item();
      if (!std::isfinite(loss_value)) {
        ++non_finite_steps_;
        TG_WARN("non-finite-loss trainer=gcnii design=" << g.name
                << " epoch=" << epoch + 1 << " loss=" << loss_value
                << " action=restore-last-good-state,skip-step");
        good.restore(model_, adam_);
        continue;
      }
      loss.backward();
      if (const std::string bad = first_nonfinite_grad(model_); !bad.empty()) {
        ++non_finite_steps_;
        TG_WARN("non-finite-gradient trainer=gcnii design=" << g.name
                << " epoch=" << epoch + 1 << " first-offender=" << bad
                << " action=restore-last-good-state,skip-step");
        good.restore(model_, adam_);
        continue;
      }
      if (telemetry.active()) grad_norm_sum += global_grad_norm(model_);
      adam_.step();
      good.capture(model_, adam_);
      epoch_loss += loss_value;
      ++good_steps;
    }
    mean_loss = epoch_loss / static_cast<double>(dataset.train_ids.size());
    epoch_ = epoch + 1;
    telemetry.emit_epoch(
        options_, epoch_, mean_loss,
        good_steps > 0 ? grad_norm_sum / good_steps : 0.0, lr,
        epoch_timer.seconds(), non_finite_steps_);
    if (options_.verbose) {
      TG_INFO("gcnii-" << model_.config().num_layers << " epoch " << epoch + 1
                       << "/" << options_.epochs << " loss=" << mean_loss);
    }
    bool due = checkpoint_due(options_, epoch_);
    if (stop_requested(options_, epoch_)) {
      TG_WARN("graceful-stop trainer=gcnii epoch=" << epoch_ << "/"
              << options_.epochs << " action=checkpoint-and-return");
      due = !options_.checkpoint_path.empty();
      if (due) save_checkpoint(options_.checkpoint_path);
      break;
    }
    if (due) save_checkpoint(options_.checkpoint_path);
  }
  return mean_loss;
}

void GcniiTrainer::save_checkpoint(const std::string& path) const {
  write_checkpoint(path, "gcnii", model_, adam_, epoch_, nullptr);
}

void GcniiTrainer::load_checkpoint(const std::string& path) {
  epoch_ = read_checkpoint(path, "gcnii", model_, adam_, nullptr);
}

DesignEval GcniiTrainer::evaluate(const data::DatasetGraph& g) {
  TG_TRACE_SCOPE("core/evaluate", obs::kSpanCoarse);
  const GcniiAdjacency& adj = adjacency_for(g);
  WallTimer timer;
  Tensor pred = model_.forward(g, adj);
  DesignEval eval;
  eval.infer_seconds = timer.seconds();
  eval.name = g.name;
  eval.is_test = g.is_test;

  const Tensor truth_parts[] = {g.arrival, g.slew};
  eval.r2_atslew_all =
      pooled_r2(nn::concat_cols(truth_parts), pred, all_rows(g.num_nodes));
  std::vector<double> t, p;
  for (int ep : g.endpoints) {
    for (int c = 0; c < kNumCorners; ++c) {
      t.push_back(g.arrival.at(ep, c));
      p.push_back(pred.at(ep, c));
    }
  }
  eval.r2_arrival_endpoints =
      r2_score(std::span<const double>(t), std::span<const double>(p));
  return eval;
}

}  // namespace tg::core
