#include "netlist/validate.hpp"

#include <cmath>
#include <queue>
#include <unordered_set>

namespace tg {

namespace {

/// pin_name() that never throws on corrupted back-pointers.
std::string safe_pin_name(const Design& d, PinId id) {
  if (id < 0 || id >= d.num_pins()) return "pin#" + std::to_string(id);
  const Pin& p = d.pins()[static_cast<std::size_t>(id)];
  if (p.is_port) return p.port_name.empty() ? "pin#" + std::to_string(id)
                                            : p.port_name;
  if (p.inst < 0 || p.inst >= d.num_instances()) {
    return "pin#" + std::to_string(id);
  }
  const Instance& inst = d.instances()[static_cast<std::size_t>(p.inst)];
  const Library& lib = d.library();
  if (inst.cell_id < 0 || inst.cell_id >= lib.num_cells()) {
    return inst.name + "/pin#" + std::to_string(id);
  }
  const CellType& cell = lib.cells()[static_cast<std::size_t>(inst.cell_id)];
  if (p.cell_pin < 0 ||
      p.cell_pin >= static_cast<int>(cell.pins.size())) {
    return inst.name + "/pin#" + std::to_string(id);
  }
  return inst.name + "/" + cell.pins[static_cast<std::size_t>(p.cell_pin)].name;
}

/// The library cell of an instance, or nullptr when cell_id is corrupt.
const CellType* safe_cell(const Design& d, const Instance& inst) {
  const Library& lib = d.library();
  if (inst.cell_id < 0 || inst.cell_id >= lib.num_cells()) return nullptr;
  return &lib.cells()[static_cast<std::size_t>(inst.cell_id)];
}

void check_structure(const Design& d, DiagSink& sink) {
  const int num_pins = d.num_pins();
  const int num_nets = d.num_nets();

  // ---- instances: cell ids, pin lists, back-pointers --------------------
  for (InstId i = 0; i < d.num_instances(); ++i) {
    const Instance& inst = d.instances()[static_cast<std::size_t>(i)];
    const CellType* cell = safe_cell(d, inst);
    if (cell == nullptr) {
      TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, inst.name,
              "instance references cell id " << inst.cell_id
                                             << " out of range");
      continue;
    }
    if (inst.pins.size() != cell->pins.size()) {
      TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, inst.name,
              "instance has " << inst.pins.size() << " pins but cell '"
                              << cell->name << "' has " << cell->pins.size());
    }
    for (std::size_t k = 0; k < inst.pins.size(); ++k) {
      const PinId p = inst.pins[k];
      if (p < 0 || p >= num_pins) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, inst.name,
                "instance pin slot " << k << " holds invalid pin id " << p);
        continue;
      }
      const Pin& pin = d.pins()[static_cast<std::size_t>(p)];
      if (pin.inst != i || pin.cell_pin != static_cast<int>(k)) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, inst.name,
                "pin " << safe_pin_name(d, p)
                       << " back-pointer disagrees with instance pin slot "
                       << k);
      }
    }
  }

  // ---- pins: connectivity + port flags ----------------------------------
  for (PinId p = 0; p < num_pins; ++p) {
    const Pin& pin = d.pins()[static_cast<std::size_t>(p)];
    if (pin.net == kInvalidId) {
      sink.error(Stage::kNetlist, "pin is unconnected", {},
                 safe_pin_name(d, p));
      continue;
    }
    if (pin.net < 0 || pin.net >= num_nets) {
      TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{},
              safe_pin_name(d, p),
              "pin references net id " << pin.net << " out of range");
      continue;
    }
    if (pin.is_port && pin.port_name.empty()) {
      sink.error(Stage::kNetlist, "port pin has empty name", {},
                 "pin#" + std::to_string(p));
    }
    if (!pin.is_port && (pin.inst < 0 || pin.inst >= d.num_instances())) {
      TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{},
              "pin#" + std::to_string(p),
              "instance pin references instance id " << pin.inst
                                                     << " out of range");
    }
  }

  // ---- nets: single driver, nonempty sinks, consistent membership -------
  std::vector<int> driver_count(static_cast<std::size_t>(num_nets), 0);
  for (PinId p = 0; p < num_pins; ++p) {
    const Pin& pin = d.pins()[static_cast<std::size_t>(p)];
    if (pin.drives_net && pin.net >= 0 && pin.net < num_nets) {
      ++driver_count[static_cast<std::size_t>(pin.net)];
    }
  }
  for (NetId n = 0; n < num_nets; ++n) {
    const Net& net = d.nets()[static_cast<std::size_t>(n)];
    const std::string net_name =
        net.name.empty() ? "net#" + std::to_string(n) : net.name;
    if (net.driver == kInvalidId) {
      sink.error(Stage::kNetlist, "net is undriven", {}, net_name);
    } else if (net.driver < 0 || net.driver >= num_pins) {
      TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
              "net driver pin id " << net.driver << " out of range");
    } else {
      const Pin& drv = d.pins()[static_cast<std::size_t>(net.driver)];
      if (drv.net != n) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
                "driver pin " << safe_pin_name(d, net.driver)
                              << " is not connected to this net");
      }
      if (!drv.drives_net) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
                "driver pin " << safe_pin_name(d, net.driver)
                              << " is not a driving pin");
      }
    }
    if (driver_count[static_cast<std::size_t>(n)] > 1) {
      TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
              "net is multi-driven (" << driver_count[static_cast<std::size_t>(n)]
                                      << " driving pins)");
    }
    if (net.sinks.empty()) {
      sink.error(Stage::kNetlist, "net is dangling (no sinks)", {}, net_name);
    }
    for (PinId s : net.sinks) {
      if (s < 0 || s >= num_pins) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
                "sink pin id " << s << " out of range");
        continue;
      }
      const Pin& sp = d.pins()[static_cast<std::size_t>(s)];
      if (sp.net != n) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
                "sink pin " << safe_pin_name(d, s)
                            << " is not connected to this net");
      }
      if (sp.drives_net) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, net_name,
                "sink list contains driving pin " << safe_pin_name(d, s));
      }
    }
  }

  // ---- port lists --------------------------------------------------------
  auto check_port_list = [&](const std::vector<PinId>& list, bool want_driver,
                             const char* what) {
    for (PinId p : list) {
      if (p < 0 || p >= num_pins) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, "",
                what << " list holds invalid pin id " << p);
        continue;
      }
      const Pin& pin = d.pins()[static_cast<std::size_t>(p)];
      if (!pin.is_port) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{},
                safe_pin_name(d, p), what << " list holds a non-port pin");
      }
      if (pin.drives_net != want_driver) {
        TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{},
                safe_pin_name(d, p),
                what << " port has wrong driving direction");
      }
    }
  };
  check_port_list(d.primary_inputs(), true, "primary input");
  check_port_list(d.primary_outputs(), false, "primary output");

  // ---- clock -------------------------------------------------------------
  bool has_ffs = false;
  for (const Instance& inst : d.instances()) {
    const CellType* cell = safe_cell(d, inst);
    if (cell != nullptr && cell->is_sequential) {
      has_ffs = true;
      break;
    }
  }
  if (has_ffs && d.clock_net() == kInvalidId) {
    sink.error(Stage::kNetlist, "design has flip-flops but no clock declared");
  }
  if (d.clock_net() != kInvalidId &&
      (d.clock_net() < 0 || d.clock_net() >= num_nets)) {
    TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, "",
            "clock net id " << d.clock_net() << " out of range");
  }
  if (!(std::isfinite(d.clock_period()) && d.clock_period() > 0.0)) {
    TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{}, "",
            "clock period " << d.clock_period() << " is not a positive finite "
            "value");
  }
}

void check_duplicate_names(const Design& d, DiagSink& sink) {
  std::unordered_set<std::string> inst_names;
  for (const Instance& inst : d.instances()) {
    if (!inst.name.empty() && !inst_names.insert(inst.name).second) {
      sink.error(Stage::kNetlist, "duplicate instance name", {}, inst.name);
    }
  }
  std::unordered_set<std::string> net_names;
  for (const Net& net : d.nets()) {
    if (!net.name.empty() && !net_names.insert(net.name).second) {
      sink.error(Stage::kNetlist, "duplicate net name", {}, net.name);
    }
  }
}

void check_acyclic(const Design& d, DiagSink& sink) {
  // Kahn over {non-clock net arcs, combinational cell arcs}; sequential
  // cells break cycles at the FF boundary. Ids validated by
  // check_structure; out-of-range ids are skipped here.
  const int num_pins = d.num_pins();
  std::vector<int> indeg(static_cast<std::size_t>(num_pins), 0);
  std::vector<std::vector<PinId>> adj(static_cast<std::size_t>(num_pins));
  auto add_arc = [&](PinId from, PinId to) {
    if (from < 0 || from >= num_pins || to < 0 || to >= num_pins) return;
    adj[static_cast<std::size_t>(from)].push_back(to);
    ++indeg[static_cast<std::size_t>(to)];
  };
  for (const Net& net : d.nets()) {
    if (net.is_clock || net.driver == kInvalidId) continue;
    for (PinId s : net.sinks) add_arc(net.driver, s);
  }
  for (const Instance& inst : d.instances()) {
    const CellType* cell = safe_cell(d, inst);
    if (cell == nullptr || cell->is_sequential) continue;
    for (const TimingArc& arc : cell->arcs) {
      if (arc.from_pin < 0 ||
          arc.from_pin >= static_cast<int>(inst.pins.size()) ||
          arc.to_pin < 0 || arc.to_pin >= static_cast<int>(inst.pins.size())) {
        continue;
      }
      add_arc(inst.pins[static_cast<std::size_t>(arc.from_pin)],
              inst.pins[static_cast<std::size_t>(arc.to_pin)]);
    }
  }
  std::queue<PinId> ready;
  for (PinId p = 0; p < num_pins; ++p) {
    if (indeg[static_cast<std::size_t>(p)] == 0) ready.push(p);
  }
  int visited = 0;
  while (!ready.empty()) {
    const PinId p = ready.front();
    ready.pop();
    ++visited;
    for (PinId q : adj[static_cast<std::size_t>(p)]) {
      if (--indeg[static_cast<std::size_t>(q)] == 0) ready.push(q);
    }
  }
  if (visited != num_pins) {
    // Name one pin on a cycle (any with residual in-degree) for the report.
    PinId offender = kInvalidId;
    for (PinId p = 0; p < num_pins; ++p) {
      if (indeg[static_cast<std::size_t>(p)] > 0) {
        offender = p;
        break;
      }
    }
    TG_DIAG(sink, Severity::kError, Stage::kNetlist, SrcLoc{},
            offender == kInvalidId ? std::string()
                                   : safe_pin_name(d, offender),
            "combinational cycle detected: visited " << visited << " of "
                                                     << num_pins << " pins");
  }
}

}  // namespace

void validate_placement(const Design& d, DiagSink& sink) {
  const BBox& die = d.die();
  if (!die.valid()) {
    sink.error(Stage::kPlace, "die bounding box is empty or inverted");
    return;
  }
  if (!(std::isfinite(die.xmin) && std::isfinite(die.ymin) &&
        std::isfinite(die.xmax) && std::isfinite(die.ymax))) {
    sink.error(Stage::kPlace, "die bounding box has non-finite coordinates");
    return;
  }
  for (PinId p = 0; p < d.num_pins(); ++p) {
    const Point& pos = d.pins()[static_cast<std::size_t>(p)].pos;
    if (!(std::isfinite(pos.x) && std::isfinite(pos.y))) {
      TG_DIAG(sink, Severity::kError, Stage::kPlace, SrcLoc{},
              safe_pin_name(d, p),
              "pin position (" << pos.x << ", " << pos.y << ") is not finite");
    } else if (!die.contains(pos)) {
      TG_DIAG(sink, Severity::kError, Stage::kPlace, SrcLoc{},
              safe_pin_name(d, p),
              "pin position (" << pos.x << ", " << pos.y
                               << ") lies outside the die ["
                               << die.xmin << ", " << die.ymin << "] x ["
                               << die.xmax << ", " << die.ymax << "]");
    }
  }
  for (const Instance& inst : d.instances()) {
    if (!(std::isfinite(inst.pos.x) && std::isfinite(inst.pos.y))) {
      TG_DIAG(sink, Severity::kError, Stage::kPlace, SrcLoc{}, inst.name,
              "instance position is not finite");
    }
  }
}

void validate_design(const Design& d, DiagSink& sink, ValidateLevel level) {
  if (level == ValidateLevel::kOff) return;
  check_structure(d, sink);
  if (level == ValidateLevel::kFull) {
    check_duplicate_names(d, sink);
    check_acyclic(d, sink);
    if (d.die().valid()) validate_placement(d, sink);
  }
}

}  // namespace tg
