#pragma once
/// \file design.hpp
/// Flat gate-level design: instances of library cells, nets, and pins.
///
/// Pins are the nodes of the paper's heterogeneous timing graph. A pin is
/// either a top-level port (primary input / primary output) or an instance
/// pin. Nets connect exactly one driver pin to one or more sink pins.
/// Storage is arena-style (flat vectors + integer ids) — the idiomatic EDA
/// data-model layout for cache-friendly million-pin designs.

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "liberty/library.hpp"

namespace tg {

using InstId = int;
using NetId = int;
using PinId = int;
inline constexpr int kInvalidId = -1;

struct Instance {
  std::string name;
  int cell_id = kInvalidId;  ///< index into the Library
  Point pos;                 ///< cell origin, filled by the placer
  /// Pin ids of this instance, parallel to CellType::pins.
  std::vector<PinId> pins;
};

struct Pin {
  InstId inst = kInvalidId;     ///< kInvalidId for top-level ports
  int cell_pin = kInvalidId;    ///< index into CellType::pins (instance pins)
  NetId net = kInvalidId;
  bool is_port = false;
  /// True if this pin drives its net (instance outputs and primary inputs).
  bool drives_net = false;
  std::string port_name;  ///< set for ports only
  Point pos;              ///< filled by the placer
};

struct Net {
  std::string name;
  PinId driver = kInvalidId;
  std::vector<PinId> sinks;
  bool is_clock = false;
};

/// Aggregate statistics matching the columns of the paper's Table 1.
struct DesignStats {
  long long num_nodes = 0;      ///< pins (graph nodes)
  long long num_net_edges = 0;  ///< driver→sink net arcs (clock excluded)
  long long num_cell_edges = 0; ///< instantiated cell timing arcs
  long long num_endpoints = 0;  ///< FF D pins + primary outputs
  long long num_instances = 0;
  long long num_nets = 0;
  long long num_ffs = 0;
};

class Design {
 public:
  Design(std::string name, const Library* library);

  // ---- construction -------------------------------------------------
  /// Adds a primary input port; returns its pin id.
  PinId add_primary_input(std::string port_name);
  /// Adds a primary output port; returns its pin id.
  PinId add_primary_output(std::string port_name);
  /// Adds an instance of `cell_id`; creates all of its pins.
  InstId add_instance(std::string inst_name, int cell_id);
  /// Adds an empty net; returns its id.
  NetId add_net(std::string net_name, bool is_clock = false);
  /// Connects `pin` to `net`; the pin's role (driver/sink) is derived from
  /// its direction. Each net must end with exactly one driver.
  void connect(NetId net, PinId pin);

  /// Declares the clock: the net driven by the clock port. Sets period.
  void set_clock(NetId clock_net, double period_ns);
  /// Adjusts the clock period without changing the clock net (also valid
  /// for pure-combinational designs, where it constrains the POs).
  void set_period(double period_ns);
  /// Die area; ports are placed on the boundary by the placer.
  void set_die(const BBox& die) { die_ = die; }

  /// Full structural validation (single driver per net, all pins
  /// connected, no combinational cycles). Throws CheckError on violation.
  void validate() const;

  // ---- queries ------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Library& library() const { return *library_; }
  [[nodiscard]] int num_instances() const { return static_cast<int>(instances_.size()); }
  [[nodiscard]] int num_pins() const { return static_cast<int>(pins_.size()); }
  [[nodiscard]] int num_nets() const { return static_cast<int>(nets_.size()); }
  [[nodiscard]] const Instance& instance(InstId id) const;
  [[nodiscard]] Instance& instance(InstId id);
  [[nodiscard]] const Pin& pin(PinId id) const;
  [[nodiscard]] Pin& pin(PinId id);
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] const std::vector<Instance>& instances() const { return instances_; }
  [[nodiscard]] const std::vector<Pin>& pins() const { return pins_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] const std::vector<PinId>& primary_inputs() const { return primary_inputs_; }
  [[nodiscard]] const std::vector<PinId>& primary_outputs() const { return primary_outputs_; }
  [[nodiscard]] const BBox& die() const { return die_; }
  [[nodiscard]] NetId clock_net() const { return clock_net_; }
  [[nodiscard]] double clock_period() const { return clock_period_; }

  /// Human-readable pin name ("u42/A" or port name).
  [[nodiscard]] std::string pin_name(PinId id) const;
  /// CellType of the pin's instance (pin must be an instance pin).
  [[nodiscard]] const CellType& cell_of(PinId id) const;
  /// Direction viewed from the net: true if the pin is an input *of a
  /// cell* or a primary output (i.e. a net sink).
  [[nodiscard]] bool is_net_sink(PinId id) const { return !pins_[id].drives_net; }
  /// Input capacitance of a sink pin at `corner` (ports contribute a fixed
  /// external load; driver pins have none).
  [[nodiscard]] double pin_cap(PinId id, int corner) const;
  /// True for FF data pins and primary outputs — the paper's "timing
  /// endpoints".
  [[nodiscard]] bool is_endpoint(PinId id) const;
  /// True for FF clock pins.
  [[nodiscard]] bool is_clock_pin(PinId id) const;
  /// True if this pin starts timing propagation (primary inputs and FF
  /// clock pins — the pins with no incoming timing arcs).
  [[nodiscard]] bool is_timing_root(PinId id) const;

  /// Table-1 statistics.
  [[nodiscard]] DesignStats stats() const;

  /// External load modeled at primary outputs (pF).
  [[nodiscard]] double output_port_cap() const { return output_port_cap_; }
  void set_output_port_cap(double cap_pf) { output_port_cap_ = cap_pf; }

 private:
  std::string name_;
  const Library* library_;
  std::vector<Instance> instances_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  std::vector<PinId> primary_inputs_;
  std::vector<PinId> primary_outputs_;
  BBox die_;
  NetId clock_net_ = kInvalidId;
  double clock_period_ = 1.0;
  double output_port_cap_ = 0.004;
};

}  // namespace tg
