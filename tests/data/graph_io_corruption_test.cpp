/// Corruption fuzzing for the dataset-graph format: every truncation and
/// every byte flip must surface as a typed CheckError — never a crash, never
/// a silently-wrong graph.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "data/dataset.hpp"
#include "data/graph_io.hpp"
#include "liberty/library_builder.hpp"
#include "util/check.hpp"

namespace tg::data {
namespace {

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class GraphCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Library lib = build_library();
    DatasetOptions options;
    options.scale = 1.0 / 32;
    options.slim = true;
    graph_ = new DatasetGraph(
        build_design_graph(suite_entry("spm", options.scale), lib, options));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static const DatasetGraph& graph() { return *graph_; }

  std::string path_ = ::testing::TempDir() + "/tg_graph_fuzz.bin";

 private:
  static const DatasetGraph* graph_;
};

const DatasetGraph* GraphCorruptionTest::graph_ = nullptr;

TEST_F(GraphCorruptionTest, TruncationAtEighthBoundaries) {
  save_graph(graph(), path_);
  const std::vector<unsigned char> full = slurp(path_);
  ASSERT_GT(full.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    const std::size_t n = full.size() * static_cast<std::size_t>(i) / 8;
    spit(path_, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(load_graph(path_), CheckError) << "truncated to " << n;
  }
}

/// A hand-built graph small enough that flipping one byte per 64-byte
/// stride covers every format region in well under a second. Corruption
/// detection is a property of the envelope (CRC over the whole payload),
/// not of the graph content, so a miniature graph proves the same thing
/// the 1 MB real one would — the real graph gets a sparse flip pass below.
DatasetGraph make_tiny_graph() {
  DatasetGraph g;
  g.name = "tiny";
  g.num_nodes = 4;
  g.num_levels = 2;
  g.clock_period = 1.25;
  auto tensor = [](std::int64_t rows, std::int64_t cols) {
    std::vector<float> v(static_cast<std::size_t>(rows * cols));
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<float>(i) * 0.5f;
    }
    return nn::Tensor::from_vector(std::move(v), rows, cols);
  };
  g.node_feat = tensor(4, 10);
  g.net_edge_feat = tensor(2, 2);
  g.cell_edge_feat = tensor(2, 8);
  g.net_src = {0, 1};
  g.net_dst = {2, 3};
  g.cell_src = {0, 1};
  g.cell_dst = {2, 3};
  g.node_level = {0, 0, 1, 1};
  g.net_delay = tensor(4, 4);
  g.arrival = tensor(4, 4);
  g.slew = tensor(4, 4);
  g.rat = tensor(4, 4);
  g.cell_delay = tensor(2, 4);
  g.endpoints = {2, 3};
  g.net_sinks = {2, 3};
  g.endpoint_setup_slack = {0.5, -0.25};
  g.endpoint_hold_slack = {0.125, 0.75};
  g.stats.num_nodes = 4;
  return g;
}

TEST_F(GraphCorruptionTest, ByteFlipPer64ByteStride) {
  save_graph(make_tiny_graph(), path_);
  const std::vector<unsigned char> full = slurp(path_);
  for (std::size_t i = 0; i < full.size(); i += 64) {
    std::vector<unsigned char> bad = full;
    bad[i] ^= 0x5A;
    spit(path_, bad);
    EXPECT_THROW(load_graph(path_), CheckError) << "flip at byte " << i;
  }
  // Flipping the last byte (inside the CRC trailer itself) must also fail.
  ASSERT_FALSE(full.empty());
  std::vector<unsigned char> bad = full;
  bad[bad.size() - 1] ^= 0x5A;
  spit(path_, bad);
  EXPECT_THROW(load_graph(path_), CheckError);
}

TEST_F(GraphCorruptionTest, SparseByteFlipsOnRealGraph) {
  save_graph(graph(), path_);
  const std::vector<unsigned char> full = slurp(path_);
  for (std::size_t i = 0; i < full.size(); i += 8191) {  // prime stride
    std::vector<unsigned char> bad = full;
    bad[i] ^= 0x5A;
    spit(path_, bad);
    EXPECT_THROW(load_graph(path_), CheckError) << "flip at byte " << i;
  }
}

TEST_F(GraphCorruptionTest, ErrorNamesFileAndLocation) {
  save_graph(graph(), path_);
  std::vector<unsigned char> bytes = slurp(path_);
  bytes.resize(bytes.size() / 2);
  spit(path_, bytes);
  try {
    (void)load_graph(path_);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(path_), std::string::npos)
        << e.what();
  }
}

/// Legacy v1 files (u64 magic + u64 version, no CRC) must stay loadable; the
/// core body layout is byte-identical across versions, so a v1 file is the
/// current payload minus the v3 optional-section flag, with the old envelope
/// spliced on.
class LegacyV1Test : public GraphCorruptionTest {
 protected:
  std::vector<unsigned char> make_v1_bytes() {
    DatasetGraph slim = graph();
    slim.level_csr = nullptr;  // v1 bodies have no level-CSR section
    save_graph(slim, path_);
    const std::vector<unsigned char> v2 = slurp(path_);
    // file = u32 magic + u32 version + body + u64 csr flag (0) + u32 crc.
    const std::vector<unsigned char> body(v2.begin() + 8, v2.end() - 4 - 8);
    std::vector<unsigned char> v1;
    const std::uint64_t magic = 0x54474447;  // "TGDG"
    const std::uint64_t version = 1;
    v1.resize(16);
    std::memcpy(v1.data(), &magic, 8);
    std::memcpy(v1.data() + 8, &version, 8);
    v1.insert(v1.end(), body.begin(), body.end());
    return v1;
  }
};

TEST_F(LegacyV1Test, LegacyFileStillLoads) {
  spit(path_, make_v1_bytes());
  const DatasetGraph b = load_graph(path_);
  EXPECT_EQ(b.name, graph().name);
  EXPECT_EQ(b.num_nodes, graph().num_nodes);
  EXPECT_EQ(b.node_level, graph().node_level);
  EXPECT_EQ(b.endpoint_setup_slack, graph().endpoint_setup_slack);
}

TEST_F(LegacyV1Test, TruncatedLegacyFileRejected) {
  const std::vector<unsigned char> v1 = make_v1_bytes();
  for (int i = 0; i < 8; ++i) {
    const std::size_t n = v1.size() * static_cast<std::size_t>(i) / 8;
    spit(path_, {v1.begin(), v1.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(load_graph(path_), CheckError) << "truncated to " << n;
  }
}

}  // namespace
}  // namespace tg::data
