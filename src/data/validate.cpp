#include "data/validate.hpp"

#include <cmath>

namespace tg::data {

namespace {

/// Shape check for one tensor; returns false (and reports) on mismatch so
/// dependent checks can bail early.
bool check_shape(const nn::Tensor& t, const char* tname, std::int64_t rows,
                 std::int64_t cols, const DatasetGraph& g, DiagSink& sink) {
  if (!t.defined()) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            tname << " tensor is undefined");
    return false;
  }
  if (t.rows() != rows || t.cols() != cols) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            tname << " has shape [" << t.rows() << ", " << t.cols()
                  << "], expected [" << rows << ", " << cols << "]");
    return false;
  }
  return true;
}

/// Finiteness sweep; reports the first offending row/column only.
/// `allow_inf` admits ±Inf (RAT at unconstrained endpoints) but never NaN.
void check_finite(const nn::Tensor& t, const char* tname, bool allow_inf,
                  const DatasetGraph& g, DiagSink& sink) {
  if (!t.defined()) return;
  const std::span<const float> data = t.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float v = data[i];
    const bool bad = allow_inf ? std::isnan(v) : !std::isfinite(v);
    if (bad) {
      const std::int64_t row = static_cast<std::int64_t>(i) / t.cols();
      const std::int64_t col = static_cast<std::int64_t>(i) % t.cols();
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              tname << '[' << row << "][" << col << "] = " << v
                    << " is not finite — first offender (node/edge " << row
                    << ")");
      return;
    }
  }
}

void check_edges(const std::vector<int>& src, const std::vector<int>& dst,
                 const char* what, const DatasetGraph& g, DiagSink& sink) {
  if (src.size() != dst.size()) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            what << " src/dst length mismatch (" << src.size() << " vs "
                 << dst.size() << ")");
    return;
  }
  const bool have_levels =
      g.node_level.size() == static_cast<std::size_t>(g.num_nodes);
  for (std::size_t e = 0; e < src.size(); ++e) {
    const int s = src[e];
    const int t = dst[e];
    if (s < 0 || s >= g.num_nodes || t < 0 || t >= g.num_nodes) {
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              what << " edge " << e << " endpoint out of range (" << s
                   << " -> " << t << ", " << g.num_nodes << " nodes)");
      return;  // a corrupted edge list usually has many; first is enough
    }
    if (have_levels && g.node_level[static_cast<std::size_t>(t)] <=
                           g.node_level[static_cast<std::size_t>(s)]) {
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              what << " edge " << e << " does not increase level ("
                   << g.node_level[static_cast<std::size_t>(s)] << " -> "
                   << g.node_level[static_cast<std::size_t>(t)] << ")");
      return;
    }
  }
}

void check_index_list(const std::vector<int>& ids, const char* what,
                      const DatasetGraph& g, DiagSink& sink) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] < 0 || ids[i] >= g.num_nodes) {
      TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
              what << '[' << i << "] = " << ids[i] << " out of range ("
                   << g.num_nodes << " nodes)");
      return;
    }
  }
}

}  // namespace

void validate_dataset_graph(const DatasetGraph& g, DiagSink& sink,
                            ValidateLevel level) {
  if (level == ValidateLevel::kOff) return;

  if (g.num_nodes < 0) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            "negative node count " << g.num_nodes);
    return;
  }

  // ---- shapes (paper layout: 10 node / 2 net-edge / 512 cell-edge) ------
  check_shape(g.node_feat, "node_feat", g.num_nodes, kNodeFeatureDim, g, sink);
  const std::int64_t num_net_edges = static_cast<std::int64_t>(g.net_src.size());
  const std::int64_t num_cell_edges =
      static_cast<std::int64_t>(g.cell_src.size());
  check_shape(g.net_edge_feat, "net_edge_feat", num_net_edges,
              kNetEdgeFeatureDim, g, sink);
  check_shape(g.cell_edge_feat, "cell_edge_feat", num_cell_edges,
              kCellEdgeFeatureDim, g, sink);
  check_shape(g.net_delay, "net_delay", g.num_nodes, kNumCorners, g, sink);
  check_shape(g.arrival, "arrival", g.num_nodes, kNumCorners, g, sink);
  check_shape(g.slew, "slew", g.num_nodes, kNumCorners, g, sink);
  check_shape(g.rat, "rat", g.num_nodes, kNumCorners, g, sink);
  check_shape(g.cell_delay, "cell_delay", num_cell_edges, kNumCorners, g,
              sink);

  // ---- levelization ------------------------------------------------------
  if (g.node_level.size() != static_cast<std::size_t>(g.num_nodes)) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            "node_level holds " << g.node_level.size() << " entries for "
                                << g.num_nodes << " nodes");
  } else {
    for (std::size_t i = 0; i < g.node_level.size(); ++i) {
      if (g.node_level[i] < 0 || g.node_level[i] >= g.num_levels) {
        TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
                "node " << i << " level " << g.node_level[i]
                        << " outside [0, " << g.num_levels << ")");
        break;
      }
    }
  }

  // ---- edges + index lists ----------------------------------------------
  check_edges(g.net_src, g.net_dst, "net", g, sink);
  check_edges(g.cell_src, g.cell_dst, "cell", g, sink);
  check_index_list(g.endpoints, "endpoints", g, sink);
  check_index_list(g.net_sinks, "net_sinks", g, sink);

  if (!(std::isfinite(g.clock_period) && g.clock_period > 0.0)) {
    TG_DIAG(sink, Severity::kError, Stage::kExtract, SrcLoc{}, g.name,
            "clock period " << g.clock_period
                            << " is not a positive finite value");
  }

  // ---- full: finiteness sweep over every tensor -------------------------
  if (level == ValidateLevel::kFull) {
    check_finite(g.node_feat, "node_feat", false, g, sink);
    check_finite(g.net_edge_feat, "net_edge_feat", false, g, sink);
    check_finite(g.cell_edge_feat, "cell_edge_feat", false, g, sink);
    check_finite(g.net_delay, "net_delay", false, g, sink);
    check_finite(g.arrival, "arrival", false, g, sink);
    check_finite(g.slew, "slew", false, g, sink);
    check_finite(g.rat, "rat", true, g, sink);
    check_finite(g.cell_delay, "cell_delay", false, g, sink);
  }
}

}  // namespace tg::data
