file(REMOVE_RECURSE
  "CMakeFiles/tg_gen.dir/blocks.cpp.o"
  "CMakeFiles/tg_gen.dir/blocks.cpp.o.d"
  "CMakeFiles/tg_gen.dir/circuit_builder.cpp.o"
  "CMakeFiles/tg_gen.dir/circuit_builder.cpp.o.d"
  "CMakeFiles/tg_gen.dir/generator.cpp.o"
  "CMakeFiles/tg_gen.dir/generator.cpp.o.d"
  "CMakeFiles/tg_gen.dir/suite.cpp.o"
  "CMakeFiles/tg_gen.dir/suite.cpp.o.d"
  "libtg_gen.a"
  "libtg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
