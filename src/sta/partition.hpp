#pragma once
/// \file partition.hpp
/// Deterministic level-aware partitioner for the sharded STA engine
/// (DESIGN.md §13). The timing graph's flat level-packed pin order is cut
/// into K contiguous, balanced chunks; because every timing arc strictly
/// increases the level, a contiguous level-major split makes the shard
/// assignment *monotone* along arcs (`shard_of[u] <= shard_of[v]` for each
/// arc u→v), so the shard-level dependency graph is acyclic by
/// construction — the property the shard orchestrator's cross-shard
/// decrements rely on, and the "no cross-shard level inversion" invariant
/// `validate_partition` (sta/validate.hpp) enforces.
///
/// A shard *owns* the pins of its chunk and carries *ghost* copies of the
/// cross-shard fanin pins its owned sweeps read (cf. the Galois libdist
/// owned/ghost discipline). Ghost values are never computed locally: they
/// arrive through the checksummed boundary-buffer exchange in
/// sta/shard.cpp.

#include <vector>

#include "sta/timing_graph.hpp"

namespace tg {

/// K-way ownership split of a timing graph. All vectors indexed by shard
/// except `shard_of` (per pin). Trailing shards may own zero pins when
/// K exceeds the pin count — still a valid partition.
struct Partition {
  int num_shards = 0;
  std::vector<int> shard_of;  ///< owning shard per pin, size num_nodes
  /// Owned pins per shard, in level-packed (sweep) order — the order the
  /// shard-local task DAGs are built over.
  std::vector<std::vector<PinId>> owned;
  /// Inclusive level range covered by each shard's owned pins
  /// (lo = 0, hi = -1 for an empty shard).
  std::vector<int> level_lo;
  std::vector<int> level_hi;
  /// Cross-shard fanin pins per shard (sorted, unique): every pin some
  /// owned sweep reads whose owner is another shard.
  std::vector<std::vector<PinId>> ghosts;
};

/// Splits `graph` into `num_shards` balanced contiguous chunks of the flat
/// level-packed pin order. Deterministic: same graph + K → same partition.
/// K is clamped to >= 1; K > num_nodes yields empty trailing shards.
[[nodiscard]] Partition partition_timing_graph(const TimingGraph& graph,
                                               int num_shards);

}  // namespace tg
