# Empty compiler generated dependencies file for tg_ml.
# This may be replaced when dependencies are built.
