#pragma once
/// \file liberty_io.hpp
/// Text serialization of the cell library in a Liberty-style syntax (a
/// compact, faithful subset of the .lib format: library / cell / pin /
/// timing groups with index_1/index_2/values tables). Enables inspecting
/// the synthetic library with standard tooling habits and exchanging
/// libraries between runs; round-trip is exact up to float printing
/// precision.
///
/// Like verilog_io, the reader comes in two flavors (DESIGN.md §8): a
/// sink-based recovering reader that diagnoses problems with file:line
/// context and drops only the malformed cell (keeping the rest of the
/// library), and legacy wrappers that throw one aggregated DiagError.

#include <iosfwd>
#include <string>

#include "liberty/library.hpp"
#include "util/diag.hpp"

namespace tg {

/// Writes the library as Liberty-style text.
void write_liberty(const Library& library, std::ostream& out,
                   const std::string& library_name = "timgnn_synth");
/// Convenience: write to a file. Throws CheckError on I/O failure.
void write_liberty_file(const Library& library, const std::string& path,
                        const std::string& library_name = "timgnn_synth");

/// Recovering reader: parses a library previously written by write_liberty.
/// Malformed statements are reported into `sink` with `path`:line context
/// and the offending token; a broken cell group is dropped whole (the
/// parser resynchronizes at the next `cell (`) so one bad cell cannot take
/// the library down. Never throws on malformed input.
[[nodiscard]] Library read_liberty(std::istream& in, DiagSink& sink,
                                   const std::string& path = "<liberty>");
[[nodiscard]] Library read_liberty_file(const std::string& path,
                                        DiagSink& sink);

/// Legacy readers: throw DiagError (a CheckError) listing every diagnostic
/// on malformed input.
[[nodiscard]] Library read_liberty(std::istream& in);
[[nodiscard]] Library read_liberty_file(const std::string& path);

}  // namespace tg
