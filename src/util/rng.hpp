#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every stochastic component in the repository (design generation,
/// placement jitter, model initialization, data shuffling, bagging) draws
/// from an explicitly seeded Rng so that experiments are exactly
/// reproducible from the seed recorded in EXPERIMENTS.md.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace tg {

/// Complete serializable Rng state — checkpoints store this so a resumed
/// training run replays the exact random stream of an uninterrupted one.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
/// Seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface, usable with <random> adaptors.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second deviate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw.
  bool chance(double p);
  /// Index sampled from unnormalized non-negative weights. Requires a
  /// positive total weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A new Rng whose state is derived from this one; use to give each
  /// sub-component an independent stream.
  Rng fork();

  /// Snapshot / restore of the full generator state (checkpointing).
  [[nodiscard]] RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tg
