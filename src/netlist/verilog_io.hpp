#pragma once
/// \file verilog_io.hpp
/// Structural-Verilog (gate-level netlist) serialization — the interchange
/// format downstream users expect from an EDA library. The writer emits a
/// flat module with named port connections; the reader rebuilds a Design
/// against a Library. Clock declaration travels in a `timgnn_clock
/// directive; placement travels in a sidecar ".pl" file (one pin/instance
/// per line), since positions are not part of Verilog.

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace tg {

/// Writes the design as a flat structural Verilog module.
void write_verilog(const Design& design, std::ostream& out);
void write_verilog_file(const Design& design, const std::string& path);

/// Parses a netlist previously written by write_verilog; instance cell
/// names are resolved against `library`. Throws CheckError with a line
/// number on malformed input or unknown cells.
[[nodiscard]] Design read_verilog(std::istream& in, const Library* library);
[[nodiscard]] Design read_verilog_file(const std::string& path,
                                       const Library* library);

/// Writes the placement (die box, instance and port positions).
void write_placement(const Design& design, std::ostream& out);
void write_placement_file(const Design& design, const std::string& path);

/// Applies a placement by name onto a structurally identical design.
void read_placement(Design& design, std::istream& in);
void read_placement_file(Design& design, const std::string& path);

}  // namespace tg
