#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace tg::json {

bool Value::as_bool() const {
  TG_CHECK_MSG(is_bool(), "json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  TG_CHECK_MSG(is_number(), "json: value is not a number");
  return num_;
}

const std::string& Value::as_string() const {
  TG_CHECK_MSG(is_string(), "json: value is not a string");
  return str_;
}

const Array& Value::as_array() const {
  TG_CHECK_MSG(is_array(), "json: value is not an array");
  return *arr_;
}

const Object& Value::as_object() const {
  TG_CHECK_MSG(is_object(), "json: value is not an object");
  return *obj_;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  TG_CHECK_MSG(it != obj.end(), "json: missing key \"" << key << "\"");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && obj_->count(key) > 0;
}

Value Value::make_null() { return Value{}; }
Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
Value Value::make_number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}
Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}
Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::make_shared<Array>(std::move(a));
  return v;
}
Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::make_shared<Object>(std::move(o));
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    TG_CHECK_MSG(pos_ == text_.size(),
             "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) {
    TG_CHECK_MSG(false, "json: " << what << " at offset " << pos_);
    std::abort();  // unreachable; the check above always throws
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value::make_null();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value::make_object(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value::make_array(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — fine for our own files,
          // which never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      digits();
    }
    if (!any) fail("invalid number");
    return Value::make_number(
        std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr));
  }
};

}  // namespace

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

Value parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  TG_CHECK_MSG(f != nullptr, "json: cannot open " << path);
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  TG_CHECK_MSG(read_ok, "json: error reading " << path);
  return parse(text);
}

}  // namespace tg::json
