
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/edge_cases_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/edge_cases_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/layer_norm_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/layer_norm_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/layer_norm_test.cpp.o.d"
  "/root/repo/tests/nn/matmul_reference_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/matmul_reference_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/matmul_reference_test.cpp.o.d"
  "/root/repo/tests/nn/module_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/module_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/module_test.cpp.o.d"
  "/root/repo/tests/nn/ops_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/ops_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/ops_test.cpp.o.d"
  "/root/repo/tests/nn/optim_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/optim_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/optim_test.cpp.o.d"
  "/root/repo/tests/nn/serialize_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/serialize_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
