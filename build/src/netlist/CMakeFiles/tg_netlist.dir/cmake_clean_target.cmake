file(REMOVE_RECURSE
  "libtg_netlist.a"
)
