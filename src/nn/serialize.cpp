#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "util/check.hpp"

namespace tg::nn {

namespace {
constexpr std::uint32_t kMagic = 0x54474E4E;  // "TGNN"

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

void save_parameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  TG_CHECK_MSG(out.is_open(), "cannot write " << path);
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(module.parameters().size()));
  for (std::size_t i = 0; i < module.parameters().size(); ++i) {
    const std::string& name = module.parameter_names()[i];
    const Tensor& t = module.parameters()[i];
    write_u32(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u32(out, static_cast<std::uint32_t>(t.rows()));
    write_u32(out, static_cast<std::uint32_t>(t.cols()));
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  TG_CHECK_MSG(out.good(), "write failure on " << path);
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TG_CHECK_MSG(in.is_open(), "cannot read " << path);
  TG_CHECK_MSG(read_u32(in) == kMagic, "bad model file magic in " << path);
  const std::uint32_t count = read_u32(in);

  std::map<std::string, std::pair<std::uint32_t, std::vector<float>>> blobs;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const std::uint32_t rows = read_u32(in);
    const std::uint32_t cols = read_u32(in);
    std::vector<float> data(static_cast<std::size_t>(rows) * cols);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    TG_CHECK_MSG(in.good(), "truncated model file " << path);
    blobs.emplace(std::move(name), std::make_pair(rows, std::move(data)));
  }

  std::size_t matched = 0;
  for (std::size_t i = 0; i < module.parameters().size(); ++i) {
    const std::string& name = module.parameter_names()[i];
    auto it = blobs.find(name);
    TG_CHECK_MSG(it != blobs.end(), "parameter missing from file: " << name);
    Tensor t = module.parameters()[i];
    TG_CHECK_MSG(static_cast<std::size_t>(t.numel()) == it->second.second.size(),
                 "shape mismatch for " << name);
    std::copy(it->second.second.begin(), it->second.second.end(),
              t.data().begin());
    ++matched;
  }
  TG_CHECK_MSG(matched == blobs.size(),
               "model file has " << blobs.size() << " tensors, module expects "
                                 << matched);
}

}  // namespace tg::nn
