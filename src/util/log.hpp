#pragma once
/// \file log.hpp
/// Minimal leveled logger. Defaults to Info; benches flip to Debug with
/// --verbose. Thread-safe: the level is an atomic and each message is
/// emitted as one mutex-guarded write, so concurrent TG_WARNs from pool
/// workers never interleave mid-line.

#include <atomic>
#include <sstream>
#include <string>

namespace tg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace tg

#define TG_LOG_AT(level, expr)                             \
  do {                                                     \
    if (static_cast<int>(level) >=                         \
        static_cast<int>(::tg::log_level())) {             \
      std::ostringstream tg_log_os;                        \
      tg_log_os << expr;                                   \
      ::tg::detail::log_emit(level, tg_log_os.str());      \
    }                                                      \
  } while (0)

#define TG_DEBUG(expr) TG_LOG_AT(::tg::LogLevel::kDebug, expr)
#define TG_INFO(expr) TG_LOG_AT(::tg::LogLevel::kInfo, expr)
#define TG_WARN(expr) TG_LOG_AT(::tg::LogLevel::kWarn, expr)
#define TG_ERROR(expr) TG_LOG_AT(::tg::LogLevel::kError, expr)

/// Like TG_WARN, but fires at most once per call site for the process
/// lifetime — for warnings that would otherwise repeat on a hot path
/// (e.g. the tracer's buffer-full notice). Racing threads may not see the
/// flag flip atomically with the emit, but exchange() guarantees a single
/// winner.
#define TG_WARN_ONCE(expr)                                          \
  do {                                                              \
    static std::atomic<bool> tg_warn_once_fired{false};             \
    if (!tg_warn_once_fired.exchange(true,                          \
                                     std::memory_order_relaxed)) {  \
      TG_WARN(expr);                                                \
    }                                                               \
  } while (0)
