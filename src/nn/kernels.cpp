#include "nn/kernels.hpp"

#include <atomic>
#include <cmath>

#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace tg::nn::kern {

namespace {

// ---- portable backend ----------------------------------------------------
// The reference implementation of the numeric contract. The SIMD backends
// below mirror these loops operation for operation; keep them in sync.

namespace portable {

void add(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void add_acc(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void mul_acc(float* dst, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void scale(float* out, const float* a, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void axpy(float* dst, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += a * x[i];
}

void relu(float* out, const float* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void add_relu(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = a[i] + b[i];
    out[i] = v > 0.0f ? v : 0.0f;
  }
}

void relu_mask_acc(float* dst, const float* y, const float* g,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] > 0.0f) dst[i] += g[i];
  }
}

float dot(const float* a, const float* b, std::size_t n) {
  // Blocked reduction contract (kernels.hpp): 8 striped lanes, pairwise
  // combine, serial tail.
  float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) lane[l] += a[i + l] * b[i + l];
  }
  float total = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (std::size_t i = n8; i < n; ++i) total += a[i] * b[i];
  return total;
}

void matmul_row(float* out, const float* a, const float* b, std::size_t k,
                std::size_t m) {
  if (k == 0) {
    for (std::size_t j = 0; j < m; ++j) out[j] = 0.0f;
    return;
  }
  for (std::size_t j = 0; j < m; ++j) out[j] = a[0] * b[j];
  for (std::size_t kk = 1; kk < k; ++kk) {
    const float av = a[kk];
    const float* brow = b + kk * m;
    for (std::size_t j = 0; j < m; ++j) out[j] += av * brow[j];
  }
}

void matmul_nt_row(float* out, const float* g, const float* b, std::size_t k,
                   std::size_t m) {
  for (std::size_t kk = 0; kk < k; ++kk) out[kk] += dot(g, b + kk * m, m);
}

void atb_acc(float* db, const float* a, const float* g, std::size_t n,
             std::size_t k, std::size_t stride, std::size_t width) {
  // i blocked by 4: each db element is loaded once and receives its four
  // contributions in ascending-i order before the store, exactly as the
  // unblocked loop would.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    const float* g0 = g + i * stride;
    const float* g1 = g0 + stride;
    const float* g2 = g1 + stride;
    const float* g3 = g2 + stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) continue;
      float* drow = db + kk * stride;
      for (std::size_t j = 0; j < width; ++j) {
        float t = drow[j];
        t += av0 * g0[j];
        t += av1 * g1[j];
        t += av2 * g2[j];
        t += av3 * g3[j];
        drow[j] = t;
      }
    }
  }
  for (; i < n; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* drow = db + kk * stride;
      for (std::size_t j = 0; j < width; ++j) drow[j] += av * grow[j];
    }
  }
}

void adam_step(float* data, const float* grad, float* m, float* v,
               std::size_t n, const AdamConsts& c) {
  for (std::size_t i = 0; i < n; ++i) {
    const float g = grad[i] * c.clip_scale + c.weight_decay * data[i];
    m[i] = c.beta1 * m[i] + (1.0f - c.beta1) * g;
    v[i] = c.beta2 * v[i] + ((1.0f - c.beta2) * g) * g;
    const float mhat = m[i] / c.bc1;
    const float vhat = v[i] / c.bc2;
    data[i] -= c.lr * mhat / (std::sqrt(vhat) + c.eps);
  }
}

constexpr KernelTable kTable = {
    "portable", add, add_acc, mul,        mul_acc,    scale, axpy,
    relu,       add_relu,     relu_mask_acc, dot, matmul_row,
    matmul_nt_row, atb_acc, adam_step,
};

}  // namespace portable

#if defined(__ARM_NEON)

// ---- NEON backend --------------------------------------------------------
// Baseline on aarch64. Two q-registers emulate the 8-lane stripe of the
// dot contract; vfma is never used (mul + add keeps the two roundings the
// contract requires).

namespace neon {

void add(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void add_acc(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), vld1q_f32(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void mul_acc(float* dst, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i,
              vaddq_f32(vld1q_f32(dst + i),
                        vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i))));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void scale(float* out, const float* a, float s, std::size_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), sv));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

void axpy(float* dst, float a, const float* x, std::size_t n) {
  const float32x4_t av = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i),
                                 vmulq_f32(av, vld1q_f32(x + i))));
  }
  for (; i < n; ++i) dst[i] += a * x[i];
}

void relu(float* out, const float* a, std::size_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmaxq_f32(vld1q_f32(a + i), zero));
  }
  for (; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void add_relu(float* out, const float* a, const float* b, std::size_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmaxq_f32(vaddq_f32(vld1q_f32(a + i),
                                           vld1q_f32(b + i)),
                                 zero));
  }
  for (; i < n; ++i) {
    const float v = a[i] + b[i];
    out[i] = v > 0.0f ? v : 0.0f;
  }
}

void relu_mask_acc(float* dst, const float* y, const float* g,
                   std::size_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t mask = vcgtq_f32(vld1q_f32(y + i), zero);
    const float32x4_t gm = vreinterpretq_f32_u32(
        vandq_u32(vreinterpretq_u32_f32(vld1q_f32(g + i)), mask));
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), gm));
  }
  for (; i < n; ++i) {
    if (y[i] > 0.0f) dst[i] += g[i];
  }
}

float dot(const float* a, const float* b, std::size_t n) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);  // lanes 0..3
  float32x4_t acc_hi = vdupq_n_f32(0.0f);  // lanes 4..7
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc_hi = vaddq_f32(acc_hi,
                       vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float lane[8];
  vst1q_f32(lane, acc_lo);
  vst1q_f32(lane + 4, acc_hi);
  float total = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (std::size_t i = n8; i < n; ++i) total += a[i] * b[i];
  return total;
}

void matmul_row(float* out, const float* a, const float* b, std::size_t k,
                std::size_t m) {
  if (k == 0) {
    for (std::size_t j = 0; j < m; ++j) out[j] = 0.0f;
    return;
  }
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    float32x4_t av = vdupq_n_f32(a[0]);
    float32x4_t acc0 = vmulq_f32(av, vld1q_f32(b + j));
    float32x4_t acc1 = vmulq_f32(av, vld1q_f32(b + j + 4));
    for (std::size_t kk = 1; kk < k; ++kk) {
      av = vdupq_n_f32(a[kk]);
      const float* br = b + kk * m + j;
      acc0 = vaddq_f32(acc0, vmulq_f32(av, vld1q_f32(br)));
      acc1 = vaddq_f32(acc1, vmulq_f32(av, vld1q_f32(br + 4)));
    }
    vst1q_f32(out + j, acc0);
    vst1q_f32(out + j + 4, acc1);
  }
  for (; j < m; ++j) {
    float acc = a[0] * b[j];
    for (std::size_t kk = 1; kk < k; ++kk) acc += a[kk] * b[kk * m + j];
    out[j] = acc;
  }
}

void matmul_nt_row(float* out, const float* g, const float* b, std::size_t k,
                   std::size_t m) {
  // kk pairs share the g loads; each output still gets the exact dot tree.
  std::size_t kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* b0 = b + kk * m;
    const float* b1 = b0 + m;
    float32x4_t lo0 = vdupq_n_f32(0.0f), hi0 = vdupq_n_f32(0.0f);
    float32x4_t lo1 = vdupq_n_f32(0.0f), hi1 = vdupq_n_f32(0.0f);
    const std::size_t m8 = m & ~std::size_t{7};
    for (std::size_t i = 0; i < m8; i += 8) {
      const float32x4_t g_lo = vld1q_f32(g + i);
      const float32x4_t g_hi = vld1q_f32(g + i + 4);
      lo0 = vaddq_f32(lo0, vmulq_f32(g_lo, vld1q_f32(b0 + i)));
      hi0 = vaddq_f32(hi0, vmulq_f32(g_hi, vld1q_f32(b0 + i + 4)));
      lo1 = vaddq_f32(lo1, vmulq_f32(g_lo, vld1q_f32(b1 + i)));
      hi1 = vaddq_f32(hi1, vmulq_f32(g_hi, vld1q_f32(b1 + i + 4)));
    }
    float lane[8];
    vst1q_f32(lane, lo0);
    vst1q_f32(lane + 4, hi0);
    float t0 = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    vst1q_f32(lane, lo1);
    vst1q_f32(lane + 4, hi1);
    float t1 = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    for (std::size_t i = m8; i < m; ++i) {
      t0 += g[i] * b0[i];
      t1 += g[i] * b1[i];
    }
    out[kk] += t0;
    out[kk + 1] += t1;
  }
  for (; kk < k; ++kk) out[kk] += dot(g, b + kk * m, m);
}

void atb_acc(float* db, const float* a, const float* g, std::size_t n,
             std::size_t k, std::size_t stride, std::size_t width) {
  // i blocked by 4 to share the db tile; per-element adds stay in
  // ascending-i order and exact zeros are skipped, matching portable.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    const float* g0 = g + i * stride;
    const float* g1 = g0 + stride;
    const float* g2 = g1 + stride;
    const float* g3 = g2 + stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) continue;
      float* drow = db + kk * stride;
      std::size_t j = 0;
      for (; j + 4 <= width; j += 4) {
        float32x4_t acc = vld1q_f32(drow + j);
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(av0), vld1q_f32(g0 + j)));
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(av1), vld1q_f32(g1 + j)));
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(av2), vld1q_f32(g2 + j)));
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(av3), vld1q_f32(g3 + j)));
        vst1q_f32(drow + j, acc);
      }
      for (; j < width; ++j) {
        float t = drow[j];
        t += av0 * g0[j];
        t += av1 * g1[j];
        t += av2 * g2[j];
        t += av3 * g3[j];
        drow[j] = t;
      }
    }
  }
  for (; i < n; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      axpy(db + kk * stride, av, grow, width);
    }
  }
}

void adam_step(float* data, const float* grad, float* m, float* v,
               std::size_t n, const AdamConsts& c) {
  // Scalar: sqrt/div throughput dominates and vsqrtq keeps IEEE rounding
  // anyway; the portable loop is already the exact contract.
  portable::adam_step(data, grad, m, v, n, c);
}

constexpr KernelTable kTable = {
    "neon", add, add_acc, mul,        mul_acc,    scale, axpy,
    relu,   add_relu,     relu_mask_acc, dot, matmul_row,
    matmul_nt_row, atb_acc, adam_step,
};

}  // namespace neon

#endif  // __ARM_NEON

const KernelTable* pick() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) {
    if (const KernelTable* t = detail::avx2_table()) return t;
  }
#endif
#if defined(__ARM_NEON)
  return &neon::kTable;
#endif
  return &portable::kTable;
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const KernelTable& active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = pick();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

const char* simd_name() { return active().name; }

void set_force_portable(bool on) {
  g_active.store(on ? &portable::kTable : pick(), std::memory_order_release);
}

}  // namespace tg::nn::kern
