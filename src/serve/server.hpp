#pragma once
/// \file server.hpp
/// `SlackServer` — the multi-tenant slack-prediction server core
/// (DESIGN.md §12). Robustness is the contract:
///
///  * **Admission**: requests enter a bounded queue; when it is full they
///    are shed immediately with a retry-after hint (no unbounded latency).
///  * **Deadlines & cancellation**: each request's budget becomes a
///    `CancelSource` chained with the client's cancel token and installed
///    as the worker's ambient token, so the STA sweeps, the incremental
///    cone walk and the GNN forward all stop within one task-graph batch
///    of the trip (util/cancel.hpp).
///  * **Micro-batching**: compatible full-graph prediction requests
///    (pristine sessions of the same design template) are coalesced into
///    one GNN forward.
///  * **Graceful degradation**: a three-tier ladder keeps p99 bounded —
///    full compute → incremental dirty-cone fast path → checksummed
///    stale-cached answer flagged `degraded` — and only sheds when even
///    stale is impossible.
///  * **Fault recovery**: worker faults (TG_FAULT_SERVE) retry under
///    capped exponential backoff; sessions that keep failing are
///    quarantined for a period instead of poisoning the server. A
///    sharded-STA failure (ShardSweepError) is a compute-plane fault,
///    not a tenant-health signal: it degrades that request down the
///    ladder without charging the session's quarantine counter.
///  * **Bounded session table**: `max_sessions` (TG_SERVE_MAX_SESSIONS)
///    LRU-evicts idle sessions on open, so a long-lived server does not
///    grow without bound; evicted designs reopen cheaply from the
///    template cache.
///
/// The model weights are built once, immutable, and shared by every
/// worker; concurrent forwards are safe because autograd state lives in
/// the result tensors, never in the modules.

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "gen/suite.hpp"
#include "serve/admission.hpp"
#include "serve/session.hpp"

namespace tg::serve {

class SlackServer {
 public:
  explicit SlackServer(const ServeOptions& options = {});
  ~SlackServer();

  SlackServer(const SlackServer&) = delete;
  SlackServer& operator=(const SlackServer&) = delete;

  /// Opens a session on (design, scale); cheap after the first open of a
  /// design (template cache). `clock_factor` tightens/relaxes the
  /// calibrated clock (0 = suite default) — an ECO client opens with a
  /// deliberately tight clock so its move stream has violations to fix.
  /// Throws CheckError for unknown designs.
  SessionId open_session(const std::string& design,
                         double scale = kDefaultSuiteScale,
                         double clock_factor = 0.0);
  void close_session(SessionId id);

  /// Asynchronous entry point. The returned future is ALWAYS fulfilled —
  /// shed at the door, answered by a worker, or shed at shutdown.
  [[nodiscard]] std::future<Response> submit(Request req);

  /// Synchronous convenience: submit + get.
  Response call(Request req);

  /// Runs `fn` on a read-only view of the session under its lock (e.g.
  /// victim picking in an ECO loop). Returns false without running `fn`
  /// when the id is unknown — closed, never opened, or LRU-evicted; with
  /// a session cap that race is reachable by well-behaved clients.
  bool inspect(SessionId id, const std::function<void(const SessionView&)>& fn);

  /// Stops admission, sheds queued work, joins workers. Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  [[nodiscard]] int queue_depth() const { return queue_.size(); }

 private:
  struct StatsCells {
    std::atomic<std::uint64_t> submitted{0}, completed{0}, ok{0},
        degraded{0}, shed{0}, batched{0}, retries{0}, faults{0},
        quarantines{0}, cancelled{0}, deadline_expired{0}, evicted{0},
        shard_degraded{0}, cross_batched{0}, pack_hits{0}, pack_misses{0};
  };

  void worker_loop();
  void handle(Ticket ticket);
  /// Session lookup that bumps the LRU stamp; nullptr when unknown (or
  /// already evicted).
  [[nodiscard]] std::shared_ptr<Session> find_session(SessionId id);
  /// Evicts least-recently-used *idle* sessions until the table fits
  /// `max_sessions`. Caller holds `sessions_mu_`. Sessions whose lock is
  /// held (a request in flight) are skipped — the cap is soft under
  /// all-busy load.
  void evict_lru_locked();
  /// Fulfills `t` and records status counters/metrics. Every ticket goes
  /// through here exactly once.
  void fulfill(Ticket& t, Response&& response);
  Response shed_response(CancelReason reason, std::string error) const;
  /// Retry-after hint derived from queue depth and the latency EMA.
  [[nodiscard]] std::chrono::nanoseconds retry_after_hint() const;

  /// Executes the chosen tier for `t` on `session` (session lock held).
  /// Throws CancelError on deadline/cancel and anything else on faults.
  Response run_full_tier(Session& session, const Ticket& t);
  Response run_cone_tier(Session& session, const Ticket& t);
  /// Serves the checksummed stale cache; nullopt when absent/corrupt.
  std::optional<Response> run_stale_tier(Session& session);
  /// Stores a good answer in the session's stale cache (applies the
  /// `cache` fault point: corrupt-on-write, detected by the read-side
  /// checksum).
  void store_stale(Session& session, const Response& r);

  /// Batched pristine-template predict: one forward answers all tickets.
  void handle_batch(const std::shared_ptr<const SessionTemplate>& tpl,
                    std::vector<Ticket> batch);
  /// Cross-template packed predict: the batch spans >= 2 templates; one
  /// forward over the packed super-graph (PackCache) answers everyone,
  /// per-graph digests scattered back by template. Falls back to
  /// handle_batch when shedding collapses the mix to one template, and to
  /// the individual ladder when the packed compute fails.
  void handle_packed_batch(std::vector<Ticket> batch);
  /// Shared fulfillment of one batch member against the prototype answer
  /// `proto` (re-validates the session under its lock; defers to the
  /// individual ladder when the session took moves since queueing).
  /// `cross` marks cross-template members for the stats split.
  void fulfill_batch_member(Ticket&& t, const Response& proto, int batch_size,
                            bool cross, std::vector<Ticket>& deferred);
  /// Cached net embedding for a pristine template (query-invariant —
  /// computed once per template per server, then replayed through the
  /// forward_atslew inference path by every full-tier GNN answer).
  [[nodiscard]] nn::Tensor template_embedding(const SessionTemplate& tpl);

  ServeOptions options_;
  TemplateCache templates_;
  PackCache packs_;
  AdmissionQueue queue_;
  core::TimingGnn model_;  ///< immutable shared weights

  /// tpl key -> cached net embedding; grows with the template working
  /// set (bounded like TemplateCache by the design suite size).
  std::mutex embed_mu_;
  std::unordered_map<std::uint64_t, nn::Tensor> embeds_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> next_session_{1};
  /// Logical LRU clock: bumped per session lookup, stamped into
  /// Session::last_used.
  std::atomic<std::uint64_t> lru_clock_{0};

  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;

  StatsCells stats_;
  std::atomic<std::uint64_t> ema_latency_ns_{0};
};

}  // namespace tg::serve
