#include "ml/net_features.hpp"

#include <cmath>

#include "util/check.hpp"

namespace tg::ml {

std::vector<float> NetFeatureSet::target_corner(int corner) const {
  std::vector<float> out(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    out[i] = static_cast<float>(target[i][corner]);
  }
  return out;
}

NetFeatureSet extract_net_features(const Design& design,
                                   const DesignRouting& truth) {
  NetFeatureSet out;
  const int late_rise = corner_index(Mode::kLate, Trans::kRise);
  const BBox& die = design.die();
  const double die_cx = 0.5 * (die.xmin + die.xmax);
  const double die_cy = 0.5 * (die.ymin + die.ymax);

  std::vector<Point> pts;
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.is_clock) continue;
    const NetParasitics& para = truth.nets[static_cast<std::size_t>(n)];
    TG_CHECK(para.sink_delay.size() == net.sinks.size());

    const Point dp = design.pin(net.driver).pos;
    pts.clear();
    pts.push_back(dp);
    for (PinId s : net.sinks) pts.push_back(design.pin(s).pos);
    const BBox box = bounding_box(pts);

    double total_cap = 0.0;
    for (PinId s : net.sinks) total_cap += design.pin_cap(s, late_rise);

    int driver_drive = 2;  // port drivers behave like a mid-strength cell
    if (!design.pin(net.driver).is_port) {
      driver_drive = design.cell_of(net.driver).drive;
    }

    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const PinId sink = net.sinks[s];
      const Point sp = design.pin(sink).pos;
      const double dist = manhattan(dp, sp);
      int farther = 0;
      for (PinId other : net.sinks) {
        if (manhattan(dp, design.pin(other).pos) > dist) ++farther;
      }
      const float row[kNetFeatureCount] = {
          static_cast<float>(net.sinks.size()),              // fanout
          static_cast<float>(box.hpwl()),                    // net HPWL
          static_cast<float>(box.width() * box.height()),    // net bbox area
          static_cast<float>(std::abs(sp.x - dp.x)),         // |dx|
          static_cast<float>(std::abs(sp.y - dp.y)),         // |dy|
          static_cast<float>(dist),                          // manhattan
          static_cast<float>(design.pin_cap(sink, late_rise)),
          static_cast<float>(total_cap),
          static_cast<float>(driver_drive),
          static_cast<float>(1.0 / driver_drive),
          static_cast<float>(std::abs(sp.x - die_cx)),
          static_cast<float>(std::abs(sp.y - die_cy)),
          static_cast<float>(farther),
          static_cast<float>(dist / std::max(1e-6, box.hpwl())),
      };
      out.features.insert(out.features.end(), row, row + kNetFeatureCount);
      out.target.push_back(para.sink_delay[s]);
      out.sample.emplace_back(n, static_cast<int>(s));
      ++out.rows;
    }
  }
  return out;
}

}  // namespace tg::ml
