#pragma once
/// \file rc_tree.hpp
/// RC-tree extraction from a route topology and Elmore delay computation —
/// the "net delay and net load" step of the two-step STA flow the paper's
/// Section 3.1 describes. Wire slew degradation uses the classical
/// ln(9)·Elmore (PERI-style) metric, combined with the input slew in
/// quadrature by the timer.

#include <vector>

#include "liberty/corner.hpp"
#include "route/topology.hpp"

namespace tg {

/// Per-µm wire parasitics. Units: kΩ, pF, ns (ns = kΩ·pF).
struct WireModel {
  double res_kohm_per_um = 0.0008;
  double cap_pf_per_um = 0.00023;
  /// Early-corner wire derating (process-fast wires).
  double early_derate = 0.90;
  /// Delay metric: Elmore (first moment, default — what the golden flow
  /// and all labels use) or D2M = ln2 · m1²/√m2 (Alpert et al.), a less
  /// pessimistic two-moment metric exposed for accuracy studies.
  enum class Metric { kElmore, kD2m };
  Metric metric = Metric::kElmore;
};

/// Electrical summary of one routed net.
struct NetParasitics {
  /// Total capacitance seen by the driver (wire + sink pins), per corner.
  PerCorner load = per_corner_fill(0.0);
  /// Elmore delay driver→sink per corner; indexed like Net::sinks.
  std::vector<PerCorner> sink_delay;
  /// Wire slew contribution ln9·Elmore per sink per corner; the timer
  /// combines it with the driver output slew in quadrature.
  std::vector<PerCorner> sink_slew_impulse;
  /// Total wirelength of the topology (µm).
  double wirelength = 0.0;
};

/// Computes Elmore parasitics of `topo` for the given net. The sink order
/// of the result follows design.net(net_id).sinks. Every net sink must be
/// present in the topology.
[[nodiscard]] NetParasitics extract_parasitics(const Design& design,
                                               NetId net_id,
                                               const RouteTopology& topo,
                                               const WireModel& wire = {});

}  // namespace tg
