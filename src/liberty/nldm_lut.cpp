#include "liberty/nldm_lut.hpp"

#include "util/check.hpp"

namespace tg {

NldmLut::NldmLut(const std::array<double, kLutDim>& slew_axis,
                 const std::array<double, kLutDim>& load_axis,
                 const std::array<double, kLutCells>& values)
    : slew_axis_(slew_axis), load_axis_(load_axis), values_(values) {
  for (int i = 1; i < kLutDim; ++i) {
    TG_CHECK_MSG(slew_axis_[i] > slew_axis_[i - 1],
                 "slew axis must be strictly increasing");
    TG_CHECK_MSG(load_axis_[i] > load_axis_[i - 1],
                 "load axis must be strictly increasing");
  }
}

AxisPos axis_position(std::span<const double> axis, double q) {
  const int n = static_cast<int>(axis.size());
  int lo = 0;
  // Smallest segment [lo, lo+1] such that q < axis[lo+1], clamped so that
  // out-of-range queries use the boundary segment (extrapolation).
  while (lo < n - 2 && q >= axis[lo + 1]) ++lo;
  const double span = axis[lo + 1] - axis[lo];
  return AxisPos{lo, (q - axis[lo]) / span};
}

double NldmLut::lookup(double slew, double load) const {
  const AxisPos s = axis_position(slew_axis_, slew);
  const AxisPos l = axis_position(load_axis_, load);
  const double v00 = at(s.lo, l.lo);
  const double v01 = at(s.lo, l.lo + 1);
  const double v10 = at(s.lo + 1, l.lo);
  const double v11 = at(s.lo + 1, l.lo + 1);
  const double a = v00 + (v01 - v00) * l.t;
  const double b = v10 + (v11 - v10) * l.t;
  return a + (b - a) * s.t;
}

}  // namespace tg
