#include "data/graph_io.hpp"

#include <cstdint>
#include <fstream>

#include "util/check.hpp"

namespace tg::data {

namespace {

constexpr std::uint32_t kMagic = 0x54474447;  // "TGDG"
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
void write_f64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
double read_f64(std::ifstream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string read_string(std::ifstream& in) {
  std::string s(read_u64(in), '\0');
  in.read(s.data(), static_cast<std::streamsize>(s.size()));
  return s;
}

void write_tensor(std::ofstream& out, const nn::Tensor& t) {
  write_u64(out, static_cast<std::uint64_t>(t.rows()));
  write_u64(out, static_cast<std::uint64_t>(t.cols()));
  out.write(reinterpret_cast<const char*>(t.data().data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}
nn::Tensor read_tensor(std::ifstream& in) {
  const auto rows = static_cast<std::int64_t>(read_u64(in));
  const auto cols = static_cast<std::int64_t>(read_u64(in));
  std::vector<float> data(static_cast<std::size_t>(rows * cols));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  return nn::Tensor::from_vector(std::move(data), rows, cols);
}

void write_ints(std::ofstream& out, const std::vector<int>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(int)));
}
std::vector<int> read_ints(std::ifstream& in) {
  std::vector<int> v(read_u64(in));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(int)));
  return v;
}

void write_doubles(std::ofstream& out, const std::vector<double>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}
std::vector<double> read_doubles(std::ifstream& in) {
  std::vector<double> v(read_u64(in));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
  return v;
}

}  // namespace

void save_graph(const DatasetGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  TG_CHECK_MSG(out.is_open(), "cannot write " << path);
  write_u64(out, kMagic);
  write_u64(out, kVersion);
  write_string(out, g.name);
  write_u64(out, g.is_test ? 1 : 0);
  write_u64(out, static_cast<std::uint64_t>(g.num_nodes));
  write_u64(out, static_cast<std::uint64_t>(g.num_levels));
  write_f64(out, g.clock_period);
  write_f64(out, g.route_seconds);
  write_f64(out, g.sta_seconds);

  write_tensor(out, g.node_feat);
  write_tensor(out, g.net_edge_feat);
  write_tensor(out, g.cell_edge_feat);
  write_ints(out, g.net_src);
  write_ints(out, g.net_dst);
  write_ints(out, g.cell_src);
  write_ints(out, g.cell_dst);
  write_ints(out, g.node_level);

  write_tensor(out, g.net_delay);
  write_tensor(out, g.arrival);
  write_tensor(out, g.slew);
  write_tensor(out, g.rat);
  write_tensor(out, g.cell_delay);
  write_ints(out, g.endpoints);
  write_ints(out, g.net_sinks);
  write_doubles(out, g.endpoint_setup_slack);
  write_doubles(out, g.endpoint_hold_slack);

  // Table-1 stats.
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_nodes));
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_net_edges));
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_cell_edges));
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_endpoints));
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_instances));
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_nets));
  write_u64(out, static_cast<std::uint64_t>(g.stats.num_ffs));
  TG_CHECK_MSG(out.good(), "write failure on " << path);
}

DatasetGraph load_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TG_CHECK_MSG(in.is_open(), "cannot read " << path);
  TG_CHECK_MSG(read_u64(in) == kMagic, "bad dataset-graph magic in " << path);
  TG_CHECK_MSG(read_u64(in) == kVersion, "unsupported version in " << path);

  DatasetGraph g;
  g.name = read_string(in);
  g.is_test = read_u64(in) != 0;
  g.num_nodes = static_cast<int>(read_u64(in));
  g.num_levels = static_cast<int>(read_u64(in));
  g.clock_period = read_f64(in);
  g.route_seconds = read_f64(in);
  g.sta_seconds = read_f64(in);

  g.node_feat = read_tensor(in);
  g.net_edge_feat = read_tensor(in);
  g.cell_edge_feat = read_tensor(in);
  g.net_src = read_ints(in);
  g.net_dst = read_ints(in);
  g.cell_src = read_ints(in);
  g.cell_dst = read_ints(in);
  g.node_level = read_ints(in);

  g.net_delay = read_tensor(in);
  g.arrival = read_tensor(in);
  g.slew = read_tensor(in);
  g.rat = read_tensor(in);
  g.cell_delay = read_tensor(in);
  g.endpoints = read_ints(in);
  g.net_sinks = read_ints(in);
  g.endpoint_setup_slack = read_doubles(in);
  g.endpoint_hold_slack = read_doubles(in);

  g.stats.num_nodes = static_cast<long long>(read_u64(in));
  g.stats.num_net_edges = static_cast<long long>(read_u64(in));
  g.stats.num_cell_edges = static_cast<long long>(read_u64(in));
  g.stats.num_endpoints = static_cast<long long>(read_u64(in));
  g.stats.num_instances = static_cast<long long>(read_u64(in));
  g.stats.num_nets = static_cast<long long>(read_u64(in));
  g.stats.num_ffs = static_cast<long long>(read_u64(in));
  TG_CHECK_MSG(in.good(), "truncated dataset-graph file " << path);

  // Internal consistency.
  TG_CHECK(g.node_feat.rows() == g.num_nodes);
  TG_CHECK(g.net_src.size() == g.net_dst.size());
  TG_CHECK(g.cell_src.size() == g.cell_dst.size());
  TG_CHECK(static_cast<int>(g.node_level.size()) == g.num_nodes);
  return g;
}

}  // namespace tg::data
