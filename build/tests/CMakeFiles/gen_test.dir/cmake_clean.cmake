file(REMOVE_RECURSE
  "CMakeFiles/gen_test.dir/gen/blocks_test.cpp.o"
  "CMakeFiles/gen_test.dir/gen/blocks_test.cpp.o.d"
  "CMakeFiles/gen_test.dir/gen/circuit_builder_test.cpp.o"
  "CMakeFiles/gen_test.dir/gen/circuit_builder_test.cpp.o.d"
  "CMakeFiles/gen_test.dir/gen/generator_test.cpp.o"
  "CMakeFiles/gen_test.dir/gen/generator_test.cpp.o.d"
  "CMakeFiles/gen_test.dir/gen/suite_sweep_test.cpp.o"
  "CMakeFiles/gen_test.dir/gen/suite_sweep_test.cpp.o.d"
  "CMakeFiles/gen_test.dir/gen/suite_test.cpp.o"
  "CMakeFiles/gen_test.dir/gen/suite_test.cpp.o.d"
  "gen_test"
  "gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
