#include "route/topology.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace tg {
namespace {

TEST(RouteTopology, RootOnlyValid) {
  RouteTopology t({1, 2}, 42);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.node(0).pin, 42);
  EXPECT_EQ(t.node(0).parent, -1);
  EXPECT_DOUBLE_EQ(t.total_wirelength(), 0.0);
  EXPECT_NO_THROW(t.validate());
}

TEST(RouteTopology, DefaultWireIsManhattan) {
  RouteTopology t({0, 0}, 0);
  const int a = t.add_node({3, 4}, 0);
  EXPECT_DOUBLE_EQ(t.node(a).wire_to_parent, 7.0);
  EXPECT_DOUBLE_EQ(t.total_wirelength(), 7.0);
}

TEST(RouteTopology, ExplicitWireOverridesDistance) {
  RouteTopology t({0, 0}, 0);
  const int a = t.add_node({3, 0}, 0, kInvalidId, 10.0);  // detoured
  EXPECT_DOUBLE_EQ(t.node(a).wire_to_parent, 10.0);
}

TEST(RouteTopology, NodeOfPinFindsAttachments) {
  RouteTopology t({0, 0}, 7);
  t.add_node({1, 0}, 0);  // steiner
  const int s = t.add_node({2, 0}, 1, 9);
  EXPECT_EQ(t.node_of_pin(7), 0);
  EXPECT_EQ(t.node_of_pin(9), s);
  EXPECT_EQ(t.node_of_pin(1234), -1);
}

TEST(RouteTopology, AttachPinOnlyOnce) {
  RouteTopology t({0, 0}, 0);
  const int a = t.add_node({1, 0}, 0);
  t.attach_pin(a, 5);
  EXPECT_THROW(t.attach_pin(a, 6), CheckError);
}

TEST(RouteTopology, RejectsBadParents) {
  RouteTopology t({0, 0}, 0);
  EXPECT_THROW(t.add_node({1, 1}, 5), CheckError);   // nonexistent parent
  EXPECT_THROW(t.add_node({1, 1}, -1), CheckError);  // root has no parent slot
}

TEST(RouteTopology, SetParentDetectsCycles) {
  RouteTopology t({0, 0}, 0);
  const int a = t.add_node({1, 0}, 0);
  const int b = t.add_node({2, 0}, a);
  // a's parent becomes b: cycle a -> b -> a, caught by validate().
  t.set_parent(a, b, 1.0);
  EXPECT_THROW(t.validate(), CheckError);
}

TEST(RouteTopology, NegativeWireRejectedByValidate) {
  RouteTopology t({0, 0}, 0);
  t.add_node({1, 0}, 0, kInvalidId, 1.0);
  t.set_parent(1, 0, -3.0);
  EXPECT_THROW(t.validate(), CheckError);
}

}  // namespace
}  // namespace tg
