#pragma once
/// \file point.hpp
/// 2-D geometry primitives. Coordinates are in micrometres (µm), matching
/// the placement and routing substrates.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

namespace tg {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Manhattan (rectilinear) distance — the routing metric.
[[nodiscard]] inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned bounding box.
struct BBox {
  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  void expand(const Point& p) {
    xmin = std::min(xmin, p.x);
    ymin = std::min(ymin, p.y);
    xmax = std::max(xmax, p.x);
    ymax = std::max(ymax, p.y);
  }

  void expand(const BBox& other) {
    xmin = std::min(xmin, other.xmin);
    ymin = std::min(ymin, other.ymin);
    xmax = std::max(xmax, other.xmax);
    ymax = std::max(ymax, other.ymax);
  }

  [[nodiscard]] bool valid() const { return xmin <= xmax && ymin <= ymax; }
  [[nodiscard]] double width() const { return valid() ? xmax - xmin : 0.0; }
  [[nodiscard]] double height() const { return valid() ? ymax - ymin : 0.0; }
  /// Half-perimeter wirelength of the box.
  [[nodiscard]] double hpwl() const { return width() + height(); }
  [[nodiscard]] bool contains(const Point& p) const {
    return valid() && p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
  }
};

/// Bounding box of a point set.
[[nodiscard]] inline BBox bounding_box(std::span<const Point> pts) {
  BBox b;
  for (const Point& p : pts) b.expand(p);
  return b;
}

/// Half-perimeter wirelength of a point set (the classical placement
/// surrogate the paper's introduction discusses).
[[nodiscard]] inline double hpwl(std::span<const Point> pts) {
  return bounding_box(pts).hpwl();
}

}  // namespace tg
