#include "serve/admission.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tg::serve {

AdmissionQueue::AdmissionQueue(int capacity) : capacity_(capacity) {
  TG_CHECK(capacity >= 1);
}

bool AdmissionQueue::push(Ticket&& ticket) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || static_cast<int>(queue_.size()) >= capacity_) {
      return false;
    }
    queue_.push_back(std::move(ticket));
  }
  cv_.notify_one();
  return true;
}

std::optional<Ticket> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // stopped and drained
  Ticket t = std::move(queue_.front());
  queue_.pop_front();
  return t;
}

std::vector<Ticket> AdmissionQueue::drain_compatible(std::uint64_t tpl_key,
                                                     int max_extra,
                                                     bool cross_template,
                                                     long long max_total_nodes,
                                                     long long lead_nodes) {
  std::vector<Ticket> out;
  if (max_extra <= 0) return out;
  const std::lock_guard<std::mutex> lock(mu_);
  // Distinct templates admitted so far and the node budget they consume.
  // A batch is a handful of tickets, so linear membership scans beat a
  // hash map here.
  std::vector<std::uint64_t> members{tpl_key};
  long long total_nodes = lead_nodes;
  for (auto it = queue_.begin();
       it != queue_.end() && static_cast<int>(out.size()) < max_extra;) {
    if (!it->batchable) {
      ++it;
      continue;
    }
    const bool known =
        std::find(members.begin(), members.end(), it->tpl_key) != members.end();
    if (!known) {
      if (!cross_template ||
          (max_total_nodes >= 0 &&
           total_nodes + it->num_nodes > max_total_nodes)) {
        ++it;
        continue;
      }
      members.push_back(it->tpl_key);
      total_nodes += it->num_nodes;
    }
    out.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  return out;
}

std::vector<Ticket> AdmissionQueue::stop() {
  std::vector<Ticket> leftover;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    leftover.reserve(queue_.size());
    std::move(queue_.begin(), queue_.end(), std::back_inserter(leftover));
    queue_.clear();
  }
  cv_.notify_all();
  return leftover;
}

int AdmissionQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

double AdmissionQueue::fill() const {
  return static_cast<double>(size()) / static_cast<double>(capacity_);
}

}  // namespace tg::serve
