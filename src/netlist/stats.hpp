#pragma once
/// \file stats.hpp
/// Pretty-printing of DesignStats as Table-1-style rows.

#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "util/table.hpp"

namespace tg {

/// One Table-1 row: name, #nodes, #net edges, #cell edges, #endpoints.
[[nodiscard]] std::vector<std::string> stats_row(const std::string& name,
                                                 const DesignStats& stats);

/// Sum of a list of stats (for the Total Train / Total Test rows).
[[nodiscard]] DesignStats sum_stats(const std::vector<DesignStats>& all);

}  // namespace tg
