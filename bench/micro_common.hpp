#pragma once
/// \file micro_common.hpp
/// Shared driver for the google-benchmark micro benches: strips the
/// repo-specific flags before google-benchmark sees argv, records the
/// thread-pool size in the benchmark context (and therefore in
/// `--benchmark_out` JSON, keeping BENCH_*.json trajectories comparable
/// across machines), and implements the `--sweep` threads×size scaling
/// mode with a per-kernel speedup summary.
///
///   micro_sta --threads=8                 # pool size for the normal run
///   micro_sta --sweep                     # threads×size scaling matrix
///   micro_sta --sweep --sweep-threads=1,2,4,8,16
///   micro_sta --json                      # write BENCH_micro_sta.json
///   micro_sta --json=perf.json            # explicit output path
///
/// Sweep benchmarks are named `SWEEP_<kernel>/<size>/threads:<t>`; after
/// the run a `# sweep summary:` line per kernel/size reports the speedup
/// of the largest thread count over threads:1 — the number the scaling
/// regression check watches.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "util/parallel.hpp"
#include "util/string_util.hpp"

namespace tg::bench_micro {

/// Console reporter that also collects per-run times so the sweep summary
/// can be printed after all benchmarks finished.
class ScalingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      const double secs =
          run.real_accumulated_time / static_cast<double>(run.iterations);
      all_runs_[name].push_back({run.iterations, secs});
      const std::size_t tag = name.find("/threads:");
      if (tag == std::string::npos) continue;
      const int threads = std::atoi(name.c_str() + tag + 9);
      sweep_secs_[name.substr(0, tag)][threads] = secs;
    }
    ConsoleReporter::ReportRuns(report);
  }

  /// Per-benchmark entries (median/p90 across repetitions) for --json.
  [[nodiscard]] std::vector<bench_json::Entry> json_entries() const {
    std::vector<bench_json::Entry> out;
    for (const auto& [name, reps] : all_runs_) {
      std::vector<double> times;
      long long iters = 0;
      for (const auto& [it, secs] : reps) {
        times.push_back(secs);
        iters += it;
      }
      std::sort(times.begin(), times.end());
      bench_json::Entry e = bench_json::parse_name(name, num_threads());
      e.iterations = iters;
      e.median_s = times[times.size() / 2];
      e.p90_s = times[(times.size() * 9) / 10 < times.size()
                          ? (times.size() * 9) / 10
                          : times.size() - 1];
      out.push_back(std::move(e));
    }
    return out;
  }

  /// One `# sweep summary:` line per kernel/size: serial time, best time,
  /// and the speedup at the largest thread count vs threads:1.
  void print_summary() const {
    for (const auto& [kernel, by_threads] : sweep_secs_) {
      if (by_threads.empty()) continue;
      const auto t1 = by_threads.find(1);
      const auto& [tmax, tmax_secs] = *by_threads.rbegin();
      std::printf("# sweep summary: %s", kernel.c_str());
      for (const auto& [t, secs] : by_threads) {
        std::printf(" t%d=%.3fms", t, secs * 1e3);
      }
      if (t1 != by_threads.end() && tmax_secs > 0.0) {
        std::printf(" speedup@%d=%.2fx", tmax, t1->second / tmax_secs);
      }
      std::printf("\n");
    }
    // Kernels that differ only in an engine segment (…/level vs …/async
    // or …/shard) get a cross-engine line: level-time / engine-time per
    // thread count — the numbers the async-STA acceptance criterion and
    // the shard-overhead check watch.
    for (const auto& [kernel, by_threads] : sweep_secs_) {
      const std::size_t tag = kernel.find("/level");
      if (tag == std::string::npos) continue;
      for (const char* engine : {"async", "shard"}) {
        std::string twin = kernel;
        twin.replace(tag, 6, std::string("/") + engine);
        const auto other = sweep_secs_.find(twin);
        if (other == sweep_secs_.end()) continue;
        std::printf("# engine speedup: %.*s %s-vs-level",
                    static_cast<int>(tag), kernel.c_str(), engine);
        for (const auto& [t, level_secs] : by_threads) {
          const auto a = other->second.find(t);
          if (a == other->second.end() || a->second <= 0.0) continue;
          std::printf(" t%d=%.2fx", t, level_secs / a->second);
        }
        std::printf("\n");
      }
    }
    std::fflush(stdout);
  }

 private:
  // kernel/size prefix -> thread count -> seconds per iteration.
  std::map<std::string, std::map<int, double>> sweep_secs_;
  // full name -> one (iterations, secs/iter) pair per repetition.
  std::map<std::string, std::vector<std::pair<long long, double>>> all_runs_;
};

/// Custom BENCHMARK_MAIN: handles --threads / --sweep / --sweep-threads,
/// then delegates the surviving argv to google-benchmark.
/// `register_sweep` registers the bench's SWEEP_* benchmarks for the given
/// thread counts (called only in sweep mode). `extra_json`, when provided,
/// is invoked after the benchmarks ran and must return a raw JSON member
/// (or "") appended to the --json file as a top-level section — e.g.
/// micro_sta's per-level occupancy histograms.
inline int run_micro_main(
    int argc, char** argv,
    const std::function<void(const std::vector<int>&)>& register_sweep,
    const std::function<std::string()>& extra_json = {}) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  bool sweep = false;
  std::string json_path;
  bool want_json = false;
  std::vector<int> sweep_threads = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      set_num_threads(std::atoi(arg.c_str() + 10));
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg.rfind("--sweep-threads=", 0) == 0) {
      sweep_threads.clear();
      for (const std::string& part : split(arg.substr(16), ',')) {
        const int t = std::atoi(part.c_str());
        if (t >= 1) sweep_threads.push_back(t);
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  benchmark::AddCustomContext("tg_threads", std::to_string(num_threads()));
  if (sweep && !sweep_threads.empty()) {
    std::string list;
    for (int t : sweep_threads) {
      if (!list.empty()) list += ',';
      list += std::to_string(t);
    }
    benchmark::AddCustomContext("tg_sweep_threads", list);
    register_sweep(sweep_threads);
  }

  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  ScalingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (sweep) reporter.print_summary();
  if (want_json) {
    // Bench name = argv[0] basename; default path BENCH_<name>.json.
    std::string bench = argv[0];
    const std::size_t sep = bench.find_last_of('/');
    if (sep != std::string::npos) bench = bench.substr(sep + 1);
    if (json_path.empty()) json_path = "BENCH_" + bench + ".json";
    if (bench_json::write_file(json_path, bench, num_threads(),
                               reporter.json_entries(),
                               extra_json ? extra_json() : std::string())) {
      std::printf("# wrote %s\n", json_path.c_str());
    }
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace tg::bench_micro
