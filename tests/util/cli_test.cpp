#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace tg {
namespace {

CliOptions make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliOptions(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, KeyValue) {
  const auto o = make({"--scale=0.5", "--name=spm"});
  EXPECT_DOUBLE_EQ(o.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(o.get("name", ""), "spm");
}

TEST(Cli, FlagDefaultsTrue) {
  const auto o = make({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_TRUE(o.has("verbose"));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto o = make({});
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  EXPECT_EQ(o.get_int("n", 42), 42);
  EXPECT_FALSE(o.has("missing"));
  EXPECT_FALSE(o.get_bool("b", false));
}

TEST(Cli, Positionals) {
  const auto o = make({"pos1", "--k=v", "pos2"});
  ASSERT_EQ(o.positionals().size(), 2u);
  EXPECT_EQ(o.positionals()[0], "pos1");
  EXPECT_EQ(o.positionals()[1], "pos2");
}

TEST(Cli, BoolParsing) {
  const auto o = make({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_FALSE(o.get_bool("b", true));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_FALSE(o.get_bool("d", true));
}

TEST(Cli, IntParsing) {
  const auto o = make({"--n=123", "--neg=-7"});
  EXPECT_EQ(o.get_int("n", 0), 123);
  EXPECT_EQ(o.get_int("neg", 0), -7);
}

TEST(Cli, RequireKnownAcceptsListedFlags) {
  const auto o = make({"--scale=0.5", "--verbose", "positional"});
  o.require_known({"scale", "verbose", "epochs"});  // no throw
}

TEST(Cli, RequireKnownRejectsUnknownFlag) {
  const auto o = make({"--scael=0.5"});  // typo'd --scale
  EXPECT_THROW(o.require_known({"scale", "verbose"}), CheckError);
}

TEST(Cli, RequireKnownErrorListsValidOptions) {
  const auto o = make({"--bogus"});
  try {
    o.require_known({"scale", "epochs"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--scale"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--epochs"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace tg
