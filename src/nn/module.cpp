#include "nn/module.hpp"

#include <cmath>

#include "util/check.hpp"

namespace tg::nn {

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const Tensor& t : params_) n += t.numel();
  return n;
}

void Module::zero_grad() {
  for (Tensor& t : params_) t.zero_grad();
}

Tensor Module::register_parameter(const std::string& name, Tensor t) {
  TG_CHECK(t.defined() && t.requires_grad());
  params_.push_back(t);
  names_.push_back(name);
  return t;
}

void Module::register_module(const std::string& prefix, const Module& child) {
  for (std::size_t i = 0; i < child.parameters().size(); ++i) {
    params_.push_back(child.parameters()[i]);
    names_.push_back(prefix + "/" + child.parameter_names()[i]);
  }
}

Linear::Linear(std::int64_t in, std::int64_t out, Rng& rng,
               const std::string& name) {
  TG_CHECK(in > 0 && out > 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
  w_ = register_parameter(name + ".w",
                          Tensor::rand_uniform(in, out, bound, rng, true));
  b_ = register_parameter(name + ".b", Tensor::zeros(1, out, true));
}

Tensor Linear::forward(const Tensor& x) const {
  return add(matmul(x, w_), b_);
}

Tensor Linear::forward_relu(const Tensor& x) const {
  return add_relu(matmul(x, w_), b_);
}

Mlp::Mlp(std::int64_t in, std::int64_t out, std::int64_t hidden,
         int hidden_layers, Rng* rng, const std::string& name) {
  TG_CHECK(rng != nullptr);
  TG_CHECK(hidden_layers >= 0);
  std::int64_t cur = in;
  for (int l = 0; l < hidden_layers; ++l) {
    layers_.emplace_back(cur, hidden, *rng, name + ".h" + std::to_string(l));
    cur = hidden;
  }
  layers_.emplace_back(cur, out, *rng, name + ".out");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    register_module(name + ".l" + std::to_string(l), layers_[l]);
  }
}

Tensor Mlp::forward(const Tensor& x) const {
  TG_CHECK(!layers_.empty());
  Tensor h = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    h = layers_[l].forward_relu(h);
  }
  return layers_.back().forward(h);
}

Tensor Mlp::forward_relu(const Tensor& x) const {
  TG_CHECK(!layers_.empty());
  Tensor h = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    h = layers_[l].forward_relu(h);
  }
  return layers_.back().forward_relu(h);
}

std::int64_t Mlp::in_features() const { return layers_.front().in_features(); }
std::int64_t Mlp::out_features() const { return layers_.back().out_features(); }

}  // namespace tg::nn
