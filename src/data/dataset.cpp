#include "data/dataset.hpp"

#include <algorithm>
#include <functional>

#include "data/validate.hpp"
#include "netlist/validate.hpp"
#include "sta/validate.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/obs/metrics.hpp"
#include "util/obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace tg::data {

namespace {

/// Runs one invariant checker and escalates collected errors as a single
/// aggregated DiagError naming the benchmark and stage.
template <typename Check>
void gate(const std::string& benchmark, const char* stage, Check&& check) {
  if (validate_level() == ValidateLevel::kOff) return;
  DiagSink sink;
  check(sink);
  sink.throw_if_errors(benchmark + ": " + stage);
}

}  // namespace

DatasetGraph build_design_graph(const SuiteEntry& entry, const Library& library,
                                const DatasetOptions& options) {
  TG_TRACE_SCOPE("data/benchmark", obs::kSpanCoarse);
  const std::string& name = entry.spec.name;
  auto design = std::make_shared<Design>([&] {
    TG_TRACE_SCOPE("data/generate", obs::kSpanCoarse);
    return generate_design(entry.spec, library);
  }());
  if (options.post_generate) options.post_generate(*design);
  gate(name, "post-generate design check",
       [&](DiagSink& s) { validate_design(*design, s); });

  {
    TG_TRACE_SCOPE("data/place", obs::kSpanCoarse);
    place_design(*design, options.placer);
  }
  gate(name, "post-place check", [&](DiagSink& s) {
    validate_placement(*design, s);
    if (validate_level() == ValidateLevel::kFull) validate_design(*design, s);
  });

  auto truth = std::make_shared<DesignRouting>([&] {
    TG_TRACE_SCOPE("data/route", obs::kSpanCoarse);
    return route_design(*design, options.truth_routing);
  }());

  const TimingGraph graph(*design);
  gate(name, "timing graph check",
       [&](DiagSink& s) { validate_timing_graph(graph, s); });

  StaResult sta;
  {
    TG_TRACE_SCOPE("data/sta", obs::kSpanCoarse);
    sta = run_sta(graph, *truth, options.sta);
    design->set_period(
        calibrated_period(*design, sta.arrival, entry.clock_factor));
    // Re-run to refresh RAT/slack under the calibrated period; keep the
    // first run's propagation timing (identical work).
    const double sta_seconds = sta.sta_seconds;
    sta = run_sta(graph, *truth, options.sta);
    sta.sta_seconds = sta_seconds;
  }
  gate(name, "STA finiteness check",
       [&](DiagSink& s) { check_sta_finite(graph, sta, s); });

  DatasetGraph g = [&] {
    TG_TRACE_SCOPE("data/extract", obs::kSpanCoarse);
    return extract_graph(*design, graph, *truth, sta);
  }();
  g.is_test = entry.is_test;
  gate(name, "extracted graph check",
       [&](DiagSink& s) { validate_dataset_graph(g, s); });
  TG_METRIC_COUNT("data/benchmarks_built", 1);
  if (!options.slim) {
    g.design = design;
    g.truth_routing = truth;
  }
  // Precompute the level-packed CSR here, once per graph, so it rides
  // along in the TGD2 file and downstream plans never rebuild it.
  ensure_level_csr(g);
  TG_INFO("dataset: " << g.name << " nodes=" << g.num_nodes
                      << " net_edges=" << g.net_src.size()
                      << " cell_edges=" << g.cell_src.size()
                      << " endpoints=" << g.endpoints.size()
                      << " levels=" << g.num_levels
                      << " route=" << g.route_seconds << "s");
  return g;
}

SuiteDataset build_suite_dataset(const Library& library,
                                 const DatasetOptions& options,
                                 const std::vector<std::string>& only) {
  std::vector<SuiteEntry> selected;
  for (const SuiteEntry& entry : table1_suite(options.scale)) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), entry.spec.name) == only.end()) {
      continue;
    }
    selected.push_back(entry);
  }
  TG_CHECK(!selected.empty());

  // One task per benchmark. Every stochastic stage (generation, placement
  // jitter) draws from the entry's own seeded Rng stream, so each slot's
  // graph is independent of which thread or order ran it; suite order is
  // preserved by writing results into pre-sized slots. A benchmark whose
  // pipeline throws is quarantined — the slot stays empty and the failure
  // text is recorded — instead of aborting the whole suite build.
  TG_TRACE_SCOPE("data/suite_build", obs::kSpanCoarse);
  std::vector<DatasetGraph> slots(selected.size());
  std::vector<char> failed(selected.size(), 0);
  std::vector<std::string> reports(selected.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    tasks.push_back([&, i] {
      try {
        slots[i] = build_design_graph(selected[i], library, options);
      } catch (const std::exception& e) {
        failed[i] = 1;
        reports[i] = e.what();
      }
    });
  }
  parallel_invoke(tasks);

  SuiteDataset out;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (failed[i]) {
      TG_METRIC_COUNT("data/quarantined", 1);
      out.quarantined.push_back(
          QuarantinedBenchmark{selected[i].spec.name, reports[i]});
      continue;
    }
    const int id = static_cast<int>(out.graphs.size());
    (selected[i].is_test ? out.test_ids : out.train_ids).push_back(id);
    out.graphs.push_back(std::move(slots[i]));
  }

  if (!out.quarantined.empty()) {
    TG_WARN("dataset: quarantined " << out.quarantined.size() << " of "
                                    << selected.size() << " benchmarks:");
    for (const QuarantinedBenchmark& q : out.quarantined) {
      TG_WARN("  quarantined '" << q.name << "':\n" << q.report);
    }
  }
  TG_CHECK_MSG(!out.graphs.empty(),
               "all " << selected.size()
                      << " benchmarks were quarantined — no usable data");
  return out;
}

}  // namespace tg::data
